"""Shim for legacy (non-PEP-517) editable installs on environments
without the ``wheel`` package: ``pip install -e . --no-use-pep517``."""

from setuptools import setup

setup()
