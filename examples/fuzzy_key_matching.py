"""Approximate key matching on the device index.

The paper notes ART is "also suitable for approximate queries" via the
GPU approximate-search work of Groth et al. [8] (§2.1).  A realistic use:
device identifiers arriving over a lossy channel — sensor MACs with
occasional corrupted bytes — matched against the registry index within a
small Hamming budget instead of being dropped.

Run:  python examples/fuzzy_key_matching.py
"""

from repro import CuartEngine
from repro.cuart.approx import approx_lookup
from repro.util.rng import make_rng
from repro.workloads import random_keys

N_DEVICES = 5_000
CORRUPTED_READINGS = 200


def main() -> None:
    rng = make_rng(777)
    registry = random_keys(N_DEVICES, 6, seed=778)  # 48-bit MAC-like ids

    engine = CuartEngine(batch_size=1024)
    engine.populate((mac, i) for i, mac in enumerate(registry))
    engine.map_to_device()
    layout = engine.layout
    print(f"registered {N_DEVICES} device ids "
          f"({layout.device_bytes() / 1024:.0f} KiB on device)")

    # readings arrive with a corrupted byte in ~half the cases
    readings = []
    for _ in range(CORRUPTED_READINGS):
        true_id = registry[int(rng.integers(0, N_DEVICES))]
        if rng.random() < 0.5:
            pos = int(rng.integers(0, len(true_id)))
            flip = int(rng.integers(1, 256))
            corrupted = (
                true_id[:pos] + bytes([true_id[pos] ^ flip]) + true_id[pos + 1:]
            )
            readings.append((corrupted, true_id, True))
        else:
            readings.append((true_id, true_id, False))

    exact_hits = fuzzy_hits = ambiguous = lost = 0
    states = 0
    for observed, true_id, corrupted in readings:
        res = approx_lookup(layout, observed, max_mismatches=1)
        states += res.states_visited
        best = res.best()
        if best is None:
            lost += 1
        elif best.distance == 0:
            exact_hits += 1
        else:
            # accept a unique distance-1 match; flag ties for review
            d1 = [m for m in res.matches if m.distance == 1]
            if len(d1) == 1 and d1[0].key == true_id:
                fuzzy_hits += 1
            else:
                ambiguous += 1

    print(f"exact matches     : {exact_hits}")
    print(f"recovered (fuzzy) : {fuzzy_hits}")
    print(f"ambiguous         : {ambiguous}")
    print(f"unmatched         : {lost}")
    print(f"avg tree states visited per fuzzy probe: "
          f"{states / len(readings):.0f} "
          f"(vs {N_DEVICES} for a brute-force scan)")
    assert exact_hits + fuzzy_hits + ambiguous + lost == CORRUPTED_READINGS
    assert fuzzy_hits > 0


if __name__ == "__main__":
    main()
