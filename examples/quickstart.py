"""Quickstart: build a CuART engine, run lookups, updates and ranges.

Walks the paper's three pipeline stages (section 4.1):

1. populate the host ART,
2. map it into the CuART device buffers (+ compacted root table),
3. run batched queries against the simulated device, end to end.

Run:  python examples/quickstart.py
"""

from repro import CuartEngine
from repro.util.keys import encode_int, encode_str


def main() -> None:
    # --- stage 1: populate ------------------------------------------------
    engine = CuartEngine(batch_size=1024, root_table_depth=2)
    print("populating 10,000 integer keys + a few string keys ...")
    engine.populate((encode_int(i * 7), i) for i in range(10_000))
    engine.populate(
        [(encode_str("alice"), 100_001), (encode_str("bob"), 100_002)]
    )

    # --- stage 2: map to the device ----------------------------------
    engine.map_to_device()
    layout = engine.layout
    print(
        f"mapped {len(engine)} keys into "
        f"{layout.device_bytes() / 1024:.0f} KiB of device buffers "
        f"(+ {engine.root_table.nbytes / 1024:.0f} KiB root table)"
    )

    # --- stage 3: query ----------------------------------------------
    hits = engine.lookup([encode_int(7), encode_int(8), encode_str("alice")])
    print(f"lookup [7*1, 8, 'alice'] -> {hits}")
    assert hits == [1, None, 100_001]
    print(engine.last_report)

    # batched updates: within one batch, the later write wins (the
    # paper's thread-id priority, section 3.4)
    engine.update([(encode_int(7), 42), (encode_int(7), 43)])
    assert engine.lookup([encode_int(7)]) == [43]
    print(engine.last_report)

    # range query over the ordered leaf buffers (section 3.2.1)
    window = engine.range(encode_int(0), encode_int(70))
    print(f"range [0, 70] -> {len(window)} keys: "
          f"{[v for _, v in window]}")

    # device-side deletion (section 3.3): lazy, structure untouched
    engine.delete([encode_int(14)])
    assert engine.lookup([encode_int(14)]) == [None]
    print("deleted key 14; neighbours intact:",
          engine.lookup([encode_int(7), encode_int(21)]))


if __name__ == "__main__":
    main()
