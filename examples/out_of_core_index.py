"""An index larger than device memory: hot/cold partitioning (§5.1).

The paper's future work: "add a specialized handling for index
structures larger than the device memory, by migrating rarely used parts
of the key space into host memory and query them in a hybrid manner with
both GPU and CPU doing the work."

This example builds an index whose CuART buffers exceed a (deliberately
tiny) device budget, serves a skewed query stream, and shows the
partitioner migrating the hot key ranges onto the device after a
rebalance — device-hit rate climbs, host traffic falls.

Run:  python examples/out_of_core_index.py
"""

import numpy as np

from repro.cuart.partition import PartitionedIndex
from repro.util.rng import make_rng
from repro.workloads import random_keys, zipf_indices

N_KEYS = 20_000
BUDGET = 192 * 1024  # bytes of simulated device memory


def main() -> None:
    keys = random_keys(N_KEYS, 8, seed=404)
    oracle = {k: i for i, k in enumerate(keys)}

    idx = PartitionedIndex(device_budget_bytes=BUDGET, root_table_depth=1)
    idx.populate((k, i) for i, k in enumerate(keys))
    st = idx.stats()
    print(
        f"indexed {N_KEYS} keys; device holds {st.hot_partitions} of 256 "
        f"partitions = {100 * st.hot_key_fraction:.0f}% of keys "
        f"({st.device_bytes / 1024:.0f} / {BUDGET / 1024:.0f} KiB budget)"
    )

    # a skewed workload: most queries hit a narrow slice of the key space
    rng = make_rng(405)
    hot_zone = sorted(keys)[: N_KEYS // 8]  # the lexicographic low end
    picks = zipf_indices(len(hot_zone), 6000, a=1.3, seed=rng)
    workload = [hot_zone[i] for i in picks]

    for phase in range(3):
        idx.device_queries = idx.host_queries = 0
        got = idx.lookup(workload)
        assert got == [oracle[k] for k in workload]
        total = idx.device_queries + idx.host_queries
        print(
            f"phase {phase}: {idx.device_queries}/{total} queries served "
            f"by the device ({100 * idx.device_queries / total:.0f}%)"
        )
        if phase < 2:
            migrated = idx.rebalance()
            print(f"  rebalance -> hot set changed: {migrated}")

    final = idx.stats()
    print(
        f"after adaptation: {final.hot_partitions} hot partitions, "
        f"{final.device_bytes / 1024:.0f} KiB on device, "
        f"{final.rebalances} rebalances"
    )


if __name__ == "__main__":
    main()
