"""A monitoring-metrics key-value store on CuART.

The paper's conclusion names this exact use case: "tracking and
aggregating metrics with string-based keys, as done e.g. by monitoring
software" — an update/lookup-intense KV workload.  Metric series are
identified by string keys like ``cpu.host-042.user``; every scrape
interval replaces thousands of current values in one batched update
(section 3.4), while dashboards issue prefix queries ("all metrics of
host-042") against the ordered leaf buffers.

Run:  python examples/metrics_kv_store.py
"""

import numpy as np

from repro import CuartEngine
from repro.util.keys import encode_str
from repro.util.rng import make_rng

HOSTS = 40
METRICS = ["cpu.user", "cpu.sys", "mem.rss", "net.rx", "net.tx", "io.read"]


def metric_key(host: int, metric: str) -> bytes:
    # "<metric>|host-<n>" keeps keys under the 32-byte device leaf limit
    return encode_str(f"{metric}|h{host:03d}")


def main() -> None:
    rng = make_rng(2026)
    engine = CuartEngine(batch_size=256, root_table_depth=1)

    # register every series with an initial value
    series = [(h, m) for h in range(HOSTS) for m in METRICS]
    engine.populate(
        (metric_key(h, m), int(rng.integers(0, 1000)))
        for h, m in series
    )
    engine.map_to_device()
    print(f"registered {len(series)} metric series")

    # --- scrape loop: batched value replacement ------------------------
    for tick in range(3):
        batch = [
            (metric_key(h, m), int(rng.integers(0, 100_000)))
            for h, m in series
        ]
        found = engine.update(batch)
        assert all(found)
        rep = engine.last_report
        print(
            f"tick {tick}: replaced {len(batch)} values "
            f"(simulated {rep.end_to_end_mops:.0f} MOps/s end-to-end, "
            f"{rep.transactions_per_query:.1f} tx/op)"
        )

    # --- dashboard: all metrics of one series prefix --------------------
    cpu_series = engine.prefix(b"cpu.")
    print(f"prefix 'cpu.' -> {len(cpu_series)} series "
          f"(expect {2 * HOSTS})")
    assert len(cpu_series) == 2 * HOSTS

    # --- point reads ---------------------------------------------------
    sample = engine.lookup([metric_key(7, "mem.rss"), metric_key(7, "net.rx")])
    print(f"host 007 mem.rss={sample[0]} net.rx={sample[1]}")

    # --- host decommissioned: delete its series -------------------------
    dead = [metric_key(13, m) for m in METRICS]
    engine.delete(dead)
    assert engine.lookup(dead) == [None] * len(dead)
    print(f"decommissioned h013: {len(dead)} series removed "
          f"({sum(len(v) for v in engine.layout.free_leaves.values())} "
          "leaf slots recycled)")


if __name__ == "__main__":
    main()
