"""An OLAP index join accelerated by batched GPU lookups.

The paper's introduction motivates exactly this: "complex queries, e.g.
index joins across multiple tables access the index structure for each
tuple to be joined and hence up to several million times".  Here a fact
table of orders is joined against a customer dimension through a CuART
index on the customers' primary key, comparing the CuART engine against
the GRT baseline on the same simulated workstation GPU.

Run:  python examples/olap_index_join.py
"""

import numpy as np

from repro import CuartEngine, GrtEngine
from repro.util.keys import encode_int
from repro.util.rng import make_rng

CUSTOMERS = 20_000
ORDERS = 60_000


def main() -> None:
    rng = make_rng(7)

    # dimension table: customer_id -> row position
    customer_ids = np.unique(rng.integers(1, 2**40, size=CUSTOMERS + 512))[
        :CUSTOMERS
    ]
    dim_index = [(encode_int(int(cid)), row) for row, cid in enumerate(customer_ids)]

    # fact table: orders referencing customers (some dangling on purpose)
    fact_cids = customer_ids[rng.integers(0, CUSTOMERS, size=ORDERS - 500)]
    dangling = rng.integers(2**40, 2**41, size=500)
    probe_keys = [encode_int(int(c)) for c in np.concatenate([fact_cids, dangling])]

    results = {}
    for name, engine in (
        ("CuART", CuartEngine(root_table_depth=2)),
        ("GRT", GrtEngine()),
    ):
        engine.populate(dim_index)
        engine.map_to_device()
        rows = engine.lookup(probe_keys)
        matched = sum(1 for r in rows if r is not None)
        rep = engine.last_report
        results[name] = rep
        print(
            f"{name:>5}: joined {matched}/{ORDERS} orders  "
            f"sim {rep.end_to_end_mops:7.1f} MOps/s end-to-end  "
            f"({rep.kernel_mops:7.1f} kernel-only, "
            f"{rep.transactions_per_query:.2f} tx/probe)"
        )
        assert matched == ORDERS - 500

    speedup = (
        results["CuART"].kernel_mops / results["GRT"].kernel_mops
    )
    print(f"\nCuART kernel advantage on this join: {speedup:.2f}x "
          "(paper: up to 2x, section 4.4)")

    # group-by over a key range via the ordered leaf buffers: all
    # customers in an id window, no full scan
    lo, hi = encode_int(int(customer_ids[100])), encode_int(int(customer_ids[300]))
    cu = CuartEngine(root_table_depth=2)
    cu.populate(dim_index)
    cu.map_to_device()
    window = cu.range(lo, hi)
    print(f"range aggregation window: {len(window)} customers "
          f"between ids #100 and #300")
    assert len(window) == 201


if __name__ == "__main__":
    main()
