"""Semantic-web indexing with long keys: the three strategies of
section 3.2.3, on BTC-like RDF IRIs.

RDF subject IRIs routinely exceed CuART's 32-byte fixed-leaf maximum
("The need for handling keys longer than the CuART maximum can arise in
some specific workloads such as semantic web indexing").  This example
indexes a mixed IRI corpus with

(a) the CPU split — long keys never reach the device,
(b) host-memory leaf links — the device signals "resolve on CPU",
(c) dynamic device leaves — GRT-style variable-length comparison,

and shows the hybrid-throughput consequence the paper measures in
figure 13.

Run:  python examples/semantic_web_long_keys.py
"""

from repro import CuartEngine
from repro.cuart.layout import LongKeyStrategy
from repro.gpusim.cost_model import CostModel
from repro.gpusim.devices import A100, SERVER_CPU
from repro.host.dispatcher import DispatchConfig, pipeline_throughput
from repro.host.hybrid import HybridConfig, hybrid_throughput, split_queries
from repro.util.keys import encode_str
from repro.workloads import btc_like_keys
from repro.util.rng import make_rng

N_SHORT = 8_000
# namespaces distinct from the generator's catalog so no short 32-byte
# key is a proper prefix of these long IRIs
LONG_IRIS = [
    "https://uni-magdeburg.example/resource/Otto_von_Guericke_University",
    "https://kb.example/entity/Q123456789#very-long-fragment-identifier",
    "https://terms.example/dc/extent/some/deeply/nested/collection/path",
    "https://schemas.example/docs/releases.html#versioned-schema-ident",
]


def main() -> None:
    short_keys = btc_like_keys(N_SHORT, seed=99)  # exactly 32 bytes
    long_keys = [encode_str(iri) for iri in LONG_IRIS]
    corpus = [(k, i) for i, k in enumerate(short_keys + long_keys)]

    # --- strategy (b): host-memory links -------------------------------
    eng_b = CuartEngine(long_keys=LongKeyStrategy.HOST_LINK)
    eng_b.populate(corpus)
    eng_b.map_to_device()
    got = eng_b.lookup(long_keys + short_keys[:2])
    assert got == [N_SHORT, N_SHORT + 1, N_SHORT + 2, N_SHORT + 3, 0, 1]
    print(f"(b) host links: {len(eng_b.layout.host_leaves)} long leaves "
          "kept in host memory, lookups resolved via the CPU signal")

    # --- strategy (c): dynamic device leaves ---------------------------
    eng_c = CuartEngine(long_keys=LongKeyStrategy.DYNAMIC)
    eng_c.populate(corpus)
    eng_c.map_to_device()
    assert eng_c.lookup(long_keys) == [N_SHORT + i for i in range(4)]
    print(f"(c) dynamic leaves: {eng_c.layout.dyn.heap.size} heap bytes "
          "on-device, variable-length compare (warp-serializing)")

    # --- strategy (a): CPU split + the figure-13 throughput story -------
    queries = short_keys * 1 + long_keys * 10  # a stream with long keys
    (short_q, _), (long_q, _) = split_queries(queries, 32)
    frac = len(long_q) / len(queries)
    print(f"(a) CPU split: {len(long_q)}/{len(queries)} queries "
          f"({100 * frac:.1f}%) diverted to the CPU")

    eng_a = CuartEngine(long_keys=LongKeyStrategy.ERROR)
    eng_a.populate([(k, v) for k, v in corpus if len(k) <= 32])
    eng_a.map_to_device()
    kernel = CostModel(A100).kernel_time(_last_log(eng_a))
    pipe = pipeline_throughput(kernel, DispatchConfig(), A100, SERVER_CPU)
    for f in (0.0, frac, 0.03, 0.10):
        out = hybrid_throughput(
            pipe, HybridConfig(cpu_fraction=f, cpu_threads=56), SERVER_CPU
        )
        print(f"    {100 * f:5.2f}% long keys on CPU -> "
              f"{out['total_mops']:7.1f} MOps/s ({out['bottleneck']}-bound)")


def _last_log(engine: CuartEngine):
    """Re-run one batch to obtain a transaction log for the cost model."""
    from repro.cuart.lookup import lookup_batch
    from repro.util.keys import keys_to_matrix

    keys = [k for k, _ in engine.tree.items()][:4096]
    mat, lens = keys_to_matrix(keys, width=32)
    return lookup_batch(engine.layout, mat, lens).log


if __name__ == "__main__":
    main()
