#!/usr/bin/env bash
# Full reproduction pipeline: install, test, regenerate every figure.
#
#   ./scripts/reproduce_all.sh            # default 1/256 scale (~15 min)
#   SCALE=1 ./scripts/reproduce_all.sh    # paper-scale trees (hours)
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${SCALE:-256}"

echo "== install =="
pip install -e . 2>/dev/null || python setup.py develop

echo "== unit / integration / property tests =="
pytest tests/ 2>&1 | tee test_output.txt

echo "== figures 7-18 + measured kernels + ablations + extensions =="
if [ "$SCALE" = "1" ]; then
    pytest benchmarks/ --benchmark-only --paper-scale 2>&1 | tee bench_output.txt
else
    pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
fi

echo "== serving-path perf smoke (vs committed baseline) =="
SCALE=64 OUT=/tmp/bench_smoke.json LABEL=reproduce ./scripts/bench_smoke.sh

echo "== rendered figure report =="
python -m repro.bench all --scale "$SCALE"

echo "== examples =="
for ex in examples/*.py; do
    echo "-- $ex"
    python "$ex"
done

echo "reproduction complete."
