#!/usr/bin/env bash
# Serving-path performance smoke: wall-clock the populate / lookup /
# update / mixed pipeline and compare against the committed baseline.
#
#   ./scripts/bench_smoke.sh                    # 1/64 scale, vs BENCH_pr1.json
#   SCALE=16 ./scripts/bench_smoke.sh           # bigger tree
#   OUT=/tmp/b.json BASELINE= ./scripts/bench_smoke.sh   # no comparison
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${SCALE:-64}"
OUT="${OUT:-BENCH_pr2.json}"
LABEL="${LABEL:-local}"
# default baseline: the latest committed measurement, when present
if [ "${BASELINE+set}" != "set" ]; then
    if [ -f BENCH_pr1.json ]; then
        BASELINE=BENCH_pr1.json
    elif [ -f BENCH_seed.json ]; then
        BASELINE=BENCH_seed.json
    fi
fi

args=(--scale "$SCALE" --out "$OUT" --label "$LABEL")
if [ -n "${BASELINE:-}" ]; then
    args+=(--baseline "$BASELINE")
fi

PYTHONPATH=src python benchmarks/perf_smoke.py "${args[@]}"
