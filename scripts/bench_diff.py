#!/usr/bin/env python
"""Diff two BENCH JSON documents and attribute the delta to pipeline
stages, op classes and shards.

``validate_bench.py --baseline`` tells you *that* an op regressed;
this tool reads the stage-level evidence both documents already carry
— ``stream_overlap`` (and, from PR 8 on, the embedded
``critical_path`` attribution), the high-conflict ``hashtable``
section, the metrics counter snapshot, per-op latency percentiles, the
``mixed_sharded`` device table, and optional flight-recorder dumps —
and prints *which stage* ate the time.

Stage taxonomy (see docs/observability.md):

    queue-wait      coalescer residence (host)
    host-dispatch   measured wall clock per op class
    pcie-h2d        simulated host->device copy
    pcie-d2h        simulated device->host copy
    kernel          simulated device kernel
    kernel/hash-table   the write kernels' dedup/conflict table
    device-pipeline stream-overlap efficiency (makespan vs serial)
    shard-skew      multi-device imbalance (slowest-shard wait)
    resilience      retries / degraded batches / backoff

Usage::

    python scripts/bench_diff.py BENCH_pr7.json BENCH_pr8.json
    python scripts/bench_diff.py A.json B.json --flight a_flight.json \
        b_flight.json --threshold 0.05 --fail-on-regression

Exit status is 0 unless ``--fail-on-regression`` is given and at least
one op regressed beyond the threshold (it is a triage tool, not a
gate — the gate is validate_bench).
"""

from __future__ import annotations

import argparse
import json
import sys

#: ops whose wall clock is compared head-to-head.
DEFAULT_THRESHOLD = 0.05


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _pct(base: float, cand: float) -> float:
    if not base:
        return 0.0
    return (cand - base) / base * 100.0


def _counter(snapshot: dict, name: str):
    """A counter family from a BENCH metrics snapshot: scalar for
    unlabelled counters, ``{"label=value": n}`` dict for labelled."""
    return (snapshot or {}).get("counters", {}).get(name)


def diff_op_table(base_ops: dict, cand_ops: dict,
                  threshold: float) -> list[dict]:
    rows = []
    for op in sorted(set(base_ops) | set(cand_ops)):
        b, c = base_ops.get(op), cand_ops.get(op)
        if b is None or c is None:
            rows.append({
                "op": op, "verdict": "new" if b is None else "removed",
                "base_wall_s": b and b.get("wall_s"),
                "cand_wall_s": c and c.get("wall_s"),
                "delta_pct": None,
            })
            continue
        bw, cw = b.get("wall_s", 0.0), c.get("wall_s", 0.0)
        delta = _pct(bw, cw)
        verdict = "ok"
        if delta > threshold * 100:
            verdict = "slower"
        elif delta < -threshold * 100:
            verdict = "faster"
        rows.append({
            "op": op, "verdict": verdict,
            "base_wall_s": bw, "cand_wall_s": cw,
            "delta_pct": round(delta, 1),
            "base_keys_per_sec": b.get("keys_per_sec"),
            "cand_keys_per_sec": c.get("keys_per_sec"),
        })
    return rows


def _find_hashtable(base_ops: dict, cand_ops: dict,
                    findings: list) -> None:
    """kernel/hash-table stage: the high-conflict scenario's dedup
    conflict-table transaction counts (per variant)."""
    b = (base_ops.get("update_high_conflict") or {}).get("hashtable")
    c = (cand_ops.get("update_high_conflict") or {}).get("hashtable")
    if c is None and b is None:
        return
    if b is None:
        bt = c.get("bucketed", {}).get("transactions")
        lt = c.get("linear", {}).get("transactions")
        findings.append({
            "stage": "kernel/hash-table", "op": "update_high_conflict",
            "severity": "improvement",
            "summary": (
                "dedup-table transactions drop attributed to the "
                "kernel/hash-table stage: the bucketed conflict table "
                f"({bt} transactions) cuts {c.get('tx_ratio')}x vs "
                f"linear probing ({lt}) in the high-conflict scenario "
                "(section new in candidate)"
            ),
        })
        return
    if c is None:
        findings.append({
            "stage": "kernel/hash-table", "op": "update_high_conflict",
            "severity": "regression",
            "summary": "high-conflict hashtable section disappeared "
                       "from the candidate",
        })
        return
    for variant in ("linear", "bucketed"):
        bv, cv = b.get(variant, {}), c.get(variant, {})
        bt, ct = bv.get("transactions"), cv.get("transactions")
        if bt and ct and abs(_pct(bt, ct)) > 5:
            sev = "regression" if ct > bt else "improvement"
            findings.append({
                "stage": "kernel/hash-table",
                "op": "update_high_conflict", "severity": sev,
                "summary": (
                    f"{variant} conflict-table transactions "
                    f"{bt} -> {ct} ({_pct(bt, ct):+.1f}%) in the "
                    "high-conflict scenario"
                ),
            })


def _find_overlap(base_ops: dict, cand_ops: dict,
                  findings: list) -> None:
    """device-pipeline stage: stream-overlap efficiency of the mixed
    run, refined to pcie/kernel stages when both documents embed a
    critical_path attribution."""
    b = (base_ops.get("mixed") or {}).get("stream_overlap")
    c = (cand_ops.get("mixed") or {}).get("stream_overlap")
    if b and c:
        bm, cm = b.get("makespan_s", 0.0), c.get("makespan_s", 0.0)
        if bm and cm and abs(_pct(bm, cm)) > 5:
            sev = "regression" if cm > bm else "improvement"
            findings.append({
                "stage": "device-pipeline", "op": "mixed",
                "severity": sev,
                "summary": (
                    f"simulated mixed makespan {bm:.3e}s -> {cm:.3e}s "
                    f"({_pct(bm, cm):+.1f}%); overlap ratio "
                    f"{b.get('overlap_ratio')} -> {c.get('overlap_ratio')}"
                ),
            })
    bcp = (base_ops.get("mixed") or {}).get("critical_path")
    ccp = (cand_ops.get("mixed") or {}).get("critical_path")
    if bcp and ccp:
        stage_map = {"h2d": "pcie-h2d", "d2h": "pcie-d2h",
                     "kernel": "kernel", "shard-skew": "shard-skew"}
        bs, cs = bcp.get("stage_s", {}), ccp.get("stage_s", {})
        for key, stage in stage_map.items():
            bv, cv = bs.get(key, 0.0), cs.get(key, 0.0)
            if (bv or cv) and abs(cv - bv) > 0.05 * max(bv, cv):
                sev = "regression" if cv > bv else "improvement"
                findings.append({
                    "stage": stage, "op": "mixed", "severity": sev,
                    "summary": (
                        f"critical-path {key} time {bv:.3e}s -> "
                        f"{cv:.3e}s ({_pct(bv, cv):+.1f}%)"
                    ),
                })
        if bcp.get("bottleneck") != ccp.get("bottleneck"):
            findings.append({
                "stage": stage_map.get(ccp.get("bottleneck"),
                                       str(ccp.get("bottleneck"))),
                "op": "mixed", "severity": "info",
                "summary": (
                    "critical-path bottleneck moved: "
                    f"{bcp.get('bottleneck')} -> {ccp.get('bottleneck')}"
                ),
            })


def _find_counters(base: dict, cand: dict, findings: list) -> None:
    bm, cm = base.get("metrics") or {}, cand.get("metrics") or {}

    tx_b = _counter(bm, "hashtable_transactions_total") or {}
    tx_c = _counter(cm, "hashtable_transactions_total") or {}
    if tx_c and not tx_b:
        findings.append({
            "stage": "kernel/hash-table", "op": "update",
            "severity": "info",
            "summary": (
                "hashtable transaction counters appear in candidate: "
                + ", ".join(f"{k}={v}" for k, v in sorted(tx_c.items()))
            ),
        })
    elif isinstance(tx_b, dict) and isinstance(tx_c, dict):
        for k in sorted(set(tx_b) | set(tx_c)):
            bv, cv = tx_b.get(k, 0), tx_c.get(k, 0)
            if bv and cv and abs(_pct(bv, cv)) > 10:
                sev = "regression" if cv > bv else "improvement"
                findings.append({
                    "stage": "kernel/hash-table", "op": "update",
                    "severity": sev,
                    "summary": f"hashtable_transactions_total{{{k}}} "
                               f"{bv} -> {cv} ({_pct(bv, cv):+.1f}%)",
                })

    for fam, stage in (
        ("resilience_retries_total", "resilience"),
        ("resilience_degraded_batches_total", "resilience"),
    ):
        bt, ct = _counter(bm, fam), _counter(cm, fam)
        bs = sum(bt.values()) if isinstance(bt, dict) else (bt or 0)
        cs = sum(ct.values()) if isinstance(ct, dict) else (ct or 0)
        if bs != cs and (bs or cs):
            findings.append({
                "stage": stage, "op": "*",
                "severity": "regression" if cs > bs else "improvement",
                "summary": f"{fam} {bs} -> {cs}",
            })

    fb = _counter(bm, "coalescer_flushes_total") or {}
    fc = _counter(cm, "coalescer_flushes_total") or {}
    for k in sorted(set(fb) | set(fc)):
        bv, cv = fb.get(k, 0), fc.get(k, 0)
        # early forced flushes fragment batches -> queue-wait pressure
        if "drain" in k or "size-full" in k:
            continue
        if cv > bv:
            findings.append({
                "stage": "queue-wait", "op": "mixed",
                "severity": "regression",
                "summary": f"forced coalescer flushes {k} {bv} -> {cv} "
                           "(batch fragmentation)",
            })


def _find_latency(base_ops: dict, cand_ops: dict,
                  findings: list) -> None:
    b = (base_ops.get("mixed") or {}).get("latency_percentiles_by_op", {})
    c = (cand_ops.get("mixed") or {}).get("latency_percentiles_by_op", {})
    for op in sorted(set(b) & set(c)):
        bp, cp = b[op].get("p99"), c[op].get("p99")
        if bp and cp and _pct(bp, cp) > 25:
            findings.append({
                "stage": "host-dispatch", "op": op,
                "severity": "regression",
                "summary": f"mixed {op} p99 latency {bp:.2f}us -> "
                           f"{cp:.2f}us ({_pct(bp, cp):+.1f}%)",
            })


def _find_sharded(base_ops: dict, cand_ops: dict,
                  findings: list) -> None:
    b = (base_ops.get("mixed_sharded") or {}).get("devices", {})
    c = (cand_ops.get("mixed_sharded") or {}).get("devices", {})
    for nd in sorted(set(b) & set(c), key=lambda s: int(s)):
        bi, ci = b[nd].get("imbalance"), c[nd].get("imbalance")
        if bi and ci and ci > bi * 1.1 and ci > 1.05:
            findings.append({
                "stage": "shard-skew", "op": f"mixed_sharded[{nd}dev]",
                "severity": "regression",
                "summary": f"shard imbalance at {nd} devices "
                           f"{bi} -> {ci}",
            })
        bm_, cm_ = b[nd].get("mixed_makespan_s"), c[nd].get("mixed_makespan_s")
        if bm_ and cm_ and abs(_pct(bm_, cm_)) > 10:
            sev = "regression" if cm_ > bm_ else "improvement"
            findings.append({
                "stage": "device-pipeline",
                "op": f"mixed_sharded[{nd}dev]", "severity": sev,
                "summary": f"sharded mixed makespan {bm_:.3e}s -> "
                           f"{cm_:.3e}s ({_pct(bm_, cm_):+.1f}%)",
            })


def _find_flight(base_fl: dict | None, cand_fl: dict | None,
                 findings: list) -> None:
    """Flight-dump stage sums per op class (sampled device + host
    residence evidence)."""
    if not base_fl or not cand_fl:
        return
    b = (base_fl.get("summary") or base_fl).get("by_op", {})
    c = (cand_fl.get("summary") or cand_fl).get("by_op", {})
    for op in sorted(set(b) & set(c)):
        for key, stage in (
            ("queue_wait_us_sum", "queue-wait"),
            ("sim_kernel_us_sum", "kernel"),
            ("sim_h2d_us_sum", "pcie-h2d"),
            ("sim_d2h_us_sum", "pcie-d2h"),
        ):
            bn, cn = b[op].get("count", 1) or 1, c[op].get("count", 1) or 1
            bv, cv = b[op].get(key, 0.0) / bn, c[op].get(key, 0.0) / cn
            if (bv or cv) and bv and _pct(bv, cv) > 25:
                findings.append({
                    "stage": stage, "op": op, "severity": "regression",
                    "summary": (
                        f"flight records: mean {key[:-4]} per sampled "
                        f"{op} {bv:.2f}us -> {cv:.2f}us "
                        f"({_pct(bv, cv):+.1f}%)"
                    ),
                })


def diff_docs(base: dict, cand: dict, *,
              threshold: float = DEFAULT_THRESHOLD,
              base_flight: dict | None = None,
              cand_flight: dict | None = None) -> dict:
    """Full diff: per-op wall-clock table + stage attribution."""
    base_ops, cand_ops = base.get("ops", {}), cand.get("ops", {})
    rows = diff_op_table(base_ops, cand_ops, threshold)
    findings: list[dict] = []
    _find_overlap(base_ops, cand_ops, findings)
    _find_hashtable(base_ops, cand_ops, findings)
    _find_counters(base, cand, findings)
    _find_latency(base_ops, cand_ops, findings)
    _find_sharded(base_ops, cand_ops, findings)
    _find_flight(base_flight, cand_flight, findings)
    regressed = [r["op"] for r in rows if r["verdict"] == "slower"]
    return {
        "base_label": (base.get("meta") or {}).get("label", "base"),
        "cand_label": (cand.get("meta") or {}).get("label", "candidate"),
        "threshold": threshold,
        "ops": rows,
        "findings": findings,
        "regressed_ops": regressed,
    }


def render_text(doc: dict) -> str:
    out = [
        f"bench_diff: {doc['base_label']} -> {doc['cand_label']} "
        f"(threshold {doc['threshold'] * 100:.0f}%)",
        "",
        f"{'op':<22} {'base s':>10} {'cand s':>10} {'delta':>8}  verdict",
    ]
    for r in doc["ops"]:
        bw = "-" if r["base_wall_s"] is None else f"{r['base_wall_s']:.4f}"
        cw = "-" if r["cand_wall_s"] is None else f"{r['cand_wall_s']:.4f}"
        dp = "-" if r["delta_pct"] is None else f"{r['delta_pct']:+.1f}%"
        out.append(
            f"{r['op']:<22} {bw:>10} {cw:>10} {dp:>8}  {r['verdict']}"
        )
    out.append("")
    if doc["findings"]:
        out.append("stage attribution:")
        for f in doc["findings"]:
            out.append(
                f"  [{f['severity']:<11}] {f['stage']:<18} "
                f"{f['op']:<22} {f['summary']}"
            )
    else:
        out.append("stage attribution: no stage-level deltas above noise")
    return "\n".join(out)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="diff two BENCH JSONs with stage attribution"
    )
    ap.add_argument("base", help="baseline BENCH json")
    ap.add_argument("candidate", help="candidate BENCH json")
    ap.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative wall-clock change considered a verdict "
             "(default 0.05)",
    )
    ap.add_argument(
        "--flight", nargs=2, metavar=("BASE_DUMP", "CAND_DUMP"),
        help="optional flight-recorder dumps to mine for stage sums",
    )
    ap.add_argument(
        "--json", action="store_true",
        help="emit the diff document as JSON instead of text",
    )
    ap.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when any op regressed beyond the threshold",
    )
    args = ap.parse_args(argv)
    base, cand = load(args.base), load(args.candidate)
    bf = cf = None
    if args.flight:
        bf, cf = load(args.flight[0]), load(args.flight[1])
    doc = diff_docs(
        base, cand, threshold=args.threshold,
        base_flight=bf, cand_flight=cf,
    )
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(render_text(doc))
    if args.fail_on_regression and doc["regressed_ops"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
