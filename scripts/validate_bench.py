#!/usr/bin/env python
"""Validate a perf_smoke BENCH JSON file against the expected schema.

Stdlib-only, used by CI and by hand::

    python scripts/validate_bench.py BENCH_pr3.json

Checks (fails with a nonzero exit and a per-problem message):

* required top-level sections and ``meta`` fields;
* every op record carries finite ``wall_s`` / ``keys_per_sec`` / ``n``;
* the mixed op reports ``latency_percentiles_by_op`` with finite
  p50/p95/p99 per op class, plus ``flush_reasons`` and ``ops_by_status``
  (per-``OpStatus`` op counts; ``FAILED`` must be absent or zero);
* the ``metrics`` registry snapshot is present with its three sections
  and no NaN/inf leaks anywhere in the document.

With ``--baseline PREV.json`` it additionally acts as the performance
regression gate::

    python scripts/validate_bench.py BENCH_pr5.json --baseline BENCH_pr4.json

* every op's ``wall_s`` must be within ``--max-regression`` (default
  10%) of the baseline, unless the op is named in ``--allow`` (each
  exception must be justified in the PR description);
* if the baseline recorded batch-granularity ``write-dependency``
  flushes, the candidate must cut them by at least
  ``--min-dependency-drop`` (default 5x) — the key-level conflict
  tracker's contract;
* if the candidate records the high-conflict update scenario, its
  bucketed conflict table must issue at least
  ``--min-hashtable-tx-drop`` (default 4x) fewer dedup-table
  transactions than the linear layout — the bucketed probing contract.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

REQUIRED_OPS = ("populate", "lookup_uniform", "lookup_zipf", "update", "mixed")
REQUIRED_OP_KEYS = ("wall_s", "keys_per_sec", "n")
REQUIRED_META = ("label", "n_keys", "batch_size", "seed")
REQUIRED_PCT_KEYS = ("count", "mean", "p50", "p95", "p99")
REQUIRED_FLUSH_REASONS = ("size-full", "write-dependency", "drain")
KNOWN_STATUSES = ("OK", "NOT_FOUND", "RETRIED", "DEGRADED_CPU", "FAILED",
                  "SHED")
REQUIRED_SERVING_STEP_KEYS = ("qps", "offered", "shed", "shed_rate",
                              "slo_attainment", "batch_close", "deadline_us")


def _finite(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool) \
        and math.isfinite(x)


def _walk_nonfinite(node, path: str, problems: list[str]) -> None:
    if isinstance(node, dict):
        for k, v in node.items():
            _walk_nonfinite(v, f"{path}.{k}", problems)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            _walk_nonfinite(v, f"{path}[{i}]", problems)
    elif isinstance(node, float) and not math.isfinite(node):
        problems.append(f"non-finite number at {path}: {node}")


def validate(doc: dict) -> list[str]:
    """Return a list of problems (empty means the document is valid)."""
    problems: list[str] = []

    for section in ("meta", "ops", "headline"):
        if section not in doc:
            problems.append(f"missing top-level section {section!r}")
    meta = doc.get("meta", {})
    for k in REQUIRED_META:
        if k not in meta:
            problems.append(f"missing meta.{k}")

    ops = doc.get("ops", {})
    for op in REQUIRED_OPS:
        rec = ops.get(op)
        if rec is None:
            problems.append(f"missing ops.{op}")
            continue
        for k in REQUIRED_OP_KEYS:
            if not _finite(rec.get(k)):
                problems.append(f"ops.{op}.{k} missing or non-finite: "
                                f"{rec.get(k)!r}")

    mixed = ops.get("mixed", {})
    pcts = mixed.get("latency_percentiles_by_op")
    if not isinstance(pcts, dict) or not pcts:
        problems.append("ops.mixed.latency_percentiles_by_op missing/empty")
    else:
        for op, summary in pcts.items():
            for k in REQUIRED_PCT_KEYS:
                if not _finite(summary.get(k)):
                    problems.append(
                        f"ops.mixed.latency_percentiles_by_op.{op}.{k} "
                        f"missing or non-finite: {summary.get(k)!r}"
                    )
    reasons = mixed.get("flush_reasons")
    if not isinstance(reasons, dict):
        problems.append("ops.mixed.flush_reasons missing")
    else:
        for r in REQUIRED_FLUSH_REASONS:
            if not _finite(reasons.get(r)):
                problems.append(f"ops.mixed.flush_reasons[{r!r}] missing")

    by_status = mixed.get("ops_by_status")
    if not isinstance(by_status, dict) or not by_status:
        problems.append("ops.mixed.ops_by_status missing/empty")
    else:
        for name, count in by_status.items():
            if name not in KNOWN_STATUSES:
                problems.append(
                    f"ops.mixed.ops_by_status has unknown status {name!r}"
                )
            elif not _finite(count) or count < 0:
                problems.append(
                    f"ops.mixed.ops_by_status[{name!r}] non-finite: {count!r}"
                )
        if by_status.get("FAILED", 0):
            problems.append(
                f"ops.mixed.ops_by_status reports FAILED ops: "
                f"{by_status['FAILED']}"
            )
        total = sum(c for c in by_status.values() if _finite(c))
        if _finite(mixed.get("n")) and total != mixed["n"]:
            problems.append(
                f"ops.mixed.ops_by_status sums to {total}, "
                f"expected n={mixed['n']}"
            )

    # optional high-conflict scenario (PR 6+): when present it must
    # carry per-variant hash-table stats and a finite tx_ratio, but
    # older BENCH files without the op still validate
    hc = ops.get("update_high_conflict")
    if hc is not None:
        stats = hc.get("hashtable")
        if not isinstance(stats, dict):
            problems.append("ops.update_high_conflict.hashtable missing")
        else:
            if not _finite(stats.get("tx_ratio")):
                problems.append(
                    "ops.update_high_conflict.hashtable.tx_ratio "
                    f"missing or non-finite: {stats.get('tx_ratio')!r}"
                )
            for variant in ("linear", "bucketed"):
                rec = stats.get(variant)
                if not isinstance(rec, dict) or not _finite(
                    rec.get("transactions")
                ):
                    problems.append(
                        f"ops.update_high_conflict.hashtable.{variant}"
                        ".transactions missing or non-finite"
                    )

    # optional key-space-sharded scenario (PR 7+): when present it must
    # carry per-device-count simulated throughputs, the scaling ratios,
    # the in-harness lockstep marker and the rebalance record
    sh = ops.get("mixed_sharded")
    if sh is not None:
        devices = sh.get("devices")
        if not isinstance(devices, dict) or not devices:
            problems.append("ops.mixed_sharded.devices missing/empty")
        else:
            for nd, rec in devices.items():
                for k in ("mixed_sim_mops", "update_sim_mops"):
                    if not _finite(rec.get(k)):
                        problems.append(
                            f"ops.mixed_sharded.devices[{nd!r}].{k} "
                            f"missing or non-finite: {rec.get(k)!r}"
                        )
        scaling = sh.get("scaling")
        if not isinstance(scaling, dict):
            problems.append("ops.mixed_sharded.scaling missing")
        else:
            for k in ("mixed_x4", "update_x4"):
                if not _finite(scaling.get(k)):
                    problems.append(
                        f"ops.mixed_sharded.scaling.{k} missing or "
                        f"non-finite: {scaling.get(k)!r}"
                    )
        if not sh.get("lockstep", {}).get("ok"):
            problems.append(
                "ops.mixed_sharded.lockstep.ok missing or false"
            )
        reb = sh.get("rebalance")
        if not isinstance(reb, dict):
            problems.append("ops.mixed_sharded.rebalance missing")
        else:
            for k in ("recovery_vs_uniform", "imbalance_before",
                      "imbalance_after"):
                if not _finite(reb.get(k)):
                    problems.append(
                        f"ops.mixed_sharded.rebalance.{k} missing or "
                        f"non-finite: {reb.get(k)!r}"
                    )

    # optional SLO-driven serving scenario (PR 9+): when present it must
    # carry a >= 4-step open-loop QPS ramp with per-step attainment/shed
    # numbers and overall latency percentiles on the virtual clock
    sv = ops.get("serving")
    if sv is not None:
        steps = sv.get("steps")
        if not isinstance(steps, list) or len(steps) < 4:
            problems.append(
                "ops.serving.steps missing or fewer than 4 ramp steps"
            )
        else:
            for i, step in enumerate(steps):
                for k in REQUIRED_SERVING_STEP_KEYS:
                    v = step.get(k)
                    if k == "slo_attainment" and v is None:
                        continue  # a fully-shed step has no latencies
                    if not _finite(v):
                        problems.append(
                            f"ops.serving.steps[{i}].{k} missing or "
                            f"non-finite: {v!r}"
                        )
        overall = sv.get("overall")
        if not isinstance(overall, dict):
            problems.append("ops.serving.overall missing")
        else:
            for k in ("offered", "shed", "shed_rate", "slo_attainment"):
                if not _finite(overall.get(k)):
                    problems.append(
                        f"ops.serving.overall.{k} missing or non-finite: "
                        f"{overall.get(k)!r}"
                    )
            lat = overall.get("latency", {})
            for k in ("p50_us", "p95_us", "p99_us"):
                if not _finite(lat.get(k) if isinstance(lat, dict)
                               else None):
                    problems.append(
                        f"ops.serving.overall.latency.{k} missing or "
                        "non-finite"
                    )

    # optional log-structured write-absorption scenario (PR 10+): when
    # present it must carry both passes over the identical schedule,
    # finite write-latency percentiles, the absorbed-write ratio and
    # the speedup record the CI gate reads
    wb = ops.get("write_burst")
    if wb is not None:
        for variant in ("sync", "memtable"):
            rec = wb.get(variant)
            if not isinstance(rec, dict):
                problems.append(f"ops.write_burst.{variant} missing")
                continue
            for k in ("makespan_s", "write_ops_per_sec"):
                if not _finite(rec.get(k)):
                    problems.append(
                        f"ops.write_burst.{variant}.{k} missing or "
                        f"non-finite: {rec.get(k)!r}"
                    )
            lat = rec.get("write_latency", {})
            for k in ("p50_us", "p99_us"):
                if not _finite(lat.get(k) if isinstance(lat, dict)
                               else None):
                    problems.append(
                        f"ops.write_burst.{variant}.write_latency.{k} "
                        "missing or non-finite"
                    )
        mem = wb.get("memtable", {})
        if isinstance(mem, dict):
            ratio = mem.get("absorbed_write_ratio")
            if not _finite(ratio) or not 0.0 <= ratio <= 1.0:
                problems.append(
                    "ops.write_burst.memtable.absorbed_write_ratio "
                    f"missing or out of [0, 1]: {ratio!r}"
                )
            if not _finite(mem.get("compactions")):
                problems.append(
                    "ops.write_burst.memtable.compactions missing or "
                    f"non-finite: {mem.get('compactions')!r}"
                )
        speedup = wb.get("speedup")
        if not isinstance(speedup, dict) or not _finite(
            speedup.get("write_p99_drop_x")
        ):
            problems.append(
                "ops.write_burst.speedup.write_p99_drop_x missing or "
                "non-finite"
            )

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("missing top-level 'metrics' registry snapshot")
    else:
        for section in ("counters", "gauges", "histograms"):
            if section not in metrics:
                problems.append(f"missing metrics.{section}")

    _walk_nonfinite(doc, "$", problems)
    return problems


def compare(
    doc: dict,
    base: dict,
    *,
    max_regression: float = 0.10,
    min_dependency_drop: float = 5.0,
    min_hashtable_tx_drop: float = 4.0,
    min_write_scaling: float = 3.0,
    min_rebalance_recovery: float = 0.8,
    min_slo_attainment: float = 0.95,
    max_shed_rate: float = 0.05,
    min_write_absorption: float = 0.5,
    allow: tuple = (),
) -> list[str]:
    """Regression-gate a candidate run against a baseline run.

    Returns a list of problems (empty means the candidate passes): any
    op more than ``max_regression`` slower than the baseline fails
    unless allow-listed, the batch-granularity ``write-dependency``
    flush count must drop by ``min_dependency_drop``x when the baseline
    recorded any, a candidate recording the high-conflict scenario
    must show the bucketed table issuing ``min_hashtable_tx_drop``x
    fewer dedup-table transactions than linear probing, and a candidate
    recording the key-space-sharded scenario must show both the mixed
    and the pure-update simulated throughput scaling by at least
    ``min_write_scaling``x at 4 devices and the Zipf rebalance
    recovering at least ``min_rebalance_recovery`` of the
    uniform-traffic throughput.  A candidate recording the
    ``write_burst`` scenario must absorb at least
    ``min_write_absorption`` of its effective writes host-side and show
    the log-structured speedup (>=2x write throughput or >=4x
    write-p99 drop vs. the synchronous pass).
    """
    problems: list[str] = []
    ops = doc.get("ops", {})
    base_ops = base.get("ops", {})
    for op in REQUIRED_OPS:
        cur, ref = ops.get(op, {}), base_ops.get(op, {})
        if not (_finite(cur.get("wall_s")) and _finite(ref.get("wall_s"))):
            continue  # schema problems are validate()'s job
        limit = ref["wall_s"] * (1.0 + max_regression)
        if cur["wall_s"] > limit:
            slower = cur["wall_s"] / ref["wall_s"] - 1.0
            if op in allow:
                print(f"  (allowed) ops.{op} {slower:+.1%} vs baseline")
            else:
                problems.append(
                    f"ops.{op}.wall_s regressed {slower:+.1%} "
                    f"({cur['wall_s']:.6f}s vs baseline "
                    f"{ref['wall_s']:.6f}s, limit {max_regression:.0%})"
                )
    base_dep = (base_ops.get("mixed", {}).get("flush_reasons", {})
                .get("write-dependency", 0))
    cur_dep = (ops.get("mixed", {}).get("flush_reasons", {})
               .get("write-dependency", 0))
    if _finite(base_dep) and base_dep > 0:
        if not _finite(cur_dep) or cur_dep * min_dependency_drop > base_dep:
            problems.append(
                f"write-dependency flushes did not drop "
                f">={min_dependency_drop:g}x: {base_dep} -> {cur_dep!r}"
            )
    hc = ops.get("update_high_conflict", {})
    ratio = hc.get("hashtable", {}).get("tx_ratio") \
        if isinstance(hc.get("hashtable"), dict) else None
    if hc and (not _finite(ratio) or ratio < min_hashtable_tx_drop):
        problems.append(
            f"bucketed dedup-table transactions did not drop "
            f">={min_hashtable_tx_drop:g}x vs linear probing: "
            f"tx_ratio={ratio!r}"
        )
    sh = ops.get("mixed_sharded", {})
    if sh:
        scaling = sh.get("scaling", {}) \
            if isinstance(sh.get("scaling"), dict) else {}
        for k in ("mixed_x4", "update_x4"):
            v = scaling.get(k)
            if not _finite(v) or v < min_write_scaling:
                problems.append(
                    f"sharded {k} scaling below "
                    f">={min_write_scaling:g}x gate: {v!r}"
                )
        reb = sh.get("rebalance", {}) \
            if isinstance(sh.get("rebalance"), dict) else {}
        rec = reb.get("recovery_vs_uniform")
        if not _finite(rec) or rec < min_rebalance_recovery:
            problems.append(
                f"zipf rebalance recovered {rec!r} of uniform-shard "
                f"throughput (gate: >={min_rebalance_recovery:g})"
            )
    sv = ops.get("serving", {})
    if sv:
        overall = sv.get("overall", {}) \
            if isinstance(sv.get("overall"), dict) else {}
        attain = overall.get("slo_attainment")
        if not _finite(attain) or attain < min_slo_attainment:
            problems.append(
                f"serving SLO attainment {attain!r} below the "
                f">={min_slo_attainment:g} gate across the QPS ramp"
            )
        shed = overall.get("shed_rate")
        if not _finite(shed) or shed > max_shed_rate:
            problems.append(
                f"serving shed rate {shed!r} above the "
                f"<={max_shed_rate:g} bound"
            )
    wb = ops.get("write_burst", {})
    if wb:
        mem = wb.get("memtable", {}) \
            if isinstance(wb.get("memtable"), dict) else {}
        ratio = mem.get("absorbed_write_ratio")
        if not _finite(ratio) or ratio < min_write_absorption:
            problems.append(
                f"write_burst absorbed-write ratio {ratio!r} below the "
                f">={min_write_absorption:g} gate"
            )
        speedup = wb.get("speedup", {}) \
            if isinstance(wb.get("speedup"), dict) else {}
        tput_x = speedup.get("write_tput_x")
        p99_drop = speedup.get("write_p99_drop_x")
        if not ((_finite(tput_x) and tput_x >= 2.0)
                or (_finite(p99_drop) and p99_drop >= 4.0)):
            problems.append(
                f"write_burst speedup below the acceptance bar "
                f"(needs >=2x write throughput or >=4x write-p99 drop): "
                f"write_tput_x={tput_x!r} write_p99_drop_x={p99_drop!r}"
            )
    return problems


def _print_attribution(base: dict, doc: dict) -> None:
    """Best-effort stage attribution of a failed baseline gate via
    bench_diff (loaded from this script's directory, since the test
    suite imports this file by path rather than as a package)."""
    try:
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "bench_diff",
            pathlib.Path(__file__).resolve().parent / "bench_diff.py",
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        print(mod.render_text(mod.diff_docs(base, doc)), file=sys.stderr)
    except Exception as exc:  # pragma: no cover - triage is best-effort
        print(f"(bench_diff attribution unavailable: {exc})",
              file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("bench", help="candidate BENCH JSON to validate")
    ap.add_argument("--baseline", default=None, metavar="PREV.json",
                    help="previous run to regression-gate against")
    ap.add_argument("--max-regression", type=float, default=0.10,
                    help="max allowed per-op wall_s slowdown fraction "
                         "(default 0.10 = 10%%)")
    ap.add_argument("--min-dependency-drop", type=float, default=5.0,
                    help="required write-dependency flush reduction "
                         "factor vs the baseline (default 5)")
    ap.add_argument("--min-hashtable-tx-drop", type=float, default=4.0,
                    help="required bucketed-vs-linear dedup-table "
                         "transaction reduction factor in the "
                         "high-conflict scenario (default 4)")
    ap.add_argument("--min-write-scaling", type=float, default=3.0,
                    help="required simulated mixed/update throughput "
                         "scaling factor at 4 devices in the sharded "
                         "scenario (default 3)")
    ap.add_argument("--min-rebalance-recovery", type=float, default=0.8,
                    help="required fraction of uniform-shard throughput "
                         "recovered after the Zipf rebalance "
                         "(default 0.8)")
    ap.add_argument("--min-slo-attainment", type=float, default=0.95,
                    help="required overall p99-SLO attainment of the "
                         "serving scenario's QPS ramp (default 0.95)")
    ap.add_argument("--max-shed-rate", type=float, default=0.05,
                    help="max allowed overall shed fraction in the "
                         "serving scenario (default 0.05)")
    ap.add_argument("--min-write-absorption", type=float, default=0.5,
                    help="required absorbed-write ratio in the "
                         "write_burst scenario's memtable pass "
                         "(default 0.5)")
    ap.add_argument("--allow", action="append", default=[], metavar="OP",
                    help="op name exempt from the wall_s gate "
                         "(repeatable; justify each in the PR)")
    args = ap.parse_args(argv)

    def _load(path: str) -> dict | None:
        try:
            with open(path) as fh:
                # json.load accepts NaN/Infinity literals; keep them as
                # floats so _walk_nonfinite reports them instead of a
                # parse error
                return json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            return None

    doc = _load(args.bench)
    if doc is None:
        return 1
    problems = validate(doc)
    base = None
    if args.baseline and not problems:
        base = _load(args.baseline)
        if base is None:
            return 1
        problems = compare(
            doc, base,
            max_regression=args.max_regression,
            min_dependency_drop=args.min_dependency_drop,
            min_hashtable_tx_drop=args.min_hashtable_tx_drop,
            min_write_scaling=args.min_write_scaling,
            min_rebalance_recovery=args.min_rebalance_recovery,
            min_slo_attainment=args.min_slo_attainment,
            max_shed_rate=args.max_shed_rate,
            min_write_absorption=args.min_write_absorption,
            allow=tuple(args.allow),
        )
    if problems:
        for p in problems:
            print(f"{args.bench}: {p}", file=sys.stderr)
        if base is not None:
            # a failed baseline gate prints the bench_diff stage
            # attribution so CI says *which stage* ate the time, not
            # just that an op got slower; triage must never mask the
            # gate, so any attribution failure is swallowed
            _print_attribution(base, doc)
        print(f"{args.bench}: INVALID ({len(problems)} problem(s))",
              file=sys.stderr)
        return 1
    print(f"{args.bench}: ok"
          + (f" (no regression vs {args.baseline})" if args.baseline else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
