"""Figure 16 — update throughput vs key length per tree size."""

import numpy as np
import pytest

from repro.bench.figures import fig16
from repro.bench.runner import get_cuart, get_tree
from repro.cuart.update import UpdateEngine
from repro.util.keys import keys_to_matrix
from repro.util.rng import make_rng

BATCH = 2048


def test_fig16_series(benchmark, scale):
    result = benchmark.pedantic(fig16, args=(scale,), rounds=1, iterations=1)
    print()
    print(result)
    assert result.all_checks_pass


@pytest.mark.parametrize("key_len", [8, 32])
def test_fig16_measured_by_key_length(benchmark, key_len):
    n = 65536
    bundle = get_tree("random", n, key_len)
    layout, table = get_cuart("random", n, key_len)
    rng = make_rng(16)
    idx = rng.integers(0, bundle.n, size=BATCH)
    mat, lens = keys_to_matrix([bundle.keys[i] for i in idx], width=key_len)
    values = rng.integers(0, 2**62, size=BATCH).astype(np.uint64)
    engine = UpdateEngine(layout, root_table=table, hash_slots=1 << 16)

    res = benchmark(engine.apply, mat, lens, values)
    assert res.found.all()
