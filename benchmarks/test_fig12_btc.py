"""Figure 12 — throughput on the BTC(-like) dataset (server, A100)."""

import pytest

from repro.bench.figures import fig12
from repro.bench.runner import get_cuart, get_tree
from repro.cuart.lookup import lookup_batch
from repro.util.keys import keys_to_matrix
from repro.util.rng import make_rng

N = 63078  # 15.4M / 256
BATCH = 16384


def test_fig12_series(benchmark, scale):
    result = benchmark.pedantic(fig12, args=(scale,), rounds=1, iterations=1)
    print()
    print(result)
    assert result.all_checks_pass


@pytest.mark.parametrize("kind", ["random", "btc"])
def test_fig12_measured_datasets(benchmark, kind):
    bundle = get_tree(kind, N, 32)
    layout, table = get_cuart(kind, N, 32)
    rng = make_rng(12)
    idx = rng.integers(0, bundle.n, size=BATCH)
    mat, lens = keys_to_matrix([bundle.keys[i] for i in idx], width=32)
    res = benchmark(lookup_batch, layout, mat, lens, root_table=table)
    assert res.hits.all()
