"""Figure 9 — lookup throughput vs host threads (server, A100)."""

from repro.bench.figures import fig09
from repro.bench.runner import Scale, cuart_lookup_log
from repro.gpusim.cost_model import CostModel
from repro.gpusim.devices import A100, SERVER_CPU
from repro.host.dispatcher import DispatchConfig, pipeline_throughput

N = 106496


def test_fig09_series(benchmark, scale):
    result = benchmark.pedantic(fig09, args=(scale,), rounds=1, iterations=1)
    print()
    print(result)
    assert result.all_checks_pass


def test_fig09_measured_pipeline_model(benchmark):
    """Pipeline-model evaluation cost across the thread sweep (the model
    itself must be cheap enough to sweep widely)."""
    log = cuart_lookup_log("random", N, 32, 32768)
    timing = CostModel(A100, l2_scale=1 / 256).kernel_time(log)

    def sweep():
        return [
            pipeline_throughput(
                timing, DispatchConfig(host_threads=t), A100, SERVER_CPU
            ).throughput_mops
            for t in (1, 2, 4, 8, 12, 16, 24, 32)
        ]

    rates = benchmark(sweep)
    assert rates == sorted(rates)
