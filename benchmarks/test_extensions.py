"""Benches for the §5.1 future-work extensions implemented here:
device-side structural inserts and out-of-core hot/cold partitioning.

Not paper figures — the paper leaves these as future work; the benches
quantify what the extensions buy (insert throughput without re-maps,
device-hit rate after adaptive migration).
"""

import numpy as np
import pytest

from repro.bench.report import format_table
from repro.cuart.insert import InsertEngine
from repro.cuart.layout import CuartLayout
from repro.cuart.partition import PartitionedIndex
from repro.gpusim.cost_model import CostModel
from repro.gpusim.devices import RTX3090
from repro.util.keys import keys_to_matrix
from repro.util.rng import make_rng
from repro.workloads import build_tree, random_keys, zipf_indices

CM = CostModel(RTX3090, l2_scale=1 / 256)


def test_ext_device_insert_vs_remap(benchmark):
    """Device-side inserts amortize against the full re-map they avoid."""
    base = random_keys(32768, 8, seed=81)
    extra = [k for k in random_keys(3000, 8, seed=82) if k not in set(base)]
    tree = build_tree(base)
    layout = CuartLayout(tree, spare=0.3)
    mat, lens = keys_to_matrix(extra, width=8)
    vals = np.arange(len(extra)).astype(np.uint64)

    def run():
        eng = InsertEngine(layout, hash_slots=1 << 13)
        return eng.apply(mat, lens, vals)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    kernel_s = CM.kernel_time(res.log).total_s
    rows = [
        ("device-inserted", res.n_inserted),
        ("deferred to host", res.n_deferred),
        ("nodes grown", res.grown_nodes),
        ("sim kernel us", round(kernel_s * 1e6, 1)),
        ("sim MOps/s", round(len(extra) / kernel_s / 1e6, 1)),
    ]
    print()
    print(format_table(["metric", "value"], rows))
    assert res.n_inserted > 0.8 * len(extra)  # most land without a re-map


@pytest.mark.parametrize("budget_kib", [64, 256, 1024])
def test_ext_out_of_core_budget_sweep(benchmark, budget_kib):
    """Device-hit rate after adaptation, as the device budget grows."""
    keys = random_keys(16384, 8, seed=83)

    def run():
        idx = PartitionedIndex(device_budget_bytes=budget_kib * 1024)
        idx.populate((k, i) for i, k in enumerate(keys))
        rng = make_rng(84)
        hot = sorted(keys)[: len(keys) // 4]
        workload = [hot[i] for i in zipf_indices(len(hot), 4000, a=1.3, seed=rng)]
        idx.lookup(workload)
        idx.rebalance()
        idx.device_queries = idx.host_queries = 0
        idx.lookup(workload)
        return idx

    idx = benchmark.pedantic(run, rounds=1, iterations=1)
    total = idx.device_queries + idx.host_queries
    hit = idx.device_queries / total
    st = idx.stats()
    print(
        f"\nbudget {budget_kib:5d} KiB: device-hit {100 * hit:5.1f}%  "
        f"hot partitions {st.hot_partitions:3d}  "
        f"device {st.device_bytes // 1024} KiB"
    )
    assert st.device_bytes <= st.budget_bytes
    if budget_kib >= 1024:
        assert hit > 0.95  # ample budget: the hot zone fits after rebalance
