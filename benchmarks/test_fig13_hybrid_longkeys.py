"""Figure 13 — hybrid CPU/GPU query split with long keys on the CPU."""

from repro.bench.figures import fig13
from repro.bench.runner import get_tree
from repro.host.hybrid import split_queries
from repro.util.rng import make_rng


def test_fig13_series(benchmark, scale):
    result = benchmark.pedantic(fig13, args=(scale,), rounds=1, iterations=1)
    print()
    print(result)
    assert result.all_checks_pass


def test_fig13_measured_query_split(benchmark):
    """The host-side splitter itself (runs on every batch in the hybrid
    path, so it must be cheap)."""
    bundle = get_tree("mixed:5", 32768, 16)
    rng = make_rng(13)
    idx = rng.integers(0, bundle.n, size=32768)
    queries = [bundle.keys[i] for i in idx]

    (short, _), (long_, _) = benchmark(split_queries, queries, 32)
    assert len(short) + len(long_) == 32768
    assert all(len(k) > 32 for k in long_)
