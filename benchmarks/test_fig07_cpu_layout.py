"""Figure 7 — CPU lookup throughput: classic ART vs the CuART layout.

Series: modeled MOps/s over (tree size × key length); measured: wall
clock of a real lookup batch through the pointer tree vs the flat-layout
kernel on this machine's CPU (same comparison, honest timings).
"""

import numpy as np
import pytest

from repro.bench.figures import fig07
from repro.bench.runner import get_cuart, get_tree
from repro.cuart.cpu_lookup import cpu_lookup_flat
from repro.util.keys import keys_to_matrix
from repro.util.rng import make_rng

N = 65536
KEY_LEN = 16
BATCH = 4096


def _batch():
    bundle = get_tree("random", N, KEY_LEN)
    rng = make_rng(3)
    idx = rng.integers(0, bundle.n, size=BATCH)
    keys = [bundle.keys[i] for i in idx]
    return bundle, keys, keys_to_matrix(keys, width=KEY_LEN)


def test_fig07_series(benchmark, scale):
    result = benchmark.pedantic(fig07, args=(scale,), rounds=1, iterations=1)
    print()
    print(result)
    assert result.all_checks_pass


def test_fig07_measured_pointer_art(benchmark):
    """Classic pointer-chasing ART lookups (the figure's baseline)."""
    bundle, keys, _ = _batch()
    tree = bundle.tree

    def run():
        hits = 0
        for k in keys:
            if tree.search(k) is not None:
                hits += 1
        return hits

    hits = benchmark(run)
    assert hits == BATCH


def test_fig07_measured_flat_layout(benchmark):
    """The same lookups through the CuART flat buffers on the CPU."""
    _, keys, (mat, lens) = _batch()
    layout, _ = get_cuart("random", N, KEY_LEN, root_k=None)

    res = benchmark(cpu_lookup_flat, layout, mat, lens)
    assert res.hits.all()
