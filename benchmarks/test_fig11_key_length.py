"""Figure 11 — lookup throughput vs key length (server, A100)."""

import pytest

from repro.bench.figures import fig11
from repro.bench.runner import get_cuart, get_tree
from repro.cuart.lookup import lookup_batch
from repro.util.keys import keys_to_matrix
from repro.util.rng import make_rng

N = 106496
BATCH = 16384


def test_fig11_series(benchmark, scale):
    result = benchmark.pedantic(fig11, args=(scale,), rounds=1, iterations=1)
    print()
    print(result)
    assert result.all_checks_pass


@pytest.mark.parametrize("key_len", [4, 16, 32])
def test_fig11_measured_by_key_length(benchmark, key_len):
    bundle = get_tree("random", N, key_len)
    layout, table = get_cuart("random", N, key_len)
    rng = make_rng(11)
    idx = rng.integers(0, bundle.n, size=BATCH)
    mat, lens = keys_to_matrix([bundle.keys[i] for i in idx], width=key_len)
    res = benchmark(lookup_batch, layout, mat, lens, root_table=table)
    assert res.hits.all()
