"""Figure 8 — lookup throughput vs batch size (server, A100)."""

import pytest

from repro.bench.figures import fig08
from repro.bench.runner import get_cuart, get_tree
from repro.cuart.lookup import lookup_batch
from repro.util.keys import keys_to_matrix
from repro.util.rng import make_rng

N = 106496  # 26Mi / 256


def test_fig08_series(benchmark, scale):
    result = benchmark.pedantic(fig08, args=(scale,), rounds=1, iterations=1)
    print()
    print(result)
    assert result.all_checks_pass


@pytest.mark.parametrize("batch", [2048, 32768])
def test_fig08_measured_kernel_batches(benchmark, batch):
    """Real kernel wall time at the sweep's edge batch sizes."""
    bundle = get_tree("random", N, 32)
    layout, table = get_cuart("random", N, 32)
    rng = make_rng(8)
    idx = rng.integers(0, bundle.n, size=batch)
    mat, lens = keys_to_matrix([bundle.keys[i] for i in idx], width=32)

    res = benchmark(lookup_batch, layout, mat, lens, root_table=table)
    assert res.hits.all()
