"""Benchmark-suite configuration.

Every figure of the paper's evaluation (7-18) has one module here.  Each
module contains

* ``test_figXX_series`` — regenerates the figure's data series through
  the simulated devices (printed to stdout; shape checks asserted), and
* measured micro-benchmarks of the real kernel hot paths involved.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run figure reproductions at the paper's full tree sizes "
        "(hours of runtime) instead of the default 1/256 scale",
    )


@pytest.fixture(scope="session")
def scale(request):
    from repro.bench.runner import Scale

    if request.config.getoption("--paper-scale"):
        return Scale(factor=1)
    return Scale()


@pytest.fixture(scope="session")
def figure_output():
    """Collects rendered figures; printed at session end by tee'ing."""
    return []
