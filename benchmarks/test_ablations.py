"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these isolate each CuART optimization so its
individual contribution is visible:

* packed per-type buffers (CuART) vs single packed buffer (GRT),
* compacted root table depth (none / 1 / 2 / 3 bytes),
* split 8/16/32 leaves vs the initial single 32-byte leaf,
* update hash-table sizing (collision pressure).
"""

import numpy as np
import pytest

from repro.bench.report import format_table
from repro.bench.runner import (
    cuart_lookup_log,
    cuart_update_run,
    get_cuart,
    get_tree,
    grt_lookup_log,
)
from repro.gpusim.cost_model import CostModel
from repro.gpusim.devices import RTX3090

N = 65536
BATCH = 16384
CM = CostModel(RTX3090, l2_scale=1 / 256)


def _mops(log, batch=BATCH):
    return batch / CM.kernel_time(log).total_s / 1e6


def test_ablation_buffer_split(benchmark):
    """Per-type buffers vs the single packed buffer, same tree."""

    def run():
        cu = cuart_lookup_log("random", N, 32, BATCH, root_k=None)
        gr = grt_lookup_log("random", N, 32, BATCH)
        return cu, gr

    cu, gr = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("CuART (split buffers)", cu.total_transactions / BATCH,
         cu.dependent_rounds, _mops(cu)),
        ("GRT (single buffer)", gr.total_transactions / BATCH,
         gr.dependent_rounds, _mops(gr)),
    ]
    print()
    print(format_table(["layout", "tx/query", "rounds", "sim MOps/s"], rows))
    # the split removes the header->body dependency: about half the rounds
    assert gr.dependent_rounds >= 1.8 * cu.dependent_rounds
    assert _mops(cu) > _mops(gr)


def test_ablation_root_table_depth(benchmark):
    """Compacted upper layers: deeper tables trade memory for rounds."""

    def run():
        out = []
        for k in (None, 1, 2, 3):
            log = cuart_lookup_log("random", N, 32, BATCH, root_k=k)
            _, table = get_cuart("random", N, 32, k)
            out.append((k, log, table.nbytes if table else 0))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (str(k), log.dependent_rounds, round(nbytes / 1024), _mops(log))
        for k, log, nbytes in results
    ]
    print()
    print(format_table(["table depth", "rounds", "table KiB", "sim MOps/s"], rows))
    no_table = results[0][1]
    deepest = results[-1][1]
    assert deepest.dependent_rounds <= no_table.dependent_rounds
    # memory cost grows 256x per level
    assert results[-1][2] == 256 * results[-2][2]


def test_ablation_leaf_split(benchmark):
    """8/16/32 leaf buffers vs the initial single 32-byte leaf, for
    short (8-byte) keys: the split avoids wasted leaf bandwidth."""

    def run():
        split = cuart_lookup_log("random", N, 8, BATCH, root_k=None)
        fixed = cuart_lookup_log(
            "random", N, 8, BATCH, root_k=None, single_leaf=32
        )
        return split, fixed

    split, fixed = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["leaves", "bytes/query", "sim MOps/s"],
            [
                ("split 8/16/32", split.total_bytes / BATCH, _mops(split)),
                ("fixed 32B", fixed.total_bytes / BATCH, _mops(fixed)),
            ],
        )
    )
    assert split.total_bytes < fixed.total_bytes


@pytest.mark.parametrize("slots_pow", [12, 14, 16])
def test_ablation_hash_table_size(benchmark, slots_pow):
    """Figure-15 mechanism isolated: same update batch, varying table."""
    slots = 1 << slots_pow
    res = benchmark.pedantic(
        cuart_update_run, args=("random", N, 16, 3072, slots),
        rounds=1, iterations=1,
    )
    print(
        f"\nslots=2^{slots_pow}: load={res.load_factor:.3f} "
        f"probes/op={res.total_probes / 3072:.2f} max_probe={res.max_probe}"
    )
    assert res.writes > 0
    if slots_pow >= 16:
        assert res.total_probes / 3072 < 1.2  # roomy table: no clustering


def test_ablation_range_query_transfer(benchmark):
    """Section 3.2.1's range claim isolated: CuART ships index pairs over
    ordered leaf arrays; GRT decodes interleaved records along the
    in-order buffer."""
    from repro.cuart.range_query import range_query
    from repro.grt.range import grt_range_query

    bundle = get_tree("random", N, 8)
    layout, _ = get_cuart("random", N, 8, root_k=None)
    from repro.bench.runner import get_grt

    grt = get_grt("random", N, 8)
    ordered = sorted(bundle.keys)
    lo, hi = ordered[1000], ordered[3000]

    def run():
        return range_query(layout, lo, hi), grt_range_query(grt, lo, hi)

    cu, gr = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cu.keys == gr.keys
    rows = [
        ("CuART (index pairs)", cu.log.total_transactions, _mops(cu.log, len(cu))),
        ("GRT (buffer scan)", gr.log.total_transactions, _mops(gr.log, len(gr))),
    ]
    print()
    print(format_table(["range impl", "transactions", "sim MOps/s"], rows))
    assert cu.log.total_transactions < gr.log.total_transactions


@pytest.mark.parametrize("window", [4, 15, 31])
def test_ablation_prefix_window(benchmark, window):
    """The freed-type-byte design decision isolated: smaller stored
    windows shrink node records (fewer atoms per read) but deep-prefix
    workloads (BTC-like IRIs) then skip optimistically and defer more
    restructuring to the host; 15 (the paper's choice) covers typical
    namespaces."""
    from repro.cuart.layout import CuartLayout
    from repro.cuart.lookup import lookup_batch
    from repro.util.keys import keys_to_matrix
    from repro.util.rng import make_rng

    bundle = get_tree("btc", 16384, 32)

    def run():
        layout = CuartLayout(bundle.tree, prefix_window=window)
        rng = make_rng(42)
        idx = rng.integers(0, bundle.n, size=8192)
        mat, lens = keys_to_matrix([bundle.keys[i] for i in idx], width=32)
        return layout, lookup_batch(layout, mat, lens)

    layout, res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.hits.all()
    print(
        f"\nwindow {window:2d}: node bytes/query "
        f"{res.log.total_bytes / 8192:7.1f}  device "
        f"{layout.device_bytes() // 1024} KiB  sim MOps/s "
        f"{_mops(res.log, 8192):.1f}"
    )
