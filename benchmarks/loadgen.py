"""Open-loop load generator for the async serving front-end.

Drives :class:`~repro.serve.core.ServerCore` with Poisson or bursty
arrivals on a :class:`~repro.serve.core.VirtualClock` — *open loop*:
arrival times come from the offered-rate schedule alone, never from
completions, so queueing delay under overload is measured instead of
hidden (closed-loop generators throttle themselves and lie about tail
latency).  Time is entirely simulated — a million-QPS ramp runs in
seconds of wall clock and is bit-reproducible at a fixed seed.

The run walks a QPS ramp (>= 4 steps by default); each step reports
offered/completed/shed counts, exact p50/p95/p99 of the per-op
enqueue-to-completion latency, SLO attainment (fraction of admitted
ops finishing within ``--slo-us``) and the live batch-close knobs, so a
retuning SLO controller is visible step by step.  The flight recorder
shares the virtual clock (``FlightRecorder(clock=vclock.now_ns)``), so
its queue-wait attribution is exact in simulated microseconds.

Usage::

    PYTHONPATH=src python benchmarks/loadgen.py --out serving.json \\
        --qps-ramp 50000,100000,200000,400000 --ops-per-step 4096 \\
        --slo-us 1000 --flight-dump flight_serving.json
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.host.engine import CuartEngine
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.serve import ServerCore, VirtualClock
from repro.workloads.queries import QueryMix
from repro.workloads.synthetic import random_keys

N_KEYS = 65536
KEY_LEN = 12
SEED = 7
BURST_SIZE = 64  # ops per on-period of the bursty arrival pattern

DEFAULT_RAMP = (50_000, 100_000, 200_000, 400_000)


def arrival_gaps_us(pattern: str, qps: float, n: int, rng) -> np.ndarray:
    """Inter-arrival gaps (µs) at mean rate ``qps``.

    ``poisson`` draws exponential gaps; ``bursty`` sends back-to-back
    bursts of :data:`BURST_SIZE` ops separated by idle gaps sized to
    keep the same mean rate — the adversarial case for a deadline-based
    batch close (a burst fills a batch instantly, then the tail op of a
    short burst waits out the full deadline).
    """
    mean_gap = 1e6 / qps
    if pattern == "poisson":
        return rng.exponential(mean_gap, size=n)
    if pattern == "bursty":
        gaps = np.zeros(n)
        # one big gap before each burst carries the whole burst's budget
        for start in range(0, n, BURST_SIZE):
            width = min(BURST_SIZE, n - start)
            gaps[start] = rng.exponential(mean_gap * width)
        return gaps
    raise ValueError(f"unknown arrival pattern {pattern!r}")


def build_core(*, slo_us, max_batch, deadline_us, queue_depth,
               retune_interval, flight_dump=None):
    """A served engine on a shared virtual clock; returns (core, clock,
    flight recorder)."""
    clock = VirtualClock()
    keys = random_keys(N_KEYS, KEY_LEN, seed=SEED)
    flight = FlightRecorder(
        capacity=16384, sample_every=16, dump_path=flight_dump,
        clock=clock.now_ns,
    )
    eng = CuartEngine(
        batch_size=8192, metrics=MetricsRegistry(), flight_recorder=flight,
    )
    eng.populate((k, i) for i, k in enumerate(keys))
    eng.map_to_device()
    core = ServerCore(
        eng,
        max_batch=max_batch,
        deadline_us=deadline_us,
        queue_depth=queue_depth,
        slo_p99_us=slo_us,
        retune_interval=retune_interval,
        clock=clock,
    )
    return core, clock, keys, flight


def _percentiles(lat: list) -> dict:
    if not lat:
        return {"count": 0}
    arr = np.asarray(lat)
    return {
        "count": int(arr.size),
        "mean_us": round(float(arr.mean()), 3),
        "p50_us": round(float(np.percentile(arr, 50)), 3),
        "p95_us": round(float(np.percentile(arr, 95)), 3),
        "p99_us": round(float(np.percentile(arr, 99)), 3),
        "max_us": round(float(arr.max()), 3),
    }


def run_step(core, clock, keys, *, qps, n_ops, pattern, mix, slo_us, rng,
             tenants=("default",)) -> dict:
    """Offer ``n_ops`` at mean rate ``qps``; returns the step record."""
    gaps = arrival_gaps_us(pattern, qps, n_ops, rng)
    op_draw = rng.random(n_ops)
    key_idx = rng.integers(0, len(keys), size=n_ops)
    tenant_idx = rng.integers(0, len(tenants), size=n_ops)

    latencies: list = []
    offered = shed = 0
    t_first = clock.now_us()
    shed_before = core.sheds
    retunes_before = core.controller.retunes if core.controller else 0

    def on_done(op):
        if not op.shed:
            latencies.append(op.latency_us)

    for i in range(n_ops):
        t_arrival = clock.now_us() + gaps[i]
        # fire every batch-close deadline due before this arrival — the
        # event loop's job, replayed deterministically in virtual time
        while True:
            due = core.next_deadline_us()
            if due is None or due > t_arrival:
                break
            clock.advance(due - clock.now_us())
            core.poll()
        clock.advance(t_arrival - clock.now_us())

        key = keys[int(key_idx[i])]
        tenant = tenants[int(tenant_idx[i])]
        p = float(op_draw[i])
        if p < mix.lookups:
            core.offer("lookup", key, tenant=tenant, on_done=on_done)
        elif p < mix.lookups + mix.updates:
            core.offer("update", (key, i), tenant=tenant, on_done=on_done)
        else:
            core.offer("delete", key, tenant=tenant, on_done=on_done)
        offered += 1

    # close out the step: let the remaining deadlines fire
    while True:
        due = core.next_deadline_us()
        if due is None:
            break
        clock.advance(max(due - clock.now_us(), 0.0))
        core.poll()

    shed = core.sheds - shed_before
    admitted = offered - shed
    pct = _percentiles(latencies)
    within = sum(1 for v in latencies if v <= slo_us)
    return {
        "qps": qps,
        "pattern": pattern,
        "offered": offered,
        "admitted": admitted,
        "shed": shed,
        "shed_rate": round(shed / offered, 4) if offered else 0.0,
        "duration_s": round((clock.now_us() - t_first) / 1e6, 6),
        "latency": pct,
        "slo_attainment": round(within / len(latencies), 4) if latencies
        else None,
        "batch_close": core.batch_close,
        "deadline_us": core.deadline_us,
        "retunes": (core.controller.retunes if core.controller else 0)
        - retunes_before,
        "_latencies": latencies,  # stripped before serialization
    }


def run_ramp(*, ramp=DEFAULT_RAMP, ops_per_step=4096, pattern="poisson",
             slo_us=1000.0, max_batch=1024, deadline_us=200.0,
             queue_depth=8192, retune_interval=512, seed=SEED,
             tenants=("default",), flight_dump=None) -> dict:
    """The whole scenario: one server, one ramp, per-step + overall
    stats.  This is also the BENCH ``serving`` record."""
    core, clock, keys, flight = build_core(
        slo_us=slo_us, max_batch=max_batch, deadline_us=deadline_us,
        queue_depth=queue_depth, retune_interval=retune_interval,
        flight_dump=flight_dump,
    )
    rng = np.random.default_rng(seed)
    mix = QueryMix(lookups=0.8, updates=0.15, deletes=0.05)
    steps = []
    all_lat: list = []
    for qps in ramp:
        step = run_step(
            core, clock, keys, qps=qps, n_ops=ops_per_step,
            pattern=pattern, mix=mix, slo_us=slo_us, rng=rng,
            tenants=tenants,
        )
        all_lat.extend(step.pop("_latencies"))
        steps.append(step)
    core.flush()

    offered = sum(s["offered"] for s in steps)
    shed = sum(s["shed"] for s in steps)
    within = sum(1 for v in all_lat if v <= slo_us)
    overall = {
        "offered": offered,
        "shed": shed,
        "shed_rate": round(shed / offered, 4) if offered else 0.0,
        "slo_attainment": round(within / len(all_lat), 4) if all_lat
        else None,
        "latency": _percentiles(all_lat),
        "retunes": core.controller.retunes if core.controller else 0,
        "forwarded": dict(core.report.forwarded),
    }
    if flight_dump:
        flight.dump("end-of-run", {"scenario": "loadgen",
                                   "ramp": list(ramp)})
    record = {
        "meta": {
            "n_keys": N_KEYS,
            "key_len": KEY_LEN,
            "seed": seed,
            "pattern": pattern,
            "slo_us": slo_us,
            "ramp_qps": list(ramp),
            "ops_per_step": ops_per_step,
            "max_batch": max_batch,
            "deadline_us": deadline_us,
            "queue_depth": queue_depth,
            "retune_interval": retune_interval,
            "tenants": list(tenants),
        },
        "steps": steps,
        "overall": overall,
        # queue-wait attribution on the shared virtual clock: how much
        # of each op class's latency was spent waiting for batch close
        "flight": flight.summary(),
    }
    return record


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="serving.json", help="output JSON path")
    ap.add_argument("--qps-ramp", default=",".join(map(str, DEFAULT_RAMP)),
                    help="comma-separated offered-rate steps (>= 4 for the "
                         "BENCH gate)")
    ap.add_argument("--ops-per-step", type=int, default=4096)
    ap.add_argument("--pattern", choices=("poisson", "bursty"),
                    default="poisson")
    ap.add_argument("--slo-us", type=float, default=1000.0,
                    help="p99 objective driving the feedback loop and the "
                         "attainment metric")
    ap.add_argument("--max-batch", type=int, default=1024)
    ap.add_argument("--deadline-us", type=float, default=200.0)
    ap.add_argument("--queue-depth", type=int, default=8192)
    ap.add_argument("--retune-interval", type=int, default=512)
    ap.add_argument("--seed", type=int, default=SEED)
    ap.add_argument("--tenants", default="default",
                    help="comma-separated tenant names to spread ops over")
    ap.add_argument("--flight-dump", default=None, metavar="PATH",
                    help="write the flight recorder's black box (queue-wait "
                         "attribution on the virtual clock) here")
    args = ap.parse_args(argv)

    ramp = tuple(int(q) for q in args.qps_ramp.split(","))
    if len(ramp) < 2:
        ap.error("--qps-ramp needs at least two steps")
    record = run_ramp(
        ramp=ramp, ops_per_step=args.ops_per_step, pattern=args.pattern,
        slo_us=args.slo_us, max_batch=args.max_batch,
        deadline_us=args.deadline_us, queue_depth=args.queue_depth,
        retune_interval=args.retune_interval, seed=args.seed,
        tenants=tuple(args.tenants.split(",")),
        flight_dump=args.flight_dump,
    )
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    for s in record["steps"]:
        lat = s["latency"]
        print(f"  {s['qps']:>9} qps  p50={lat.get('p50_us', 0):>8} "
              f"p99={lat.get('p99_us', 0):>9} "
              f"attain={s['slo_attainment']} shed={s['shed_rate']:.2%} "
              f"batch={s['batch_close']} deadline={s['deadline_us']}us")
    ov = record["overall"]
    print(f"  overall: attainment={ov['slo_attainment']} "
          f"shed={ov['shed_rate']:.2%} retunes={ov['retunes']}")
    if args.flight_dump:
        print(f"wrote {args.flight_dump} (queue-wait attribution)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
