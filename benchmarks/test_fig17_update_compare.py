"""Figure 17 — atomic update throughput: CuART vs GRT vs CPU ART."""

import numpy as np

from repro.bench.figures import fig17
from repro.bench.runner import get_cuart, get_grt, get_tree
from repro.cuart.update import UpdateEngine
from repro.grt.update import grt_update_batch
from repro.util.keys import keys_to_matrix
from repro.util.rng import make_rng

N = 65536
BATCH = 2048


def _updates():
    bundle = get_tree("random", N, 32)
    rng = make_rng(17)
    idx = rng.integers(0, bundle.n, size=BATCH)
    mat, lens = keys_to_matrix([bundle.keys[i] for i in idx], width=32)
    values = rng.integers(0, 2**62, size=BATCH).astype(np.uint64)
    return bundle, mat, lens, values, idx


def test_fig17_series(benchmark, scale):
    result = benchmark.pedantic(fig17, args=(scale,), rounds=1, iterations=1)
    print()
    print(result)
    assert result.all_checks_pass


def test_fig17_measured_cuart_updates(benchmark):
    _, mat, lens, values, _ = _updates()
    layout, table = get_cuart("random", N, 32)
    engine = UpdateEngine(layout, root_table=table, hash_slots=1 << 16)
    res = benchmark(engine.apply, mat, lens, values)
    assert res.found.all()


def test_fig17_measured_grt_updates(benchmark):
    _, mat, lens, values, _ = _updates()
    layout = get_grt("random", N, 32)
    res = benchmark(grt_update_batch, layout, mat, lens, values)
    assert res.found.all()


def test_fig17_measured_cpu_art_updates(benchmark):
    # private tree: mutating the shared cached workload would invalidate
    # the device layouts other benchmark modules still use
    from repro.workloads import build_tree, random_keys

    keys = random_keys(8192, 32, seed=17)
    tree = build_tree(keys)
    rng = make_rng(18)
    idx = rng.integers(0, len(keys), size=BATCH)
    values = rng.integers(0, 2**62, size=BATCH)

    def run():
        for i, v in zip(idx, values):
            tree.insert(keys[i], int(v))

    benchmark(run)
