"""Figure 10 — lookup throughput vs tree size (workstation, RTX3090)."""

import pytest

from repro.bench.figures import fig10
from repro.bench.runner import get_cuart, get_grt, get_tree
from repro.cuart.lookup import lookup_batch
from repro.grt.kernel import grt_lookup_batch
from repro.util.keys import keys_to_matrix
from repro.util.rng import make_rng

BATCH = 16384


def test_fig10_series(benchmark, scale):
    result = benchmark.pedantic(fig10, args=(scale,), rounds=1, iterations=1)
    print()
    print(result)
    assert result.all_checks_pass


@pytest.mark.parametrize("n", [4096, 262144])
def test_fig10_measured_cuart_by_size(benchmark, n):
    bundle = get_tree("random", n, 32)
    layout, table = get_cuart("random", n, 32)
    rng = make_rng(10)
    idx = rng.integers(0, bundle.n, size=BATCH)
    mat, lens = keys_to_matrix([bundle.keys[i] for i in idx], width=32)
    res = benchmark(lookup_batch, layout, mat, lens, root_table=table)
    assert res.hits.all()


def test_fig10_measured_grt_large_tree(benchmark):
    n = 262144
    bundle = get_tree("random", n, 32)
    layout = get_grt("random", n, 32)
    rng = make_rng(10)
    idx = rng.integers(0, bundle.n, size=BATCH)
    mat, lens = keys_to_matrix([bundle.keys[i] for i in idx], width=32)
    res = benchmark(grt_lookup_batch, layout, mat, lens)
    assert res.hits.all()
