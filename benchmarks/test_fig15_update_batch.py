"""Figure 15 — update throughput vs batch size (hash-table collisions)."""

import numpy as np
import pytest

from repro.bench.figures import fig15
from repro.bench.runner import get_cuart, get_tree
from repro.cuart.update import UpdateEngine
from repro.util.keys import keys_to_matrix
from repro.util.rng import make_rng

N = 65536


def test_fig15_series(benchmark, scale):
    result = benchmark.pedantic(fig15, args=(scale,), rounds=1, iterations=1)
    print()
    print(result)
    assert result.all_checks_pass


@pytest.mark.parametrize("batch", [512, 3072])
def test_fig15_measured_update_batches(benchmark, batch):
    """Real update-engine wall time at low vs high hash-table load."""
    bundle = get_tree("random", N, 16)
    layout, table = get_cuart("random", N, 16)
    rng = make_rng(15)
    idx = rng.integers(0, bundle.n, size=batch)
    mat, lens = keys_to_matrix([bundle.keys[i] for i in idx], width=16)
    values = rng.integers(0, 2**62, size=batch).astype(np.uint64)
    engine = UpdateEngine(layout, root_table=table, hash_slots=4096)

    res = benchmark(engine.apply, mat, lens, values)
    assert res.found.all()
