"""Figure 18 — lookup/update throughput across GPUs (GDDR vs HBM)."""

from repro.bench.figures import fig18
from repro.bench.runner import cuart_lookup_log
from repro.gpusim.cost_model import CostModel
from repro.gpusim.devices import DEVICES

N = 65536


def test_fig18_series(benchmark, scale):
    result = benchmark.pedantic(fig18, args=(scale,), rounds=1, iterations=1)
    print()
    print(result)
    assert result.all_checks_pass


def test_fig18_measured_cost_model_eval(benchmark):
    """Evaluating one log against all three devices (model hot path)."""
    log = cuart_lookup_log("random", N, 32, 32768)

    def evaluate():
        return {
            name: CostModel(dev, l2_scale=1 / 256).kernel_time(log).total_s
            for name, dev in DEVICES.items()
        }

    times = benchmark(evaluate)
    assert times["rtx3090"] < times["a100"] < times["gtx1070"]
