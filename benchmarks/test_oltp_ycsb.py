"""OLTP benches: YCSB-profile streams through the CuART engine.

Section 3.1's motivating scenario ("mixed read/write workloads such as
typical OLTP benchmarks") quantified: per-profile simulated rates of the
batched device path plus the measured wall time of the full executor.
"""

import pytest

from repro.bench.report import format_table
from repro.host.engine import CuartEngine
from repro.host.mixed import MixedWorkloadExecutor
from repro.workloads.ycsb import ycsb_keyspace, ycsb_stream

N_RECORDS = 20_000
N_OPS = 4_000


def fresh_engine():
    eng = CuartEngine(batch_size=1024, spare=0.5, root_table_depth=2)
    eng.populate((k, i) for i, k in enumerate(ycsb_keyspace(N_RECORDS)))
    eng.map_to_device()
    return eng


@pytest.mark.parametrize("profile", ["A", "B", "C", "F"])
def test_ycsb_profile(benchmark, profile):
    stream = ycsb_stream(profile, N_RECORDS, N_OPS, seed=2026)

    def run():
        eng = fresh_engine()
        return MixedWorkloadExecutor(eng).run(stream)

    _, report = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(k, round(v, 1)) for k, v in sorted(report.simulated_mops.items())]
    print(f"\nYCSB-{profile}: {report.operations} ops "
          f"({report.lookups} r / {report.updates} u)")
    print(format_table(["op", "sim MOps/s"], rows))
    assert report.operations == len(stream)
    assert report.misses == 0


def test_ycsb_e_scans(benchmark):
    stream = ycsb_stream("E", N_RECORDS, 600, seed=2027)

    def run():
        eng = fresh_engine()
        return MixedWorkloadExecutor(eng).run(stream)

    _, report = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nYCSB-E: {report.scans} scans touched "
          f"{report.records_scanned} records, "
          f"{report.inserts} inserts ({report.inserts_deferred} deferred)")
    assert report.records_scanned > 0
