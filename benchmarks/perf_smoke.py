"""Serving-path performance smoke harness (host wall-clock, not simulated).

Times the real Python/NumPy host pipeline end to end at a fixed seed and
scale — populate + map ("build the servable index"), uniform and
Zipf-skewed lookup serving, batched updates, and a mixed OLTP stream —
and writes one JSON file per run (see EXPERIMENTS.md for the schema).
Pass a previous run with ``--baseline`` to get speedup factors; the
committed ``BENCH_seed.json`` / ``BENCH_pr1.json`` pair is the
regression reference for the vectorized serving path.

The harness deliberately sticks to the oldest engine API surface
(``--baseline`` runs execute this same file against older checkouts), so
newer engine features are feature-detected, never required.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py --out BENCH_pr1.json \
        --baseline BENCH_seed.json --scale 64
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

from repro.host.engine import CuartEngine
from repro.host.mixed import MixedWorkloadExecutor
from repro.workloads.distributions import uniform_indices, zipf_indices
from repro.workloads.queries import QueryMix, mixed_queries
from repro.workloads.synthetic import random_keys

try:  # observability layer (PR 3); absent on older checkouts
    from repro.obs import MetricsRegistry, Tracer, write_chrome_trace
except ImportError:  # pragma: no cover - baseline-checkout compatibility
    MetricsRegistry = Tracer = write_chrome_trace = None

try:  # fault-tolerance layer (PR 4); absent on older checkouts
    from repro.gpusim.faults import FaultConfig
    from repro.host.resilience import ResiliencePolicy
except ImportError:  # pragma: no cover - baseline-checkout compatibility
    FaultConfig = ResiliencePolicy = None

try:  # flight recorder + critical-path attribution (PR 8)
    from repro.obs import FlightRecorder, attribute_stats
except ImportError:  # pragma: no cover - baseline-checkout compatibility
    FlightRecorder = attribute_stats = None

try:  # key-space sharding layer (PR 7); absent on older checkouts
    from repro.host.sharding import (
        ShardedEngine,
        ShardedMixedExecutor,
        ShardingConfig,
    )
except ImportError:  # pragma: no cover - baseline-checkout compatibility
    ShardedEngine = ShardedMixedExecutor = ShardingConfig = None

try:  # async serving front-end + open-loop loadgen (PR 9); loadgen.py
    # lives next to this file, so the plain import works when run as
    # `python benchmarks/perf_smoke.py` and fails cleanly elsewhere
    from loadgen import run_ramp as _serving_run_ramp
except ImportError:  # pragma: no cover - baseline-checkout compatibility
    _serving_run_ramp = None

try:  # log-structured write absorption (PR 10)
    from loadgen import arrival_gaps_us as _arrival_gaps_us
    from repro.host.memtable import MemtableConfig
    from repro.serve.core import ServerCore, VirtualClock
except ImportError:  # pragma: no cover - baseline-checkout compatibility
    _arrival_gaps_us = MemtableConfig = ServerCore = VirtualClock = None

PAPER_KEYS = 16 * 1024 * 1024  # the paper's headline tree size
KEY_LEN = 12
SEED = 7
BATCH_SIZE = 8192
ZIPF_A = 1.2
CACHE_SIZE = 65536

# high-conflict write scenario (figure 15's collision regime): one large
# Zipf+uniform batch drawn from a small hot pool against a conflict table
# it nearly fills, so linear probe chains collapse while the bucketed
# layout stays short — measured in BENCH, not just unit tests
HC_SLOTS = 4096
HC_POOL = 4030
HC_BATCH = 24576

# key-space-sharded serving scenario: simulated-device scaling measured
# as ops / merged-parallel StreamScheduler makespan.  The streams are
# sized so every shard still runs several batches at 8 devices — thin
# per-shard sub-batches would hide the scaling behind fixed PCIe
# latency and launch overhead.
SH_DEVICES = (1, 2, 4, 8)
SH_BATCH = 4096
SH_MIXED_OPS = 65536
SH_UPDATE_OPS = 131072
SH_REBALANCE_OPS = 32768


def _engine(**kwargs) -> CuartEngine:
    """Build an engine, dropping kwargs older engines don't know."""
    # drop newest-first so an older engine keeps the kwargs it does know
    for drop in ("flight_recorder", "hash_table", "resilience", "faults",
                 "tracer", "metrics", "cache_size", None):
        try:
            return CuartEngine(batch_size=BATCH_SIZE, **kwargs)
        except TypeError:
            if drop is None:
                raise
            kwargs.pop(drop, None)
    raise AssertionError("unreachable")


def _op(wall_s: float, n: int) -> dict:
    return {
        "wall_s": round(wall_s, 6),
        "keys_per_sec": round(n / wall_s, 1) if wall_s > 0 else None,
        "batch_size": BATCH_SIZE,
        "n": n,
    }


def run(scale: int, label: str, trace_path: str | None = None,
        fault_rate: float = 0.0, fault_seed: int = 1234,
        flight: bool = False, flight_dump: str | None = None) -> dict:
    n = max(PAPER_KEYS // scale, 1024)
    keys = random_keys(n, KEY_LEN, seed=SEED)
    items = [(k, i) for i, k in enumerate(keys)]
    oracle = dict(items)
    ops: dict = {}

    # one shared registry correlates engine, cache, coalescer and write
    # kernels; the tracer records spans only when a trace was requested
    registry = MetricsRegistry() if MetricsRegistry is not None else None
    tracer = Tracer() if (trace_path and Tracer is not None) else None
    obs_kwargs: dict = {}
    if registry is not None:
        obs_kwargs["metrics"] = registry
    if tracer is not None:
        obs_kwargs["tracer"] = tracer
    # per-op flight recorder (PR 8): opt-in — the default path must stay
    # on the allocation-free NULL_FLIGHT_RECORDER fast path
    flight_rec = None
    if flight and FlightRecorder is not None:
        flight_rec = FlightRecorder(capacity=8192, dump_path=flight_dump)
        obs_kwargs["flight_recorder"] = flight_rec
    # fault-injection soak mode (PR 4): inject transient device faults at
    # the given rate and serve through the resilience layer; the oracle
    # asserts below still hold — faults must never corrupt results
    if fault_rate > 0.0:
        if FaultConfig is None:
            raise SystemExit("--fault-rate needs the fault-tolerance layer "
                             "(repro.gpusim.faults) on PYTHONPATH")
        obs_kwargs["faults"] = FaultConfig.uniform(fault_rate, seed=fault_seed)
        obs_kwargs["resilience"] = ResiliencePolicy()

    # -- populate + map: build the servable index -----------------------
    eng = _engine(**obs_kwargs)
    t0 = time.perf_counter()
    eng.populate(items)
    t1 = time.perf_counter()
    eng.map_to_device()
    t2 = time.perf_counter()
    ops["populate"] = _op(t2 - t0, n)
    ops["populate"]["sub"] = {
        "populate_s": round(t1 - t0, 6),
        "map_to_device_s": round(t2 - t1, 6),
    }

    # -- uniform lookups (every query pays the full kernel path) --------
    uni = [keys[i] for i in uniform_indices(n, n, seed=9)]
    t0 = time.perf_counter()
    got = eng.lookup(uni)
    ops["lookup_uniform"] = _op(time.perf_counter() - t0, len(uni))
    sample = np.random.default_rng(5).integers(0, len(uni), size=512)
    for i in sample:
        assert got[int(i)] == oracle[uni[int(i)]], "lookup diverged from oracle"

    # -- Zipf serving phase (hot keys; cache-enabled when available) ----
    zpf = [keys[i] for i in zipf_indices(n, 4 * n, a=ZIPF_A, seed=11)]
    serving = _engine(cache_size=CACHE_SIZE, **obs_kwargs)
    serving.tree = eng.tree  # share the built index: no second populate
    serving.layout = eng.layout
    t0 = time.perf_counter()
    got = serving.lookup(zpf)
    ops["lookup_zipf"] = _op(time.perf_counter() - t0, len(zpf))
    for i in sample:
        assert got[int(i)] == oracle[zpf[int(i)]], "zipf lookup diverged"
    cache = getattr(serving, "cache", None)
    if cache is not None:
        ops["lookup_zipf"]["cache"] = {
            "capacity": cache.capacity,
            "hits": cache.stats.hits,
            "misses": cache.stats.misses,
            "hit_rate": round(cache.stats.hit_rate, 4),
        }
        if getattr(type(cache), "COUNTS_DEDUP_HITS", False):
            # with dedup-hit accounting, a 4n-query zipf(1.2) stream over
            # n keys must report a substantial hot-key hit rate
            assert cache.stats.hit_rate > 0, "zipf stream recorded no cache hits"

    # -- batched updates -------------------------------------------------
    upd_keys = [keys[i] for i in zipf_indices(n, n // 4, a=ZIPF_A, seed=13)]
    upd = [(k, 1_000_000 + j) for j, k in enumerate(upd_keys)]
    t0 = time.perf_counter()
    found = eng.update(upd)
    ops["update"] = _op(time.perf_counter() - t0, len(upd))
    assert all(found), "updates must hit resident keys"

    # -- high-conflict writes: the figure-15 collision regime -----------
    # (before the mixed stream: its deletes would evict pool keys)
    hc = _high_conflict_scenario(eng, keys)
    if hc is not None:
        ops["update_high_conflict"] = hc

    # -- mixed OLTP stream (lookup/update/delete interleaved); capped —
    # with the op-class coalescer the interleaving no longer fragments
    # into tiny per-run batches, and 16Ki ops measure the dispatch path
    mix = QueryMix(lookups=0.70, updates=0.25, deletes=0.05)
    stream = mixed_queries(keys, min(n // 4, 16384), mix, seed=17)
    mx = MixedWorkloadExecutor(eng)
    t0 = time.perf_counter()
    _, report = mx.run(stream)
    ops["mixed"] = _op(time.perf_counter() - t0, report.operations)
    ops["mixed"]["batches"] = report.batches
    ops["mixed"]["batches_issued"] = report.batches
    by_op = getattr(report, "batches_by_op", None)
    if by_op:  # newer executors: per-op-class fragmentation + latency
        ops["mixed"]["batches_by_op"] = dict(by_op)
        ops["mixed"]["latency_us_by_op"] = {
            k: round(report.mean_latency_us(k), 3)
            for k in sorted(report.wall_s)
        }
    pcts = getattr(report, "latency_percentiles_by_op", None)
    if pcts:  # registry histograms (PR 3): percentiles alongside the mean
        ops["mixed"]["latency_percentiles_by_op"] = {
            op: {k: round(v, 3) for k, v in summary.items()}
            for op, summary in sorted(pcts.items())
        }
    reasons = getattr(report, "flush_reasons", None)
    if reasons:
        ops["mixed"]["flush_reasons"] = dict(reasons)
    forwarded = getattr(report, "forwarded", None)
    if forwarded:  # PR 5 executors: store-to-load forwarded op counts
        ops["mixed"]["forwarded"] = dict(forwarded)
    overlap = getattr(report, "stream_overlap", None)
    if overlap:  # PR 5 executors: multi-stream pipelining accounting
        ops["mixed"]["stream_overlap"] = dict(overlap)
    # critical-path attribution (PR 8): reconstruct, per stream window,
    # which stage bound the makespan; the walk's stage intervals must
    # partition [0, makespan] exactly, so reconciliation is a hard gate
    ostats = getattr(mx, "last_overlap_stats", None)
    if (attribute_stats is not None and ostats is not None
            and getattr(ostats, "events", None)):
        cp = attribute_stats(ostats)
        span = ostats.makespan_s
        drift = abs(cp.total_stage_s - span) / max(span, 1e-12)
        assert drift < 0.01, (
            f"critical-path stage totals ({cp.total_stage_s:.6f}s) do not "
            f"reconcile with the stream makespan ({span:.6f}s): "
            f"{drift:.2%} drift"
        )
        ops["mixed"]["critical_path"] = cp.as_dict()
    if flight_rec is not None:
        ops["mixed"]["flight"] = flight_rec.summary()
    if pcts and "delete" in pcts and "lookup" in pcts:
        # delete tail-latency regression gate: grouping the parent-unlink
        # scatters by present node type keeps the delete p95 within a
        # small factor of the lookup p95 (deletes do a lookup plus
        # clear/unlink stores; they must not be an order of magnitude
        # worse at the tail)
        ratio = pcts["delete"]["p95"] / max(pcts["lookup"]["p95"], 1e-9)
        ops["mixed"]["delete_p95_over_lookup_p95"] = round(ratio, 2)
        assert ratio < 25.0, (
            f"delete p95 / lookup p95 = {ratio:.1f} (>= 25): delete tail "
            "latency regressed"
        )
    by_status = getattr(report, "ops_by_status", None)
    if by_status is not None:  # PR 4 executors: per-OpStatus op counts
        ops["mixed"]["ops_by_status"] = dict(by_status)
        assert by_status.get("FAILED", 0) == 0, \
            "mixed stream reported FAILED ops"

    # -- key-space-sharded serving (PR 7): write scaling + rebalance ----
    sharded = _sharded_scenario(items, keys, tracer=tracer)
    if sharded is not None:
        ops["mixed_sharded"] = sharded

    # -- SLO-driven async serving (PR 9): open-loop QPS ramp ------------
    serving = _serving_scenario()
    if serving is not None:
        ops["serving"] = serving

    # -- log-structured write absorption (PR 10): bursty write storm ----
    write_burst = _write_burst_scenario()
    if write_burst is not None:
        ops["write_burst"] = write_burst

    fault_injection = None
    if fault_rate > 0.0:
        injector = getattr(eng, "_injector", None)
        fault_injection = {
            "rate": fault_rate,
            "seed": fault_seed,
            "injected": injector.snapshot() if injector is not None else {},
        }
        disp = getattr(eng, "_dispatcher", None)
        if disp is not None:
            fault_injection["simulated_backoff_s"] = round(
                disp.simulated_backoff_s, 6
            )

    result_metrics = None
    if registry is not None:
        # publish the host-tree shape gauges, then export the registry
        # snapshot (counters, gauges, histogram summaries) into the JSON
        if hasattr(eng, "publish_tree_stats"):
            eng.publish_tree_stats()
        result_metrics = registry.snapshot()

    if tracer is not None and trace_path:
        write_chrome_trace(tracer, trace_path)
    if flight_rec is not None and flight_dump:
        # end-of-run black box: always leave an artifact even when no
        # fault-burst / p99 trigger fired during the run
        flight_rec.dump("end-of-run", {"label": label, "scale": scale})

    headline_s = ops["populate"]["wall_s"] + ops["lookup_zipf"]["wall_s"]
    return {
        "meta": {
            "label": label,
            "scale_denominator": scale,
            "n_keys": n,
            "key_len": KEY_LEN,
            "batch_size": BATCH_SIZE,
            "seed": SEED,
            "zipf_a": ZIPF_A,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "ops": ops,
        "headline": {
            "populate_plus_lookup_wall_s": round(headline_s, 6),
        },
        **({"fault_injection": fault_injection}
           if fault_injection is not None else {}),
        **({"metrics": result_metrics} if result_metrics is not None else {}),
    }


def _high_conflict_scenario(eng: CuartEngine, keys: list) -> dict | None:
    """Zipf-drawn update keys at ~0.97 conflict-table load factor.

    One oversized batch is drawn from a small hot pool (one third
    Zipf(1.2), two thirds uniform coverage) and resolved against a
    4096-slot conflict table by *both* layouts — the paper's linear
    probing and the bucketed warp-cooperative table — with a fresh
    metrics registry each, so BENCH records the per-variant dedup-table
    transaction counters side by side.  The op's wall time / rate is the
    bucketed (default) run; the ``hashtable`` section carries the
    transaction-drop ratio the CI gate checks.

    Returns ``None`` on checkouts whose update engine predates the
    ``hash_table`` knob (the harness runs against old baselines too).
    """
    try:
        from repro.cuart.update import UpdateEngine
        from repro.util.keys import keys_to_matrix
    except ImportError:  # pragma: no cover - baseline-checkout compat
        return None
    if MetricsRegistry is None or len(keys) < HC_POOL:
        return None

    pool = keys[:HC_POOL]
    rng = np.random.default_rng(19)
    nz = HC_BATCH // 3
    zidx = np.asarray(zipf_indices(HC_POOL, nz, a=ZIPF_A, seed=19))
    uidx = np.asarray(uniform_indices(HC_POOL, HC_BATCH - nz, seed=23))
    idx = rng.permutation(np.concatenate([zidx, uidx]))
    mat, lens = keys_to_matrix([pool[i] for i in idx])
    values = np.arange(2_000_000, 2_000_000 + HC_BATCH, dtype=np.uint64)

    stats: dict = {"hash_slots": HC_SLOTS, "batch": HC_BATCH}
    wall = None
    winners_by_variant = {}
    for variant in ("linear", "bucketed"):
        registry = MetricsRegistry()
        try:
            upd = UpdateEngine(
                eng.layout, root_table=eng.root_table, hash_slots=HC_SLOTS,
                hash_table=variant, metrics=registry,
            )
        except TypeError:  # pragma: no cover - baseline-checkout compat
            return None
        t0 = time.perf_counter()
        res = upd.apply(mat, lens, values)
        dt = time.perf_counter() - t0
        assert res.found.all(), "high-conflict updates must hit resident keys"
        winners_by_variant[variant] = res.winners
        stats[variant] = {
            "transactions": registry.value(
                "hashtable_transactions_total", variant=variant),
            "probe_groups": registry.value(
                "hashtable_probe_groups_total", variant=variant),
            "probe_steps": registry.value(
                "hashtable_probe_steps_total", variant=variant),
            "atomics": registry.value(
                "hashtable_atomics_total", variant=variant),
            "max_probe": res.max_probe,
            "load_factor": round(res.load_factor, 4),
            "wall_s": round(dt, 6),
        }
        if variant == "bucketed":
            wall = dt
    assert np.array_equal(
        winners_by_variant["linear"], winners_by_variant["bucketed"]
    ), "conflict-table variants disagreed on winners"
    stats["tx_ratio"] = round(
        stats["linear"]["transactions"] / stats["bucketed"]["transactions"], 2
    )
    rec = _op(wall, HC_BATCH)
    rec["hashtable"] = stats
    return rec


def _sharded_scenario(items: list, keys: list,
                      tracer=None) -> dict | None:
    """Key-space-sharded serving: writes scale with simulated devices.

    Runs the same mixed OLTP stream and a uniform-drawn update burst
    through :class:`ShardedEngine` at 1/2/4/8 simulated devices and
    reports simulated throughput (ops / merged-parallel makespan of the
    per-shard StreamSchedulers — Python wall-clock cannot show device
    scaling).  The per-op results must be identical at every device
    count (in-harness lockstep: ``n_shards=1`` *is* the single-engine
    semantics, covered byte-for-byte in the pytest suite).

    A second, range-partitioned engine is then driven with Zipf-skewed
    updates — hot ranks concentrate on one shard — rebalanced online,
    and re-measured: the gate is recovering >=80% of the uniform-traffic
    throughput after migration.

    Returns ``None`` on checkouts without ``repro.host.sharding``.
    """
    if ShardedEngine is None:
        return None
    n = len(keys)
    mix = QueryMix(lookups=0.70, updates=0.25, deletes=0.05)
    stream = mixed_queries(keys, SH_MIXED_OPS, mix, seed=29)
    upd_idx = uniform_indices(n, SH_UPDATE_OPS, seed=31)

    t_start = time.perf_counter()
    devices: dict = {}
    baseline_results = None
    ops_executed = 0
    for nd in SH_DEVICES:
        # each engine gets its own registry: shard-labeled families would
        # collide with the main harness engine's unlabeled ones
        registry = MetricsRegistry() if MetricsRegistry is not None else None
        eng = ShardedEngine(
            sharding=ShardingConfig(n_shards=nd, mode="hash"),
            batch_size=SH_BATCH,
            **({"metrics": registry} if registry is not None else {}),
            **({"tracer": tracer} if tracer is not None else {}),
        )
        eng.populate(items)
        eng.map_to_device()

        results, rep = ShardedMixedExecutor(eng).run(stream)
        if baseline_results is None:
            baseline_results = results
        else:
            assert results == baseline_results, (
                f"sharded mixed results diverged at {nd} devices"
            )
        mixed_makespan = rep.stream_overlap["makespan_s"]

        lkp = [keys[i] for i in upd_idx]
        eng.submit("lookup", lkp)
        st_lkp = eng.drain()

        upd = [(keys[i], 9_000_000 + j) for j, i in enumerate(upd_idx)]
        eng.submit("update", upd)
        st = eng.drain()
        ops_executed += rep.operations + len(lkp) + len(upd)
        devices[str(nd)] = {
            "mixed_sim_mops": round(rep.operations / mixed_makespan / 1e6, 2),
            "mixed_makespan_s": round(mixed_makespan, 6),
            "lookup_sim_mops": round(len(lkp) / st_lkp.makespan_s / 1e6, 2),
            "lookup_makespan_s": round(st_lkp.makespan_s, 6),
            "update_sim_mops": round(len(upd) / st.makespan_s / 1e6, 2),
            "update_makespan_s": round(st.makespan_s, 6),
            "streams": st.streams,
            "imbalance": round(eng.imbalance(), 4),
        }
        if (nd == 4 and attribute_stats is not None
                and getattr(st, "shard_parts", None)):
            # shard-skew attribution at the headline device count: the
            # merged-parallel stats carry per-shard windows, so the
            # report splits makespan into stages + skew vs slowest shard
            devices[str(nd)]["update_critical_path"] = (
                attribute_stats(st).as_dict()
            )

    d1, d4, d8 = devices["1"], devices["4"], devices["8"]
    scaling = {
        "mixed_x4": round(d4["mixed_sim_mops"] / d1["mixed_sim_mops"], 2),
        "lookup_x4": round(d4["lookup_sim_mops"] / d1["lookup_sim_mops"], 2),
        "update_x4": round(d4["update_sim_mops"] / d1["update_sim_mops"], 2),
        "mixed_x8": round(d8["mixed_sim_mops"] / d1["mixed_sim_mops"], 2),
        "lookup_x8": round(d8["lookup_sim_mops"] / d1["lookup_sim_mops"], 2),
        "update_x8": round(d8["update_sim_mops"] / d1["update_sim_mops"], 2),
    }

    # -- Zipf skew + online rebalance (range partitioning) ---------------
    reb_engine = ShardedEngine(
        sharding=ShardingConfig(n_shards=4, mode="range", partition_bytes=2),
        batch_size=SH_BATCH,
        **({"tracer": tracer} if tracer is not None else {}),
    )
    reb_engine.populate(items)
    reb_engine.map_to_device()

    def _update_tput(idxs, base: int) -> float:
        upd = [(keys[i], base + j) for j, i in enumerate(idxs)]
        reb_engine.submit("update", upd)
        return len(upd) / reb_engine.drain().makespan_s / 1e6

    uni = uniform_indices(n, SH_REBALANCE_OPS, seed=37)
    zpf = zipf_indices(n, SH_REBALANCE_OPS, a=ZIPF_A, seed=37)
    t_uniform = _update_tput(uni, 10_000_000)
    reb_engine.router.reset_heat()
    t_skew_before = _update_tput(zpf, 11_000_000)
    summary = reb_engine.rebalance()
    t_skew_after = _update_tput(zpf, 12_000_000)
    ops_executed += SH_REBALANCE_OPS * 3
    recovery = t_skew_after / t_uniform
    assert recovery >= 0.8, (
        f"rebalance recovered only {recovery:.0%} of uniform-shard "
        "throughput (gate: 80%)"
    )

    wall = time.perf_counter() - t_start
    rec = _op(wall, ops_executed)
    rec["batch_size"] = SH_BATCH
    rec["devices"] = devices
    rec["scaling"] = scaling
    rec["lockstep"] = {"device_counts": list(SH_DEVICES), "ok": True}
    rec["rebalance"] = {
        "mode": "range",
        "n_shards": 4,
        "partition_bytes": 2,
        "zipf_a": ZIPF_A,
        "uniform_mops": round(t_uniform, 2),
        "skew_before_mops": round(t_skew_before, 2),
        "skew_after_mops": round(t_skew_after, 2),
        "recovery_vs_uniform": round(recovery, 4),
        "imbalance_before": round(summary["imbalance_before"], 4),
        "imbalance_after": round(summary["imbalance_after"], 4),
        "moved_partitions": summary["moved_partitions"],
        "moved_keys": summary["moved_keys"],
        "migrated_bytes": summary["migrated_bytes"],
        "sim_transfer_s": round(summary["sim_transfer_s"], 6),
    }
    return rec


SERVE_RAMP = (50_000, 100_000, 200_000, 400_000)
SERVE_OPS_PER_STEP = 2048
SERVE_SLO_US = 1000.0


def _serving_scenario() -> dict | None:
    """The SLO-driven serving front-end under an open-loop QPS ramp.

    Runs :func:`loadgen.run_ramp` in virtual time (the ramp's rates are
    simulated; only the numpy work costs wall clock), so the record's
    ``wall_s`` measures the server's host-side overhead while the
    latency/attainment numbers live on the deterministic virtual axis.
    CI gates ``overall.slo_attainment`` and the shed bound via
    ``validate_bench --min-slo-attainment``.
    """
    if _serving_run_ramp is None:
        return None
    t0 = time.perf_counter()
    record = _serving_run_ramp(
        ramp=SERVE_RAMP, ops_per_step=SERVE_OPS_PER_STEP,
        slo_us=SERVE_SLO_US,
    )
    rec = _op(time.perf_counter() - t0, record["overall"]["offered"])
    rec["slo_us"] = SERVE_SLO_US
    rec["ramp_qps"] = list(SERVE_RAMP)
    rec["steps"] = record["steps"]
    rec["overall"] = record["overall"]
    rec["flight"] = record["flight"]
    return rec


# log-structured write absorption scenario: the *same* bursty 90%-write
# arrival schedule replayed twice through the serving front-end — once
# on the PR-9 synchronous write path, once with the host memtable
# absorbing writes — so the speedup numbers compare like with like.
# Keys are Zipf-drawn so the fold (LWW dedup before scatter) has teeth.
WB_KEYS = 16384
WB_OPS = 16384
WB_QPS = 400_000
WB_WRITE_FRAC = 0.9  # 0.8 update + 0.1 delete; 0.1 lookup
WB_SEGMENT_OPS = 512
WB_MAX_DEBT = 4


def _write_burst_pct(lat: list) -> dict:
    if not lat:
        return {"count": 0}
    arr = np.asarray(lat)
    return {
        "count": int(arr.size),
        "mean_us": round(float(arr.mean()), 3),
        "p50_us": round(float(np.percentile(arr, 50)), 3),
        "p99_us": round(float(np.percentile(arr, 99)), 3),
        "max_us": round(float(arr.max()), 3),
    }


def _write_burst_pass(keys, items, gaps, op_draw, key_idx, memtable_cfg):
    """Replay one arrival schedule through a fresh served engine.

    Open loop on a virtual clock, exactly like :mod:`loadgen`: deadlines
    due before each arrival fire first, then the clock advances to the
    arrival and the op is offered.  Returns the per-pass record plus the
    engine (for the cross-pass content oracle)."""
    clock = VirtualClock()
    eng = _engine()
    eng.populate(items)
    eng.map_to_device()
    kwargs = dict(
        max_batch=1024, deadline_us=200.0, queue_depth=WB_OPS, clock=clock,
    )
    if memtable_cfg is not None:
        kwargs["memtable"] = memtable_cfg
    core = ServerCore(eng, **kwargs)

    write_lat: list = []
    read_lat: list = []

    def on_done(op):
        if op.shed:
            return
        (read_lat if op.op == "lookup" else write_lat).append(op.latency_us)

    t0 = time.perf_counter()
    t_first = clock.now_us()
    for i in range(len(gaps)):
        t_arrival = clock.now_us() + gaps[i]
        while True:
            due = core.next_deadline_us()
            if due is None or due > t_arrival:
                break
            clock.advance(due - clock.now_us())
            core.poll()
        clock.advance(t_arrival - clock.now_us())
        key = keys[int(key_idx[i])]
        p = float(op_draw[i])
        if p < 0.8:
            core.offer("update", (key, i), on_done=on_done)
        elif p < WB_WRITE_FRAC:
            core.offer("delete", key, on_done=on_done)
        else:
            core.offer("lookup", key, on_done=on_done)
    core.flush()
    wall_s = time.perf_counter() - t0

    # sustained throughput over the virtual makespan: arrival span plus
    # whatever device work is still draining past the last arrival
    makespan_s = (max(clock.now_us(), core.device_free_us) - t_first) / 1e6
    n_writes = len(write_lat)
    rec = {
        "wall_s": round(wall_s, 6),
        "offered": len(gaps),
        "shed": core.sheds,
        "makespan_s": round(makespan_s, 6),
        "write_ops_per_sec": round(n_writes / makespan_s, 1)
        if makespan_s > 0 else None,
        "write_latency": _write_burst_pct(write_lat),
        "read_latency": _write_burst_pct(read_lat),
        "batches": core.report.batches,
    }
    if core.memtable is not None:
        m = core.memtable.stats()
        rec["absorbed_write_ratio"] = m["absorbed_write_ratio"]
        rec["compactions"] = m["compactions"]
        rec["dispatched_rows"] = m["dispatched_rows"]
        rec["folded_away"] = m["folded_away"]
        rec["max_debt_seen"] = m["max_debt_seen"]
    return rec, eng


def _write_burst_scenario() -> dict | None:
    """Bursty 90%-write storm: synchronous write path vs. memtable.

    The acceptance gate for the log-structured write path: the memtable
    pass must show >= 2x sustained write throughput or a >= 4x write-p99
    drop on the identical schedule, with the absorbed-write ratio
    reported (CI gates it via ``validate_bench
    --min-write-absorption``).  Both passes must converge to the same
    content — absorption reorders acknowledgement, never effect.
    """
    if MemtableConfig is None or ServerCore is None \
            or _arrival_gaps_us is None:
        return None
    rng = np.random.default_rng(SEED)
    keys = random_keys(WB_KEYS, KEY_LEN, seed=SEED)
    items = [(k, i) for i, k in enumerate(keys)]
    gaps = _arrival_gaps_us("bursty", WB_QPS, WB_OPS, rng)
    op_draw = rng.random(WB_OPS)
    key_idx = np.asarray(
        zipf_indices(WB_KEYS, WB_OPS, a=ZIPF_A, seed=13)
    )

    sync_rec, sync_eng = _write_burst_pass(
        keys, items, gaps, op_draw, key_idx, None
    )
    mem_rec, mem_eng = _write_burst_pass(
        keys, items, gaps, op_draw, key_idx,
        MemtableConfig(segment_ops=WB_SEGMENT_OPS, max_debt=WB_MAX_DEBT),
    )

    # content oracle: identical schedule -> identical surviving values
    assert mem_eng.lookup(list(keys)) == sync_eng.lookup(list(keys)), \
        "write_burst: memtable pass diverged from synchronous pass"

    sync_p99 = sync_rec["write_latency"].get("p99_us") or 0.0
    mem_p99 = mem_rec["write_latency"].get("p99_us") or 0.0
    tput_x = (mem_rec["write_ops_per_sec"] / sync_rec["write_ops_per_sec"]
              if sync_rec["write_ops_per_sec"] else None)
    # absorbed acks complete in zero virtual time; floor the denominator
    # so the ratio stays finite
    p99_drop = sync_p99 / max(mem_p99, 0.01)
    assert tput_x >= 2.0 or p99_drop >= 4.0, (
        f"write_burst speedup below the acceptance bar: "
        f"tput_x={tput_x:.2f} p99_drop={p99_drop:.2f}"
    )

    rec = _op(sync_rec["wall_s"] + mem_rec["wall_s"], 2 * WB_OPS)
    rec["pattern"] = "bursty"
    rec["qps"] = WB_QPS
    rec["write_fraction"] = WB_WRITE_FRAC
    rec["zipf_a"] = ZIPF_A
    rec["sync"] = sync_rec
    rec["memtable"] = mem_rec
    rec["speedup"] = {
        "write_tput_x": round(tput_x, 2) if tput_x is not None else None,
        "write_p99_drop_x": round(p99_drop, 2),
    }
    return rec


def merge_min(runs: list[dict]) -> dict:
    """Fold repeated runs into one result by keeping, per op, the repeat
    with the smallest wall time.

    Each repeat rebuilds its engines from scratch, so the min is a clean
    noise filter: the machine can only make a run slower, never faster.
    The headline is recomputed from the chosen per-op records; metrics /
    fault-injection snapshots come from the first repeat.
    """
    best = runs[0]
    if len(runs) == 1:
        return best
    for other in runs[1:]:
        for op, rec in other["ops"].items():
            cur = best["ops"].get(op)
            if cur is None or rec["wall_s"] < cur["wall_s"]:
                best["ops"][op] = rec
    best["headline"]["populate_plus_lookup_wall_s"] = round(
        best["ops"]["populate"]["wall_s"]
        + best["ops"]["lookup_zipf"]["wall_s"], 6
    )
    best["meta"]["repeats"] = len(runs)
    return best


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="BENCH_pr1.json", help="output JSON path")
    ap.add_argument("--scale", type=int, default=64,
                    help="scale denominator: n_keys = 16Mi / SCALE")
    ap.add_argument("--repeats", type=int, default=1,
                    help="run the whole suite N times and keep, per op, "
                         "the fastest repeat (min-of-N noise filter)")
    ap.add_argument("--baseline", default=None,
                    help="previous run's JSON; adds speedup factors")
    ap.add_argument("--label", default="local", help="free-form run label")
    ap.add_argument("--trace", default=None, metavar="PATH",
                    help="write a chrome://tracing JSON of the run")
    ap.add_argument("--fault-rate", type=float, default=0.0,
                    help="inject transient device faults at this per-event "
                         "probability and serve through the resilience "
                         "layer (0 = off)")
    ap.add_argument("--fault-seed", type=int, default=1234,
                    help="seed of the fault injector's random stream")
    ap.add_argument("--flight-recorder", action="store_true",
                    help="thread a per-op flight recorder through the "
                         "mixed stream and embed its summary plus the "
                         "critical-path attribution in the JSON")
    ap.add_argument("--flight-dump", default=None, metavar="PATH",
                    help="write the flight recorder's black-box dump "
                         "here (implies --flight-recorder)")
    args = ap.parse_args(argv)
    if args.scale < 1:
        ap.error(f"--scale must be >= 1, got {args.scale}")
    if args.repeats < 1:
        ap.error(f"--repeats must be >= 1, got {args.repeats}")
    if not 0.0 <= args.fault_rate <= 1.0:
        ap.error(f"--fault-rate must be in [0, 1], got {args.fault_rate}")
    if args.baseline and not os.path.exists(args.baseline):
        ap.error(f"--baseline file not found: {args.baseline}")
    if args.trace and Tracer is None:
        ap.error("--trace needs the repro.obs package on PYTHONPATH")
    if args.flight_dump:
        args.flight_recorder = True
    if args.flight_recorder and FlightRecorder is None:
        ap.error("--flight-recorder needs repro.obs.flightrec on PYTHONPATH")

    runs = [
        run(args.scale, args.label,
            trace_path=args.trace if i == 0 else None,
            fault_rate=args.fault_rate, fault_seed=args.fault_seed,
            flight=args.flight_recorder,
            flight_dump=args.flight_dump if i == 0 else None)
        for i in range(args.repeats)
    ]
    result = merge_min(runs)

    if args.baseline:
        with open(args.baseline) as fh:
            base = json.load(fh)
        speedups = {}
        for op, cur in result["ops"].items():
            ref = base.get("ops", {}).get(op)
            if ref and ref.get("wall_s") and cur.get("wall_s"):
                speedups[op] = round(ref["wall_s"] / cur["wall_s"], 2)
        head = base.get("headline", {}).get("populate_plus_lookup_wall_s")
        if head:
            result["headline"]["speedup_vs_baseline"] = round(
                head / result["headline"]["populate_plus_lookup_wall_s"], 2
            )
            result["headline"]["baseline_label"] = base.get("meta", {}).get(
                "label"
            )
        result["headline"]["op_speedups"] = speedups

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=False)
        fh.write("\n")

    print(f"wrote {args.out}")
    if args.trace:
        print(f"wrote {args.trace} (open in chrome://tracing or ui.perfetto.dev)")
    if args.flight_dump:
        print(f"wrote {args.flight_dump} (flight-recorder black box)")
    cp = result["ops"].get("mixed", {}).get("critical_path")
    if cp:
        print(f"  mixed critical-path bottleneck: {cp['bottleneck']}")
    for op, rec in result["ops"].items():
        rate = rec["keys_per_sec"]
        print(f"  {op:16s} {rec['wall_s']:8.3f}s  "
              f"{rate / 1e3 if rate else 0:10.1f} kops/s  (n={rec['n']})")
    fi = result.get("fault_injection")
    if fi:
        print(f"  fault injection: rate={fi['rate']} "
              f"injected={sum(fi['injected'].values())} "
              f"by_status={result['ops']['mixed'].get('ops_by_status')}")
    if "speedup_vs_baseline" in result["headline"]:
        print(f"  headline populate+lookup speedup: "
              f"{result['headline']['speedup_vs_baseline']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
