"""Figure 14 — hybrid split with 5% *short* keys on the CPU: every GPU
variant converges to the CPU bound."""

from repro.bench.figures import fig14
from repro.gpusim.devices import SERVER_CPU
from repro.host.hybrid import HybridConfig, cpu_path_rate


def test_fig14_series(benchmark, scale):
    result = benchmark.pedantic(fig14, args=(scale,), rounds=1, iterations=1)
    print()
    print(result)
    assert result.all_checks_pass


def test_fig14_measured_cpu_path_model(benchmark):
    """The CPU-path rate model evaluated across worker counts."""

    def sweep():
        return [
            cpu_path_rate(
                HybridConfig(cpu_fraction=0.05, cpu_threads=t), SERVER_CPU
            )
            for t in (8, 16, 32, 56)
        ]

    rates = benchmark(sweep)
    assert rates == sorted(rates)
