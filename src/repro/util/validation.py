"""Small argument-validation helpers used across the public API."""

from __future__ import annotations

from typing import Any

from repro.errors import ReproError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ReproError` with ``message`` unless ``condition``."""
    if not condition:
        raise ReproError(message)


def require_positive(value: int | float, name: str) -> None:
    if value <= 0:
        raise ReproError(f"{name} must be positive, got {value!r}")


def require_power_of_two(value: int, name: str) -> None:
    """The paper coalesces queries into power-of-two batches "to ease up
    scheduling and optimal load on the GPUs" (section 4.1)."""
    if value <= 0 or value & (value - 1):
        raise ReproError(f"{name} must be a power of two, got {value!r}")


def require_type(value: Any, types: type | tuple[type, ...], name: str) -> None:
    if not isinstance(value, types):
        raise ReproError(
            f"{name} must be {types!r}, got {type(value).__name__}"
        )
