"""Packed 64-bit node links (paper section 3.2.1, figure 2).

GRT addresses nodes by a byte offset into its single buffer; knowing
*where* to read therefore does not tell the kernel *how much* to read.
CuART replaces the offset by a packed 64-bit value: node type in the top
8 bits, node index within the per-type buffer in the low 56 bits.  The
type is known before the load is issued, so the transaction size and
alignment are too.
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    LINK_EMPTY,
    LINK_HOST,
    LINK_INDEX_BITS,
    LINK_INDEX_MASK,
)
from repro.errors import ReproError

_MAX_TYPE = 0xFF

#: uint64 dtype used for all link buffers.
LINK_DTYPE = np.uint64


def pack_link(type_code: int, index: int) -> int:
    """Pack ``(type_code, index)`` into a 64-bit link value."""
    if not 0 <= type_code <= _MAX_TYPE:
        raise ReproError(f"link type out of range: {type_code}")
    if not 0 <= index <= LINK_INDEX_MASK:
        raise ReproError(f"link index out of range: {index}")
    return (type_code << LINK_INDEX_BITS) | index


def unpack_link(link: int) -> tuple[int, int]:
    """Split a 64-bit link into ``(type_code, index)``."""
    link = int(link)
    return link >> LINK_INDEX_BITS, link & LINK_INDEX_MASK


def link_type(link: int) -> int:
    """Type code stored in the top 8 bits of ``link``."""
    return int(link) >> LINK_INDEX_BITS


def link_index(link: int) -> int:
    """Node index stored in the low 56 bits of ``link``."""
    return int(link) & LINK_INDEX_MASK


def is_empty(link: int) -> bool:
    return link_type(link) == LINK_EMPTY


def is_host(link: int) -> bool:
    return link_type(link) == LINK_HOST


# ---------------------------------------------------------------------------
# Vectorized variants used by the batch kernels.
# ---------------------------------------------------------------------------


def pack_links(type_codes: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Vectorized :func:`pack_link` over uint64 arrays."""
    t = np.asarray(type_codes, dtype=np.uint64)
    i = np.asarray(indices, dtype=np.uint64)
    return (t << np.uint64(LINK_INDEX_BITS)) | (i & np.uint64(LINK_INDEX_MASK))


def link_types(links: np.ndarray) -> np.ndarray:
    """Vectorized type extraction (top 8 bits)."""
    return (np.asarray(links, dtype=np.uint64) >> np.uint64(LINK_INDEX_BITS)).astype(
        np.int64
    )


def link_indices(links: np.ndarray) -> np.ndarray:
    """Vectorized index extraction (low 56 bits)."""
    return (np.asarray(links, dtype=np.uint64) & np.uint64(LINK_INDEX_MASK)).astype(
        np.int64
    )
