"""Shared utilities: key encoding, link packing, RNG and validation."""

from repro.util.keys import (
    encode_int,
    encode_str,
    encode_uuid_like,
    encode_signed_int,
    encode_float,
    encode_composite,
    decode_int,
    decode_signed_int,
    decode_float,
    common_prefix_len,
    keys_to_matrix,
)
from repro.util.packing import (
    pack_link,
    unpack_link,
    link_type,
    link_index,
    pack_links,
    link_types,
    link_indices,
)

__all__ = [
    "encode_int",
    "encode_str",
    "encode_uuid_like",
    "encode_signed_int",
    "encode_float",
    "encode_composite",
    "decode_int",
    "decode_signed_int",
    "decode_float",
    "common_prefix_len",
    "keys_to_matrix",
    "pack_link",
    "unpack_link",
    "link_type",
    "link_index",
    "pack_links",
    "link_types",
    "link_indices",
]
