"""Seeded random-number helpers.

Section 4.1 of the paper: "we build a framework that is capable of
generating *reproducible* trees with data of different characteristics".
Every stochastic component of the reproduction takes a seed and routes it
through :func:`make_rng` so identical parameters always produce identical
trees, query streams and simulated measurements.
"""

from __future__ import annotations

import numpy as np

#: Seed used by every experiment unless overridden.
DEFAULT_SEED = 0xC0A27


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged so call sites can
    thread one RNG through a pipeline; passing ``None`` uses the fixed
    :data:`DEFAULT_SEED` (reproducibility by default, *not* entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for sub-stream ``stream``.

    Used by the multi-threaded host dispatcher model so per-thread query
    streams are reproducible regardless of interleaving.
    """
    return np.random.default_rng(rng.integers(0, 2**63 - 1) + stream)
