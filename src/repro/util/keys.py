"""Binary-comparable key encoding.

ART and its GPU derivatives index *binary-comparable* byte strings: the
lexicographic order of the encoded bytes must equal the desired key order
(Leis et al. 2013, section IV).  This module provides the standard
encoders used throughout the reproduction:

* fixed-width big-endian integers (the paper's "traditional columns where
  indexes are built of 8 (numeric IDs) ... byte keys"),
* UUID-like 16-byte keys,
* strings with a 0x00 terminator so no encoded key can be a proper prefix
  of another.

It also provides the dense ``(batch, width)`` uint8 key matrices consumed
by the vectorized device kernels.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

import numpy as np

from repro.errors import KeyEncodingError

#: escape hatch: setting ``REPRO_SCALAR_ENCODER=1`` routes
#: :func:`keys_to_matrix` through the original per-key loop.  Kept for one
#: PR so the benchmark harness can measure the pre-vectorization host path
#: (``BENCH_seed.json``); scheduled for removal afterwards.
_SCALAR_ENV = "REPRO_SCALAR_ENCODER"


def _use_scalar_encoder() -> bool:
    return os.environ.get(_SCALAR_ENV, "") not in ("", "0")


def encode_int(value: int, width: int = 8) -> bytes:
    """Encode ``value`` as a big-endian unsigned integer of ``width`` bytes.

    Big-endian order makes numeric order equal byte-lexicographic order,
    which is what the ordered leaf buffers (section 3.2.1) rely on for
    range queries.

    >>> encode_int(1, 4).hex()
    '00000001'
    """
    if width <= 0:
        raise KeyEncodingError(f"width must be positive, got {width}")
    if value < 0:
        raise KeyEncodingError(f"negative keys are not binary-comparable: {value}")
    try:
        return value.to_bytes(width, "big")
    except OverflowError as exc:
        raise KeyEncodingError(f"{value} does not fit in {width} bytes") from exc


def decode_int(key: bytes) -> int:
    """Inverse of :func:`encode_int`."""
    return int.from_bytes(key, "big")


def encode_str(text: str, encoding: str = "utf-8") -> bytes:
    """Encode a string key with a 0x00 terminator.

    The terminator guarantees that no encoded key is a proper prefix of
    another encoded key, the precondition radix trees need to keep every
    key addressable (see :class:`repro.errors.KeyPrefixError`).
    """
    raw = text.encode(encoding)
    if b"\x00" in raw:
        raise KeyEncodingError("string keys must not contain NUL bytes")
    return raw + b"\x00"


def encode_uuid_like(hi: int, lo: int) -> bytes:
    """Encode a 128-bit (UUID-style) key from two 64-bit halves."""
    return encode_int(hi, 8) + encode_int(lo, 8)


def common_prefix_len(a: bytes, b: bytes) -> int:
    """Length of the longest common prefix of ``a`` and ``b``."""
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


def keys_to_matrix(
    keys: Sequence[bytes], width: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Pack a batch of byte keys into a dense ``(len(keys), width)`` uint8
    matrix plus a vector of key lengths.

    This is the host-side "coalescing" step of section 4.1: device kernels
    only consume fixed-stride buffers.  Keys shorter than ``width`` are
    zero-padded (the padding never participates in comparisons because the
    length vector is carried along).

    The whole batch is encoded in one vectorized pass (see
    :func:`encode_key_batch`); ``REPRO_SCALAR_ENCODER=1`` restores the
    original per-key loop for benchmarking the pre-vectorization path.
    """
    if _use_scalar_encoder():
        return _keys_to_matrix_scalar(keys, width)
    return encode_key_batch(keys, width=width)


def _keys_to_matrix_scalar(
    keys: Sequence[bytes], width: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """The original per-key encoder (reference implementation; the bulk
    encoder is property-tested byte-identical against it)."""
    if width is None:
        width = max((len(k) for k in keys), default=1)
    n = len(keys)
    mat = np.zeros((n, width), dtype=np.uint8)
    lens = np.zeros(n, dtype=np.int64)
    for i, k in enumerate(keys):
        if len(k) > width:
            raise KeyEncodingError(
                f"key of length {len(k)} does not fit matrix width {width}"
            )
        if len(k) == 0:
            raise KeyEncodingError("empty keys cannot be indexed")
        mat[i, : len(k)] = np.frombuffer(k, dtype=np.uint8)
        lens[i] = len(k)
    return mat, lens


def encode_key_batch(
    keys: Sequence[bytes], width: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Bulk-encode ``keys`` into one ``(len(keys), width)`` uint8 matrix +
    length vector without any per-key Python work.

    The batch is materialized as a NumPy fixed-width bytes array (one
    C-level pass that also zero-pads every row) and reinterpreted as the
    uint8 matrix; only the length vector needs a per-key ``len`` call.
    """
    n = len(keys)
    if n == 0:
        w = 1 if width is None else width
        return np.zeros((0, w), dtype=np.uint8), np.zeros(0, dtype=np.int64)
    arr = np.asarray(keys)
    if arr.dtype.kind != "S" or arr.ndim != 1:
        raise KeyEncodingError(
            f"keys must be bytes, got array kind {arr.dtype.kind!r}"
        )
    lens = np.fromiter(map(len, keys), dtype=np.int64, count=n)
    longest = int(lens.max())
    if width is None:
        width = max(longest, 1)
    elif longest > width:
        raise KeyEncodingError(
            f"key of length {longest} does not fit matrix width {width}"
        )
    if not lens.all():
        raise KeyEncodingError("empty keys cannot be indexed")
    if arr.dtype.itemsize != width:
        arr = arr.astype(f"S{width}")
    mat = arr.view(np.uint8).reshape(n, width)
    return mat, lens


#: multiply-xor mixing constants (64-bit golden-ratio / splitmix64).
_MIX_A = np.uint64(0x9E3779B97F4A7C15)
_MIX_B = np.uint64(0xBF58476D1CE4E5B9)


def dedup_rows(
    mat: np.ndarray, lens: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Group identical keys of an encoded batch: returns ``(first,
    inverse)`` with ``first`` the row index of each distinct key's first
    occurrence and ``inverse`` mapping every row to its group, so
    ``first[inverse[i]]`` is row ``i``'s representative.

    A padded row alone cannot distinguish ``b"a"`` from ``b"a\\x00"``,
    so the length participates.  The fast path sorts one mixed 64-bit
    token per row instead of memcmp-sorting whole rows, then *verifies*
    the grouping with a whole-array gather-compare; a (astronomically
    rare) token collision falls back to exact row sorting, so the result
    is always exact.
    """
    n, W = mat.shape
    if n == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    W8 = max((W + 7) // 8, 1)
    padded = np.zeros((n, W8 * 8), dtype=np.uint8)
    padded[:, :W] = mat
    words = padded.view(np.uint64)
    h = lens.astype(np.uint64) * _MIX_A
    for c in range(W8):
        h = (h ^ words[:, c]) * _MIX_B
    _, first, inverse = np.unique(h, return_index=True, return_inverse=True)
    rep = first[inverse]
    if bool((mat[rep] == mat).all()) and bool((lens[rep] == lens).all()):
        return first, inverse
    # token collision: exact fallback via memcmp sort of (row, len)
    aug = np.empty((n, W + 8), dtype=np.uint8)
    aug[:, :W] = mat
    aug[:, W:] = lens.astype("<u8")[:, None].view(np.uint8)
    void = aug.view(np.dtype((np.void, aug.shape[1])))[:, 0]
    _, first, inverse = np.unique(void, return_index=True, return_inverse=True)
    return first, inverse


def encode_int_batch(values, width: int = 8) -> np.ndarray:
    """Vectorized :func:`encode_int`: a ``(n, width)`` uint8 matrix whose
    row ``i`` is byte-identical to ``encode_int(values[i], width)``."""
    if width <= 0:
        raise KeyEncodingError(f"width must be positive, got {width}")
    try:
        arr = np.asarray(values, dtype=np.uint64)
    except (OverflowError, ValueError, TypeError) as exc:
        raise KeyEncodingError(
            f"integer keys must be non-negative and fit 64 bits: {exc}"
        ) from exc
    if width < 8 and arr.size and int(arr.max()) >> (8 * width):
        bad = int(arr[(arr >> np.uint64(8 * width)) > 0][0])
        raise KeyEncodingError(f"{bad} does not fit in {width} bytes")
    be = arr.astype(">u8").view(np.uint8).reshape(arr.size, 8)
    if width == 8:
        return be.copy()
    if width < 8:
        return be[:, 8 - width :].copy()
    out = np.zeros((arr.size, width), dtype=np.uint8)
    out[:, width - 8 :] = be
    return out


def encode_str_batch(texts: Sequence[str], encoding: str = "utf-8") -> list[bytes]:
    """Vectorized :func:`encode_str`: encode a batch of string keys (with
    the 0x00 terminator each) in one pass over one joined buffer."""
    if not texts:
        return []
    raw = "\x00".join(texts).encode(encoding)
    parts = raw.split(b"\x00")
    if len(parts) != len(texts):
        raise KeyEncodingError("string keys must not contain NUL bytes")
    return [p + b"\x00" for p in parts]


def matrix_to_keys(mat: np.ndarray, lens: np.ndarray) -> list[bytes]:
    """Inverse of :func:`keys_to_matrix`."""
    return [mat[i, : lens[i]].tobytes() for i in range(mat.shape[0])]


def sort_keys(keys: Iterable[bytes]) -> list[bytes]:
    """Lexicographically sorted copy of ``keys`` (the order the mapped
    leaf buffers must exhibit)."""
    return sorted(keys)


def encode_signed_int(value: int, width: int = 8) -> bytes:
    """Encode a *signed* integer order-preservingly.

    Two's complement does not sort lexicographically (negative values
    have the high bit set); flipping the sign bit restores the order —
    the standard index trick.

    >>> encode_signed_int(-1) < encode_signed_int(0) < encode_signed_int(1)
    True
    """
    if width <= 0:
        raise KeyEncodingError(f"width must be positive, got {width}")
    lo = -(1 << (8 * width - 1))
    hi = (1 << (8 * width - 1)) - 1
    if not lo <= value <= hi:
        raise KeyEncodingError(f"{value} does not fit a signed {width}-byte key")
    return (value - lo).to_bytes(width, "big")


def decode_signed_int(key: bytes) -> int:
    """Inverse of :func:`encode_signed_int`."""
    width = len(key)
    return int.from_bytes(key, "big") - (1 << (8 * width - 1))


def encode_float(value: float) -> bytes:
    """Encode an IEEE-754 double order-preservingly (8 bytes).

    Positive floats already sort by their bit pattern; negatives sort
    in reverse.  Flipping the sign bit for positives and all bits for
    negatives produces total lexicographic order (NaNs are rejected —
    they have no place in a total order).
    """
    import math
    import struct

    if isinstance(value, float) and math.isnan(value):
        raise KeyEncodingError("NaN keys are not orderable")
    (bits,) = struct.unpack(">Q", struct.pack(">d", float(value)))
    if bits & (1 << 63):
        bits ^= (1 << 64) - 1  # negative: flip everything
    else:
        bits ^= 1 << 63  # positive: flip the sign bit
    return bits.to_bytes(8, "big")


def decode_float(key: bytes) -> float:
    """Inverse of :func:`encode_float`."""
    import struct

    bits = int.from_bytes(key, "big")
    if bits & (1 << 63):
        bits ^= 1 << 63
    else:
        bits ^= (1 << 64) - 1
    return struct.unpack(">d", struct.pack(">Q", bits))[0]


def encode_composite(*parts: bytes) -> bytes:
    """Concatenate already-encoded key parts into one composite key.

    Fixed-width parts (int/float encodings) compose directly.  A
    variable-width part (e.g. :func:`encode_str`) must not be a prefix
    of another value of the same column — ``encode_str``'s terminator
    guarantees that — and only the *last* part may vary in width,
    otherwise column boundaries would shift between keys.

    >>> k = encode_composite(encode_int(42, 4), encode_str("eu-west"))
    """
    if not parts:
        raise KeyEncodingError("composite keys need at least one part")
    for p in parts:
        if not isinstance(p, (bytes, bytearray)) or len(p) == 0:
            raise KeyEncodingError("composite parts must be non-empty bytes")
    return b"".join(parts)
