"""Device descriptions for the paper's three benchmark machines
(section 4.1):

* **Server** — 2× AMD Epyc 7752, 2× NVIDIA A100 40GB (HBM2), DDR4-2933
* **Workstation** — AMD Ryzen 5800X, NVIDIA RTX3090 (GDDR6X), DDR4-3200
* **Notebook** — Intel i7-8750H, NVIDIA GTX1070 (GDDR5), DDR4-2666
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.memory import (
    DDR4_SERVER,
    DDR4_WORKSTATION,
    GDDR5_GTX1070,
    GDDR6X_RTX3090,
    HBM2_A100,
    MemoryArchitecture,
)


@dataclass(frozen=True)
class DeviceSpec:
    """One GPU: compute array + memory subsystem + launch costs."""

    name: str
    memory: MemoryArchitecture
    sm_count: int
    core_clock_hz: float
    #: maximum resident threads across the device (occupancy limit);
    #: bounds how much memory latency can be hidden.
    max_resident_threads: int
    #: fixed kernel launch + driver overhead in seconds.
    launch_overhead_s: float = 5e-6
    #: sustained scalar-int instructions per SM per cycle for this
    #: traversal workload (issue-limited, not FLOP-limited).
    ipc_per_sm: float = 2.0
    #: L2 cache size in bytes — upper tree levels (and the compacted root
    #: table's hot entries) hit in L2.
    l2_bytes: int = 4 * 1024 * 1024
    #: fraction of node reads served by L2 for the *upper* levels.
    l2_hit_latency_s: float = 2.2e-7

    def describe(self) -> str:
        return f"{self.name} [{self.memory.name}]"


@dataclass(frozen=True)
class CpuSpec:
    """One host CPU: cores + cache hierarchy + memory subsystem.

    Used for the classic-ART baseline, the CuART CPU layout (figure 7)
    and the hybrid long-key path (figures 13/14).
    """

    name: str
    cores: int
    smt: int
    clock_hz: float
    memory: MemoryArchitecture
    l1_bytes: int
    l2_bytes: int
    l3_bytes: int
    l1_latency_s: float = 1.2e-9
    l2_latency_s: float = 4.0e-9
    l3_latency_s: float = 1.2e-8
    #: per-node traversal compute (≈20 cycles, section 3.1).
    node_compute_cycles: float = 20.0

    @property
    def threads(self) -> int:
        return self.cores * self.smt

    def dram_latency_s(self) -> float:
        return self.memory.random_latency_s

    def describe(self) -> str:
        return f"{self.name} ({self.cores}c/{self.threads}t)"


# ---------------------------------------------------------------------------
# GPUs (public spec sheets; memory subsystems in gpusim.memory).
# ---------------------------------------------------------------------------
A100 = DeviceSpec(
    name="NVIDIA A100 40GB",
    memory=HBM2_A100,
    sm_count=108,
    core_clock_hz=1.41e9,
    max_resident_threads=108 * 2048,
    l2_bytes=40 * 1024 * 1024,
)

RTX3090 = DeviceSpec(
    name="NVIDIA RTX3090",
    memory=GDDR6X_RTX3090,
    sm_count=82,
    core_clock_hz=1.70e9,
    max_resident_threads=82 * 1536,
    l2_bytes=6 * 1024 * 1024,
)

GTX1070 = DeviceSpec(
    name="NVIDIA GTX1070",
    memory=GDDR5_GTX1070,
    sm_count=15,
    core_clock_hz=1.68e9,
    max_resident_threads=15 * 2048,
    l2_bytes=2 * 1024 * 1024,
)

# ---------------------------------------------------------------------------
# Host CPUs.
# ---------------------------------------------------------------------------
SERVER_CPU = CpuSpec(
    name="2x AMD Epyc 7752",
    cores=96,
    smt=2,
    clock_hz=2.45e9,
    memory=DDR4_SERVER,
    l1_bytes=96 * 32 * 1024,
    l2_bytes=96 * 512 * 1024,
    l3_bytes=2 * 256 * 1024 * 1024,
)

WORKSTATION_CPU = CpuSpec(
    name="AMD Ryzen 5800X",
    cores=8,
    smt=2,
    clock_hz=4.5e9,
    memory=DDR4_WORKSTATION,
    l1_bytes=8 * 32 * 1024,
    l2_bytes=8 * 512 * 1024,
    l3_bytes=32 * 1024 * 1024,
)

NOTEBOOK_CPU = CpuSpec(
    name="Intel i7-8750H",
    cores=6,
    smt=2,
    clock_hz=3.9e9,
    memory=MemoryArchitecture(
        name="DDR4-2666 (notebook)",
        channels=2,
        command_clock_hz=1.333e9,
        atom_bytes=64,
        overhead_commands=12.0,
        peak_bandwidth=42.6e9,
        random_latency_s=9.0e-8,
    ),
    l1_bytes=6 * 32 * 1024,
    l2_bytes=6 * 256 * 1024,
    l3_bytes=9 * 1024 * 1024,
)

#: The three machines of section 4.1 as (gpu, cpu) pairs.
MACHINES = {
    "server": (A100, SERVER_CPU),
    "workstation": (RTX3090, WORKSTATION_CPU),
    "notebook": (GTX1070, NOTEBOOK_CPU),
}

#: All GPUs by short name (figure 18 sweeps these).
DEVICES = {"a100": A100, "rtx3090": RTX3090, "gtx1070": GTX1070}
