"""SIMT execution-shape helpers.

The traversal kernels are modeled as lockstep rounds (one tree level per
round).  Threads whose query already terminated (hit a leaf / missed)
idle inside their warp; this module quantifies how much of the launched
machine that wastes and how many threads can actually be resident.
"""

from __future__ import annotations

import math

import numpy as np

WARP_SIZE = 32


def warps_for(threads: int) -> int:
    """Number of warps needed to host ``threads`` threads."""
    return math.ceil(threads / WARP_SIZE)


def warp_efficiency(active_per_round: list[int], launched: int) -> float:
    """Fraction of scheduled lanes doing useful work across the kernel.

    With queries assigned to threads in arrival order and uncorrelated
    termination depths, active threads stay uniformly spread over the
    launched warps, so a round with ``a`` active threads still occupies
    ``min(warps(launched), warps needed if perfectly compacted … )`` —
    in the worst (uncompacted) case all launched warps stay scheduled
    until the last thread finishes.  We model that worst case, which is
    what a straightforward CUDA traversal loop does.
    """
    if launched <= 0 or not active_per_round:
        return 1.0
    lanes_scheduled = warps_for(launched) * WARP_SIZE * len(active_per_round)
    lanes_useful = sum(min(a, launched) for a in active_per_round)
    if lanes_scheduled == 0:
        return 1.0
    return max(min(lanes_useful / lanes_scheduled, 1.0), 1e-6)


def bucket_probe_groups(
    home: np.ndarray, steps: np.ndarray, n_buckets: int
) -> np.ndarray:
    """Coalesced-transaction model for warp-cooperative bucket probing.

    Thread ``t`` (launch order; warp ``t // WARP_SIZE``) inspects buckets
    ``(home[t] + s) % n_buckets`` for ``s in 0..steps[t]-1``, one bucket
    per lockstep round.  The memory controller coalesces every warp's
    same-round accesses to one bucket into a single cache-line
    transaction, so the device pays one transaction per *distinct*
    ``(round, warp, bucket)`` triple — not one per probing lane.

    Returns the per-group lane counts (one entry per coalesced
    transaction); ``counts.size`` is the number of transactions issued
    and ``counts.mean()`` the average coalescing degree.
    """
    steps = np.asarray(steps, dtype=np.int64)
    home = np.asarray(home, dtype=np.int64)
    if home.size == 0 or n_buckets <= 0:
        return np.zeros(0, dtype=np.int64)
    max_steps = int(steps.max()) if steps.size else 0
    if max_steps <= 0:
        return np.zeros(0, dtype=np.int64)
    # One pass per lockstep round, grouping by (warp, bucket) within
    # the round: each round sorts only the still-probing threads, so
    # the typical one-round-dominant batch never pays the global
    # expand-and-sort over every (thread, round) pair.
    warp = np.arange(home.size, dtype=np.int64) // WARP_SIZE
    per_round = []
    for rnd in range(max_steps):
        alive = steps > rnd
        if alive.all():
            h, w = home + rnd, warp
        else:
            h, w = home[alive] + rnd, warp[alive]
        key = w * n_buckets + h % n_buckets
        key.sort()
        firsts = np.empty(key.size, dtype=bool)
        firsts[0] = True
        np.not_equal(key[1:], key[:-1], out=firsts[1:])
        bounds = np.nonzero(firsts)[0]
        per_round.append(np.diff(np.append(bounds, key.size)))
    return np.concatenate(per_round)


def occupancy_limit(batch_size: int, max_resident_threads: int) -> int:
    """Threads simultaneously resident for a launch of ``batch_size``."""
    return min(batch_size, max_resident_threads)


def waves(batch_size: int, max_resident_threads: int) -> float:
    """How many back-to-back thread waves the launch needs."""
    if batch_size <= 0:
        return 0.0
    return max(1.0, batch_size / max_resident_threads)
