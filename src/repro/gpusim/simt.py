"""SIMT execution-shape helpers.

The traversal kernels are modeled as lockstep rounds (one tree level per
round).  Threads whose query already terminated (hit a leaf / missed)
idle inside their warp; this module quantifies how much of the launched
machine that wastes and how many threads can actually be resident.
"""

from __future__ import annotations

import math

WARP_SIZE = 32


def warps_for(threads: int) -> int:
    """Number of warps needed to host ``threads`` threads."""
    return math.ceil(threads / WARP_SIZE)


def warp_efficiency(active_per_round: list[int], launched: int) -> float:
    """Fraction of scheduled lanes doing useful work across the kernel.

    With queries assigned to threads in arrival order and uncorrelated
    termination depths, active threads stay uniformly spread over the
    launched warps, so a round with ``a`` active threads still occupies
    ``min(warps(launched), warps needed if perfectly compacted … )`` —
    in the worst (uncompacted) case all launched warps stay scheduled
    until the last thread finishes.  We model that worst case, which is
    what a straightforward CUDA traversal loop does.
    """
    if launched <= 0 or not active_per_round:
        return 1.0
    lanes_scheduled = warps_for(launched) * WARP_SIZE * len(active_per_round)
    lanes_useful = sum(min(a, launched) for a in active_per_round)
    if lanes_scheduled == 0:
        return 1.0
    return max(min(lanes_useful / lanes_scheduled, 1.0), 1e-6)


def occupancy_limit(batch_size: int, max_resident_threads: int) -> int:
    """Threads simultaneously resident for a launch of ``batch_size``."""
    return min(batch_size, max_resident_threads)


def waves(batch_size: int, max_resident_threads: int) -> float:
    """How many back-to-back thread waves the launch needs."""
    if batch_size <= 0:
        return 0.0
    return max(1.0, batch_size / max_resident_threads)
