"""Stream / pipeline overlap model (sections 4.1 and 4.3).

The host code "utilizes a variable amount of command streams for both
CuART and GRT, decoupling the GPU dispatch from a specific number of host
threads".  A steady stream of batches flows through three pipeline
stages — host preparation, PCIe transfer, kernel — and the sustained
rate is set by the slowest stage, not the sum:

    batch_rate = 1 / max(t_host / host_parallelism,
                         t_pcie / pcie_overlap,
                         t_kernel / kernel_overlap)

``kernel_overlap`` > 1 models concurrent kernels from independent streams
filling the device when a single batch cannot; CuART's fully asynchronous
CUDA streams overlap better than GRT's synchronous OpenCL-style dispatch
(section 4.3: "CuART is much more thread agnostic ... inherent
asynchronousity of the CUDA API").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineStage:
    name: str
    seconds_per_batch: float
    parallelism: float = 1.0

    @property
    def effective_s(self) -> float:
        return self.seconds_per_batch / max(self.parallelism, 1e-9)


@dataclass(frozen=True)
class PipelineResult:
    stages: tuple[PipelineStage, ...]
    batch_size: int

    @property
    def bottleneck(self) -> PipelineStage:
        return max(self.stages, key=lambda s: s.effective_s)

    @property
    def seconds_per_batch(self) -> float:
        return self.bottleneck.effective_s

    @property
    def throughput_ops(self) -> float:
        """Sustained queries/second of the saturated pipeline."""
        t = self.seconds_per_batch
        return self.batch_size / t if t > 0 else 0.0

    @property
    def throughput_mops(self) -> float:
        return self.throughput_ops / 1e6

    @property
    def latency_s(self) -> float:
        """End-to-end latency of one batch (stages traversed serially)."""
        return sum(s.seconds_per_batch for s in self.stages)


def pipeline(stages: list[PipelineStage], batch_size: int) -> PipelineResult:
    """Steady-state throughput of a saturated batch pipeline."""
    return PipelineResult(stages=tuple(stages), batch_size=batch_size)


def launch_kernel(op: str, batch_size: int, *, injector=None) -> None:
    """Pre-launch gate for one kernel dispatch.

    The simulated equivalent of a ``cudaLaunchKernel`` call: the fault
    injector (:mod:`repro.gpusim.faults`) may abort the launch here —
    before the kernel body runs, so an abort leaves device state
    untouched and the batch can be replayed verbatim.  With
    ``injector=None`` this is a no-op.
    """
    if injector is not None:
        injector.on_kernel_launch(op, batch_size)
