"""Stream / pipeline overlap model (sections 4.1 and 4.3).

The host code "utilizes a variable amount of command streams for both
CuART and GRT, decoupling the GPU dispatch from a specific number of host
threads".  A steady stream of batches flows through three pipeline
stages — host preparation, PCIe transfer, kernel — and the sustained
rate is set by the slowest stage, not the sum:

    batch_rate = 1 / max(t_host / host_parallelism,
                         t_pcie / pcie_overlap,
                         t_kernel / kernel_overlap)

``kernel_overlap`` > 1 models concurrent kernels from independent streams
filling the device when a single batch cannot; CuART's fully asynchronous
CUDA streams overlap better than GRT's synchronous OpenCL-style dispatch
(section 4.3: "CuART is much more thread agnostic ... inherent
asynchronousity of the CUDA API").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class PipelineStage:
    name: str
    seconds_per_batch: float
    parallelism: float = 1.0

    @property
    def effective_s(self) -> float:
        return self.seconds_per_batch / max(self.parallelism, 1e-9)


@dataclass(frozen=True)
class PipelineResult:
    stages: tuple[PipelineStage, ...]
    batch_size: int

    @property
    def bottleneck(self) -> PipelineStage:
        return max(self.stages, key=lambda s: s.effective_s)

    @property
    def seconds_per_batch(self) -> float:
        return self.bottleneck.effective_s

    @property
    def throughput_ops(self) -> float:
        """Sustained queries/second of the saturated pipeline."""
        t = self.seconds_per_batch
        return self.batch_size / t if t > 0 else 0.0

    @property
    def throughput_mops(self) -> float:
        return self.throughput_ops / 1e6

    @property
    def latency_s(self) -> float:
        """End-to-end latency of one batch (stages traversed serially)."""
        return sum(s.seconds_per_batch for s in self.stages)


def pipeline(stages: list[PipelineStage], batch_size: int) -> PipelineResult:
    """Steady-state throughput of a saturated batch pipeline."""
    return PipelineResult(stages=tuple(stages), batch_size=batch_size)


@dataclass(frozen=True)
class StreamEvent:
    """Simulated timeline of one batch dispatched through a
    :class:`StreamScheduler` (all clocks in seconds since the
    scheduler's epoch)."""

    op: str
    h2d_s: float
    kernel_s: float
    d2h_s: float
    copy_start_s: float
    kernel_start_s: float
    done_s: float

    @property
    def serial_s(self) -> float:
        """What the batch would cost with no cross-batch overlap."""
        return self.h2d_s + self.kernel_s + self.d2h_s


@dataclass(frozen=True)
class ShardWindow:
    """One concurrent device's share of a parallel fold: enough of its
    pre-merge :class:`StreamOverlapStats` to reconstruct its critical
    path (:mod:`repro.obs.critical_path`) after
    :meth:`StreamOverlapStats.merge_parallel` collapsed the numbers."""

    makespan_s: float
    streams: int
    events: list
    window_starts: list


@dataclass
class StreamOverlapStats:
    """Aggregate overlap accounting of one submit/drain window."""

    batches: int = 0
    #: sum of every batch's serial (transfer + kernel) cost.
    serial_s: float = 0.0
    #: simulated completion time of the last batch (the pipelined
    #: makespan: staging of batch *i+1* overlaps batch *i*'s kernel).
    makespan_s: float = 0.0
    streams: int = 2
    #: the window's :class:`StreamEvent` timeline (window-relative
    #: clocks), retained so :mod:`repro.obs.critical_path` can
    #: reconstruct which stage bound the makespan.  Excluded from
    #: :meth:`as_dict` and from equality.
    events: list = field(default_factory=list, repr=False, compare=False)
    #: after :meth:`add_window` folds, the :attr:`events` index where
    #: each *subsequent* window begins (the first window starts at 0;
    #: each window keeps its own relative clock).
    window_starts: list = field(
        default_factory=list, repr=False, compare=False
    )
    #: after :meth:`merge_parallel` folds, one :class:`ShardWindow` per
    #: concurrent device (the per-shard timelines the max-makespan fold
    #: would otherwise lose).  Empty while no parallel fold happened.
    shard_parts: list = field(
        default_factory=list, repr=False, compare=False
    )

    @property
    def saved_s(self) -> float:
        """Simulated seconds hidden by the overlap."""
        return max(self.serial_s - self.makespan_s, 0.0)

    @property
    def overlap_ratio(self) -> float:
        """Fraction of the serial cost hidden by pipelining (0 when
        nothing was submitted or nothing could overlap)."""
        return self.saved_s / self.serial_s if self.serial_s > 0 else 0.0

    def add_window(self, other: "StreamOverlapStats") -> None:
        """Fold a later submit window into this one.  Windows are
        sequential in simulated time (a barrier drained the pipeline
        between them), so their makespans add."""
        self.batches += other.batches
        self.serial_s += other.serial_s
        self.makespan_s += other.makespan_s
        if other.events:
            off = len(self.events)
            if self.events:
                self.window_starts.append(off)
            self.window_starts.extend(b + off for b in other.window_starts)
            self.events.extend(other.events)

    def _as_part(self) -> ShardWindow:
        return ShardWindow(
            makespan_s=self.makespan_s, streams=self.streams,
            events=self.events, window_starts=list(self.window_starts),
        )

    def merge_parallel(self, other: "StreamOverlapStats") -> None:
        """Fold a *concurrent* window into this one.  The windows ran on
        independent devices over the same simulated interval (one shard
        per device), so the combined makespan is the max — the slowest
        device — while serial cost and batch counts still add.  This is
        the device-scaling primitive: N balanced shards each doing 1/N
        of the serial work leave the makespan ~flat."""
        # move both timelines into per-device parts before the numeric
        # fold erases which device they belonged to
        if not self.shard_parts and (self.events or self.batches):
            self.shard_parts.append(self._as_part())
            self.events, self.window_starts = [], []
        if other.shard_parts:
            self.shard_parts.extend(other.shard_parts)
        elif other.events or other.batches:
            self.shard_parts.append(other._as_part())
        self.batches += other.batches
        self.serial_s += other.serial_s
        self.makespan_s = max(self.makespan_s, other.makespan_s)
        self.streams += other.streams

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "streams": self.streams,
            "serial_s": round(self.serial_s, 9),
            "makespan_s": round(self.makespan_s, 9),
            "saved_s": round(self.saved_s, 9),
            "overlap_ratio": round(self.overlap_ratio, 4),
        }


class StreamScheduler:
    """Double-buffered multi-stream dispatch clock (sections 4.1/4.3).

    Models the async CUDA pipeline with two serial engines — the PCIe
    copy engine and the compute engine — and ``n_streams`` batch buffers
    in flight: while batch *i*'s kernel runs, batch *i+1*'s host→device
    staging proceeds on another stream, so the steady-state per-batch
    cost is ``max(kernel, transfer)`` instead of their sum
    (:func:`repro.gpusim.cost_model.overlapped_batch_time`).  With
    ``n_streams=1`` the copy engine may not run ahead of the compute
    engine and the model degenerates to the serial sum, which is the
    GRT-style synchronous dispatch.

    The scheduler is a pure simulated-time bookkeeper: callers execute
    their kernels eagerly (results are exact either way) and report the
    modeled stage times here; :meth:`drain` closes the window and
    returns the overlap accounting.
    """

    def __init__(self, n_streams: int = 2, *, metrics=None) -> None:
        if n_streams < 1:
            raise ValueError(f"n_streams must be >= 1, got {n_streams}")
        self.n_streams = n_streams
        self._copy_free_s = 0.0
        self._kernel_free_s = 0.0
        #: completion clocks of in-flight batches (buffer reuse: batch
        #: ``i + n_streams`` cannot stage before batch ``i`` completes).
        self._inflight: deque = deque()
        self._stats = StreamOverlapStats(streams=n_streams)
        self._m_saved = self._m_batches = None
        if metrics is not None:
            self._m_saved = metrics.counter(
                "stream_overlap_saved_us_total",
                "simulated microseconds hidden by multi-stream overlap",
            )
            self._m_batches = metrics.counter(
                "stream_batches_total",
                "batches dispatched through the stream scheduler",
            )

    @property
    def pending(self) -> int:
        return len(self._inflight)

    def submit(
        self, op: str, *, h2d_s: float, kernel_s: float, d2h_s: float = 0.0
    ) -> StreamEvent:
        """Account one batch; returns its simulated timeline."""
        copy_start = self._copy_free_s
        if self.n_streams == 1:
            # a single stream fully serializes: staging waits for the
            # previous batch's kernel *and* return DMA to finish
            if self._inflight:
                copy_start = max(copy_start, self._inflight[-1])
        elif len(self._inflight) >= self.n_streams:
            # all batch buffers busy: wait for the oldest to complete
            copy_start = max(copy_start, self._inflight.popleft())
        copy_done = copy_start + h2d_s
        kernel_start = max(copy_done, self._kernel_free_s)
        kernel_done = kernel_start + kernel_s
        done = kernel_done + d2h_s  # full duplex: the return DMA is free
        self._copy_free_s = copy_done
        self._kernel_free_s = kernel_done
        self._inflight.append(done)
        st = self._stats
        st.batches += 1
        st.serial_s += h2d_s + kernel_s + d2h_s
        st.makespan_s = max(st.makespan_s, done)
        if self._m_batches is not None:
            self._m_batches.inc()
        ev = StreamEvent(
            op=op, h2d_s=h2d_s, kernel_s=kernel_s, d2h_s=d2h_s,
            copy_start_s=copy_start, kernel_start_s=kernel_start, done_s=done,
        )
        st.events.append(ev)
        return ev

    def drain(self) -> StreamOverlapStats:
        """Close the window: return the accumulated overlap stats and
        reset the clocks for the next submit window."""
        stats = self._stats
        if self._m_saved is not None and stats.saved_s > 0:
            self._m_saved.inc(stats.saved_s * 1e6)
        self._stats = StreamOverlapStats(streams=self.n_streams)
        self._copy_free_s = 0.0
        self._kernel_free_s = 0.0
        self._inflight.clear()
        return stats


def launch_kernel(op: str, batch_size: int, *, injector=None) -> None:
    """Pre-launch gate for one kernel dispatch.

    The simulated equivalent of a ``cudaLaunchKernel`` call: the fault
    injector (:mod:`repro.gpusim.faults`) may abort the launch here —
    before the kernel body runs, so an abort leaves device state
    untouched and the batch can be replayed verbatim.  With
    ``injector=None`` this is a no-op.
    """
    if injector is not None:
        injector.on_kernel_launch(op, batch_size)
