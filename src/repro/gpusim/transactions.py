"""Memory-transaction accounting.

The vectorized kernels process a query batch level by level (one "round"
per tree level — the SIMT lockstep view of the traversal loop).  Each
round they record how many global-memory transactions of which size they
issued and how many threads were still active.  The log keeps aggregates
only, so recording costs O(1) per (round, size-class) instead of O(batch).

Two properties of the log drive the CuART-vs-GRT comparison:

* ``dependent_rounds`` — the length of the serial dependency chain.  GRT
  needs *two* dependent transactions per node (header first, then a body
  whose size depends on the header, section 3.1), CuART one.
* alignment/size knowledge — CuART transactions carry ``aligned=True``
  and their exact node size; GRT body reads are flagged unaligned
  (arbitrary byte offsets in the single packed buffer).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class RoundStats:
    """Aggregates for one dependent traversal round."""

    active_threads: int = 0
    transactions: int = 0
    bytes: int = 0
    #: number of *distinct* device bytes touched this round.  Rounds near
    #: the root touch few distinct nodes (every query crosses the same
    #: upper levels), so their traffic becomes L2-resident; the cost
    #: model uses this to reproduce the paper's tree-size caching
    #: effects (figures 10, 15, 16).
    distinct_bytes: int = 0


@dataclass
class TransactionLog:
    """Aggregated record of all global-memory traffic of one kernel."""

    #: (size_bytes, aligned) -> number of transactions
    by_class: Counter = field(default_factory=Counter)
    rounds: list[RoundStats] = field(default_factory=list)
    #: threads launched (batch size); set once by the kernel.
    launched_threads: int = 0
    #: extra integer ALU / compare work, in simulated cycles (minor term).
    compute_cycles: int = 0
    #: atomic operations issued (update engine hash table CAS/max).
    atomic_ops: int = 0
    #: seconds of unavoidable serialization the kernel self-inflicts —
    #: e.g. GRT's globally-visible atomic read-modify-writes that fence
    #: and contend on conflicting addresses (figure 17: "the throughput
    #: of GRT remains almost constant ... which indicates memory
    #: conflicts").  Added on top of the roofline bounds.
    serial_stall_s: float = 0.0

    # ------------------------------------------------------------------
    def begin_round(self, active_threads: int) -> None:
        """Open a new dependent round with ``active_threads`` live lanes."""
        self.rounds.append(RoundStats(active_threads=int(active_threads)))

    def record(
        self, size_bytes: int, count: int = 1, *, aligned: bool = True
    ) -> None:
        """Record ``count`` independent transactions of ``size_bytes``
        within the current round."""
        if count <= 0:
            return
        self.by_class[(int(size_bytes), bool(aligned))] += int(count)
        if not self.rounds:
            self.begin_round(self.launched_threads)
        cur = self.rounds[-1]
        cur.transactions += int(count)
        cur.bytes += int(size_bytes) * int(count)

    def record_atomics(self, count: int) -> None:
        self.atomic_ops += int(count)

    def record_compute(self, cycles: int) -> None:
        self.compute_cycles += int(cycles)

    # ------------------------------------------------------------------
    @property
    def total_transactions(self) -> int:
        return sum(self.by_class.values())

    @property
    def total_bytes(self) -> int:
        return sum(size * cnt for (size, _), cnt in self.by_class.items())

    @property
    def unaligned_transactions(self) -> int:
        return sum(cnt for (_, aligned), cnt in self.by_class.items() if not aligned)

    @property
    def dependent_rounds(self) -> int:
        """Length of the serial chain the slowest thread experiences."""
        return len(self.rounds)

    def merge(self, other: "TransactionLog") -> None:
        """Fold another log into this one (rounds concatenate: the kernels
        involved ran back to back)."""
        self.by_class.update(other.by_class)
        self.rounds.extend(other.rounds)
        self.launched_threads = max(self.launched_threads, other.launched_threads)
        self.compute_cycles += other.compute_cycles
        self.atomic_ops += other.atomic_ops
        self.serial_stall_s += other.serial_stall_s

    def summary(self) -> dict:
        """Human-readable aggregate dict (used by the bench reports)."""
        return {
            "transactions": self.total_transactions,
            "bytes": self.total_bytes,
            "unaligned": self.unaligned_transactions,
            "rounds": self.dependent_rounds,
            "atomics": self.atomic_ops,
            "threads": self.launched_threads,
        }
