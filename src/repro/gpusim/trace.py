"""Human-readable kernel traces: where did the time go?

Turns a :class:`TransactionLog` + :class:`CostModel` evaluation into the
per-round / per-size-class breakdown a profiler would show — useful when
debugging why a kernel is command- vs latency-bound, and used by the
ablation benches to print their evidence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.report import format_table
from repro.gpusim.cost_model import CostModel, KernelTiming
from repro.gpusim.transactions import TransactionLog


@dataclass
class TraceReport:
    """One kernel's profile."""

    timing: KernelTiming
    l2_fraction: float
    rows_by_class: list[tuple]
    rows_by_round: list[tuple]
    queries: int

    def __str__(self) -> str:
        t = self.timing
        lines = [
            f"kernel total {t.total_s * 1e6:9.2f} us   "
            f"(bound by {t.binding_constraint})",
            f"  command {t.command_bound_s * 1e6:9.2f} us | "
            f"latency {t.latency_bound_s * 1e6:7.2f} us | "
            f"compute {t.compute_bound_s * 1e6:7.2f} us | "
            f"launch {t.launch_overhead_s * 1e6:5.1f} us",
            f"  L2-resident traffic: {100 * self.l2_fraction:.1f}%   "
            f"warp efficiency: {100 * t.warp_efficiency:.1f}%",
            "",
            "by transaction class:",
            format_table(
                ["size B", "aligned", "count", "count/query"],
                self.rows_by_class,
            ),
            "",
            "by dependent round:",
            format_table(
                ["round", "active", "transactions", "distinct KiB"],
                self.rows_by_round,
            ),
        ]
        return "\n".join(lines)


def kernel_span_args(log: TransactionLog, timing: KernelTiming) -> dict:
    """Trace-span ``args`` payload for one simulated kernel execution.

    The host engines attach this to the ``gpu-sim`` track events they
    emit per device batch (:meth:`repro.obs.tracing.Tracer.emit_simulated`),
    so a chrome://tracing view shows *why* the simulated kernel took the
    time it did — transaction count, dependent rounds, and which roofline
    bound it."""
    return {
        "sim_us": round(timing.total_s * 1e6, 3),
        "bound": timing.binding_constraint,
        "transactions": log.total_transactions,
        "bytes": log.total_bytes,
        "rounds": log.dependent_rounds,
        "atomics": log.atomic_ops,
        "threads": log.launched_threads,
        "warp_efficiency": round(timing.warp_efficiency, 4),
    }


def trace_kernel(
    log: TransactionLog, model: CostModel, queries: int | None = None
) -> TraceReport:
    """Profile one transaction log against a device."""
    queries = queries or max(log.launched_threads, 1)
    timing = model.kernel_time(log)
    by_class = sorted(
        (
            (size, "yes" if aligned else "no", count, count / queries)
            for (size, aligned), count in log.by_class.items()
        ),
        key=lambda r: -r[2],
    )
    by_round = [
        (i, r.active_threads, r.transactions, round(r.distinct_bytes / 1024, 1))
        for i, r in enumerate(log.rounds)
    ]
    return TraceReport(
        timing=timing,
        l2_fraction=model.l2_fraction(log),
        rows_by_class=by_class,
        rows_by_round=by_round,
        queries=queries,
    )


def compare_kernels(
    logs: dict[str, TransactionLog], model: CostModel, queries: int
) -> str:
    """Side-by-side summary of several kernels on one device."""
    rows = []
    for name, log in logs.items():
        t = model.kernel_time(log)
        rows.append(
            (
                name,
                log.total_transactions / queries,
                round(log.total_bytes / queries, 1),
                log.dependent_rounds,
                round(t.total_s * 1e6, 2),
                round(queries / t.total_s / 1e6, 1),
                t.binding_constraint,
            )
        )
    return format_table(
        ["kernel", "tx/query", "B/query", "rounds", "us", "sim MOps/s",
         "bound"],
        rows,
    )
