"""PCIe transfer model.

Section 4.1: "the throughput is measured as an end-to-end manner,
including CPU overhead for processing the lookups afterwards, PCIe
transfer times and pipelining."  Each batch ships its key matrix to the
device and its result vector back; both directions can overlap with
kernel execution across streams (``repro.gpusim.streams``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PcieLink:
    name: str
    #: effective per-direction bandwidth in bytes/second (after protocol
    #: overhead; ~80% of the headline rate).
    bandwidth: float
    #: per-transfer setup latency in seconds (DMA descriptor, doorbell).
    latency_s: float = 8e-6

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` in one direction."""
        if nbytes <= 0:
            return 0.0
        return self.latency_s + nbytes / self.bandwidth

    def transfer(self, nbytes: int, *, direction: str = "h2d",
                 injector=None, op: str | None = None) -> float:
        """Guarded transfer: consult the fault injector, then return the
        modeled transfer time.

        The injector fires *before* the transfer is considered
        delivered — a timeout or checksum mismatch means the batch never
        reached the other side, so re-sending the same bytes is safe.
        """
        if injector is not None and nbytes > 0:
            injector.on_transfer(nbytes, direction=direction, op=op)
        return self.transfer_time(nbytes)

    def batch_transfer_times(
        self, queries: int, key_bytes: int, *, result_bytes: int = 8
    ) -> tuple[float, float]:
        """(h2d, d2h) seconds for one batch of ``queries`` operations.

        The forward leg ships the fixed-width key matrix; the return leg
        ships one result word per query.  The two directions ride
        separate full-duplex DMA channels, so a stream scheduler may
        overlap them with each other and with kernel execution.
        """
        return (
            self.transfer_time(queries * key_bytes),
            self.transfer_time(queries * result_bytes),
        )


#: Gen3 x16 (GTX1070-era): 15.75 GB/s raw, ~12.5 effective.
PCIE3_X16 = PcieLink(name="PCIe 3.0 x16", bandwidth=12.5e9)

#: Gen4 x16 (A100 / RTX3090 hosts): 31.5 GB/s raw, ~25 effective.
PCIE4_X16 = PcieLink(name="PCIe 4.0 x16", bandwidth=25e9)


def link_for_device(device_name: str) -> PcieLink:
    """Paper machines: the notebook's GTX1070 is Gen3, the rest Gen4."""
    return PCIE3_X16 if "1070" in device_name else PCIE4_X16
