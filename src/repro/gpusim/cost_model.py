"""Transaction log → simulated kernel time.

Roofline-style model with three bounds (section 3.1 motivates all three):

* **command bound** — every transaction occupies a memory channel for a
  size- and alignment-dependent number of command cycles
  (:meth:`MemoryArchitecture.service_time`);
* **latency bound** — each traversal is a chain of dependent loads; with
  ``R`` rounds, random latency ``L`` and at most ``I`` resident threads,
  a batch of ``B`` threads cannot finish before ``R × L × max(1, B/I)``;
* **compute bound** — ~20 cycles of pointer arithmetic per node, almost
  never binding (that is the paper's point).

Kernel time is the max of the bounds plus the launch overhead.  An L2
correction discounts traffic to the hot upper tree levels: the compacted
root table and the first levels below it are touched by *every* query in
a batch and therefore hit in L2 after the first access.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.devices import CpuSpec, DeviceSpec
from repro.gpusim.simt import warp_efficiency
from repro.gpusim.transactions import TransactionLog


@dataclass(frozen=True)
class KernelTiming:
    """Breakdown of one simulated kernel execution."""

    command_bound_s: float
    bandwidth_included: bool
    latency_bound_s: float
    compute_bound_s: float
    launch_overhead_s: float
    warp_efficiency: float
    total_s: float

    @property
    def binding_constraint(self) -> str:
        bounds = {
            "memory-command": self.command_bound_s,
            "latency-chain": self.latency_bound_s,
            "compute": self.compute_bound_s,
        }
        return max(bounds, key=bounds.get)  # type: ignore[arg-type]


@dataclass
class CostModel:
    """Evaluates transaction logs against a device description."""

    device: DeviceSpec
    #: fraction of per-query traffic assumed L2-resident (hot upper
    #: levels).  The traversal kernels set this per-log via
    #: ``log.l2_fraction`` when they can estimate it; this is the default.
    default_l2_fraction: float = 0.15
    #: scales the simulated L2 capacity.  Experiments that shrink the
    #: paper's trees by ``1/factor`` must shrink the caches alike, or a
    #: scaled-down 16M-key tree would suddenly fit in L2 and flip the
    #: cache-residency regime the paper measured (see bench.runner.Scale).
    l2_scale: float = 1.0

    def l2_fraction(self, log: TransactionLog) -> float:
        """Fraction of the log's traffic served from L2.

        Rounds are sorted by distinct footprint and greedily marked
        L2-resident until the device's L2 is full; a round whose distinct
        working set fits is assumed hot after the first few queries of a
        saturated pipeline touch it.  Falls back to
        :attr:`default_l2_fraction` when the log carries no footprints.
        """
        rounds = [r for r in log.rounds if r.transactions > 0]
        if not rounds or all(r.distinct_bytes == 0 for r in rounds):
            return self.default_l2_fraction
        budget = self.device.l2_bytes * self.l2_scale
        resident_tx = 0
        total_tx = 0
        for r in sorted(rounds, key=lambda r: r.distinct_bytes):
            total_tx += r.transactions
            if r.distinct_bytes <= budget:
                budget -= r.distinct_bytes
                resident_tx += r.transactions
        if total_tx == 0:
            return self.default_l2_fraction
        return resident_tx / total_tx

    def kernel_time(self, log: TransactionLog) -> KernelTiming:
        device = self.device
        mem = device.memory
        l2_fraction = min(max(self.l2_fraction(log), 0.0), 0.95)

        # --- command/bandwidth bound --------------------------------
        dram_classes = {
            cls: cnt * (1.0 - l2_fraction) for cls, cnt in log.by_class.items()
        }
        command_bound = mem.service_time(dram_classes)
        # atomics serialize on L2 slices; charge a per-op cost
        command_bound += log.atomic_ops * 2.0e-9 / max(mem.channels / 8, 1)

        # --- latency bound -------------------------------------------
        batch = max(log.launched_threads, 1)
        resident = min(batch, device.max_resident_threads)
        wavefronts = max(1.0, batch / device.max_resident_threads)
        eff = warp_efficiency(
            [r.active_threads for r in log.rounds], log.launched_threads
        )
        # each dependent round costs one memory round trip for the wave;
        # L2-resident accesses are much faster
        round_latency = (
            (1.0 - l2_fraction) * mem.random_latency_s
            + l2_fraction * device.l2_hit_latency_s
        )
        latency_bound = log.dependent_rounds * round_latency * wavefronts

        # --- compute bound -------------------------------------------
        issue_rate = device.sm_count * device.core_clock_hz * device.ipc_per_sm
        compute_bound = log.compute_cycles / issue_rate / eff

        total = (
            device.launch_overhead_s
            + max(command_bound, latency_bound, compute_bound)
            + log.serial_stall_s
        )
        return KernelTiming(
            command_bound_s=command_bound,
            bandwidth_included=True,
            latency_bound_s=latency_bound,
            compute_bound_s=compute_bound,
            launch_overhead_s=device.launch_overhead_s,
            warp_efficiency=eff,
            total_s=total,
        )

    def throughput_mops(self, log: TransactionLog, queries: int) -> float:
        """Simulated kernel-only throughput in MOps/s."""
        t = self.kernel_time(log).total_s
        return queries / t / 1e6


def overlapped_batch_time(
    kernel_s: float, h2d_s: float, d2h_s: float = 0.0, *, streams: int = 2
) -> float:
    """Steady-state per-batch cost of a pipelined multi-stream dispatch.

    With two or more streams the PCIe copy engine stages batch *i+1*
    while batch *i*'s kernel runs (sections 4.1/4.3), so in steady state
    each batch costs the *slowest* engine, not the sum of all three:
    ``max(kernel, h2d, d2h)`` — the H2D and D2H directions are separate
    full-duplex DMA channels.  With a single stream staging serializes
    behind the kernel (GRT-style synchronous dispatch) and the cost is
    the serial sum.  :class:`repro.gpusim.streams.StreamScheduler` is the
    event-level counterpart; this is the closed-form steady state.
    """
    if streams <= 1:
        return kernel_s + h2d_s + d2h_s
    return max(kernel_s, h2d_s, d2h_s)


# ---------------------------------------------------------------------------
# CPU lookup model (figures 7, 13, 14, 17)
# ---------------------------------------------------------------------------


def cpu_lookup_time(
    cpu: CpuSpec,
    avg_levels: float,
    node_bytes: float,
    working_set_bytes: int,
    *,
    contiguous: bool,
    threads: int | None = None,
) -> float:
    """Average seconds per lookup on the host CPU.

    ``contiguous`` distinguishes the CuART flat layout from the
    malloc-spread classic ART (section 4.2: "CuART performs and scales
    significantly better than the original ART because it employs
    continous pieces of memory. The traditional ART implementation is
    spread across the main memory.").

    The cache model is a capacity argument: a working set that fits a
    cache level hits there.  The contiguous layout (a) needs fewer
    distinct cache lines per node because node records are packed and
    aligned, (b) keeps hot upper levels dense so the effective resident
    fraction of the working set is larger, and (c) profits from the
    hardware prefetcher on the final leaf-array access.
    """
    threads = threads or cpu.threads
    lines_per_node = max(node_bytes / 64.0, 1.0)
    if not contiguous:
        # malloc spread: header and children land on separate lines and
        # allocator metadata pollutes the cache
        lines_per_node *= 1.6
        working_set_bytes = int(working_set_bytes * 1.5)

    # capacity-based hit fractions per level of the hierarchy
    def resident_fraction(cache_bytes: int) -> float:
        if working_set_bytes <= 0:
            return 1.0
        frac = cache_bytes / working_set_bytes
        return min(1.0, frac)

    # hot upper levels are resident first: contiguous layouts pack them
    # into ~10x fewer lines, which shows up as a residency bonus
    bonus = 3.0 if contiguous else 1.0
    f1 = resident_fraction(int(cpu.l1_bytes * bonus))
    f2 = resident_fraction(int(cpu.l2_bytes * bonus))
    f3 = resident_fraction(int(cpu.l3_bytes * bonus))

    t_line = (
        f1 * cpu.l1_latency_s
        + (f2 - f1) * cpu.l2_latency_s
        + (f3 - f2) * cpu.l3_latency_s
        + (1.0 - f3) * cpu.dram_latency_s()
    )
    if contiguous:
        # known-size aligned record: the second and further lines of a
        # node stream behind the first (hardware prefetch)
        t_node = t_line + (lines_per_node - 1.0) * cpu.l1_latency_s
    else:
        t_node = lines_per_node * t_line
    t_compute = cpu.node_compute_cycles / cpu.clock_hz
    per_lookup = avg_levels * (t_node + t_compute)
    return per_lookup / max(threads, 1)


#: cache-line ownership transfer + fence of one globally-visible atomic
#: update on the host (figure 17's CPU baseline plateaus near 2.5 MOps/s:
#: every writer serializes on line ownership and memory ordering).
CPU_ATOMIC_RMW_S = 3.2e-7


def cpu_update_time(
    cpu: CpuSpec,
    avg_levels: float,
    node_bytes: float,
    working_set_bytes: int,
    *,
    contiguous: bool,
    threads: int | None = None,
) -> float:
    """Average seconds per *atomic* update on the host CPU.

    An update is a lookup plus an atomic read-modify-write with global
    visibility; the RMWs of different threads serialize on the memory
    ordering point, so adding threads stops helping almost immediately —
    the effect that makes figure 17's CPU bar flat and low.
    """
    lookup = cpu_lookup_time(
        cpu,
        avg_levels,
        node_bytes,
        working_set_bytes,
        contiguous=contiguous,
        threads=threads,
    )
    # the serialized RMW does not parallelize across threads
    return lookup + CPU_ATOMIC_RMW_S
