"""Deterministic, seedable fault injection for the simulated device.

Production GPU serving sees failure modes the paper's benchmarks never
exercise: transient kernel aborts (ECC traps, launch failures), PCIe
transfer timeouts and corrupted DMA bursts, hash-table insertion
failures under pathological batches, and allocation refusals when the
device is under memory pressure.  This module injects all of them at
the *dispatch boundaries* of the simulation — the same places a real
driver would surface them — so the resilience layer
(:mod:`repro.host.resilience`) can be tested end to end without
monkeypatching.

Design rules:

* **Deterministic.**  One :class:`FaultInjector` owns one seeded
  generator; every hook consumes draws in dispatch order, so a given
  ``(seed, workload)`` pair always faults at the same points.  Retries
  consume fresh draws, so a retried batch can fault again (and the
  retry policy's cap matters).
* **Replay-safe.**  Every hook fires *before* the guarded operation
  mutates any state: kernel aborts at launch, transfer faults before
  the batch is committed, allocation faults before buffers are grown.
  A caught fault therefore means "nothing happened" and the identical
  batch can be re-dispatched.
* **No monkeypatching.**  The hooks are explicit seams
  (:func:`repro.gpusim.streams.launch_kernel`,
  :meth:`repro.gpusim.pcie.PcieLink.transfer`,
  :func:`repro.gpusim.memory.allocation_guard`) threaded through the
  kernels via an optional ``injector=`` argument; passing ``None``
  (the default everywhere) is a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import (
    DeviceOOMError,
    HashTableFullError,
    PcieTransferError,
    SimulationError,
    TransientKernelError,
)
from repro.util.rng import DEFAULT_SEED, make_rng

#: every fault kind the injector can produce, in the label order used by
#: the ``gpusim_faults_injected_total{kind}`` counter.
FAULT_KINDS = (
    "kernel_abort",
    "pcie_timeout",
    "pcie_corruption",
    "hashtable_insert",
    "device_oom",
)


@dataclass(frozen=True)
class FaultConfig:
    """Per-kind fault probabilities (each applied per guarded event).

    All rates are probabilities in ``[0, 1]``; the default config
    injects nothing.  ``seed`` makes a run reproducible end to end.
    """

    seed: int = DEFAULT_SEED
    #: probability a kernel launch aborts before executing.
    kernel_abort_rate: float = 0.0
    #: probability a host↔device transfer times out.
    pcie_timeout_rate: float = 0.0
    #: probability a transfer is flagged corrupt (checksum mismatch).
    pcie_corruption_rate: float = 0.0
    #: probability the update-engine hash table refuses an insertion
    #: batch (transient variant of :class:`HashTableFullError`).
    hashtable_fault_rate: float = 0.0
    #: probability a device allocation (buffer growth, re-map) fails.
    oom_rate: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name == "seed":
                continue
            v = getattr(self, f.name)
            if not 0.0 <= float(v) <= 1.0:
                raise SimulationError(
                    "fault rate must be in [0, 1]", field=f.name, value=v
                )

    @property
    def enabled(self) -> bool:
        """True if any fault kind has a nonzero rate."""
        return any(
            getattr(self, f.name) > 0.0
            for f in fields(self)
            if f.name != "seed"
        )

    @classmethod
    def uniform(cls, rate: float, *, seed: int = DEFAULT_SEED,
                oom_rate: float | None = None) -> "FaultConfig":
        """Same ``rate`` for every transient kind — the soak-test shape.

        ``oom_rate`` defaults to ``rate`` too; pass ``0.0`` to keep
        allocation paths fault-free while stressing the batch path.
        """
        return cls(
            seed=seed,
            kernel_abort_rate=rate,
            pcie_timeout_rate=rate,
            pcie_corruption_rate=rate,
            hashtable_fault_rate=rate,
            oom_rate=rate if oom_rate is None else oom_rate,
        )


class FaultInjector:
    """Consumes a seeded random stream and raises faults at hook points.

    Hooks are cheap no-ops for kinds whose rate is zero (no draw is
    consumed), so a config that only injects kernel aborts leaves the
    PCIe/allocation draw sequence untouched.
    """

    def __init__(self, config: FaultConfig, *, metrics=None) -> None:
        self.config = config
        self.rng = make_rng(config.seed)
        self.injected: dict[str, int] = dict.fromkeys(FAULT_KINDS, 0)
        self._counter = (
            metrics.counter(
                "gpusim_faults_injected_total",
                "faults injected by kind",
                labels=("kind",),
            )
            if metrics is not None
            else None
        )

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def _trip(self, kind: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        if float(self.rng.random()) >= rate:
            return False
        self.injected[kind] += 1
        if self._counter is not None:
            self._counter.labels(kind=kind).inc()
        return True

    # ------------------------------------------------------------------
    # hook points, one per fault kind
    # ------------------------------------------------------------------
    def on_kernel_launch(self, op: str, batch_size: int) -> None:
        """Called by :func:`repro.gpusim.streams.launch_kernel` before a
        kernel body runs."""
        if self._trip("kernel_abort", self.config.kernel_abort_rate):
            raise TransientKernelError(
                "injected transient kernel abort",
                fault="kernel_abort", op=op, batch_size=batch_size,
            )

    def on_transfer(self, nbytes: int, *, direction: str,
                    op: str | None = None) -> None:
        """Called by :meth:`repro.gpusim.pcie.PcieLink.transfer` before
        a transfer is considered delivered."""
        if self._trip("pcie_timeout", self.config.pcie_timeout_rate):
            raise PcieTransferError(
                "injected PCIe transfer timeout",
                fault="pcie_timeout", direction=direction,
                nbytes=int(nbytes), op=op,
            )
        if self._trip("pcie_corruption", self.config.pcie_corruption_rate):
            raise PcieTransferError(
                "injected PCIe transfer corruption (checksum mismatch)",
                fault="pcie_corruption", direction=direction,
                nbytes=int(nbytes), op=op,
            )

    def on_hashtable(self, op: str, n_keys: int) -> None:
        """Called by the write kernels before the dedup hash-table pass.

        Raises the *transient* flavour of :class:`HashTableFullError`
        (``exc.transient`` is True, ``fault=`` is set) so callers can
        tell an injected refusal from genuine capacity pressure, which
        needs a growth recovery rather than a retry."""
        if self._trip("hashtable_insert", self.config.hashtable_fault_rate):
            raise HashTableFullError(
                "injected hash-table insertion failure",
                transient=True,
                fault="hashtable_insert", buffer="hash-table",
                op=op, requested=int(n_keys),
            )

    def on_alloc(self, nbytes: int, what: str, *,
                 op: str | None = None) -> None:
        """Called by :func:`repro.gpusim.memory.allocation_guard` before
        a simulated device allocation succeeds."""
        if self._trip("device_oom", self.config.oom_rate):
            raise DeviceOOMError(
                "injected device allocation failure",
                fault="device_oom", buffer=what,
                requested_bytes=int(nbytes), op=op,
            )

    def snapshot(self) -> dict[str, int]:
        """Copy of the per-kind injected-fault counts."""
        return dict(self.injected)
