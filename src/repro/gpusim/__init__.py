"""Simulated GPU substrate.

The paper's kernels are memory-transaction-bound (section 3.1: ~20 compute
cycles per node vs ≥50-cycle global loads), so this reproduction replaces
the CUDA runtime by

* NumPy-vectorized batch kernels that compute the *actual* results
  (``repro.cuart.lookup``, ``repro.grt.kernel``, ...), and
* a transaction-level performance model: every simulated global-memory
  access is recorded into a :class:`TransactionLog` and converted into
  simulated kernel time by :class:`CostModel` given a device description
  (channels, command clock, transaction atom, bandwidth, latency).

This package defines the model; the kernels live with their data layouts.
"""

from repro.gpusim.transactions import TransactionLog
from repro.gpusim.memory import MemoryArchitecture, allocation_guard
from repro.gpusim.faults import FAULT_KINDS, FaultConfig, FaultInjector
from repro.gpusim.streams import launch_kernel
from repro.gpusim.devices import (
    DeviceSpec,
    A100,
    RTX3090,
    GTX1070,
    SERVER_CPU,
    WORKSTATION_CPU,
    DEVICES,
)
from repro.gpusim.cost_model import CostModel, KernelTiming
from repro.gpusim.pcie import PcieLink, PCIE3_X16, PCIE4_X16
from repro.gpusim.simt import warp_efficiency, occupancy_limit

__all__ = [
    "TransactionLog",
    "MemoryArchitecture",
    "DeviceSpec",
    "A100",
    "RTX3090",
    "GTX1070",
    "SERVER_CPU",
    "WORKSTATION_CPU",
    "DEVICES",
    "CostModel",
    "KernelTiming",
    "PcieLink",
    "PCIE3_X16",
    "PCIE4_X16",
    "warp_efficiency",
    "occupancy_limit",
    "FAULT_KINDS",
    "FaultConfig",
    "FaultInjector",
    "allocation_guard",
    "launch_kernel",
]
