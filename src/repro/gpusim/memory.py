"""Device memory-architecture model (paper section 4.6).

The paper attributes the RTX3090's (GDDR6X) lookup advantage over the
A100 (HBM2) to command-rate limits, not bandwidth: "the GDDR6X memory
interface is more suitable due to its higher command clock frequency and
therefore more commands. ... its [HBM2] memory interface is 128bits per
channel which means that a typical transaction (i.e. reading a node
header) is finished within one single clock cycle, which causes increased
command overhead."

We model a channel as a command bus clocked at ``command_clock_hz``.
Serving one random read of ``size`` bytes occupies the channel for

    overhead_commands + ceil(size / atom_bytes)            [command cycles]

where ``atom_bytes`` is the per-command data atom (channel width × burst)
and ``overhead_commands`` covers row activate / column select / precharge
for a random row.  Unaligned transactions (GRT's packed buffer) touch up
to one extra atom.  A device's random-read service rate is then

    channels × command_clock_hz / cycles_per_transaction

while large sequential traffic is bounded by ``peak_bandwidth``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class MemoryArchitecture:
    """Parameters of one memory subsystem."""

    name: str
    #: independent channels (A100: 8 per HBM2 stack × 5 stacks = 40;
    #: RTX3090: 2 per GDDR6X chip × 12 = 24 — section 4.6).
    channels: int
    #: command/address clock per channel in Hz.
    command_clock_hz: float
    #: data bytes transferred by one read command (width × burst length).
    atom_bytes: int
    #: command cycles of fixed overhead per random transaction.
    overhead_commands: float
    #: peak sequential bandwidth in bytes/second.
    peak_bandwidth: float
    #: average latency of a random read in seconds (bank miss).
    random_latency_s: float
    #: fraction of the nominal command rate a fully *scattered* access
    #: stream sustains (bank conflicts, row-buffer misses, imperfect
    #: channel balance).  Calibrated against the paper's absolute
    #: end-to-end magnitudes (~150-200 MOps/s lookup plateaus).
    scatter_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.atom_bytes <= 0:
            raise SimulationError(f"invalid memory architecture {self.name}")

    # ------------------------------------------------------------------
    def transaction_cycles(self, size_bytes: int, aligned: bool = True) -> float:
        """Command cycles one transaction of ``size_bytes`` occupies its
        channel."""
        atoms = math.ceil(size_bytes / self.atom_bytes)
        if not aligned:
            # an arbitrary byte offset can straddle one extra atom and
            # defeats write/read coalescing in the memory controller
            atoms += 1
        return self.overhead_commands + atoms

    def transaction_time(self, size_bytes: int, aligned: bool = True) -> float:
        """Seconds one transaction occupies its channel."""
        effective_clock = self.command_clock_hz * self.scatter_efficiency
        return self.transaction_cycles(size_bytes, aligned) / effective_clock

    def random_read_rate(self, size_bytes: int, aligned: bool = True) -> float:
        """Aggregate random reads/second across all channels."""
        return self.channels / self.transaction_time(size_bytes, aligned)

    def service_time(self, transactions: dict) -> float:
        """Seconds to serve a multiset of transactions, assuming perfect
        channel load balancing (random address hashing).

        ``transactions`` maps ``(size_bytes, aligned)`` to a count.
        Returns the max of the command-occupancy bound and the raw
        bandwidth bound.
        """
        busy = 0.0
        total_bytes = 0
        for (size, aligned), count in transactions.items():
            busy += count * self.transaction_time(size, aligned)
            total_bytes += size * count
        command_bound = busy / self.channels
        bandwidth_bound = total_bytes / self.peak_bandwidth
        return max(command_bound, bandwidth_bound)


def allocation_guard(nbytes: int, what: str, *, injector=None,
                     op: str | None = None) -> None:
    """Simulated ``cudaMalloc`` gate for device-buffer allocations.

    Called before node/leaf buffers are (re)allocated — at layout
    mapping time and on capacity-pressure growth.  The fault injector
    may refuse the allocation here (:class:`repro.errors.DeviceOOMError`);
    since nothing has been resized yet, the existing buffers remain
    valid and the caller can retry or degrade.  With ``injector=None``
    this is a no-op.
    """
    if injector is not None and nbytes > 0:
        injector.on_alloc(nbytes, what, op=op)


# ---------------------------------------------------------------------------
# Concrete memory subsystems (parameters from section 4.6 plus public specs)
# ---------------------------------------------------------------------------

#: A100 40GB: 5 HBM2 stacks, 8 channels each, 128-bit channels @1215 MHz,
#: 1555 GB/s.  Atom = 128 bit × burst 4 = 64 B, so even a 16-byte header
#: read burns a full atom (the paper's "finished within one single clock
#: cycle ... increased command overhead").
HBM2_A100 = MemoryArchitecture(
    name="HBM2 (A100)",
    channels=40,
    command_clock_hz=1.215e9,
    atom_bytes=64,
    overhead_commands=4.0,
    peak_bandwidth=1555e9,
    random_latency_s=4.7e-7,
    scatter_efficiency=0.3,
)

#: RTX3090: 24 GDDR6X channels (2 per chip) × 16 bit @2500 MHz command
#: clock, 936 GB/s.  Atom = 16 bit × burst 16 = 32 B.
GDDR6X_RTX3090 = MemoryArchitecture(
    name="GDDR6X (RTX3090)",
    channels=24,
    command_clock_hz=2.5e9,
    atom_bytes=32,
    overhead_commands=4.0,
    peak_bandwidth=936e9,
    random_latency_s=4.2e-7,
    scatter_efficiency=0.3,
)

#: GTX1070: 8 GDDR5 chips × 32 bit @2002 MHz, 256 GB/s.
#: Atom = 32 bit × burst 8 = 32 B.
GDDR5_GTX1070 = MemoryArchitecture(
    name="GDDR5 (GTX1070)",
    channels=8,
    command_clock_hz=2.002e9,
    atom_bytes=32,
    overhead_commands=4.0,
    peak_bandwidth=256e9,
    random_latency_s=5.0e-7,
    scatter_efficiency=0.3,
)

#: Host DDR4 (server: 8-channel DDR4-2933; workstation: 2-channel 3200).
DDR4_SERVER = MemoryArchitecture(
    name="DDR4-2933 (server)",
    channels=16,  # 2 sockets x 8 channels
    command_clock_hz=1.4665e9,
    atom_bytes=64,
    overhead_commands=12.0,
    peak_bandwidth=375e9,
    random_latency_s=9.0e-8,
)

DDR4_WORKSTATION = MemoryArchitecture(
    name="DDR4-3200 (workstation)",
    channels=2,
    command_clock_hz=1.6e9,
    atom_bytes=64,
    overhead_commands=12.0,
    peak_bandwidth=51.2e9,
    random_latency_s=8.0e-8,
)
