"""Structural invariant checker for the host ART.

Used by the test suite after mutation storms and exposed publicly as a
debugging aid.  :func:`verify_tree` walks the whole tree and checks every
invariant the algorithms rely on; it returns a list of violation strings
(empty = healthy) so callers can assert or report.
"""

from __future__ import annotations

from typing import Optional

from repro.art.nodes import (
    Child,
    InnerNode,
    Leaf,
    Node4,
    Node16,
    Node48,
    Node256,
    N48_EMPTY_SLOT,
)
from repro.art.tree import AdaptiveRadixTree


def verify_tree(tree: AdaptiveRadixTree) -> list[str]:
    """Check all structural invariants; returns violations (empty = OK)."""
    problems: list[str] = []
    count = _verify_node(tree.root, b"", problems, is_root=True)
    if count != len(tree):
        problems.append(
            f"size mismatch: tree reports {len(tree)} keys, walk found {count}"
        )
    return problems


def _verify_node(
    node: Optional[Child], path: bytes, problems: list[str], *, is_root: bool
) -> int:
    if node is None:
        if not is_root:
            problems.append(f"null child reachable below {path!r}")
        return 0
    if isinstance(node, Leaf):
        if not node.key.startswith(path):
            problems.append(
                f"leaf key {node.key!r} does not extend its path {path!r}"
            )
        return 1

    assert isinstance(node, InnerNode)
    n = node.num_children
    # -- occupancy invariants -------------------------------------------
    if n > node.CAPACITY:
        problems.append(f"{type(node).__name__} at {path!r} over capacity: {n}")
    if not is_root and n < 2 and isinstance(node, Node4):
        problems.append(
            f"non-root Node4 at {path!r} has {n} child(ren): "
            "should have been collapsed (path compression)"
        )
    if n == 0:
        problems.append(f"{type(node).__name__} at {path!r} is empty")
    # -- shrink thresholds (delete must downsize underfull nodes) --------
    if isinstance(node, Node16) and n < 4:
        problems.append(f"Node16 at {path!r} underfull ({n}): should be Node4")
    if isinstance(node, Node48) and n < 16:
        problems.append(f"Node48 at {path!r} underfull ({n}): should be Node16")
    if isinstance(node, Node256) and n < 48:
        problems.append(f"Node256 at {path!r} underfull ({n}): should be Node48")

    # -- per-type representation invariants -------------------------------
    if isinstance(node, (Node4, Node16)):
        if node.keys != sorted(node.keys):
            problems.append(f"{type(node).__name__} at {path!r}: keys unsorted")
        if len(set(node.keys)) != len(node.keys):
            problems.append(f"{type(node).__name__} at {path!r}: duplicate bytes")
    if isinstance(node, Node48):
        slots = [s for s in node.child_index if s != N48_EMPTY_SLOT]
        if len(set(slots)) != len(slots):
            problems.append(f"Node48 at {path!r}: child slots aliased")
        for byte in range(256):
            s = node.child_index[byte]
            if s != N48_EMPTY_SLOT and node.children[s] is None:
                problems.append(f"Node48 at {path!r}: byte {byte} -> empty slot")

    # -- recurse, checking key ordering falls out of byte ordering --------
    total = 0
    new_path = path + node.prefix
    last_byte = -1
    for byte, child in node.children_items():
        if byte <= last_byte:
            problems.append(f"children out of byte order at {new_path!r}")
        last_byte = byte
        total += _verify_node(
            child, new_path + bytes([byte]), problems, is_root=False
        )
    return total
