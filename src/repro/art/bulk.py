"""Bulk-loading: build an ART bottom-up from sorted keys.

Stage 1 of the paper's pipeline ("populating the ART index", §4.1)
dominates setup time when done with repeated root-to-leaf inserts.  For
a *sorted, distinct, prefix-free* key sequence the tree is determined
directly: find the common prefix (the node's compressed path), partition
by the next byte (the node's children), recurse — every node is
allocated exactly once at its final size, with no growth churn.

This implementation is array-native: the whole key set is bulk-encoded
into one padded matrix (:func:`repro.util.keys.encode_key_batch`),
sorted and validated with whole-array comparisons, and the tree levels
are discovered by a breadth-first frontier sweep whose per-level work is
a handful of NumPy operations — Python-object cost is paid only once per
actually-created node.  The result is byte-for-byte the same logical
tree the incremental path produces (property-tested).

As a by-product the sweep emits a :class:`BulkPlan` — a structural
snapshot of the freshly built tree as parallel arrays.  The device
mapper (:class:`repro.cuart.layout.CuartLayout`) consumes a still-fresh
plan to fill its SoA buffers with batched array writes instead of
walking the tree node by node; the plan is tied to the exact tree
version it describes, so any later mutation silently disables it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.art.nodes import Leaf, Node4, Node16, Node48, Node256
from repro.art.tree import AdaptiveRadixTree
from repro.constants import (
    LINK_N4,
    LINK_N16,
    LINK_N48,
    LINK_N256,
    NIL_VALUE,
)
from repro.errors import KeyPrefixError, ReproError
from repro.util.keys import encode_key_batch


@dataclass
class PlanLevel:
    """One tree level of a :class:`BulkPlan`: all inner nodes at the same
    distance from the root, as parallel arrays over the node groups and
    their child edges (edges sorted by ``(parent, byte)`` — children of
    one node are a contiguous ascending run)."""

    lo: np.ndarray  # (G,) first sorted key row of each node's range
    depth: np.ndarray  # (G,) key bytes consumed above the node
    split: np.ndarray  # (G,) branch column; prefix spans [depth, split)
    fanout: np.ndarray  # (G,)
    type_code: np.ndarray  # (G,) packed-link node type (by fanout)
    nodes: Optional[np.ndarray]  # (G,) object — the built host nodes
    child_byte: np.ndarray  # (C,) branch byte
    child_parent: np.ndarray  # (C,) owning group index in this level
    child_is_leaf: np.ndarray  # (C,) bool
    child_ref: np.ndarray  # (C,) sorted key row (leaf) / next-level group
    child_slot: np.ndarray  # (C,) slot within the parent node


@dataclass
class BulkPlan:
    """Structural snapshot emitted by :func:`bulk_load`.

    ``version`` ties the plan to the exact tree state it describes; the
    device mapper only trusts a plan whose version still matches the
    tree (any insert/delete after the bulk load invalidates it).
    """

    version: int
    mat: np.ndarray  # (n, W) sorted, zero-padded key matrix
    lens: np.ndarray  # (n,) key lengths, sorted-row order
    values: np.ndarray  # (n,) uint64 values, sorted-row order
    leaf_objs: np.ndarray  # (n,) object — host leaves in sorted order
    levels: list[PlanLevel]

    @property
    def n(self) -> int:
        return self.lens.size

    @property
    def max_key_len(self) -> int:
        return int(self.lens.max()) if self.lens.size else 0


def bulk_load(
    keys: Sequence[bytes], values: Sequence[int] | None = None
) -> AdaptiveRadixTree:
    """Build a tree from ``keys`` (will be sorted; must be distinct and
    prefix-free).  ``values`` default to each key's position in the
    *given* order.

    >>> t = bulk_load([b"beta", b"alpha"])
    >>> t.search(b"alpha")
    1
    """
    keys_list = list(keys)
    if values is None:
        values_list = list(range(len(keys_list)))
    else:
        values_list = list(values)
    m = min(len(keys_list), len(values_list))
    keys_list = keys_list[:m]
    values_list = values_list[:m]
    tree = AdaptiveRadixTree()
    if m == 0:
        return tree
    AdaptiveRadixTree._check_key(keys_list[0])
    vals = _checked_values(values_list)
    mat, lens = encode_key_batch(keys_list)

    # lexicographic sort of the padded rows: memcmp on the padded bytes,
    # with the length as tiebreak (padded ties are prefix pairs — shorter
    # first keeps the classic "prefix precedes extension" order)
    void = np.ascontiguousarray(mat).view(np.dtype((np.void, mat.shape[1])))[:, 0]
    order = np.argsort(lens, kind="stable")
    order = order[np.argsort(void[order], kind="stable")]
    smat = mat[order]
    slens = lens[order]
    svals = vals[order]
    order_l = order.tolist()
    skeys = list(map(keys_list.__getitem__, order_l))
    _validate_sorted(smat, slens, skeys)

    leaf_objs = np.fromiter(
        map(Leaf, skeys, svals.tolist()), dtype=object, count=m
    )

    levels = _sweep_levels(smat, m)
    _build_nodes(levels, leaf_objs, skeys)

    tree.root = levels[0].nodes[0] if levels else leaf_objs[0]
    tree._size = m
    tree._version += 1
    tree._bulk_plan = BulkPlan(
        version=tree._version,
        mat=smat,
        lens=slens,
        values=svals,
        leaf_objs=leaf_objs,
        levels=levels,
    )
    return tree


def _checked_values(values_list: list) -> np.ndarray:
    """Vectorized value validation; falls back to the canonical per-item
    check (same exceptions as the incremental path) on any anomaly."""
    check = AdaptiveRadixTree._check_value
    try:
        vals = np.fromiter(values_list, dtype=np.uint64, count=len(values_list))
    except (OverflowError, ValueError, TypeError):
        for v in values_list:
            check(v)
        raise  # unreachable: some value must have failed the check
    ok_types = set(map(type, values_list)) == {int}
    if not ok_types or bool((vals == np.uint64(NIL_VALUE)).any()):
        for v in values_list:
            check(v)
    return vals


def _validate_sorted(
    smat: np.ndarray, slens: np.ndarray, skeys: list
) -> None:
    """Reject duplicates and prefix pairs — both are adjacent after the
    lexicographic sort, so two whole-array comparisons cover the set."""
    if slens.size < 2:
        return
    W = smat.shape[1]
    pl = slens[:-1]
    agree = (smat[1:] == smat[:-1]) | (np.arange(W)[None, :] >= pl[:, None])
    is_prefix = agree.all(axis=1)
    dup = is_prefix & (slens[1:] == pl)
    if dup.any():
        i = int(np.flatnonzero(dup)[0])
        raise ReproError(f"duplicate key {skeys[i + 1]!r} in bulk load")
    pref = is_prefix & (slens[1:] > pl)
    if pref.any():
        i = int(np.flatnonzero(pref)[0])
        raise KeyPrefixError(
            f"{skeys[i]!r} is a proper prefix of {skeys[i + 1]!r}"
        )


def _sweep_levels(smat: np.ndarray, m: int) -> list[PlanLevel]:
    """Breadth-first frontier sweep over the sorted key matrix.

    Every frontier group is a run of ≥2 sorted rows sharing ``depth``
    consumed bytes; its branch column is the first column where the
    run's extremes differ (sorted input: the extremes bound the group),
    and the child runs are delimited by value changes in that column.
    """
    levels: list[PlanLevel] = []
    if m < 2:
        return levels
    los = np.zeros(1, dtype=np.int64)
    his = np.full(1, m, dtype=np.int64)
    deps = np.zeros(1, dtype=np.int64)
    while los.size:
        G = los.size
        split = np.argmax(smat[los] != smat[his - 1], axis=1).astype(np.int64)
        sizes = his - los
        ends = np.cumsum(sizes)
        starts = ends - sizes
        total = int(ends[-1])
        # ragged expansion: all member rows of all groups, in group order
        row_idx = np.repeat(los - starts, sizes) + np.arange(
            total, dtype=np.int64
        )
        branch = smat[row_idx, np.repeat(split, sizes)]
        gid = np.repeat(np.arange(G, dtype=np.int64), sizes)
        startm = np.empty(total, dtype=bool)
        startm[0] = True
        startm[1:] = (gid[1:] != gid[:-1]) | (branch[1:] != branch[:-1])
        cpos = np.flatnonzero(startm)
        child_lo = row_idx[cpos]
        child_sizes = np.diff(np.append(cpos, total))
        child_byte = branch[cpos]
        child_parent = gid[cpos]
        fanout = np.bincount(child_parent, minlength=G)
        is_leaf = child_sizes == 1
        inner = ~is_leaf
        child_ref = np.empty(cpos.size, dtype=np.int64)
        child_ref[is_leaf] = child_lo[is_leaf]
        child_ref[inner] = np.arange(int(inner.sum()), dtype=np.int64)
        slot = (
            np.arange(cpos.size, dtype=np.int64)
            - (np.cumsum(fanout) - fanout)[child_parent]
        )
        tcode = np.where(
            fanout <= 4,
            LINK_N4,
            np.where(
                fanout <= 16,
                LINK_N16,
                np.where(fanout <= 48, LINK_N48, LINK_N256),
            ),
        ).astype(np.uint8)
        levels.append(
            PlanLevel(
                lo=los, depth=deps, split=split, fanout=fanout,
                type_code=tcode, nodes=None, child_byte=child_byte,
                child_parent=child_parent, child_is_leaf=is_leaf,
                child_ref=child_ref, child_slot=slot,
            )
        )
        deps = split[child_parent[inner]] + 1
        los = child_lo[inner]
        his = los + child_sizes[inner]
    return levels


def _build_nodes(
    levels: list[PlanLevel], leaf_objs: np.ndarray, skeys: list
) -> None:
    """Construct the host node objects bottom-up (children exist before
    their parent), filling each node's internal arrays directly."""
    node_arrays: list = [None] * len(levels)
    for li in range(len(levels) - 1, -1, -1):
        lv = levels[li]
        C = lv.child_byte.size
        child_objs = np.empty(C, dtype=object)
        leaf_m = lv.child_is_leaf
        child_objs[leaf_m] = leaf_objs[lv.child_ref[leaf_m]]
        inner_m = ~leaf_m
        if inner_m.any():
            child_objs[inner_m] = node_arrays[li + 1][lv.child_ref[inner_m]]
        ends_l = np.cumsum(lv.fanout).tolist()
        cb = lv.child_byte.tolist()
        co = child_objs.tolist()
        tc_l = lv.type_code.tolist()
        G = lv.lo.size
        cbn = lv.child_byte
        built: list = []
        append = built.append
        new4, new16 = Node4.__new__, Node16.__new__
        a = 0
        # bypass __init__ for N4/N16 (the dominant types by far): the
        # fresh empty lists it builds would be immediately replaced
        if not (lv.split > lv.depth).any():
            # no compressed paths anywhere on this level (the common
            # case for uniform keys): a slimmer loop without the
            # per-group prefix slicing
            for t, b in zip(tc_l, ends_l):
                if t == LINK_N4:
                    node = new4(Node4)
                    node.prefix = b""
                    node.keys = cb[a:b]
                    node.children = co[a:b]
                elif t == LINK_N16:
                    node = new16(Node16)
                    node.prefix = b""
                    node.keys = cb[a:b]
                    node.children = co[a:b]
                elif t == LINK_N48:
                    node = Node48(b"")
                    ci = node.child_index
                    ch = node.children
                    for s in range(b - a):
                        ci[cb[a + s]] = s
                        ch[s] = co[a + s]
                    node._count = b - a
                else:
                    node = Node256(b"")
                    ch_arr = np.full(256, None, dtype=object)
                    ch_arr[cbn[a:b]] = child_objs[a:b]
                    node.children = ch_arr.tolist()
                    node._count = b - a
                append(node)
                a = b
            nodes = np.fromiter(built, dtype=object, count=G)
            lv.nodes = nodes
            node_arrays[li] = nodes
            continue
        lo_l = lv.lo.tolist()
        dep_l = lv.depth.tolist()
        spl_l = lv.split.tolist()
        for lo_g, dep_g, spl_g, t, b in zip(lo_l, dep_l, spl_l, tc_l, ends_l):
            prefix = skeys[lo_g][dep_g:spl_g] if spl_g > dep_g else b""
            if t == LINK_N4:
                node = new4(Node4)
                node.prefix = prefix
                node.keys = cb[a:b]
                node.children = co[a:b]
            elif t == LINK_N16:
                node = new16(Node16)
                node.prefix = prefix
                node.keys = cb[a:b]
                node.children = co[a:b]
            elif t == LINK_N48:
                node = Node48(prefix)
                ci = node.child_index
                ch = node.children
                for s in range(b - a):
                    ci[cb[a + s]] = s
                    ch[s] = co[a + s]
                node._count = b - a
            else:
                # scatter the (byte, child) run with one fancy index
                # instead of a per-edge Python loop (full nodes carry
                # up to 256 edges each)
                node = Node256(prefix)
                ch_arr = np.full(256, None, dtype=object)
                ch_arr[cbn[a:b]] = child_objs[a:b]
                node.children = ch_arr.tolist()
                node._count = b - a
            append(node)
            a = b
        nodes = np.fromiter(built, dtype=object, count=G)
        lv.nodes = nodes
        node_arrays[li] = nodes
