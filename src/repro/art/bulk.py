"""Bulk-loading: build an ART bottom-up from sorted keys.

Stage 1 of the paper's pipeline ("populating the ART index", §4.1)
dominates setup time when done with repeated root-to-leaf inserts.  For
a *sorted, distinct, prefix-free* key sequence the tree is determined
directly: find the common prefix (the node's compressed path), partition
by the next byte (the node's children), recurse — every node is
allocated exactly once at its final size, with no growth churn.

The result is byte-for-byte the same logical tree the incremental path
produces (property-tested), just built in O(total key bytes).
"""

from __future__ import annotations

from typing import Sequence

from repro.art.nodes import Child, Leaf, Node4, Node16, Node48, Node256
from repro.art.tree import AdaptiveRadixTree
from repro.errors import KeyPrefixError, ReproError
from repro.util.keys import common_prefix_len


def bulk_load(
    keys: Sequence[bytes], values: Sequence[int] | None = None
) -> AdaptiveRadixTree:
    """Build a tree from ``keys`` (will be sorted; must be distinct and
    prefix-free).  ``values`` default to each key's position in the
    *given* order.

    >>> t = bulk_load([b"beta", b"alpha"])
    >>> t.search(b"alpha")
    1
    """
    if values is None:
        values = range(len(keys))
    pairs = sorted(zip(keys, values))
    for i in range(1, len(pairs)):
        if pairs[i][0] == pairs[i - 1][0]:
            raise ReproError(f"duplicate key {pairs[i][0]!r} in bulk load")
        if pairs[i][0].startswith(pairs[i - 1][0]):
            raise KeyPrefixError(
                f"{pairs[i - 1][0]!r} is a proper prefix of {pairs[i][0]!r}"
            )
    tree = AdaptiveRadixTree()
    if pairs:
        AdaptiveRadixTree._check_key(pairs[0][0])
        for _, v in pairs:
            AdaptiveRadixTree._check_value(v)
        tree.root = _build(pairs, 0)
        tree._size = len(pairs)
        tree._version += 1
    return tree


def _node_for(fanout: int):
    if fanout <= 4:
        return Node4()
    if fanout <= 16:
        return Node16()
    if fanout <= 48:
        return Node48()
    return Node256()


def _build(pairs: list[tuple[bytes, int]], depth: int) -> Child:
    """Build the subtree for sorted ``pairs`` sharing ``depth`` consumed
    bytes."""
    if len(pairs) == 1:
        key, value = pairs[0]
        return Leaf(key, value)
    first = pairs[0][0]
    last = pairs[-1][0]
    # sorted input: the common prefix of the extremes is the common
    # prefix of the whole group
    cpl = common_prefix_len(first[depth:], last[depth:])
    split = depth + cpl
    # partition by the byte at `split` (prefix-freeness guarantees every
    # key is long enough) — single pass over the sorted run
    groups: list[tuple[int, list[tuple[bytes, int]]]] = []
    start = 0
    for i in range(1, len(pairs) + 1):
        if i == len(pairs) or pairs[i][0][split] != pairs[start][0][split]:
            groups.append((pairs[start][0][split], pairs[start:i]))
            start = i
    node = _node_for(len(groups))
    node.prefix = first[depth:split]
    for byte, group in groups:
        node.set_child(byte, _build(group, split + 1))
    return node
