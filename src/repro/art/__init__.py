"""Classic pointer-based Adaptive Radix Tree (Leis et al., ICDE 2013).

This is the host-side substrate of the reproduction: the paper's pipeline
(section 4.1) first *populates* a CPU ART, then *maps* it into the device
buffer structure, then runs queries against the mapped copy.  It also
serves as the "original ART" baseline of figures 7 and 17.
"""

from repro.art.nodes import Leaf, Node4, Node16, Node48, Node256
from repro.art.tree import AdaptiveRadixTree
from repro.art.stats import TreeStats, collect_stats
from repro.art.bulk import bulk_load
from repro.art.verify import verify_tree

__all__ = [
    "AdaptiveRadixTree",
    "Leaf",
    "Node4",
    "Node16",
    "Node48",
    "Node256",
    "TreeStats",
    "collect_stats",
    "bulk_load",
    "verify_tree",
]
