"""The Adaptive Radix Tree (host side).

Implements insert / search / delete with lazy expansion (single keys are
stored directly as leaves), pessimistic path compression (the complete
compressed prefix is kept on every inner node) and adaptive node resizing.

The tree is the *source of truth* of the reproduction pipeline: the GRT
and CuART device layouts are built by mapping a populated tree (paper
section 4.1, stage 2).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.art.nodes import (
    Child,
    InnerNode,
    Leaf,
    Node4,
    grown_copy,
    maybe_shrunk_copy,
)
from repro.errors import KeyEncodingError, KeyPrefixError
from repro.util.keys import common_prefix_len


class AdaptiveRadixTree:
    """An ordered map from binary-comparable ``bytes`` keys to ``int``
    values (64-bit payloads; database row ids / value pointers).

    >>> t = AdaptiveRadixTree()
    >>> t.insert(b"alpha\\x00", 1)
    >>> t.search(b"alpha\\x00")
    1
    """

    __slots__ = ("root", "_size", "_version", "_bulk_plan")

    def __init__(self) -> None:
        self.root: Optional[Child] = None
        self._size = 0
        #: bumped on every mutation; device layouts snapshot it to detect
        #: staleness (:class:`repro.errors.StaleLayoutError`).
        self._version = 0
        #: structural snapshot left behind by :func:`repro.art.bulk.bulk_load`
        #: (a ``BulkPlan``); consumed by the device mapper while fresh,
        #: dropped on the first mutation.
        self._bulk_plan = None

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: bytes) -> bool:
        return self.search(key) is not None

    @property
    def version(self) -> int:
        return self._version

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(self, key: bytes) -> Optional[int]:
        """Return the value stored for ``key`` or ``None``."""
        self._check_key(key)
        node = self.root
        depth = 0
        while node is not None:
            if isinstance(node, Leaf):
                return node.value if node.key == key else None
            p = node.prefix
            if p:
                if key[depth : depth + len(p)] != p:
                    return None
                depth += len(p)
            if depth >= len(key):
                return None
            node = node.find_child(key[depth])
            depth += 1
        return None

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    def insert(self, key: bytes, value: int) -> None:
        """Insert ``key`` -> ``value``, replacing any previous value.

        Raises :class:`KeyPrefixError` if ``key`` is a proper prefix of an
        existing key or vice versa (use terminated encodings, see
        :mod:`repro.util.keys`).
        """
        self._check_key(key)
        self._check_value(value)
        if self._bulk_plan is not None:
            self._bulk_plan = None
        if self.root is None:
            self.root = Leaf(key, value)
            self._size += 1
            self._version += 1
            return
        self.root = self._insert(self.root, key, value, 0)
        self._version += 1

    def _insert(self, node: Child, key: bytes, value: int, depth: int) -> Child:
        if isinstance(node, Leaf):
            return self._insert_at_leaf(node, key, value, depth)

        p = node.prefix
        rest = key[depth : depth + len(p)]
        cpl = common_prefix_len(p, rest)
        if cpl < len(p):
            # the compressed path diverges: split it at the mismatch
            return self._split_prefix(node, key, value, depth, cpl)
        depth += len(p)
        if depth >= len(key):
            # the new key ends inside this inner node: it would be a
            # proper prefix of every key below.
            raise KeyPrefixError(
                f"key {key!r} is a proper prefix of existing keys"
            )
        byte = key[depth]
        child = node.find_child(byte)
        if child is not None:
            new_child = self._insert(child, key, value, depth + 1)
            if new_child is not child:
                node.set_child(byte, new_child)
            return node
        if node.is_full:
            node = grown_copy(node)
        node.set_child(byte, Leaf(key, value))
        self._size += 1
        return node

    def _insert_at_leaf(self, leaf: Leaf, key: bytes, value: int, depth: int) -> Child:
        if leaf.key == key:
            leaf.value = value  # update in place; size unchanged
            return leaf
        ex = leaf.key[depth:]
        new = key[depth:]
        cpl = common_prefix_len(ex, new)
        if cpl == len(ex) or cpl == len(new):
            shorter = leaf.key if len(ex) < len(new) else key
            longer = key if shorter is leaf.key else leaf.key
            raise KeyPrefixError(
                f"key {shorter!r} is a proper prefix of {longer!r}"
            )
        branch = Node4(prefix=new[:cpl])
        branch.set_child(ex[cpl], leaf)
        branch.set_child(new[cpl], Leaf(key, value))
        self._size += 1
        return branch

    def _split_prefix(
        self, node: InnerNode, key: bytes, value: int, depth: int, cpl: int
    ) -> Child:
        p = node.prefix
        branch = Node4(prefix=p[:cpl])
        node.prefix = p[cpl + 1 :]
        branch.set_child(p[cpl], node)
        if depth + cpl >= len(key):
            raise KeyPrefixError(
                f"key {key!r} is a proper prefix of existing keys"
            )
        branch.set_child(key[depth + cpl], Leaf(key, value))
        self._size += 1
        return branch

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------
    def delete(self, key: bytes) -> bool:
        """Remove ``key``; return ``True`` if it was present.

        Structural cleanup follows Leis: underfull nodes shrink to the
        next smaller type and single-child ``Node4`` nodes are merged into
        their child (path compression is restored).
        """
        self._check_key(key)
        if self._bulk_plan is not None:
            self._bulk_plan = None
        if self.root is None:
            return False
        if isinstance(self.root, Leaf):
            if self.root.key != key:
                return False
            self.root = None
            self._size -= 1
            self._version += 1
            return True
        new_root, removed = self._delete(self.root, key, 0)
        if removed:
            self.root = new_root
            self._size -= 1
            self._version += 1
        return removed

    def _delete(
        self, node: InnerNode, key: bytes, depth: int
    ) -> tuple[Optional[Child], bool]:
        p = node.prefix
        if key[depth : depth + len(p)] != p:
            return node, False
        depth += len(p)
        if depth >= len(key):
            return node, False
        byte = key[depth]
        child = node.find_child(byte)
        if child is None:
            return node, False
        if isinstance(child, Leaf):
            if child.key != key:
                return node, False
            node.remove_child(byte)
            return self._cleanup(node), True
        new_child, removed = self._delete(child, key, depth + 1)
        if not removed:
            return node, False
        assert new_child is not None
        if new_child is not child:
            node.set_child(byte, new_child)
        return node, True

    def _cleanup(self, node: InnerNode) -> Child:
        """Restore the ART invariants after a child was removed."""
        if isinstance(node, Node4) and node.num_children == 1:
            byte = node.keys[0]
            child = node.children[0]
            if isinstance(child, Leaf):
                return child
            # merge the path: parent prefix + branch byte + child prefix
            child.prefix = node.prefix + bytes([byte]) + child.prefix
            return child
        return maybe_shrunk_copy(node)

    # ------------------------------------------------------------------
    # ordered access (implemented in iterate.py, re-exported here)
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[bytes, int]]:
        """All ``(key, value)`` pairs in lexicographic key order."""
        from repro.art.iterate import iter_items

        return iter_items(self)

    def keys(self) -> Iterator[bytes]:
        return (k for k, _ in self.items())

    def minimum(self) -> Optional[tuple[bytes, int]]:
        """Smallest key and its value, or ``None`` for an empty tree."""
        from repro.art.iterate import minimum_leaf

        leaf = minimum_leaf(self.root)
        return None if leaf is None else (leaf.key, leaf.value)

    def maximum(self) -> Optional[tuple[bytes, int]]:
        """Largest key and its value, or ``None`` for an empty tree."""
        from repro.art.iterate import maximum_leaf

        leaf = maximum_leaf(self.root)
        return None if leaf is None else (leaf.key, leaf.value)

    def range_query(self, lo: bytes, hi: bytes) -> Iterator[tuple[bytes, int]]:
        """All pairs with ``lo <= key <= hi`` in order."""
        from repro.art.iterate import iter_range

        return iter_range(self, lo, hi)

    def prefix_query(self, prefix: bytes) -> Iterator[tuple[bytes, int]]:
        """All pairs whose key starts with ``prefix``, in order."""
        from repro.art.iterate import iter_prefix

        return iter_prefix(self, prefix)

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _check_key(key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise KeyEncodingError(
                f"keys must be bytes, got {type(key).__name__}",
                got=type(key).__name__,
            )
        if len(key) == 0:
            raise KeyEncodingError("empty keys cannot be indexed", key_len=0)

    @staticmethod
    def _check_value(value: int) -> None:
        from repro.constants import NIL_VALUE

        if not isinstance(value, int):
            raise KeyEncodingError(
                f"values must be int, got {type(value).__name__}",
                got=type(value).__name__,
            )
        if not 0 <= value < NIL_VALUE:
            raise KeyEncodingError(
                f"values must fit an unsigned 64-bit payload and not equal "
                f"the NIL sentinel: {value}",
                value=value,
            )
