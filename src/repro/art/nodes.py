"""ART node types.

The four adaptive inner-node sizes of Leis et al. 2013:

* ``Node4``   — up to 4 children, parallel key/child arrays,
* ``Node16``  — up to 16 children, parallel key/child arrays,
* ``Node48``  — 256-entry child index (1 byte each) into 48 child slots,
* ``Node256`` — direct 256-entry child array.

Nodes *grow* to the next type when full and *shrink* when underfull.  The
host tree uses pessimistic path compression: the full compressed prefix is
stored as a ``bytes`` object on every inner node (the device layouts later
truncate it to their fixed header window and fall back to leaf
verification, see ``repro.cuart.layout``).
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from repro.constants import (
    LINK_N4,
    LINK_N16,
    LINK_N48,
    LINK_N256,
    N48_EMPTY_SLOT,
)


class Leaf:
    """A single key/value pair; stores the complete key so traversals can
    verify optimistically skipped prefix bytes."""

    __slots__ = ("key", "value")

    def __init__(self, key: bytes, value: int):
        self.key = key
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Leaf({self.key!r}, {self.value})"


Child = Union["InnerNode", Leaf]


class InnerNode:
    """Shared behaviour of the four adaptive node types."""

    __slots__ = ("prefix",)

    #: packed-link type code of this node class (set by subclasses).
    TYPE: int = 0
    #: maximum number of children before the node must grow.
    CAPACITY: int = 0

    def __init__(self, prefix: bytes = b""):
        self.prefix = prefix

    # -- interface ---------------------------------------------------------
    @property
    def num_children(self) -> int:
        raise NotImplementedError

    def find_child(self, byte: int) -> Optional[Child]:
        raise NotImplementedError

    def set_child(self, byte: int, child: Child) -> None:
        """Insert or replace the child for ``byte``.

        Precondition: either the byte is already present or the node is
        not full (callers grow the node first via :func:`grown_copy`).
        """
        raise NotImplementedError

    def remove_child(self, byte: int) -> None:
        raise NotImplementedError

    def children_items(self) -> Iterator[tuple[int, Child]]:
        """Yield ``(byte, child)`` pairs in ascending byte order.

        Ascending order is what makes the in-order device mapping produce
        lexicographically sorted leaf buffers (section 3.2.1).
        """
        raise NotImplementedError

    @property
    def is_full(self) -> bool:
        return self.num_children >= self.CAPACITY

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(prefix={self.prefix!r}, "
            f"children={self.num_children})"
        )


class Node4(InnerNode):
    """Smallest node: ≤4 children in sorted parallel arrays."""

    __slots__ = ("keys", "children")
    TYPE = LINK_N4
    CAPACITY = 4

    def __init__(self, prefix: bytes = b""):
        super().__init__(prefix)
        self.keys: list[int] = []
        self.children: list[Child] = []

    @property
    def num_children(self) -> int:
        return len(self.keys)

    def find_child(self, byte: int) -> Optional[Child]:
        for i, k in enumerate(self.keys):
            if k == byte:
                return self.children[i]
        return None

    def set_child(self, byte: int, child: Child) -> None:
        for i, k in enumerate(self.keys):
            if k == byte:
                self.children[i] = child
                return
        # keep the arrays sorted: find insertion point
        pos = 0
        while pos < len(self.keys) and self.keys[pos] < byte:
            pos += 1
        self.keys.insert(pos, byte)
        self.children.insert(pos, child)

    def remove_child(self, byte: int) -> None:
        for i, k in enumerate(self.keys):
            if k == byte:
                del self.keys[i]
                del self.children[i]
                return
        raise KeyError(byte)

    def children_items(self) -> Iterator[tuple[int, Child]]:
        yield from zip(self.keys, self.children)


class Node16(Node4):
    """≤16 children; identical organization to Node4, larger capacity.

    (The real CUDA kernel searches the 16 keys with a single SIMD
    comparison; the Python host tree keeps the arrays sorted and scans.)
    """

    __slots__ = ()
    TYPE = LINK_N16
    CAPACITY = 16


class Node48(InnerNode):
    """≤48 children; a 256-entry byte-indexed table maps key bytes to
    slots in a 48-entry child array."""

    __slots__ = ("child_index", "children", "_count")
    TYPE = LINK_N48
    CAPACITY = 48

    def __init__(self, prefix: bytes = b""):
        super().__init__(prefix)
        self.child_index = bytearray([N48_EMPTY_SLOT]) * 256
        self.children: list[Optional[Child]] = [None] * 48
        self._count = 0

    @property
    def num_children(self) -> int:
        return self._count

    def find_child(self, byte: int) -> Optional[Child]:
        slot = self.child_index[byte]
        if slot == N48_EMPTY_SLOT:
            return None
        return self.children[slot]

    def set_child(self, byte: int, child: Child) -> None:
        slot = self.child_index[byte]
        if slot != N48_EMPTY_SLOT:
            self.children[slot] = child
            return
        slot = next(i for i, c in enumerate(self.children) if c is None)
        self.child_index[byte] = slot
        self.children[slot] = child
        self._count += 1

    def remove_child(self, byte: int) -> None:
        slot = self.child_index[byte]
        if slot == N48_EMPTY_SLOT:
            raise KeyError(byte)
        self.child_index[byte] = N48_EMPTY_SLOT
        self.children[slot] = None
        self._count -= 1

    def children_items(self) -> Iterator[tuple[int, Child]]:
        for byte in range(256):
            slot = self.child_index[byte]
            if slot != N48_EMPTY_SLOT:
                child = self.children[slot]
                assert child is not None
                yield byte, child


class Node256(InnerNode):
    """Full fan-out: direct 256-entry child array."""

    __slots__ = ("children", "_count")
    TYPE = LINK_N256
    CAPACITY = 256

    def __init__(self, prefix: bytes = b""):
        super().__init__(prefix)
        self.children: list[Optional[Child]] = [None] * 256
        self._count = 0

    @property
    def num_children(self) -> int:
        return self._count

    def find_child(self, byte: int) -> Optional[Child]:
        return self.children[byte]

    def set_child(self, byte: int, child: Child) -> None:
        if self.children[byte] is None:
            self._count += 1
        self.children[byte] = child

    def remove_child(self, byte: int) -> None:
        if self.children[byte] is None:
            raise KeyError(byte)
        self.children[byte] = None
        self._count -= 1

    def children_items(self) -> Iterator[tuple[int, Child]]:
        for byte in range(256):
            child = self.children[byte]
            if child is not None:
                yield byte, child


#: grow chain: Node4 -> Node16 -> Node48 -> Node256
_GROW_TARGET = {Node4: Node16, Node16: Node48, Node48: Node256}
#: shrink chain with the per-type minimum occupancy that triggers it.
_SHRINK_TARGET = {Node16: (Node4, 4), Node48: (Node16, 16), Node256: (Node48, 48)}


def grown_copy(node: InnerNode) -> InnerNode:
    """Return a copy of ``node`` as the next larger node type."""
    target_cls = _GROW_TARGET[type(node)]
    bigger = target_cls(node.prefix)
    for byte, child in node.children_items():
        bigger.set_child(byte, child)
    return bigger


def maybe_shrunk_copy(node: InnerNode) -> InnerNode:
    """Return a smaller copy of ``node`` if its occupancy dropped below the
    smaller type's capacity, else ``node`` itself.

    ``Node4`` never shrinks here; collapsing a 1-child ``Node4`` into its
    child (path merging) is handled by the tree's delete logic because it
    changes the compressed prefix.
    """
    entry = _SHRINK_TARGET.get(type(node))
    if entry is None:
        return node
    target_cls, threshold = entry
    if node.num_children > threshold:
        return node
    smaller = target_cls(node.prefix)
    for byte, child in node.children_items():
        smaller.set_child(byte, child)
    return smaller


def node_type_code(node: Child) -> int:
    """Packed-link type code for an inner node (leaves are classified by
    key length at mapping time, see ``repro.cuart.layout``)."""
    if isinstance(node, Leaf):
        raise TypeError("leaves have no single type code; size-dependent")
    return node.TYPE
