"""Ordered traversal, range scans and prefix scans over the host ART.

The in-order traversal defined here is also what fixes the leaf numbering
of the device layouts: because children are visited in ascending byte
order, leaves come out in lexicographic key order, which is the property
the CuART leaf buffers exploit for range queries (section 3.2.1: "the
keys are already strictly ordered within the leaf buffers").
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.art.nodes import Child, InnerNode, Leaf


def iter_leaves(node: Optional[Child]) -> Iterator[Leaf]:
    """Depth-first, byte-ordered iteration over all leaves below ``node``."""
    if node is None:
        return
    stack: list[Child] = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, Leaf):
            yield cur
        else:
            # push children in reverse so the smallest byte pops first
            stack.extend(child for _, child in reversed(list(cur.children_items())))


def iter_items(tree) -> Iterator[tuple[bytes, int]]:
    for leaf in iter_leaves(tree.root):
        yield leaf.key, leaf.value


def minimum_leaf(node: Optional[Child]) -> Optional[Leaf]:
    """Leftmost (smallest-key) leaf below ``node``."""
    while node is not None and not isinstance(node, Leaf):
        node = next(child for _, child in node.children_items())
    return node


def maximum_leaf(node: Optional[Child]) -> Optional[Leaf]:
    """Rightmost (largest-key) leaf below ``node``."""
    while node is not None and not isinstance(node, Leaf):
        node = list(node.children_items())[-1][1]
    return node


def iter_range(tree, lo: bytes, hi: bytes) -> Iterator[tuple[bytes, int]]:
    """All ``(key, value)`` with ``lo <= key <= hi`` in ascending order.

    Uses ordered traversal with subtree pruning: a subtree is entered only
    if its key interval can intersect ``[lo, hi]``.
    """
    if lo > hi:
        return
    yield from _range_walk(tree.root, b"", lo, hi)


def _range_walk(
    node: Optional[Child], path: bytes, lo: bytes, hi: bytes
) -> Iterator[tuple[bytes, int]]:
    if node is None:
        return
    if isinstance(node, Leaf):
        if lo <= node.key <= hi:
            yield node.key, node.value
        return
    path = path + node.prefix
    # prune: every key below starts with `path`; the subtree's key range
    # is [path, path+0xff...], so skip it if it cannot intersect [lo, hi].
    if path > hi or _subtree_upper_below(path, lo):
        return
    for byte, child in node.children_items():
        yield from _range_walk(child, path + bytes([byte]), lo, hi)


def _subtree_upper_below(path: bytes, lo: bytes) -> bool:
    """True if every key starting with ``path`` is strictly below ``lo``.

    That is the case exactly when ``path`` is not a prefix of ``lo`` and
    ``path < lo``.
    """
    return path < lo[: len(path)]


def iter_prefix(tree, prefix: bytes) -> Iterator[tuple[bytes, int]]:
    """All ``(key, value)`` whose key starts with ``prefix``, in order.

    Descends along ``prefix`` verifying every consumed byte (the host
    tree stores complete compressed prefixes, so verification is exact),
    then yields the entire covering subtree.
    """
    node = tree.root
    path = b""  # bytes consumed from the root so far
    while node is not None:
        if isinstance(node, Leaf):
            if node.key.startswith(prefix):
                yield node.key, node.value
            return
        path = path + node.prefix
        overlap = min(len(path), len(prefix))
        if path[:overlap] != prefix[:overlap]:
            return
        if len(path) >= len(prefix):
            # every leaf below this node starts with `path`, which itself
            # starts with `prefix`: yield the whole subtree in order.
            for leaf in iter_leaves(node):
                yield leaf.key, leaf.value
            return
        byte = prefix[len(path)]
        node = node.find_child(byte)
        path = path + bytes([byte])
