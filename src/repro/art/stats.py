"""Tree statistics.

These drive two things:

* the memory-consumption accounting of the three layouts (classic ART,
  GRT single buffer, CuART per-type buffers), and
* the GPU cost model: the simulated kernels charge one (CuART) or two
  (GRT) memory transactions per *visited node*, so the per-level node
  type mix and the leaf-depth distribution are exactly what determines
  throughput (section 3.1 and the figure-10 discussion: "larger trees are
  more densely populated ... large nodes occur more frequently").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.art.nodes import Child, InnerNode, Leaf
from repro.constants import (
    CUART_NODE_BYTES,
    GRT_BODY_BYTES,
    GRT_HEADER_BYTES,
    LEAF_CAPACITY,
    LINK_LEAF8,
    LINK_LEAF16,
    LINK_LEAF32,
    LINK_TYPE_NAMES,
    NODE_CAPACITY,
)
from repro.errors import KeyTooLongError


def leaf_type_for_key(key_len: int) -> int:
    """Smallest fixed leaf type that fits ``key_len`` bytes (section
    3.2.1: "several leaf objects of different sizes (8, 16, 32 bytes) to
    better adapt to dynamic key sizes")."""
    if key_len <= LEAF_CAPACITY[LINK_LEAF8]:
        return LINK_LEAF8
    if key_len <= LEAF_CAPACITY[LINK_LEAF16]:
        return LINK_LEAF16
    if key_len <= LEAF_CAPACITY[LINK_LEAF32]:
        return LINK_LEAF32
    raise KeyTooLongError(
        f"key length {key_len} exceeds the largest fixed leaf "
        f"({LEAF_CAPACITY[LINK_LEAF32]} bytes); configure a long-key "
        "strategy (repro.cuart.longkeys)"
    )


@dataclass
class TreeStats:
    """Aggregate structural statistics of one populated tree."""

    num_keys: int = 0
    #: inner node counts keyed by packed-link type code (1..4).
    node_counts: Counter = field(default_factory=Counter)
    #: leaf counts keyed by leaf type code (5..7); long keys counted
    #: under the key ``"long"``.
    leaf_counts: Counter = field(default_factory=Counter)
    #: per traversal level (0 = root): Counter of node type codes.
    level_type_mix: list[Counter] = field(default_factory=list)
    #: distribution of leaf depths measured in *node visits* (levels).
    leaf_level_histogram: Counter = field(default_factory=Counter)
    #: distribution of path-compression prefix lengths over inner nodes
    #: (``{prefix_byte_len: node_count}``) — how much vertical collapsing
    #: the key set admits.
    prefix_length_histogram: Counter = field(default_factory=Counter)
    #: total key bytes skipped via path compression.
    compressed_bytes: int = 0
    max_key_len: int = 0
    sum_key_len: int = 0

    # -- derived ---------------------------------------------------------
    @property
    def total_inner_nodes(self) -> int:
        return sum(self.node_counts.values())

    @property
    def avg_leaf_level(self) -> float:
        """Average number of node visits to reach a leaf (the root counts
        as level 0; a leaf at level d costs d inner-node reads plus one
        leaf read)."""
        total = sum(self.leaf_level_histogram.values())
        if total == 0:
            return 0.0
        return (
            sum(lvl * cnt for lvl, cnt in self.leaf_level_histogram.items()) / total
        )

    @property
    def avg_key_len(self) -> float:
        return self.sum_key_len / self.num_keys if self.num_keys else 0.0

    def avg_visited_type_mix(self) -> Counter:
        """Expected node-type counts visited by one uniform-random
        *present-key* lookup (weights each level's mix by how many keys
        pass through it)."""
        # Each key passes through every level above its leaf; for a
        # uniformly drawn key the expected number of level-l visits is
        # (keys at depth > l) / num_keys.  We approximate with the node
        # population per level weighted by subtree sizes, which the
        # recursive walk below records directly.
        return self._visit_mix

    # internal: filled by collect_stats
    _visit_mix: Counter = field(default_factory=Counter)

    # -- memory models -----------------------------------------------------
    def art_host_bytes(self, pointer_bytes: int = 8) -> int:
        """Approximate memory of the classic pointer ART (malloc'd nodes
        spread across the heap, section 4.2)."""
        total = 0
        for code, cnt in self.node_counts.items():
            cap = NODE_CAPACITY[code]
            if code in (1, 2):
                body = cap + cap * pointer_bytes
            elif code == 3:
                body = 256 + 48 * pointer_bytes
            else:
                body = 256 * pointer_bytes
            total += cnt * (16 + body)  # 16-byte malloc/node header
        total += sum(self.leaf_counts.values()) * (16 + 8 + self.max_key_len)
        return total

    def grt_device_bytes(self) -> int:
        """Size of the GRT single packed buffer."""
        total = 0
        for code, cnt in self.node_counts.items():
            total += cnt * (GRT_HEADER_BYTES + GRT_BODY_BYTES[code])
        # GRT leaves are dynamically sized: header + value + key bytes
        total += sum(self.leaf_counts.values()) * GRT_HEADER_BYTES
        total += self.sum_key_len + 8 * self.num_keys
        return total

    def cuart_device_bytes(self, root_table_entries: int = 0) -> int:
        """Total size of the CuART per-type buffers (+ optional compacted
        root table, section 3.2.2)."""
        total = 0
        for code, cnt in self.node_counts.items():
            total += cnt * CUART_NODE_BYTES[code]
        for code, cnt in self.leaf_counts.items():
            if code == "long":
                continue
            total += cnt * CUART_NODE_BYTES[code]
        total += root_table_entries * 8
        return total


def collect_stats(root: Optional[Child]) -> TreeStats:
    """Walk the tree once and gather :class:`TreeStats`."""
    stats = TreeStats()
    if root is None:
        return stats
    # iterative DFS carrying (node, level); also count, per level, how
    # many leaves live below each node to weight the visit mix.
    stats._visit_mix = Counter()
    _walk(root, 0, stats)
    return stats


def _walk(node: Child, level: int, stats: TreeStats) -> int:
    """Returns the number of leaves below ``node`` (for visit weighting)."""
    while len(stats.level_type_mix) <= level:
        stats.level_type_mix.append(Counter())
    if isinstance(node, Leaf):
        try:
            code = leaf_type_for_key(len(node.key))
        except KeyTooLongError:
            code = "long"
        stats.leaf_counts[code] += 1
        stats.level_type_mix[level][code] += 1
        stats.leaf_level_histogram[level] += 1
        stats.num_keys += 1
        stats.sum_key_len += len(node.key)
        stats.max_key_len = max(stats.max_key_len, len(node.key))
        return 1
    assert isinstance(node, InnerNode)
    stats.node_counts[node.TYPE] += 1
    stats.level_type_mix[level][node.TYPE] += 1
    stats.compressed_bytes += len(node.prefix)
    stats.prefix_length_histogram[len(node.prefix)] += 1
    below = 0
    for _, child in node.children_items():
        below += _walk(child, level + 1, stats)
    # a uniform-random present-key lookup visits this node with
    # probability below/num_keys; accumulate un-normalized weights now,
    # normalize in visit_mix_per_lookup().
    stats._visit_mix[node.TYPE] += below
    return below


def publish_stats(registry, stats: TreeStats) -> None:
    """Publish one :class:`TreeStats` into a metrics registry as gauges.

    Called after a tree walk (``collect_stats``) — typically at snapshot
    time, since the walk is O(tree); the cheap per-write-batch refresh of
    the *device-side* populations lives in
    :meth:`repro.host.engine.CuartEngine._refresh_device_gauges`.
    Absent node/leaf types are explicitly zeroed so a re-publish after
    deletions never leaves stale populations behind.
    """
    g_nodes = registry.gauge(
        "art_nodes", "host-tree inner node population", labels=("type",)
    )
    for code in NODE_CAPACITY:
        g_nodes.labels(type=LINK_TYPE_NAMES[code]).set(
            stats.node_counts.get(code, 0)
        )
    g_leaves = registry.gauge(
        "art_leaves", "host-tree leaf population", labels=("type",)
    )
    for code in LEAF_CAPACITY:
        g_leaves.labels(type=LINK_TYPE_NAMES[code]).set(
            stats.leaf_counts.get(code, 0)
        )
    g_leaves.labels(type="long").set(stats.leaf_counts.get("long", 0))
    registry.gauge("art_keys", "keys stored in the host tree").set(
        stats.num_keys
    )
    registry.gauge(
        "art_avg_leaf_level", "mean node visits to reach a leaf"
    ).set(stats.avg_leaf_level)
    registry.gauge(
        "art_compressed_bytes", "key bytes elided by path compression"
    ).set(stats.compressed_bytes)
    g_prefix = registry.gauge(
        "art_prefix_length_nodes",
        "inner nodes by path-compression prefix length",
        labels=("len",),
    )
    for plen, cnt in sorted(stats.prefix_length_histogram.items()):
        g_prefix.labels(len=str(plen)).set(cnt)


def visit_mix_per_lookup(stats: TreeStats) -> dict:
    """Expected number of inner nodes of each type visited by one
    uniform-random lookup of a *present* key, plus the leaf read.

    This is the workload profile handed to the GPU cost model.
    """
    if stats.num_keys == 0:
        return {}
    mix = {
        code: weight / stats.num_keys for code, weight in stats._visit_mix.items()
    }
    for code, cnt in stats.leaf_counts.items():
        mix[code] = mix.get(code, 0.0) + cnt / stats.num_keys
    return mix
