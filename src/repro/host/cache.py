"""Hot-key result caching for the serving path.

Production key-value traffic is skewed: the Zipf-distributed streams of
:mod:`repro.workloads.distributions` concentrate most queries on a small
set of hot keys.  Serving those from a host-side LRU map short-circuits
the whole encode → batch → kernel pipeline for repeat lookups, which is
exactly where a serving deployment of CuART would put a memcache tier.

The cache stores *resolved* lookup outcomes (``value`` or ``None`` for a
confirmed miss — negative caching), and the engine invalidates entries on
every update / delete / insert that touches them, so cached answers are
always equal to what the kernels would return (property-tested against a
cache-disabled engine under interleaved mutation streams).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError


@dataclass
class CacheStats:
    """Counters of one :class:`HotKeyCache` lifetime."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class HotKeyCache:
    """A bounded LRU map ``key -> Optional[value]``.

    ``None`` is a first-class cached outcome (negative caching) — the
    sentinel for "not cached" is kept internal.
    """

    __slots__ = ("capacity", "_data", "stats")

    #: capability flag: engines with this cache version credit stream
    #: repeats collapsed by the lookup dedup pass as cache hits (the
    #: harness gates its nonzero-hit-rate assertion on this, so it can
    #: still run against older checkouts).
    COUNTS_DEDUP_HITS = True

    _ABSENT = object()

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ReproError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[bytes, Optional[int]] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def get(self, key: bytes):
        """Return ``(cached, value)``; refreshes LRU recency on hit."""
        data = self._data
        val = data.get(key, self._ABSENT)
        if val is self._ABSENT:
            self.stats.misses += 1
            return False, None
        data.move_to_end(key)
        self.stats.hits += 1
        return True, val

    def put(self, key: bytes, value: Optional[int]) -> None:
        """Insert or refresh an entry, evicting the coldest if full."""
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return
        if len(data) >= self.capacity:
            data.popitem(last=False)
            self.stats.evictions += 1
        data[key] = value

    def update_if_cached(self, key: bytes, value: Optional[int]) -> None:
        """Refresh an entry in place if (and only if) it is resident —
        mutations must never *pollute* the LRU with cold keys."""
        if key in self._data:
            self._data[key] = value
            self.stats.invalidations += 1

    def invalidate(self, key: bytes) -> None:
        """Drop one entry if resident."""
        if self._data.pop(key, self._ABSENT) is not self._ABSENT:
            self.stats.invalidations += 1

    def clear(self) -> None:
        self.stats.invalidations += len(self._data)
        self._data.clear()
