"""Hot-key result caching for the serving path.

Production key-value traffic is skewed: the Zipf-distributed streams of
:mod:`repro.workloads.distributions` concentrate most queries on a small
set of hot keys.  Serving those from a host-side LRU map short-circuits
the whole encode → batch → kernel pipeline for repeat lookups, which is
exactly where a serving deployment of CuART would put a memcache tier.

The cache stores *resolved* lookup outcomes (``value`` or ``None`` for a
confirmed miss — negative caching), and the engine invalidates entries on
every update / delete / insert that touches them, so cached answers are
always equal to what the kernels would return (property-tested against a
cache-disabled engine under interleaved mutation streams).

Accounting goes through the shared metrics registry
(:mod:`repro.obs`): the cache owns the ``cache_*_total`` counters and
every hit/miss/dedup tally — including the engine's in-call dedup hits —
is routed through this class's methods, so :attr:`HotKeyCache.stats`,
the registry snapshot and the BENCH JSON can never disagree.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry


class CacheStats:
    """Read-only view over the cache's registry counters.

    Keeps the historical ``cache.stats.hits`` / ``.misses`` /
    ``.invalidations`` / ``.evictions`` / ``.hit_rate`` surface while the
    authoritative values live in the metrics registry.
    """

    __slots__ = ("_cache",)

    def __init__(self, cache: "HotKeyCache") -> None:
        self._cache = cache

    @property
    def hits(self) -> int:
        return self._cache._hits.value

    @property
    def misses(self) -> int:
        return self._cache._misses.value

    @property
    def invalidations(self) -> int:
        return self._cache._invalidations.value

    @property
    def evictions(self) -> int:
        return self._cache._evictions.value

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class HotKeyCache:
    """A bounded LRU map ``key -> Optional[value]``.

    ``None`` is a first-class cached outcome (negative caching) — the
    sentinel for "not cached" is kept internal.
    """

    __slots__ = (
        "capacity", "_data", "stats", "metrics",
        "_hits", "_misses", "_invalidations", "_evictions", "_size_gauge",
    )

    #: capability flag: engines with this cache version credit stream
    #: repeats collapsed by the lookup dedup pass as cache hits (the
    #: harness gates its nonzero-hit-rate assertion on this, so it can
    #: still run against older checkouts).
    COUNTS_DEDUP_HITS = True

    _ABSENT = object()

    def __init__(
        self, capacity: int, *, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        if capacity <= 0:
            raise ReproError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[bytes, Optional[int]] = OrderedDict()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter(
            "cache_hits_total", "hot-key cache hits (incl. in-call dedup)"
        )
        self._misses = self.metrics.counter(
            "cache_misses_total", "hot-key cache misses"
        )
        self._invalidations = self.metrics.counter(
            "cache_invalidations_total",
            "entries refreshed or dropped by writes",
        )
        self._evictions = self.metrics.counter(
            "cache_evictions_total", "LRU capacity evictions"
        )
        self._size_gauge = self.metrics.gauge(
            "cache_resident_entries", "entries currently resident"
        )
        self.stats = CacheStats(self)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def get(self, key: bytes):
        """Return ``(cached, value)``; refreshes LRU recency on hit."""
        data = self._data
        val = data.get(key, self._ABSENT)
        if val is self._ABSENT:
            self._misses.inc()
            return False, None
        data.move_to_end(key)
        self._hits.inc()
        return True, val

    def record_dedup_hits(self, n: int) -> None:
        """Credit ``n`` hits served by the engine's in-call dedup pass.

        Stream repeats collapsed before the LRU probe are hot-key-tier
        hits too (the dict plus the LRU form one tier); this is the one
        accounting door for them, so callers never touch the counters
        directly.
        """
        if n > 0:
            self._hits.inc(n)

    def put(self, key: bytes, value: Optional[int]) -> None:
        """Insert or refresh an entry, evicting the coldest if full."""
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return
        if len(data) >= self.capacity:
            data.popitem(last=False)
            self._evictions.inc()
        data[key] = value
        self._size_gauge.set(len(data))

    def update_if_cached(self, key: bytes, value: Optional[int]) -> None:
        """Refresh an entry in place if (and only if) it is resident —
        mutations must never *pollute* the LRU with cold keys."""
        if key in self._data:
            self._data[key] = value
            self._invalidations.inc()

    def invalidate(self, key: bytes) -> None:
        """Drop one entry if resident."""
        if self._data.pop(key, self._ABSENT) is not self._ABSENT:
            self._invalidations.inc()
            self._size_gauge.set(len(self._data))

    def clear(self) -> None:
        self._invalidations.inc(len(self._data))
        self._data.clear()
        self._size_gauge.set(0)
