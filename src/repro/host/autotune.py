"""Dispatch-configuration auto-tuning.

Section 4.3 performs a manual design-space exploration over host threads
and batch size (figures 8/9) and settles on 32Ki × 8 threads.  With the
pipeline model in code, that exploration is a function: measure one
representative kernel per candidate batch size, sweep the model, pick
the sustained-throughput maximizer (ties broken toward fewer threads and
smaller batches — same resources, less latency).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import NamedTuple, Optional

import numpy as np

from repro.cuart.layout import CuartLayout
from repro.cuart.lookup import lookup_batch
from repro.errors import SimulationError
from repro.gpusim.cost_model import CostModel
from repro.gpusim.devices import CpuSpec, DeviceSpec
from repro.host.dispatcher import DispatchConfig, pipeline_throughput
from repro.util.keys import keys_to_matrix
from repro.util.rng import make_rng

#: power-of-two batch sizes the paper's exploration covers (figure 8).
DEFAULT_BATCH_GRID = tuple(1 << p for p in range(11, 18))  # 2Ki .. 128Ki
DEFAULT_THREAD_GRID = (1, 2, 4, 8, 12, 16, 24, 32)


class TunePoint(NamedTuple):
    """Stable key of one probed design point.

    A plain ``(batch, threads)`` 2-tuple compares and hashes equal to a
    ``TunePoint``, so ``surface[(32768, 8)]`` keeps working; the named
    fields exist so feedback-loop consumers (:mod:`repro.serve`) can
    read ``point.batch`` instead of indexing blind positions."""

    #: queries per device batch (power of two, figure 8's x-axis).
    batch: int
    #: host preparation threads feeding the pipeline.
    threads: int


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one auto-tuning sweep.

    ``surface`` maps every probed design point to its modeled sustained
    throughput: ``{TunePoint(batch, threads): MOps/s}``.  Keys are
    :class:`TunePoint` named 2-tuples — plain ``(batch, threads)``
    tuples index it interchangeably, and iteration order follows the
    sweep (batch-major, thread-minor).
    """

    config: DispatchConfig
    throughput_mops: float
    #: full sweep surface: :class:`TunePoint` -> modeled MOps/s.
    surface: dict
    #: queries measured per probed batch size.
    probes: int

    def describe(self) -> str:
        return (
            f"batch={self.config.batch_size} threads="
            f"{self.config.host_threads} -> "
            f"{self.throughput_mops:.1f} MOps/s (modeled)"
        )

    def as_dispatch_config(self, **overrides) -> DispatchConfig:
        """The winning :class:`~repro.host.dispatcher.DispatchConfig`,
        optionally with field overrides (``key_bytes=...``, ``api=...``)
        — the supported way to consume a sweep, instead of reaching into
        ``.config`` internals."""
        if not overrides:
            return self.config
        return replace(self.config, **overrides)

    def best_under(self, max_batch: Optional[int] = None) -> TunePoint:
        """Throughput-optimal design point subject to a batch-size cap
        (``None`` = unconstrained).  This is the feedback-loop query: an
        SLO controller holding batches at or below a latency-derived cap
        asks where the modeled optimum sits inside that region."""
        best: Optional[tuple[float, TunePoint]] = None
        for point, rate in self.surface.items():
            if max_batch is not None and point[0] > max_batch:
                continue
            if best is None or rate > best[0]:
                best = (rate, TunePoint(*point))
        if best is None:
            raise SimulationError(
                "no tuned design point within the batch cap",
                value=max_batch,
            )
        return best[1]


def autotune_dispatch(
    layout: CuartLayout,
    keys,
    device: DeviceSpec,
    cpu: CpuSpec,
    *,
    root_table=None,
    batch_grid=DEFAULT_BATCH_GRID,
    thread_grid=DEFAULT_THREAD_GRID,
    l2_scale: float = 1.0,
    seed=None,
) -> TuneResult:
    """Pick (batch size, host threads) maximizing modeled end-to-end
    lookup throughput for this layout on this machine.

    One representative batch per candidate size runs through the real
    kernel (its transaction profile varies with batch size via cache
    footprints); the pipeline model then sweeps the thread grid.
    """
    rng = make_rng(seed)
    model = CostModel(device, l2_scale=l2_scale)
    width = max(len(k) for k in keys)
    surface: dict = {}
    best = None
    for batch in batch_grid:
        idx = rng.integers(0, len(keys), size=batch)
        mat, lens = keys_to_matrix([keys[int(i)] for i in idx], width=width)
        res = lookup_batch(layout, mat, lens, root_table=root_table)
        timing = model.kernel_time(res.log)
        for threads in thread_grid:
            cfg = DispatchConfig(
                batch_size=batch, host_threads=threads, key_bytes=width
            )
            rate = pipeline_throughput(timing, cfg, device, cpu).throughput_mops
            surface[TunePoint(batch, threads)] = rate
            # prefer strictly better rates; on ~ties (within 1%), prefer
            # fewer threads, then smaller batches (lower latency)
            if best is None or rate > best[0] * 1.01:
                best = (rate, cfg)
    assert best is not None
    return TuneResult(
        config=best[1],
        throughput_mops=best[0],
        surface=surface,
        probes=len(batch_grid),
    )
