"""Retry / degrade policy engine for the device serving path.

The paper's pipeline (§3.5) assumes a cooperative device; a production
deployment does not get one.  This module supplies the policy half of
the fault-tolerance subsystem (the mechanism half — deterministic fault
injection — lives in :mod:`repro.gpusim.faults`):

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  jitter for *transient* faults (``exc.transient`` is True: kernel
  aborts, PCIe timeouts/corruption, injected hash-table refusals,
  device OOM).  Every fault fires before device state changed, so a
  retry replays the identical batch.
* recovery callbacks for *non-transient* errors: the engine grows the
  conflict hash table on genuine :class:`~repro.errors.CapacityError`
  pressure and re-maps on :class:`~repro.errors.StaleLayoutError`
  instead of crashing.
* :class:`DeviceHealth` — a consecutive-failure circuit breaker.  After
  ``unhealthy_after`` exhausted batches the device is marked unhealthy
  and ops are served by the CPU path (``DEGRADED_CPU`` status); every
  ``probe_interval`` degraded calls the engine probes the device
  (count-based, deterministic — no wall clocks) and recovers when a
  probe launch succeeds.

Backoff is *simulated* by default (accumulated into
:attr:`ResilientDispatcher.simulated_backoff_s` and a metrics counter)
so test and soak runs stay fast and deterministic; set
``simulate_backoff=False`` to actually sleep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ReproError, SimulationError
from repro.obs.flightrec import NULL_FLIGHT_RECORDER
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER
from repro.util.rng import DEFAULT_SEED, make_rng

#: hard cap on recovery interventions (hash growth, re-map) within one
#: dispatched batch — a recovery that does not stick must not loop.
MAX_RECOVERIES_PER_DISPATCH = 8


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter."""

    #: total tries per dispatch, including the first (1 = no retries).
    max_attempts: int = 4
    #: backoff before the first retry, in seconds.
    backoff_base_s: float = 1e-4
    #: multiplier per further retry.
    backoff_factor: float = 2.0
    #: symmetric jitter fraction applied to each delay (0.1 = ±10%).
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError(
                "max_attempts must be >= 1", value=self.max_attempts
            )
        if self.backoff_base_s < 0:
            raise SimulationError(
                "backoff_base_s must be >= 0", value=self.backoff_base_s
            )
        if self.backoff_factor < 1.0:
            raise SimulationError(
                "backoff_factor must be >= 1", value=self.backoff_factor
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise SimulationError(
                "jitter must be in [0, 1]", value=self.jitter
            )

    def delay_s(self, attempt: int, rng) -> float:
        """Backoff before retrying after the ``attempt``-th failure
        (1-based), jittered from ``rng``."""
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        if self.jitter:
            base *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return base


@dataclass(frozen=True)
class ResiliencePolicy:
    """Everything the engine needs to survive a faulty device."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: seed of the jitter stream (independent of the fault injector's).
    seed: int = DEFAULT_SEED
    #: serve from the CPU path once retries are exhausted, instead of
    #: raising.
    allow_degrade: bool = True
    #: consecutive retry-exhausted batches before the device is marked
    #: unhealthy (circuit opens).
    unhealthy_after: int = 3
    #: while unhealthy, probe the device once every this many degraded
    #: calls (count-based, deterministic).
    probe_interval: int = 2
    #: ceiling for hash-table growth recovery; genuine capacity errors
    #: beyond it fall back to batch splitting / degradation.
    max_hash_slots: int = 1 << 22
    #: accumulate backoff as simulated seconds instead of sleeping.
    simulate_backoff: bool = True

    def __post_init__(self) -> None:
        if self.unhealthy_after < 1:
            raise SimulationError(
                "unhealthy_after must be >= 1", value=self.unhealthy_after
            )
        if self.probe_interval < 1:
            raise SimulationError(
                "probe_interval must be >= 1", value=self.probe_interval
            )
        if self.max_hash_slots & (self.max_hash_slots - 1) or \
                self.max_hash_slots <= 0:
            raise SimulationError(
                "max_hash_slots must be a power of two",
                value=self.max_hash_slots,
            )


class DeviceHealth:
    """Consecutive-failure circuit breaker state."""

    def __init__(self, unhealthy_after: int) -> None:
        self.unhealthy_after = unhealthy_after
        #: retry-exhausted dispatches since the last success/recovery.
        self.consecutive_failures = 0
        #: calls served by the CPU path while the circuit is open.
        self.degraded_calls = 0
        #: successful probe recoveries so far.
        self.recoveries = 0

    @property
    def healthy(self) -> bool:
        return self.consecutive_failures < self.unhealthy_after

    def mark_success(self) -> None:
        self.consecutive_failures = 0

    def mark_failure(self) -> None:
        self.consecutive_failures += 1

    def recover(self) -> None:
        """A probe succeeded: close the circuit."""
        self.consecutive_failures = 0
        self.degraded_calls = 0
        self.recoveries += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "healthy" if self.healthy else "UNHEALTHY"
        return (
            f"DeviceHealth({state}, failures={self.consecutive_failures}, "
            f"degraded_calls={self.degraded_calls}, "
            f"recoveries={self.recoveries})"
        )


class ResilientDispatcher:
    """Runs guarded device calls under a :class:`ResiliencePolicy`.

    One instance per engine; the engine wraps each per-batch kernel
    dispatch (PCIe guards + launch + kernel body) in a closure and hands
    it to :meth:`run`.
    """

    def __init__(
        self,
        policy: ResiliencePolicy,
        *,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        flight=None,
    ) -> None:
        self.policy = policy
        self.health = DeviceHealth(policy.unhealthy_after)
        self.rng = make_rng(policy.seed)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: flight recorder (repro.obs.flightrec): retry / exhaustion /
        #: degrade events feed its fault-burst black-box trigger.
        self.flight = flight if flight is not None else NULL_FLIGHT_RECORDER
        #: total backoff charged but not slept (simulate_backoff=True).
        self.simulated_backoff_s = 0.0
        m = metrics if metrics is not None else MetricsRegistry()
        self.metrics = m
        self._m_retries = m.counter(
            "resilience_retries_total",
            "transient-fault retries, by operation", labels=("op",),
        )
        self._m_exhausted = m.counter(
            "resilience_retry_exhausted_total",
            "dispatches that exhausted their retry budget", labels=("op",),
        )
        self._m_degraded = m.counter(
            "resilience_degraded_batches_total",
            "batches served by the CPU degradation path", labels=("op",),
        )
        self._m_probes = m.counter(
            "resilience_probes_total", "health probes while degraded",
        )
        self._m_backoff = m.counter(
            "resilience_backoff_seconds_total",
            "cumulative retry backoff (simulated unless configured)",
        )

    # ------------------------------------------------------------------
    def run(
        self,
        op: str,
        fn: Callable[[], object],
        *,
        recover: Optional[Callable[[ReproError], bool]] = None,
        degrade: Optional[bool] = None,
    ) -> tuple[object, int]:
        """Execute ``fn`` under the retry policy.

        Returns ``(result, attempts)``.  ``(None, attempts)`` signals
        "retries exhausted, serve this batch on the CPU" — only when
        degradation is allowed (``degrade`` overrides the policy's
        ``allow_degrade``); otherwise the final fault propagates.

        Transient errors (``exc.transient``) are retried with backoff;
        non-transient :class:`ReproError` s are offered once each to the
        bounded ``recover`` callback (hash-table growth, re-map) and the
        dispatch repeats if it returns True.
        """
        allow_degrade = (
            self.policy.allow_degrade if degrade is None else degrade
        )
        retry = self.policy.retry
        attempt = 0
        recoveries = 0
        while True:
            attempt += 1
            try:
                out = fn()
            except ReproError as exc:
                if getattr(exc, "transient", False):
                    if attempt < retry.max_attempts:
                        self._backoff(op, attempt, exc)
                        continue
                    self.health.mark_failure()
                    self._m_exhausted.labels(op=op).inc()
                    if allow_degrade:
                        self.tracer.instant(
                            "resilience.exhausted",
                            {"op": op, "attempts": attempt,
                             "error": type(exc).__name__},
                        )
                        self.flight.note_fault(op, "exhausted")
                        return None, attempt
                    raise
                if (
                    recover is not None
                    and recoveries < MAX_RECOVERIES_PER_DISPATCH
                    and recover(exc)
                ):
                    recoveries += 1
                    self.tracer.instant(
                        "resilience.recovered",
                        {"op": op, "error": type(exc).__name__},
                    )
                    self.flight.note_fault(op, "recovered")
                    continue
                raise
            else:
                self.health.mark_success()
                return out, attempt

    def _backoff(self, op: str, attempt: int, exc: ReproError) -> None:
        d = self.policy.retry.delay_s(attempt, self.rng)
        self._m_retries.labels(op=op).inc()
        self._m_backoff.inc(d)
        self.tracer.instant(
            "resilience.retry",
            {"op": op, "attempt": attempt, "backoff_s": d,
             "error": type(exc).__name__},
        )
        self.flight.note_fault(op, "retry")
        if self.policy.simulate_backoff:
            self.simulated_backoff_s += d
        else:  # pragma: no cover - wall-clock mode
            time.sleep(d)

    # -- circuit-breaker bookkeeping (driven by the engine) -------------
    def note_degraded(self, op: str) -> None:
        """One batch was (or will be) served by the CPU path."""
        self._m_degraded.labels(op=op).inc()
        self.health.degraded_calls += 1
        self.flight.note_fault(op, "degraded")

    def due_probe(self) -> bool:
        """Probe cadence while the circuit is open: the first degraded
        call probes immediately, then every ``probe_interval``-th."""
        interval = self.policy.probe_interval
        return self.health.degraded_calls % interval == 0

    def record_probe(self) -> None:
        self._m_probes.inc()
