"""Query coalescing (section 4.1).

"Queries are coalesced into batches in order to reduce the compute
overhead, typically with a power-of-two size to ease up scheduling and
optimal load on the GPUs."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry, OCCUPANCY_BUCKETS
from repro.util.keys import keys_to_matrix
from repro.util.validation import require_power_of_two


@dataclass
class QueryBatch:
    """One coalesced batch ready for device dispatch."""

    keys_mat: np.ndarray
    key_lens: np.ndarray
    #: positions of these queries in the original stream (results are
    #: scattered back through this).
    origin: np.ndarray

    @property
    def size(self) -> int:
        return self.keys_mat.shape[0]


def coalesce(
    keys: Sequence[bytes], batch_size: int, *, width: int | None = None
) -> list[QueryBatch]:
    """Split a query stream into power-of-two batches (the final batch
    may be short — the device pads the launch, the model charges the full
    grid).

    The whole stream is encoded into *one* preallocated key matrix
    (:func:`repro.util.keys.keys_to_matrix` bulk path); every emitted
    batch is a zero-copy view of it.
    """
    require_power_of_two(batch_size, "batch_size")
    mat, lens = keys_to_matrix(keys, width=width)
    return coalesce_encoded(mat, lens, batch_size)


def coalesce_encoded(
    mat: np.ndarray, lens: np.ndarray, batch_size: int
) -> list[QueryBatch]:
    """Slice an already-encoded key matrix into batch views (no copies)."""
    require_power_of_two(batch_size, "batch_size")
    n = mat.shape[0]
    out = []
    for start in range(0, n, batch_size):
        stop = min(start + batch_size, n)
        out.append(
            QueryBatch(
                keys_mat=mat[start:stop],
                key_lens=lens[start:stop],
                origin=np.arange(start, stop, dtype=np.int64),
            )
        )
    return out


def split_batch(batch: QueryBatch) -> list[QueryBatch]:
    """Halve a batch (stream order preserved) — used by the resilience
    layer when a capacity recovery is capped and a smaller dispatch may
    still fit."""
    if batch.size < 2:
        raise ReproError("cannot split a batch of fewer than 2 queries")
    mid = batch.size // 2
    return [
        QueryBatch(
            keys_mat=batch.keys_mat[:mid],
            key_lens=batch.key_lens[:mid],
            origin=batch.origin[:mid],
        ),
        QueryBatch(
            keys_mat=batch.keys_mat[mid:],
            key_lens=batch.key_lens[mid:],
            origin=batch.origin[mid:],
        ),
    ]


class OpClassCoalescer:
    """Per-op-class accumulation for mixed read/write streams (§3.1),
    with **key-level conflict tracking**.

    The naive executor cuts a device batch at *every* op-type boundary,
    fragmenting an interleaved OLTP stream into tiny batches that each
    pay a full kernel launch.  This coalescer instead accumulates
    lookups / updates / deletes / inserts in per-class queues.  Ops that
    touch *different* keys never force a flush, whatever their classes:
    a cross-class ordering requirement (a read issued after a write to
    the same key must observe the write) is recorded as an **edge** in a
    tiny dependency DAG over the class queues, and queues keep filling
    toward full batches.  A queue only flushes when

    * it reaches ``batch_size`` (``size-full``) — its DAG ancestors
      flush first, in topological order (``dep-order``), so every
      recorded before/after relation holds at execution time; or
    * an incoming op genuinely **conflicts on a key** (``key-conflict``):
      it touches a key with a queued non-commuting op of the *same*
      class, or the ordering edge it needs would close a cycle (e.g.
      ``update k → lookup k → update k``: the second update cannot both
      follow the queued lookup and share the queued update's batch).
      Only the conflicting queue and its ancestors flush; every other
      queue keeps accumulating.

    Same-key co-accumulation within one class is allowed only where
    batching provably preserves serial semantics: repeated lookups of
    one key, and repeated updates of one key (the device's intra-batch
    last-writer-wins by thread index equals serial last-wins).  Repeated
    deletes or inserts of one key do *not* commute — the second delete
    of a key must report a miss, and a re-insert must observe the first
    insert — so those flush their own class (``key-conflict``).

    Why per-key order is sufficient: device batches execute in flush
    order, and flushes always release ancestor-closed sets of queues in
    topological order, so every cross-class edge is honoured.  For each
    key, its pending ops always form a DAG *path* in stream order (two
    same-class ops separated by another class on the same key force a
    cycle, hence a flush), so serial per-key semantics — the property
    the lockstep oracle tests pin — are preserved exactly.

    The legacy batch-granularity reason ``write-dependency`` (any
    pending write drained *every* queue) is still reported for BENCH
    schema compatibility; the key-level tracker retires it to zero.
    """

    #: classes whose same-key ops may share one batch (serial-equivalent
    #: device semantics: multi-read, and LWW-by-thread-index updates).
    _SELF_COMMUTES = frozenset({"lookup", "update"})

    def __init__(
        self, batch_size: int, *, metrics: MetricsRegistry | None = None
    ) -> None:
        require_power_of_two(batch_size, "batch_size")
        self.batch_size = batch_size
        self._queues: dict[str, list] = {}
        self._order: list[str] = []
        self._keys: dict[str, list] = {}
        #: key -> bitmask of classes with a pending op on that key (the
        #: exact pending-key filter; bits assigned per class on demand).
        self._pending: dict = {}
        self._bit_of: dict[str, int] = {}
        self._kind_of_bit: dict[int, str] = {}
        #: direct ordering edges: ``preds[q]`` must all flush before q.
        self._preds: dict[str, set] = {}
        #: running count of flushed batches (stable batch-id sequence
        #: for the flight recorder, regardless of flush reason).
        self.batches_flushed = 0
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics = metrics
        self._flushes = metrics.counter(
            "coalescer_flushes_total",
            "batches flushed, by what forced the flush",
            labels=("reason",),
        )
        self._flush_full = self._flushes.labels(reason="size-full")
        self._flush_dep = self._flushes.labels(reason="write-dependency")
        self._flush_conflict = self._flushes.labels(reason="key-conflict")
        self._flush_order = self._flushes.labels(reason="dep-order")
        self._flush_drain = self._flushes.labels(reason="drain")
        self._flush_deadline = self._flushes.labels(reason="deadline")
        self._occupancy = metrics.histogram(
            "coalescer_batch_occupancy",
            "flushed batch size as a fraction of batch_size",
            buckets=OCCUPANCY_BUCKETS,
        )

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def flush_reasons(self) -> dict[str, int]:
        """Current ``{reason: batches}`` tallies (registry-backed)."""
        return {
            "size-full": self._flush_full.value,
            "write-dependency": self._flush_dep.value,
            "key-conflict": self._flush_conflict.value,
            "dep-order": self._flush_order.value,
            "drain": self._flush_drain.value,
            "deadline": self._flush_deadline.value,
        }

    # -- dependency bookkeeping -------------------------------------------
    def _bit(self, kind: str) -> int:
        bit = self._bit_of.get(kind)
        if bit is None:
            bit = 1 << len(self._bit_of)
            self._bit_of[kind] = bit
            self._kind_of_bit[bit] = kind
        return bit

    def _ancestors(self, kind: str) -> set:
        """Transitive predecessor closure of one class (excludes it)."""
        seen: set = set()
        stack = list(self._preds.get(kind, ()))
        while stack:
            p = stack.pop()
            if p not in seen:
                seen.add(p)
                stack.extend(self._preds.get(p, ()))
        return seen

    def _closure_in_order(self, kinds) -> list[str]:
        """Topologically order a predecessor-closed class set; ties break
        by first-arrival order (the DAG has at most a handful of nodes,
        and this only runs on flush events)."""
        member = [k for k in self._order if k in kinds]
        out: list[str] = []
        placed: set = set()
        while member:
            for k in member:
                if all(p in placed or p not in kinds
                       for p in self._preds.get(k, ())):
                    out.append(k)
                    placed.add(k)
                    member.remove(k)
                    break
            else:  # pragma: no cover - the graph is acyclic by construction
                out.extend(member)
                break
        return out

    def queue_len(self, kind: str) -> int:
        """Current depth of one class queue (the flight recorder reads
        this to stamp an op's queue position at enqueue time)."""
        q = self._queues.get(kind)
        return len(q) if q is not None else 0

    def pending_kinds(self) -> tuple:
        """Op classes with a non-empty queue, in first-arrival order."""
        return tuple(self._order)

    def peek_oldest(self, kind: str):
        """First (oldest) queued payload of one class, or ``None`` —
        the serving front-end reads its enqueue stamp to decide when the
        class's batch-close deadline fires."""
        q = self._queues.get(kind)
        return q[0] if q else None

    def flush_due(self, kind: str) -> list[tuple[str, list]]:
        """Deadline batch-close (the serving front-end's timer path):
        flush one class and its ordering ancestors now, charged to the
        ``deadline`` flush reason."""
        if kind not in self._queues:
            return []
        return self._flush_with_ancestors(kind, self._flush_deadline)

    def _pop_queue(self, kind: str) -> list:
        """Remove one class queue and every trace of it (pending-key
        bits, ordering edges, arrival order)."""
        self.batches_flushed += 1
        q = self._queues.pop(kind)
        self._order.remove(kind)
        bit = self._bit_of[kind]
        pending = self._pending
        for k in self._keys.pop(kind):
            m = pending.get(k)
            if m is not None:
                m &= ~bit
                if m:
                    pending[k] = m
                else:
                    del pending[k]
        self._preds.pop(kind, None)
        for ps in self._preds.values():
            ps.discard(kind)
        return q

    def _flush_with_ancestors(
        self, kind: str, reason_counter, *, cascade_counter=None
    ) -> list[tuple[str, list]]:
        """Flush one class preceded by its DAG ancestors, in dependency
        order.  The target class is charged to ``reason_counter``; the
        ancestors to ``cascade_counter`` (default: same reason)."""
        if cascade_counter is None:
            cascade_counter = reason_counter
        closure = self._ancestors(kind)
        closure.add(kind)
        out: list[tuple[str, list]] = []
        for k in self._closure_in_order(closure):
            q = self._pop_queue(k)
            (reason_counter if k == kind else cascade_counter).inc()
            self._occupancy.observe(len(q) / self.batch_size)
            out.append((k, q))
        return out

    def add(self, kind: str, key, payload) -> tuple:
        """Queue one op; returns ``((kind, payloads), ...)`` batches that
        must execute *now*, in order (key-conflict flushes and/or a full
        class with its ordering ancestors).  The common case — no pending
        op on the key, queue not full — is a handful of dict/list ops."""
        pending = self._pending
        mask = pending.get(key)
        bit = self._bit_of.get(kind)
        if bit is None:
            bit = self._bit(kind)
        if not mask:
            q = self._queues.get(kind)
            if q is None:
                q = self._queues[kind] = []
                self._keys[kind] = []
                self._order.append(kind)
            q.append(payload)
            self._keys[kind].append(key)
            pending[key] = bit
            if len(q) >= self.batch_size:
                return tuple(self._flush_with_ancestors(
                    kind, self._flush_full, cascade_counter=self._flush_order
                ))
            return ()
        out: list[tuple[str, list]] = []
        if mask & bit and kind not in self._SELF_COMMUTES:
            # same-class non-commuting repeat (delete-delete /
            # insert-insert): the queued op must complete first
            out.extend(
                self._flush_with_ancestors(kind, self._flush_conflict)
            )
            mask = pending.get(key, 0)
        m = mask & ~bit
        while m:
            pbit = m & -m
            m &= m - 1
            prev = self._kind_of_bit[pbit]
            # the new op must execute after `prev`'s queue: record
            # the edge, unless it would close a cycle — then `prev`
            # (and its ancestors, which include this class) flush now
            if kind in self._ancestors(prev) or kind == prev:
                out.extend(
                    self._flush_with_ancestors(prev, self._flush_conflict)
                )
            elif prev in self._queues:
                self._preds.setdefault(kind, set()).add(prev)
        q = self._queues.get(kind)
        if q is None:
            q = self._queues[kind] = []
            self._keys[kind] = []
            self._order.append(kind)
        q.append(payload)
        self._keys[kind].append(key)
        pending[key] = pending.get(key, 0) | bit
        if len(q) >= self.batch_size:
            out.extend(
                self._flush_with_ancestors(
                    kind, self._flush_full, cascade_counter=self._flush_order
                )
            )
        return tuple(out)

    def drain(self) -> list[tuple[str, list]]:
        """Flush every queue in dependency order (ties by first-arrival
        class order), clearing all pending-key and edge state."""
        out: list[tuple[str, list]] = []
        for k in self._closure_in_order(set(self._order)):
            q = self._pop_queue(k)
            self._flush_drain.inc()
            self._occupancy.observe(len(q) / self.batch_size)
            out.append((k, q))
        return out


class QueryBatcher:
    """Streaming variant: accumulates queries and emits full batches.

    Mirrors the paper's host threads which pull queries from the workload
    generator and ship power-of-two batches to their stream.
    """

    def __init__(self, batch_size: int, *, width: int) -> None:
        require_power_of_two(batch_size, "batch_size")
        if width <= 0:
            raise ReproError(f"width must be positive, got {width}")
        self.batch_size = batch_size
        self.width = width
        self._pending: list[bytes] = []
        self._next_origin = 0

    def add(self, key: bytes) -> QueryBatch | None:
        """Queue one query; returns a full batch when one completes."""
        self._pending.append(key)
        if len(self._pending) >= self.batch_size:
            return self._emit()
        return None

    def add_many(self, keys: Sequence[bytes]) -> Iterator[QueryBatch]:
        for k in keys:
            batch = self.add(k)
            if batch is not None:
                yield batch

    def flush(self) -> QueryBatch | None:
        """Emit the final partial batch, if any."""
        if self._pending:
            return self._emit()
        return None

    def _emit(self) -> QueryBatch:
        chunk = self._pending
        self._pending = []
        mat, lens = keys_to_matrix(chunk, width=self.width)
        origin = np.arange(
            self._next_origin, self._next_origin + len(chunk), dtype=np.int64
        )
        self._next_origin += len(chunk)
        return QueryBatch(keys_mat=mat, key_lens=lens, origin=origin)
