"""Query coalescing (section 4.1).

"Queries are coalesced into batches in order to reduce the compute
overhead, typically with a power-of-two size to ease up scheduling and
optimal load on the GPUs."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry, OCCUPANCY_BUCKETS
from repro.util.keys import keys_to_matrix
from repro.util.validation import require_power_of_two


@dataclass
class QueryBatch:
    """One coalesced batch ready for device dispatch."""

    keys_mat: np.ndarray
    key_lens: np.ndarray
    #: positions of these queries in the original stream (results are
    #: scattered back through this).
    origin: np.ndarray

    @property
    def size(self) -> int:
        return self.keys_mat.shape[0]


def coalesce(
    keys: Sequence[bytes], batch_size: int, *, width: int | None = None
) -> list[QueryBatch]:
    """Split a query stream into power-of-two batches (the final batch
    may be short — the device pads the launch, the model charges the full
    grid).

    The whole stream is encoded into *one* preallocated key matrix
    (:func:`repro.util.keys.keys_to_matrix` bulk path); every emitted
    batch is a zero-copy view of it.
    """
    require_power_of_two(batch_size, "batch_size")
    mat, lens = keys_to_matrix(keys, width=width)
    return coalesce_encoded(mat, lens, batch_size)


def coalesce_encoded(
    mat: np.ndarray, lens: np.ndarray, batch_size: int
) -> list[QueryBatch]:
    """Slice an already-encoded key matrix into batch views (no copies)."""
    require_power_of_two(batch_size, "batch_size")
    n = mat.shape[0]
    out = []
    for start in range(0, n, batch_size):
        stop = min(start + batch_size, n)
        out.append(
            QueryBatch(
                keys_mat=mat[start:stop],
                key_lens=lens[start:stop],
                origin=np.arange(start, stop, dtype=np.int64),
            )
        )
    return out


def split_batch(batch: QueryBatch) -> list[QueryBatch]:
    """Halve a batch (stream order preserved) — used by the resilience
    layer when a capacity recovery is capped and a smaller dispatch may
    still fit."""
    if batch.size < 2:
        raise ReproError("cannot split a batch of fewer than 2 queries")
    mid = batch.size // 2
    return [
        QueryBatch(
            keys_mat=batch.keys_mat[:mid],
            key_lens=batch.key_lens[:mid],
            origin=batch.origin[:mid],
        ),
        QueryBatch(
            keys_mat=batch.keys_mat[mid:],
            key_lens=batch.key_lens[mid:],
            origin=batch.origin[mid:],
        ),
    ]


class OpClassCoalescer:
    """Per-op-class accumulation for mixed read/write streams (§3.1).

    The naive executor cuts a device batch at *every* op-type boundary,
    fragmenting an interleaved OLTP stream into tiny batches that each
    pay a full kernel launch.  This coalescer instead accumulates
    lookups / updates / deletes / inserts in per-class queues and only
    flushes when

    * a class reaches ``batch_size`` (that class alone flushes — queues
      are pairwise key-disjoint, see below, so the others may keep
      filling), or
    * an incoming op has an **op-order dependency** on a queued one: it
      touches a key some *other-classed* queued op touches, where
      reordering could change a result.  Everything drains, in
      first-arrival class order, before the new op is queued.

    Same-key co-accumulation is allowed only where batching provably
    preserves serial semantics: repeated lookups of one key, and
    repeated updates of one key (the device's intra-batch
    last-writer-wins by thread index equals serial last-wins).  Repeated
    deletes or inserts of one key do *not* commute — the second delete
    of a key must report a miss, and a re-insert must observe the first
    insert — so those act as barriers too.
    """

    #: (queued kind, incoming kind) pairs that may share a key without
    #: forcing a flush.
    _COMMUTES = frozenset({("lookup", "lookup"), ("update", "update")})

    def __init__(
        self, batch_size: int, *, metrics: MetricsRegistry | None = None
    ) -> None:
        require_power_of_two(batch_size, "batch_size")
        self.batch_size = batch_size
        self._queues: dict[str, list] = {}
        self._order: list[str] = []
        self._keys: dict[str, list] = {}
        self._key_kind: dict = {}
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics = metrics
        self._flushes = metrics.counter(
            "coalescer_flushes_total",
            "batches flushed, by what forced the flush",
            labels=("reason",),
        )
        self._flush_full = self._flushes.labels(reason="size-full")
        self._flush_dep = self._flushes.labels(reason="write-dependency")
        self._flush_drain = self._flushes.labels(reason="drain")
        self._occupancy = metrics.histogram(
            "coalescer_batch_occupancy",
            "flushed batch size as a fraction of batch_size",
            buckets=OCCUPANCY_BUCKETS,
        )

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def flush_reasons(self) -> dict[str, int]:
        """Current ``{reason: batches}`` tallies (registry-backed)."""
        return {
            "size-full": self._flush_full.value,
            "write-dependency": self._flush_dep.value,
            "drain": self._flush_drain.value,
        }

    def add(self, kind: str, key, payload) -> list[tuple[str, list]]:
        """Queue one op; returns ``[(kind, payloads), ...]`` batches that
        must execute *now* (dependency drains and/or a full class)."""
        out: list[tuple[str, list]] = []
        prev = self._key_kind.get(key)
        if prev is not None and (prev, kind) not in self._COMMUTES:
            out.extend(self._drain(self._flush_dep))
        q = self._queues.get(kind)
        if q is None:
            q = self._queues[kind] = []
            self._keys[kind] = []
            self._order.append(kind)
        q.append(payload)
        self._keys[kind].append(key)
        self._key_kind[key] = kind
        if len(q) >= self.batch_size:
            out.append((kind, q))
            self._flush_full.inc()
            self._occupancy.observe(len(q) / self.batch_size)
            del self._queues[kind]
            self._order.remove(kind)
            key_kind = self._key_kind
            for k in self._keys.pop(kind):
                if key_kind.get(k) == kind:
                    del key_kind[k]
        return out

    def drain(self) -> list[tuple[str, list]]:
        """Flush every queue in first-arrival class order.  Queues are
        pairwise key-disjoint by construction, so this order change
        relative to the stream cannot alter any result."""
        return self._drain(self._flush_drain)

    def _drain(self, reason_counter) -> list[tuple[str, list]]:
        out = [(k, self._queues[k]) for k in self._order]
        for _, q in out:
            reason_counter.inc()
            self._occupancy.observe(len(q) / self.batch_size)
        self._queues = {}
        self._order = []
        self._keys = {}
        self._key_kind = {}
        return out


class QueryBatcher:
    """Streaming variant: accumulates queries and emits full batches.

    Mirrors the paper's host threads which pull queries from the workload
    generator and ship power-of-two batches to their stream.
    """

    def __init__(self, batch_size: int, *, width: int) -> None:
        require_power_of_two(batch_size, "batch_size")
        if width <= 0:
            raise ReproError(f"width must be positive, got {width}")
        self.batch_size = batch_size
        self.width = width
        self._pending: list[bytes] = []
        self._next_origin = 0

    def add(self, key: bytes) -> QueryBatch | None:
        """Queue one query; returns a full batch when one completes."""
        self._pending.append(key)
        if len(self._pending) >= self.batch_size:
            return self._emit()
        return None

    def add_many(self, keys: Sequence[bytes]) -> Iterator[QueryBatch]:
        for k in keys:
            batch = self.add(k)
            if batch is not None:
                yield batch

    def flush(self) -> QueryBatch | None:
        """Emit the final partial batch, if any."""
        if self._pending:
            return self._emit()
        return None

    def _emit(self) -> QueryBatch:
        chunk = self._pending
        self._pending = []
        mat, lens = keys_to_matrix(chunk, width=self.width)
        origin = np.arange(
            self._next_origin, self._next_origin + len(chunk), dtype=np.int64
        )
        self._next_origin += len(chunk)
        return QueryBatch(keys_mat=mat, key_lens=lens, origin=origin)
