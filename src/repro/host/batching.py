"""Query coalescing (section 4.1).

"Queries are coalesced into batches in order to reduce the compute
overhead, typically with a power-of-two size to ease up scheduling and
optimal load on the GPUs."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ReproError
from repro.util.keys import keys_to_matrix
from repro.util.validation import require_power_of_two


@dataclass
class QueryBatch:
    """One coalesced batch ready for device dispatch."""

    keys_mat: np.ndarray
    key_lens: np.ndarray
    #: positions of these queries in the original stream (results are
    #: scattered back through this).
    origin: np.ndarray

    @property
    def size(self) -> int:
        return self.keys_mat.shape[0]


def coalesce(
    keys: Sequence[bytes], batch_size: int, *, width: int | None = None
) -> list[QueryBatch]:
    """Split a query stream into power-of-two batches (the final batch
    may be short — the device pads the launch, the model charges the full
    grid).

    The whole stream is encoded into *one* preallocated key matrix
    (:func:`repro.util.keys.keys_to_matrix` bulk path); every emitted
    batch is a zero-copy view of it.
    """
    require_power_of_two(batch_size, "batch_size")
    mat, lens = keys_to_matrix(keys, width=width)
    return coalesce_encoded(mat, lens, batch_size)


def coalesce_encoded(
    mat: np.ndarray, lens: np.ndarray, batch_size: int
) -> list[QueryBatch]:
    """Slice an already-encoded key matrix into batch views (no copies)."""
    require_power_of_two(batch_size, "batch_size")
    n = mat.shape[0]
    out = []
    for start in range(0, n, batch_size):
        stop = min(start + batch_size, n)
        out.append(
            QueryBatch(
                keys_mat=mat[start:stop],
                key_lens=lens[start:stop],
                origin=np.arange(start, stop, dtype=np.int64),
            )
        )
    return out


class QueryBatcher:
    """Streaming variant: accumulates queries and emits full batches.

    Mirrors the paper's host threads which pull queries from the workload
    generator and ship power-of-two batches to their stream.
    """

    def __init__(self, batch_size: int, *, width: int) -> None:
        require_power_of_two(batch_size, "batch_size")
        if width <= 0:
            raise ReproError(f"width must be positive, got {width}")
        self.batch_size = batch_size
        self.width = width
        self._pending: list[bytes] = []
        self._next_origin = 0

    def add(self, key: bytes) -> QueryBatch | None:
        """Queue one query; returns a full batch when one completes."""
        self._pending.append(key)
        if len(self._pending) >= self.batch_size:
            return self._emit()
        return None

    def add_many(self, keys: Sequence[bytes]) -> Iterator[QueryBatch]:
        for k in keys:
            batch = self.add(k)
            if batch is not None:
                yield batch

    def flush(self) -> QueryBatch | None:
        """Emit the final partial batch, if any."""
        if self._pending:
            return self._emit()
        return None

    def _emit(self) -> QueryBatch:
        chunk = self._pending
        self._pending = []
        mat, lens = keys_to_matrix(chunk, width=self.width)
        origin = np.arange(
            self._next_origin, self._next_origin + len(chunk), dtype=np.int64
        )
        self._next_origin += len(chunk)
        return QueryBatch(keys_mat=mat, key_lens=lens, origin=origin)
