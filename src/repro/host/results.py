"""Unified engine result API: :class:`BatchResult` + :class:`OpStatus`.

Every public engine operation (``lookup`` / ``update`` / ``insert`` /
``delete``) returns one :class:`BatchResult` carrying, per query:

* the raw kernel value vector (lookups) and the found-mask,
* an :class:`OpStatus` code — whether the op succeeded first try, was
  retried after a transient device fault, was served by the CPU
  degradation path, or failed outright,
* the attempt count the resilience layer spent on its batch,

so callers *observe* degradation instead of catching exceptions.

A :class:`BatchResult` still behaves like a plain result sequence — it
iterates / indexes over the Python-object results (lookup values /
found booleans) and compares equal to the equivalent ``list``.

The PR 4 deprecation shims (``LazyValues`` / ``FoundFlags`` and the
``.values`` / ``.array`` / ``.hit_mask`` / string ``[...]`` accessors)
completed their deprecation cycle and are gone; see the migration table
in ``docs/api.md``.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence as _SequenceABC
from typing import Optional

import numpy as np

from repro.constants import NIL_VALUE


def values_to_list(
    array: np.ndarray, overrides: Optional[dict] = None
) -> list:
    """Convert a raw uint64 kernel value vector (``NIL_VALUE`` = miss)
    to the Python-object list shape (``int`` / ``None``), applying
    host-resolved row overrides (long-key strategy b)."""
    obj = array.astype(object)
    obj[array == np.uint64(NIL_VALUE)] = None
    if overrides:
        for pos, val in overrides.items():
            obj[pos] = val
    return obj.tolist()


class OpStatus(enum.IntEnum):
    """Per-query outcome classification, strongest-signal-wins.

    ``RETRIED`` / ``DEGRADED_CPU`` describe *how* the query was served,
    not whether the key existed — read :attr:`BatchResult.found_array`
    for hit/miss.  ``FAILED`` only appears when every retry, recovery
    and degradation avenue was exhausted (with degradation enabled it
    should never occur).  ``SHED`` is assigned by the serving front-end
    (:mod:`repro.serve`) when admission control rejects an op on a full
    queue: the op never executed and should be retried after the
    returned ``retry_after_us``."""

    OK = 0
    NOT_FOUND = 1
    RETRIED = 2
    DEGRADED_CPU = 3
    FAILED = 4
    SHED = 5


def status_codes(
    found: np.ndarray,
    *,
    attempts: Optional[np.ndarray] = None,
    degraded: Optional[np.ndarray] = None,
    failed: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Build the per-query status vector with the canonical precedence
    ``FAILED > DEGRADED_CPU > RETRIED > NOT_FOUND > OK``."""
    st = np.where(
        np.asarray(found, dtype=bool),
        np.uint8(OpStatus.OK), np.uint8(OpStatus.NOT_FOUND),
    )
    if attempts is not None:
        st[np.asarray(attempts) > 1] = np.uint8(OpStatus.RETRIED)
    if degraded is not None:
        st[np.asarray(degraded, dtype=bool)] = np.uint8(OpStatus.DEGRADED_CPU)
    if failed is not None:
        st[np.asarray(failed, dtype=bool)] = np.uint8(OpStatus.FAILED)
    return st


class BatchResult(_SequenceABC):
    """Outcome of one batched engine operation.

    Canonical accessors
    -------------------
    ``op``
        the operation kind: ``"lookup"`` / ``"update"`` / ``"delete"`` /
        ``"insert"``.
    ``value_array``
        (n,) uint64 raw kernel values for lookups (``NIL_VALUE`` =
        miss), ``None`` for write ops.
    ``found_array`` (alias ``found_mask``)
        (n,) bool — the key existed (hit / applied / deleted).
    ``status``
        (n,) uint8 vector of :class:`OpStatus` codes.
    ``attempts``
        (n,) int32 — device dispatch attempts spent on each query's
        batch (1 = first try; 0 = never dispatched to the device).
    ``summary``
        op-level counters (insert ops: ``device_inserted`` / ``updated``
        / ``deferred`` / ``remapped``); ``None`` otherwise.
    ``to_list()``
        the legacy Python-object results: values-with-``None`` for
        lookups, found booleans for write ops.

    The sequence protocol (iteration, ``len``, integer indexing,
    ``==`` against lists) runs over ``to_list()``, so existing callers
    written against the old shapes keep working unchanged.
    """

    __slots__ = (
        "op", "value_array", "found_array", "_status", "_attempts",
        "summary", "_overrides", "_list",
    )

    def __init__(
        self,
        op: str,
        *,
        found: np.ndarray,
        values: Optional[np.ndarray] = None,
        overrides: Optional[dict] = None,
        status: Optional[np.ndarray] = None,
        attempts: Optional[np.ndarray] = None,
        summary: Optional[dict] = None,
    ) -> None:
        self.op = op
        self.found_array = np.asarray(found, dtype=bool)
        self.value_array = values
        self._overrides = overrides or {}
        # status/attempts stay None on the fast path (no resilience
        # layer: everything succeeded first try) and materialize lazily,
        # so per-batch serving pays nothing for them
        self._attempts = (
            np.asarray(attempts, dtype=np.int32)
            if attempts is not None else None
        )
        self._status = (
            np.asarray(status, dtype=np.uint8)
            if status is not None else None
        )
        self.summary = summary
        self._list: Optional[list] = None

    # -- canonical API ---------------------------------------------------
    @property
    def status(self) -> np.ndarray:
        """(n,) uint8 vector of :class:`OpStatus` codes (lazy)."""
        if self._status is None:
            self._status = status_codes(self.found_array)
        return self._status

    @property
    def attempts(self) -> np.ndarray:
        """(n,) int32 dispatch attempts per query's batch (lazy)."""
        if self._attempts is None:
            self._attempts = np.ones(len(self.found_array), dtype=np.int32)
        return self._attempts

    @property
    def found_mask(self) -> np.ndarray:
        """Alias of :attr:`found_array`."""
        return self.found_array

    @property
    def n_found(self) -> int:
        return int(self.found_array.sum())

    @property
    def n_retried(self) -> int:
        if self._status is None:
            return 0
        return int((self._status == np.uint8(OpStatus.RETRIED)).sum())

    @property
    def n_degraded(self) -> int:
        if self._status is None:
            return 0
        return int((self._status == np.uint8(OpStatus.DEGRADED_CPU)).sum())

    @property
    def n_failed(self) -> int:
        if self._status is None:
            return 0
        return int((self._status == np.uint8(OpStatus.FAILED)).sum())

    @property
    def ok(self) -> bool:
        """True when no query failed outright."""
        return self.n_failed == 0

    def counts_by_status(self) -> dict[str, int]:
        """``{status name: count}`` over the batch (only statuses that
        occur)."""
        if self._status is None:
            # fast path: pure found/not-found split, no status vector
            nf = self.n_found
            out = {}
            if nf:
                out["OK"] = nf
            if nf < len(self.found_array):
                out["NOT_FOUND"] = len(self.found_array) - nf
            return out
        codes, counts = np.unique(self._status, return_counts=True)
        return {
            OpStatus(int(c)).name: int(n) for c, n in zip(codes, counts)
        }

    def to_list(self) -> list:
        """The Python-object result list (memoized): values-with-``None``
        for lookups, found booleans for write ops."""
        if self._list is None:
            if self.value_array is not None:
                self._list = values_to_list(
                    self.value_array, self._overrides
                )
            else:
                self._list = self.found_array.tolist()
        return self._list

    # -- sequence protocol -----------------------------------------------
    def __len__(self) -> int:
        return len(self.found_array)

    def __getitem__(self, index):
        return self.to_list()[index]

    def __iter__(self):
        return iter(self.to_list())

    def __eq__(self, other) -> bool:
        if isinstance(other, BatchResult):
            return self.to_list() == other.to_list()
        if isinstance(other, (list, tuple)):
            return self.to_list() == list(other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return repr(self.to_list())
