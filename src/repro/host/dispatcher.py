"""End-to-end dispatch pipeline model (sections 4.1 and 4.3).

Three stages process every batch: host preparation (coalescing + result
post-processing), PCIe transfer, and the device kernel.  Their overlap
depends on the dispatch style:

* ``cuda`` (CuART): fully asynchronous streams — the three stages
  pipeline freely, so the sustained rate is set by the slowest stage.
  Small batches under-fill the device; concurrent kernels from other
  streams make up for it (modeled by the kernel-overlap factor).
* ``sync`` (GRT, both its CUDA and OpenCL builds): each host thread
  submits, waits, and post-processes before sending the next batch, so a
  thread's cycle is the *sum* of the stages; parallelism comes only from
  running T such cycles side by side, and the device still serializes
  the kernels.  This is why "CuART is much more thread agnostic" in
  figure 9.

The host constants are calibrated against the paper's end-to-end
magnitudes (~150–200 MOps/s lookup plateau with 8 threads on the server,
figures 8/9); see EXPERIMENTS.md for the calibration notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.gpusim.devices import CpuSpec, DeviceSpec
from repro.gpusim.pcie import PcieLink, link_for_device
from repro.gpusim.streams import PipelineResult, PipelineStage, pipeline


@dataclass(frozen=True)
class HostCostParameters:
    """Calibrated host-side per-query and per-batch costs."""

    #: seconds one host core spends producing one query and digesting its
    #: result (batch copy, result scatter, bookkeeping).
    per_query_s: float = 1.2e-8
    #: fixed per-batch submission cost (stream launch, descriptors).
    per_batch_s: float = 1.0e-5
    #: extra per-batch cost of a synchronous dispatch style (blocking
    #: waits, event polling) — charged to GRT.
    sync_extra_per_batch_s: float = 1.5e-5


@dataclass(frozen=True)
class DispatchConfig:
    """One experiment's pipeline settings."""

    batch_size: int = 32768
    host_threads: int = 8
    #: bytes shipped per query key (padded key width).
    key_bytes: int = 32
    #: bytes returned per query (the 64-bit value / leaf index).
    result_bytes: int = 8
    #: ``"cuda"`` for CuART-style async streams, ``"sync"`` for GRT-style
    #: blocking dispatch (the paper's OpenCL variant adds extra overhead
    #: via :attr:`HostCostParameters.sync_extra_per_batch_s`).
    api: str = "cuda"
    host_costs: HostCostParameters = field(default_factory=HostCostParameters)

    def __post_init__(self) -> None:
        if self.api not in ("cuda", "sync"):
            raise SimulationError(f"unknown dispatch api {self.api!r}")
        if self.batch_size <= 0 or self.host_threads <= 0:
            raise SimulationError("batch_size and host_threads must be positive")


def pipeline_throughput(
    kernel: "float | KernelTiming",
    config: DispatchConfig,
    device: DeviceSpec,
    cpu: CpuSpec,
    pcie: PcieLink | None = None,
) -> PipelineResult:
    """Sustained end-to-end throughput for one kernel-per-batch time.

    ``kernel`` comes from the cost model
    (:meth:`repro.gpusim.cost_model.CostModel.kernel_time`) evaluated on a
    representative batch's transaction log.  Passing the full
    :class:`~repro.gpusim.cost_model.KernelTiming` (rather than its
    ``total_s``) lets concurrent streams overlap the *latency* component
    of neighbouring kernels — memory-channel command throughput is a
    shared resource and never multiplies.
    """
    if pcie is None:
        pcie = link_for_device(device.name)
    B = config.batch_size
    hc = config.host_costs
    threads = min(config.host_threads, cpu.threads)

    t_host = hc.per_batch_s + B * hc.per_query_s
    if config.api == "sync":
        t_host += hc.sync_extra_per_batch_s
    t_up = pcie.transfer_time(B * config.key_bytes)
    t_down = pcie.transfer_time(B * config.result_bytes)
    # PCIe is full duplex: up and down overlap across batches
    t_pcie = max(t_up, t_down)

    kernel_s = kernel if isinstance(kernel, float) else kernel.total_s

    if config.api == "cuda":
        # async streams: stages overlap; concurrent kernels from other
        # streams hide each other's dependent-load latency, but the
        # memory channels (command bound) are shared and do not multiply
        overlap = min(
            float(threads),
            max(1.0, device.max_resident_threads / max(B, 1)),
        )
        if isinstance(kernel, float):
            effective_kernel = kernel_s  # no breakdown: be conservative
        else:
            effective_kernel = max(
                kernel.command_bound_s,
                kernel.latency_bound_s / overlap,
                kernel.compute_bound_s / overlap,
            ) + kernel.launch_overhead_s / overlap
        stages = [
            PipelineStage("host", t_host, parallelism=threads),
            PipelineStage("pcie", t_pcie),
            PipelineStage("kernel", effective_kernel),
        ]
        return pipeline(stages, B)

    # synchronous dispatch: a thread's full cycle is serial; T cycles run
    # side by side but kernels still serialize on the device and the
    # PCIe link is shared
    cycle = t_host + t_up + t_down + kernel_s
    stages = [
        PipelineStage("thread-cycle", cycle, parallelism=threads),
        PipelineStage("pcie", t_pcie),
        PipelineStage("kernel", kernel_s),
    ]
    return pipeline(stages, B)
