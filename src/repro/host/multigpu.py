"""Multi-GPU scale-out model.

The paper's server carries **two** A100s (§4.1) but the evaluation
drives one; this module models the natural scale-out: the index is
replicated on every device (lookups are stateless, so any replica
serves any batch) and host threads round-robin their batches across
per-device streams.  Each device brings its own PCIe link and memory
channels; the host preparation stage is the shared resource — which is
exactly where the pipeline saturates, making the speedup sub-linear
beyond a few devices (the same host-bound ceiling figure 9 shows for
threads).

Updates on replicated indexes must be applied to every replica; the
model charges the update kernel on all devices (no speedup for the
device stage) while reads scale.

The ``"sharded"`` workload models the partitioned alternative
(:mod:`repro.host.sharding`): the key space is split over the devices,
every operation — read *or* write — is routed to the one device that
owns its key, so the device stages divide by ``n`` for any op mix.
The executed counterpart is :class:`~repro.host.sharding.ShardedEngine`;
``tests/host/test_multigpu.py`` reconciles this analytic curve against
its measured makespans.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.gpusim.cost_model import KernelTiming
from repro.gpusim.devices import CpuSpec, DeviceSpec
from repro.gpusim.pcie import PcieLink, link_for_device
from repro.gpusim.streams import PipelineResult, PipelineStage, pipeline
from repro.host.dispatcher import DispatchConfig


@dataclass(frozen=True)
class MultiGpuConfig:
    """Scale-out settings."""

    n_devices: int = 2
    #: ``"lookup"`` / ``"update"`` model the replicated index (reads
    #: scale, writes broadcast); ``"sharded"`` models key-space
    #: partitioning (every op routes to its owning device, so reads
    #: *and* writes divide by ``n`` — the executed counterpart is
    #: :class:`repro.host.sharding.ShardedEngine`).
    workload: str = "lookup"  # "lookup" | "update" | "sharded"

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise SimulationError("n_devices must be >= 1")
        if self.workload not in ("lookup", "update", "sharded"):
            raise SimulationError(f"unknown workload {self.workload!r}")


def multi_gpu_throughput(
    kernel: KernelTiming,
    dispatch: DispatchConfig,
    device: DeviceSpec,
    cpu: CpuSpec,
    config: MultiGpuConfig,
    pcie: PcieLink | None = None,
) -> PipelineResult:
    """Sustained end-to-end rate with ``n_devices`` replicas.

    Reads: PCIe and kernel stages parallelize across replicas (each has
    its own link and memory); the host stage is shared.  Updates: every
    replica must apply every write, so the device stages do not scale —
    only the host-side coalescing overlap remains.  Sharded: ops route
    to the device owning their key, so the device stages divide by
    ``n`` for reads and writes alike (host stage still shared).
    """
    if pcie is None:
        pcie = link_for_device(device.name)
    B = dispatch.batch_size
    hc = dispatch.host_costs
    threads = min(dispatch.host_threads, cpu.threads)
    n = config.n_devices

    t_host = hc.per_batch_s + B * hc.per_query_s
    t_up = pcie.transfer_time(B * dispatch.key_bytes)
    t_down = pcie.transfer_time(B * dispatch.result_bytes)
    t_pcie = max(t_up, t_down)

    overlap = min(
        float(threads), max(1.0, device.max_resident_threads / max(B, 1))
    )
    effective_kernel = max(
        kernel.command_bound_s,
        kernel.latency_bound_s / overlap,
        kernel.compute_bound_s / overlap,
    ) + kernel.launch_overhead_s / overlap

    if config.workload in ("lookup", "sharded"):
        # replicated reads fan out; sharded placement routes *every* op
        # (reads and writes alike) to the one device owning its key, so
        # each device carries 1/n of the batches either way
        device_scale = float(n)
    else:
        # broadcast writes: n replicas each run the full update batch; no
        # read scaling is bought and PCIe must carry n copies
        device_scale = 1.0
    stages = [
        PipelineStage("host", t_host, parallelism=threads),
        PipelineStage("pcie", t_pcie, parallelism=device_scale),
        PipelineStage("kernel", effective_kernel, parallelism=device_scale),
    ]
    return pipeline(stages, B)


def scaling_curve(
    kernel: KernelTiming,
    dispatch: DispatchConfig,
    device: DeviceSpec,
    cpu: CpuSpec,
    max_devices: int = 8,
    workload: str = "lookup",
) -> list[tuple[int, float]]:
    """(devices, MOps/s) series — where does the host bound flatten it?"""
    out = []
    for n in range(1, max_devices + 1):
        rate = multi_gpu_throughput(
            kernel, dispatch, device, cpu,
            MultiGpuConfig(n_devices=n, workload=workload),
        ).throughput_mops
        out.append((n, rate))
    return out
