"""Key-space-sharded multi-GPU serving: scale writes, not just reads.

:mod:`repro.host.multigpu` models *replicated* scale-out — reads fan
out across replicas but every update must be broadcast, so write-heavy
traffic gets exactly zero scale-out.  This module implements the
partitioned alternative the NUMA hash-table literature prescribes:
the key space is split on its first one or two bytes (the natural
radix-tree split axis, same as :mod:`repro.cuart.partition`) into
256 or 65536 partitions, a partition→shard assignment table routes
every operation to the one simulated device that owns its key, and
each shard runs a full :class:`~repro.host.engine.CuartEngine` —
its own device buffers, PCIe link, fault injector, circuit breaker
and double-buffered :class:`~repro.gpusim.streams.StreamScheduler`.

Correctness invariants
----------------------

* **Deterministic routing.**  A key's shard is a pure function of the
  key and the assignment table, so every operation on a key — in any
  order, through any API — reaches the same engine.
* **Shard-local conflicts.**  Because routing is per-key, a read-after
  -write or write-after-write conflict can only involve ops on the
  *same* shard.  Cross-shard sub-streams are therefore free to flush
  and pipeline independently: any interleaving of them is equivalent
  to some serial order of the original stream.
* **Scans are global barriers.**  A range touches an unbounded key set
  spanning shards, so every shard drains before the scan runs and
  per-shard results are merged in key order.

Simulated scaling is measured the only way it can be in a one-process
simulation: each shard's :class:`StreamScheduler` accounts its batches
on its own simulated clock, and :meth:`ShardedEngine.drain` folds the
per-shard windows with
:meth:`~repro.gpusim.streams.StreamOverlapStats.merge_parallel` —
devices run concurrently, so the combined makespan is the slowest
shard's, while serial cost adds.  N balanced shards each carrying 1/N
of the work cut the makespan by ~N.

Online rebalancing (:meth:`ShardedEngine.rebalance`) drains in-flight
ops, greedily re-assigns the hottest partitions (per-partition heat
counters, :class:`ShardRouter`) to the least-loaded shards, migrates
the affected subtrees through the serialize/re-map path (collect items
from the source host trees, rebuild the affected shard layouts), and
charges the simulated PCIe cost of moving the records.  Heat resets
afterwards so the next skew episode is measured fresh.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from operator import itemgetter
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.art.tree import AdaptiveRadixTree
from repro.constants import NIL_VALUE
from repro.errors import ReproError, SimulationError
from repro.gpusim.pcie import link_for_device
from repro.gpusim.streams import StreamOverlapStats
from repro.host.config import EngineConfig
from repro.host.engine import CuartEngine
from repro.host.mixed import (
    MixedReport,
    MixedWorkloadExecutor,
    merge_percentile_summaries,
)
from repro.host.results import BatchResult
from repro.obs.flightrec import NULL_FLIGHT_RECORDER
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER

SHARDING_MODES = ("hash", "range")


@dataclass(frozen=True, kw_only=True)
class ShardingConfig:
    """How the key space is split over simulated devices."""

    #: simulated devices, one full engine each.
    n_shards: int = 2
    #: ``"hash"`` scrambles partitions over shards (uniform load under
    #: key-space skew); ``"range"`` keeps contiguous key ranges together
    #: (locality for scans, but a hot range lands on one shard until a
    #: rebalance moves it).
    mode: str = "hash"
    #: partition on the first 1 byte (256 partitions) or 2 bytes (65536
    #: partitions — finer-grained migration under heavy skew).
    partition_bytes: int = 1
    #: seed for the hash-mode partition scramble.
    seed: int = 0x5bd1

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise SimulationError(
                "n_shards must be positive", value=self.n_shards
            )
        if self.mode not in SHARDING_MODES:
            raise SimulationError(
                f"mode must be one of {SHARDING_MODES}", value=self.mode
            )
        if self.partition_bytes not in (1, 2):
            raise SimulationError(
                "partition_bytes must be 1 or 2", value=self.partition_bytes
            )

    @property
    def n_partitions(self) -> int:
        return 256 ** self.partition_bytes


class ShardRouter:
    """Partition→shard assignment table plus per-partition heat.

    Routing is a pure function of the key and the table; heat counters
    accumulate per routed operation and drive
    :meth:`balanced_assignment`, the greedy refinement the engine's
    :meth:`ShardedEngine.rebalance` applies.
    """

    def __init__(self, config: ShardingConfig) -> None:
        self.config = config
        self.n_shards = config.n_shards
        self.n_partitions = config.n_partitions
        if config.mode == "hash":
            # a seeded permutation taken mod n_shards is both scrambled
            # (adjacent key ranges land on different shards) and exactly
            # balanced (each shard owns n_partitions/n_shards slots)
            rng = np.random.default_rng(config.seed)
            perm = rng.permutation(self.n_partitions)
            self.assignment = (perm % self.n_shards).astype(np.int32)
        else:
            self.assignment = np.minimum(
                np.arange(self.n_partitions, dtype=np.int64)
                * self.n_shards // self.n_partitions,
                self.n_shards - 1,
            ).astype(np.int32)
        #: routed operations per partition since the last heat reset.
        self.heat = np.zeros(self.n_partitions, dtype=np.int64)

    def partition_of(self, key: bytes) -> int:
        """First-byte(s) partition index (short keys pad with 0)."""
        if not key:
            return 0
        if self.config.partition_bytes == 1:
            return key[0]
        return (key[0] << 8) | (key[1] if len(key) > 1 else 0)

    def shard_of(self, key: bytes, *, record: bool = False) -> int:
        pid = self.partition_of(key)
        if record:
            self.heat[pid] += 1
        return int(self.assignment[pid])

    def route(self, keys: Sequence[bytes], *, record: bool = True
              ) -> np.ndarray:
        """(n,) int32 shard ids for a key batch, accumulating heat."""
        pids = np.fromiter(
            (self.partition_of(k) for k in keys),
            dtype=np.int64, count=len(keys),
        )
        if record and len(pids):
            np.add.at(self.heat, pids, 1)
        return self.assignment[pids]

    def shard_heat(self) -> np.ndarray:
        """(n_shards,) total heat per shard under the current table."""
        return np.bincount(
            self.assignment, weights=self.heat, minlength=self.n_shards
        )

    def imbalance(self) -> float:
        """Max/mean per-shard heat (1.0 = perfectly balanced or idle)."""
        per_shard = self.shard_heat()
        mean = per_shard.mean()
        return float(per_shard.max() / mean) if mean > 0 else 1.0

    def balanced_assignment(
        self, *, max_moves: Optional[int] = None
    ) -> tuple[np.ndarray, list[tuple[int, int, int]]]:
        """Greedy minimal-churn rebalance of the assignment table.

        Repeatedly moves one partition from the hottest shard to the
        coolest — picking the partition whose heat is closest to half
        the gap, so each move shrinks the spread — until no move
        improves the maximum or ``max_moves`` is reached.  Returns the
        new table and the ``(partition, src, dst)`` move list; the
        router's own table is *not* mutated (the engine applies it
        after migrating the data).
        """
        heat = self.heat
        assignment = self.assignment.copy()
        shard_heat = np.bincount(
            assignment, weights=heat, minlength=self.n_shards
        )
        moves: list[tuple[int, int, int]] = []
        limit = self.n_partitions if max_moves is None else max_moves
        while len(moves) < limit:
            src = int(np.argmax(shard_heat))
            dst = int(np.argmin(shard_heat))
            gap = shard_heat[src] - shard_heat[dst]
            if gap <= 0:
                break
            pids = np.nonzero((assignment == src) & (heat > 0))[0]
            if pids.size == 0:
                break
            h = heat[pids]
            ok = h < gap  # strictly shrinks the src-dst spread
            if not ok.any():
                break
            pids, h = pids[ok], h[ok]
            p = int(pids[np.argmin(np.abs(h - gap / 2))])
            assignment[p] = dst
            shard_heat[src] -= heat[p]
            shard_heat[dst] += heat[p]
            moves.append((p, src, dst))
        return assignment, moves

    def reset_heat(self) -> None:
        self.heat[:] = 0


class ShardedEngine:
    """N key-space shards, each a full :class:`CuartEngine`, behind the
    single-engine batch API.

    Construction mirrors the engines: pass an
    :class:`~repro.host.config.EngineConfig` (or its fields as kwargs)
    plus a :class:`ShardingConfig`.  Every shard engine shares the base
    metrics registry through a ``shard="i"``-labeled
    :class:`~repro.obs.metrics.ScopedRegistry` view and the base
    tracer; fault injection, when configured, is re-seeded per shard so
    devices fail independently.

    >>> eng = ShardedEngine(sharding=ShardingConfig(n_shards=2))
    >>> eng.populate([(b'key-a\\x00', 1), (b'key-b\\x00', 2)])
    >>> eng.map_to_device()
    >>> eng.lookup([b'key-a\\x00', b'missing\\x00'])
    [1, None]
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        *,
        sharding: Optional[ShardingConfig] = None,
        **kwargs,
    ) -> None:
        if config is None:
            config = EngineConfig(**kwargs)
        elif kwargs:
            raise TypeError(
                "pass either config=EngineConfig(...) or individual "
                "keyword arguments, not both"
            )
        self.config = config
        self.sharding = sharding if sharding is not None else ShardingConfig()
        self.batch_size = config.batch_size
        self.metrics = (
            config.metrics if config.metrics is not None else MetricsRegistry()
        )
        self.tracer = config.tracer if config.tracer is not None else NULL_TRACER
        self.flight = (
            config.flight_recorder
            if config.flight_recorder is not None
            else NULL_FLIGHT_RECORDER
        )
        self.router = ShardRouter(self.sharding)
        self.last_report = None
        self._pcie = link_for_device(config.device.name)
        self.shards: list[CuartEngine] = []
        subtrack = getattr(self.tracer, "subtrack", None)
        for i in range(self.sharding.n_shards):
            faults = config.faults
            if faults is not None and faults.enabled:
                # independent fault streams per simulated device
                faults = replace(faults, seed=faults.seed + 1000 * i)
            # each shard traces onto its own pair of named tracks
            # (shardN/host, shardN/gpu-sim) so a chrome trace shows the
            # simulated devices side by side instead of collapsed onto
            # one host track; every event carries the shard id
            shard_tracer = (
                subtrack(f"shard{i}", {"shard": i})
                if subtrack is not None else self.tracer
            )
            self.shards.append(CuartEngine(replace(
                config,
                metrics=self.metrics.scoped(shard=str(i)),
                tracer=shard_tracer,
                faults=faults,
            )))
        m = self.metrics
        self._g_imbalance = m.gauge(
            "shard_imbalance_ratio",
            "max/mean per-shard routed heat since the last reset",
        )
        self._g_heat = m.gauge(
            "shard_heat", "routed ops per shard since the last reset",
            labels=("shard",),
        )
        self._m_rebalances = m.counter(
            "shard_rebalances_total", "online shard rebalances executed",
        )
        self._m_migrated = m.counter(
            "shard_keys_migrated_total",
            "keys moved between shards by rebalances",
        )
        self._m_migration_us = m.counter(
            "shard_migration_sim_us_total",
            "simulated microseconds of rebalance PCIe traffic",
        )

    # -- routing ---------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.sharding.n_shards

    @property
    def device_health(self):
        """Worst-case circuit-breaker state across shards: an unhealthy
        shard's :class:`~repro.host.resilience.DeviceHealth` if any
        circuit is open, else the first shard reporting health, else
        ``None`` (no resilience policy anywhere).  The serving layer
        treats one open circuit as cluster-wide pressure because a
        single degraded shard already serializes its keys through the
        CPU path."""
        first = None
        for shard in self.shards:
            h = shard.device_health
            if h is None:
                continue
            if not h.healthy:
                return h
            if first is None:
                first = h
        return first

    def _route_groups(
        self, keys: Sequence[bytes], *, record: bool = True
    ) -> list[tuple[int, np.ndarray]]:
        """Split one key batch into per-shard index groups."""
        sids = self.router.route(keys, record=record)
        out = []
        for i in range(self.n_shards):
            idx = np.nonzero(sids == i)[0]
            if idx.size:
                out.append((i, idx))
        return out

    # -- scatter-merge ---------------------------------------------------
    def _merge_results(
        self, op: str, n: int, parts: list[tuple[np.ndarray, BatchResult]]
    ) -> BatchResult:
        """Scatter per-shard batch results back into stream order.

        Preserves the lazy status/attempts fast path: when no shard
        materialized a status vector (no resilience events), the merged
        result leaves them lazy too.
        """
        found = np.zeros(n, dtype=bool)
        values = None
        if any(r.value_array is not None for _, r in parts):
            values = np.full(n, np.uint64(NIL_VALUE), dtype=np.uint64)
        want_status = any(r._status is not None for _, r in parts)
        want_attempts = any(r._attempts is not None for _, r in parts)
        status = np.zeros(n, dtype=np.uint8) if want_status else None
        attempts = np.ones(n, dtype=np.int32) if want_attempts else None
        overrides: dict = {}
        summary: Optional[dict] = None
        for idx, r in parts:
            found[idx] = r.found_array
            if values is not None and r.value_array is not None:
                values[idx] = r.value_array
            if status is not None:
                status[idx] = r.status
            if attempts is not None:
                attempts[idx] = r.attempts
            for pos, val in r._overrides.items():
                overrides[int(idx[pos])] = val
            if r.summary is not None:
                if summary is None:
                    summary = dict(r.summary)
                else:
                    for k, v in r.summary.items():
                        summary[k] = summary.get(k, 0) + v
        return BatchResult(
            op, found=found, values=values, overrides=overrides,
            status=status, attempts=attempts, summary=summary,
        )

    def _set_last_report(self, parts, groups) -> None:
        """Adopt the busiest shard's report (per-op throughput probe)."""
        best = None
        for (sid, idx), _ in zip(groups, parts):
            rep = self.shards[sid].last_report
            if rep is not None and (best is None or idx.size > best[0]):
                best = (idx.size, rep)
        if best is not None:
            self.last_report = best[1]

    # -- lifecycle -------------------------------------------------------
    def populate(self, items: Iterable[tuple[bytes, int]]) -> None:
        """Route ``(key, value)`` pairs to their owning shards' host
        trees (no heat recorded — placement, not traffic)."""
        items = list(items)
        groups = self._route_groups(
            [k for k, _ in items], record=False
        )
        for sid, idx in groups:
            self.shards[sid].populate([items[j] for j in idx])

    def map_to_device(self) -> None:
        for shard in self.shards:
            shard.map_to_device()

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def contains(self, key: bytes) -> bool:
        return self.shards[self.router.shard_of(key)].contains(key)

    def items(self) -> list[tuple[bytes, int]]:
        """All ``(key, value)`` pairs across shards, in key order (the
        canonicalization surface the lockstep tests compare)."""
        out: list[tuple[bytes, int]] = []
        for shard in self.shards:
            out.extend(shard.tree.items())
        out.sort(key=itemgetter(0))
        return out

    # -- batched ops -----------------------------------------------------
    def lookup(self, keys: Sequence[bytes]) -> BatchResult:
        keys = list(keys) if not isinstance(keys, (list, tuple)) else keys
        groups = self._route_groups(keys)
        parts = [
            (idx, self.shards[sid].lookup([keys[j] for j in idx]))
            for sid, idx in groups
        ]
        self._set_last_report(parts, groups)
        return self._merge_results("lookup", len(keys), parts)

    def update(self, items: Sequence[tuple[bytes, int]]) -> BatchResult:
        items = list(items) if not isinstance(items, (list, tuple)) else items
        groups = self._route_groups([k for k, _ in items])
        parts = [
            (idx, self.shards[sid].update([items[j] for j in idx]))
            for sid, idx in groups
        ]
        self._set_last_report(parts, groups)
        return self._merge_results("update", len(items), parts)

    def delete(self, keys: Sequence[bytes]) -> BatchResult:
        keys = list(keys) if not isinstance(keys, (list, tuple)) else keys
        groups = self._route_groups(keys)
        parts = [
            (idx, self.shards[sid].delete([keys[j] for j in idx]))
            for sid, idx in groups
        ]
        self._set_last_report(parts, groups)
        return self._merge_results("delete", len(keys), parts)

    def insert(self, items: Sequence[tuple[bytes, int]]) -> BatchResult:
        items = list(items) if not isinstance(items, (list, tuple)) else items
        groups = self._route_groups([k for k, _ in items])
        parts = [
            (idx, self.shards[sid].insert([items[j] for j in idx]))
            for sid, idx in groups
        ]
        self._set_last_report(parts, groups)
        return self._merge_results("insert", len(items), parts)

    def range(self, lo: bytes, hi: bytes) -> list[tuple[bytes, int]]:
        """Inclusive range: every shard scans (hash mode scatters any
        range across all of them), merged in key order."""
        rows: list[tuple[bytes, int]] = []
        for shard in self.shards:
            rows.extend(shard.range(lo, hi))
        rows.sort(key=itemgetter(0))
        return rows

    # -- async dispatch --------------------------------------------------
    def submit(self, kind: str, payloads: Sequence) -> BatchResult:
        """Pipelined dispatch: route the batch, submit each sub-batch on
        its shard's own :class:`StreamScheduler` — shards are
        independent devices, so their submit windows run concurrently
        in simulated time."""
        if kind not in ("lookup", "update", "delete", "insert"):
            raise ReproError(
                f"cannot submit {kind!r} batches to ShardedEngine"
            )
        payloads = (
            list(payloads) if not isinstance(payloads, (list, tuple))
            else payloads
        )
        if kind in ("update", "insert"):
            keys = [k for k, _ in payloads]
        else:
            keys = payloads
        groups = self._route_groups(keys)
        parts = [
            (idx, self.shards[sid].submit(kind, [payloads[j] for j in idx]))
            for sid, idx in groups
        ]
        self._set_last_report(parts, groups)
        return self._merge_results(kind, len(payloads), parts)

    def drain(self) -> StreamOverlapStats:
        """Close every shard's submit window and fold the concurrent
        windows (makespan = slowest shard) into one stats record."""
        merged: Optional[StreamOverlapStats] = None
        for shard in self.shards:
            window = shard.drain()
            if merged is None:
                merged = window
            else:
                merged.merge_parallel(window)
        self.publish_shard_stats()
        return merged if merged is not None else StreamOverlapStats(streams=0)

    # -- observability ---------------------------------------------------
    def publish_shard_stats(self) -> float:
        """Refresh the per-shard heat gauges and the imbalance ratio;
        returns the ratio."""
        per_shard = self.router.shard_heat()
        for i, h in enumerate(per_shard):
            self._g_heat.labels(shard=str(i)).set(float(h))
        ratio = self.router.imbalance()
        self._g_imbalance.set(ratio)
        return ratio

    def imbalance(self) -> float:
        return self.router.imbalance()

    # -- online rebalancing ----------------------------------------------
    def rebalance(self, *, max_moves: Optional[int] = None) -> dict:
        """Migrate hot partitions between shards to even out heat.

        Protocol, in order:

        1. **Drain** — every in-flight batch completes (simulated);
           migrations never interleave with serving.
        2. **Plan** — :meth:`ShardRouter.balanced_assignment` picks the
           minimal-churn move set from the heat counters.
        3. **Migrate** — the affected shards' host trees are flushed,
           their items re-routed under the new table, and each affected
           shard is rebuilt through the serialize/re-map path (fresh
           tree, bulk populate, ``map_to_device``).  The simulated PCIe
           cost of moving the records (device→host on the source, host→
           device on the destination) is charged and reported.
        4. **Reset** — heat counters clear so the next skew episode is
           measured fresh.

        Returns a summary dict; a no-op plan returns with
        ``moved_partitions == 0`` and leaves every shard untouched.
        """
        imbalance_before = self.router.imbalance()
        self.drain()
        new_assignment, moves = self.router.balanced_assignment(
            max_moves=max_moves
        )
        if not moves:
            return {
                "moved_partitions": 0, "moved_keys": 0, "migrated_bytes": 0,
                "sim_transfer_s": 0.0, "affected_shards": [],
                "imbalance_before": imbalance_before,
                "imbalance_after": imbalance_before,
            }
        affected = sorted(
            {src for _, src, _ in moves} | {dst for _, _, dst in moves}
        )
        with self.tracer.span(
            "shard.rebalance",
            {"moves": len(moves), "shards": len(affected)},
        ):
            partition_of = self.router.partition_of
            final: dict[int, list] = {i: [] for i in affected}
            moved_keys = 0
            migrated_bytes = 0
            for i in affected:
                # reading .tree flushes the deferred write mirror first
                for k, v in self.shards[i].tree.items():
                    dst = int(new_assignment[partition_of(k)])
                    final[dst].append((k, v))
                    if dst != i:
                        moved_keys += 1
                        migrated_bytes += len(k) + 8
            self.router.assignment = new_assignment
            for i in affected:
                shard = self.shards[i]
                shard.tree = AdaptiveRadixTree()
                shard.layout = None
                shard.root_table = None
                shard.populate(final[i])
                shard.map_to_device()
        # each record crosses the source link down and the destination
        # link up; the two legs pipeline through host memory, so charge
        # the slower leg plus one setup latency for the second
        leg = self._pcie.transfer_time(migrated_bytes)
        sim_transfer_s = leg + self._pcie.latency_s
        self._m_rebalances.inc()
        self._m_migrated.inc(moved_keys)
        self._m_migration_us.inc(int(sim_transfer_s * 1e6))
        self.router.reset_heat()
        self.publish_shard_stats()
        return {
            "moved_partitions": len(moves),
            "moved_keys": moved_keys,
            "migrated_bytes": migrated_bytes,
            "sim_transfer_s": sim_transfer_s,
            "affected_shards": affected,
            "imbalance_before": imbalance_before,
            "imbalance_after": self.router.imbalance(),
        }


class ShardedMixedExecutor:
    """Mixed-stream serving over a :class:`ShardedEngine`.

    The stream is pre-split into per-shard sub-streams (routing is
    deterministic per key, so per-key op order is preserved inside each
    sub-stream) and each runs through its own
    :class:`~repro.host.mixed.MixedWorkloadExecutor` — per-shard
    coalescer, per-shard store-to-load forwarding overlay, per-shard
    submit/drain pipeline.  A same-key conflict therefore only ever
    cuts the owning shard's batches; the other shards keep coalescing.
    Scans are global barriers: every pending sub-stream segment
    executes and drains, then the sharded engine's merged range query
    runs.

    Reports merge with :meth:`MixedReport.merge` — shard segments are
    concurrent (makespan = slowest shard), scan-delimited segments are
    sequential (makespans add) — so ``report.stream_overlap`` is the
    whole run's simulated device timeline.
    """

    def __init__(self, engine: ShardedEngine, *, memtable=None) -> None:
        self.engine = engine
        self.metrics = engine.metrics
        self.tracer = engine.tracer
        #: write-absorption policy, handed to every per-shard executor
        #: (each shard gets its own memtable: absorption and compaction
        #: debt stay local to the shard that owns the keys).
        self._inner = [
            MixedWorkloadExecutor(s, shard=i, memtable=memtable)
            for i, s in enumerate(engine.shards)
        ]

    def run(self, stream) -> tuple[list, MixedReport]:
        """Execute the stream; returns (lookup results in stream order,
        merged report) — the same contract as
        :meth:`MixedWorkloadExecutor.run`."""
        results: list = []
        total = MixedReport()
        segment: list = []
        for kind, payload in stream:
            if kind == "scan":
                self._run_segment(segment, results, total)
                segment = []
                self._run_scan(payload, total)
            else:
                segment.append((kind, payload))
        self._run_segment(segment, results, total)
        total.latency_percentiles_by_op = self._merged_percentiles(total)
        self.engine.publish_shard_stats()
        return results, total

    def _run_segment(self, ops: list, results: list, total: MixedReport
                     ) -> None:
        if not ops:
            return
        router = self.engine.router
        subs: list[list] = [[] for _ in self._inner]
        order: list[int] = []
        for kind, payload in ops:
            key = payload if kind in ("lookup", "delete") else payload[0]
            sid = router.shard_of(key, record=True)
            subs[sid].append((kind, payload))
            if kind == "lookup":
                order.append(sid)
        queues: dict[int, object] = {}
        seg: Optional[MixedReport] = None
        for sid, sub in enumerate(subs):
            if not sub:
                continue
            res, rep = self._inner[sid].run(sub)
            queues[sid] = iter(res)
            if seg is None:
                seg = rep
            else:
                seg.merge(rep, concurrent=True)
        for sid in order:
            results.append(next(queues[sid]))
        if seg is not None:
            total.merge(seg, concurrent=False)

    def _run_scan(self, payload, total: MixedReport) -> None:
        if not (isinstance(payload, (tuple, list)) and len(payload) == 2):
            raise ValueError(f"malformed scan payload {payload!r}")
        lo, hi = payload
        t0 = time.perf_counter()
        with self.tracer.span("mixed.scan", {"n": 1}):
            rows = self.engine.range(lo, hi)
        dt = time.perf_counter() - t0
        total.scans += 1
        total.records_scanned += len(rows)
        total.batches += 1
        total.batches_by_op["scan"] = total.batches_by_op.get("scan", 0) + 1
        total.wall_s["scan"] = total.wall_s.get("scan", 0.0) + dt
        by = total.ops_by_status
        by["OK"] = by.get("OK", 0) + 1

    def _merged_percentiles(self, total: MixedReport) -> dict:
        """Per-op latency summaries merged across shards.

        The registry histograms are cumulative per shard (Prometheus
        semantics), so read each shard's final summary once rather than
        folding per-segment snapshots (which would double-count)."""
        merged: dict = {}
        for ex in self._inner:
            for op in total.wall_s:
                summary = ex.metrics.value("mixed_op_latency_us", op=op)
                if summary and summary.get("count"):
                    merged[op] = merge_percentile_summaries(
                        merged.get(op), summary
                    )
        return merged
