"""Engine construction config: one validated, keyword-only dataclass.

Consolidates the keyword arguments that used to be scattered across
``CuartEngine.__init__`` (and aligns ``GrtEngine`` to the same shape).
Validation happens eagerly in ``__post_init__`` — like
:class:`repro.host.dispatcher.DispatchConfig` — so a bad configuration
fails at construction with a structured
:class:`~repro.errors.SimulationError`, not deep inside a kernel.

Both construction styles work::

    CuartEngine(batch_size=1024, cache_size=4096)          # kwargs
    CuartEngine(config=EngineConfig(batch_size=1024, ...)) # explicit

The kwargs form builds an ``EngineConfig`` internally, so unknown
keywords still raise ``TypeError`` (feature-detection loops in the
benchmarks rely on that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.constants import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_HOST_THREADS,
    DEFAULT_UPDATE_HASH_SLOTS,
)
from repro.cuart.hashtable import HASH_TABLE_VARIANTS
from repro.cuart.layout import LongKeyStrategy
from repro.errors import SimulationError
from repro.gpusim.devices import CpuSpec, DeviceSpec, RTX3090, WORKSTATION_CPU
from repro.gpusim.faults import FaultConfig
from repro.host.resilience import ResiliencePolicy
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True, kw_only=True)
class EngineConfig:
    """Everything an engine needs to be built, validated up front."""

    #: simulated accelerator and host CPU.
    device: DeviceSpec = RTX3090
    cpu: CpuSpec = WORKSTATION_CPU
    #: queries per device batch.
    batch_size: int = DEFAULT_BATCH_SIZE
    #: host preparation threads feeding the pipeline.
    host_threads: int = DEFAULT_HOST_THREADS
    #: command streams for the pipelined dispatch model (sections
    #: 4.1/4.3): with >= 2, batch *i+1*'s PCIe staging overlaps batch
    #: *i*'s kernel (double-buffering); 1 models fully synchronous
    #: dispatch.  The GRT baseline always dispatches synchronously.
    streams: int = 2
    #: compacted root-table depth (1..3) or None for no table
    #: (section 3.2.2).  CuART only.
    root_table_depth: Optional[int] = None
    #: handling of keys beyond the fixed-leaf maximum (section 3.2.3).
    #: CuART only.
    long_keys: LongKeyStrategy = LongKeyStrategy.ERROR
    #: conflict hash-table slots for the write kernels (section 3.4);
    #: may be grown at runtime by the resilience layer.  CuART only.
    hash_slots: int = DEFAULT_UPDATE_HASH_SLOTS
    #: conflict-table layout: ``"bucketed"`` probes 128-byte buckets
    #: warp-cooperatively (one coalesced transaction per bucket group);
    #: ``"linear"`` is the paper's per-slot linear probing, kept as the
    #: oracle/back-compat path.  CuART only.
    hash_table: str = "bucketed"
    #: device-buffer over-allocation fraction for device-side inserts
    #: (section 5.1).  CuART only.
    spare: float = 0.25
    #: hot-key LRU result cache entries (0 = disabled).  CuART only.
    cache_size: int = 0
    #: shared observability surface; defaults to a private registry and
    #: the no-op tracer.
    metrics: Optional[MetricsRegistry] = None
    tracer: object = None
    #: per-op flight recorder (:class:`repro.obs.flightrec.
    #: FlightRecorder`); None = the allocation-free null recorder.
    flight_recorder: object = None
    #: deterministic fault injection (None = a cooperative device).
    faults: Optional[FaultConfig] = None
    #: retry / degrade / recovery policy (None = faults propagate as
    #: exceptions, the pre-PR-4 behaviour).
    resilience: Optional[ResiliencePolicy] = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise SimulationError(
                "batch_size must be positive", value=self.batch_size
            )
        if self.host_threads < 1:
            raise SimulationError(
                "host_threads must be positive", value=self.host_threads
            )
        if self.streams < 1:
            raise SimulationError(
                "streams must be positive", value=self.streams
            )
        if self.hash_slots <= 0 or self.hash_slots & (self.hash_slots - 1):
            raise SimulationError(
                "hash_slots must be a power of two", value=self.hash_slots
            )
        if self.hash_table not in HASH_TABLE_VARIANTS:
            raise SimulationError(
                f"hash_table must be one of {HASH_TABLE_VARIANTS}",
                value=self.hash_table,
            )
        if self.spare < 0:
            raise SimulationError(
                "spare must be non-negative", value=self.spare
            )
        if self.cache_size < 0:
            raise SimulationError(
                "cache_size must be non-negative", value=self.cache_size
            )
        if self.root_table_depth is not None and (
            not 1 <= self.root_table_depth <= 3
        ):
            raise SimulationError(
                "root_table_depth must be 1..3 or None",
                value=self.root_table_depth,
            )
