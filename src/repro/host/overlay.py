"""Pending-write overlay: store-to-load forwarding over queued batches.

Promoted out of the mixed executor's inline hot loop into an engine-level
concept (ROADMAP item 3's prep): both offline executors and the async
serving front-end (:mod:`repro.serve`) coalesce writes into per-class
device batches, and until those batches flush, a reader must still
observe every queued write — exactly what a serial client would see.

:class:`WriteOverlay` holds, per key, the *cumulative* effect of every
write that entered the queues:

``"present"``
    a pending insert — the key will exist with the recorded value.
``"absent"``
    a pending delete — the key will definitely not exist (updates never
    resurrect, so a later update/delete on it is a guaranteed miss).
``"maybe"``
    pending updates only — present iff the key exists in the engine's
    *applied* state; one ``contains`` probe per distinct key resolves it
    (memoized: pending updates never change existence, and a pending
    delete/insert overwrites the entry with a definite status).

Entries stay valid after their queues flush: the overlay then merely
restates what the applied batches already did to the engine's state.
The overlay degrades to inert no-ops when the engine lacks a
``contains`` probe (``enabled`` is False): nothing is recorded, every
read misses the overlay, and every write proceeds to the device.

:meth:`snapshot` is the promotion hook: it exposes the pending-effect
map in one stable shape so a future in-memory memtable (ROADMAP item 3)
or a checkpointer can fold queued-but-unflushed writes into durable
state without reaching into executor internals.
"""

from __future__ import annotations

from typing import Callable, Optional

#: shared entry for a pending delete (avoids one tuple allocation per
#: delete in the executors' hot loops).
_ABSENT = ("absent", None)


class WriteOverlay:
    """Per-key pending-write state with store-to-load forwarding.

    The hot-loop contract (used by :class:`repro.host.mixed.
    MixedWorkloadExecutor` and :class:`repro.serve.ServerCore`):

    * bind ``overlay.entries.get`` and probe it once per read — ``None``
      means "no pending write, go to the device" and costs one dict
      lookup; only overlaid keys pay a method call
      (:meth:`resolve_read`).
    * writes call :meth:`note_update` / :meth:`note_delete` /
      :meth:`note_insert`; a ``False`` return means the op
      short-circuits to a host-side miss and must *not* be queued.
    """

    __slots__ = ("entries", "_exists_memo", "_contains")

    def __init__(self, contains: Optional[Callable] = None) -> None:
        #: key -> (status, value); probe with ``entries.get`` on the
        #: read fast path.  Stays empty when forwarding is disabled.
        self.entries: dict = {}
        # base-existence memo for "maybe" keys (one probe per key).
        self._exists_memo: dict = {}
        self._contains = contains

    @property
    def enabled(self) -> bool:
        """Forwarding is active (the engine exposes ``contains``)."""
        return self._contains is not None

    def __len__(self) -> int:
        return len(self.entries)

    def base_exists(self, key) -> bool:
        """Does the key exist in the engine's applied state (memoized)?"""
        hit = self._exists_memo.get(key)
        if hit is None:
            hit = self._exists_memo[key] = self._contains(key)
        return hit

    def resolve_read(self, key, entry) -> tuple[bool, object]:
        """Answer a read whose ``entries.get`` probe returned ``entry``
        (not ``None``): ``(found, value)`` as a serial client would
        observe it."""
        status, val = entry
        if status == "present" or (status == "maybe"
                                   and self.base_exists(key)):
            return True, val
        return False, None

    def read(self, key) -> Optional[tuple[bool, object]]:
        """One-shot read: ``None`` when the key has no pending write,
        else ``(found, value)`` (cold-path convenience over the
        ``entries.get`` + :meth:`resolve_read` fast path)."""
        entry = self.entries.get(key)
        if entry is None:
            return None
        return self.resolve_read(key, entry)

    def note_update(self, key, value) -> bool:
        """Record a pending update.  Returns ``False`` when the key is
        definitely absent (pending delete): the update is a guaranteed
        miss and must skip the device entirely."""
        entries = self.entries
        st = entries.get(key)
        if st is None:
            if self._contains is not None:
                entries[key] = ("maybe", value)
            return True
        if st[0] == "absent":
            return False
        entries[key] = (st[0], value)
        return True

    def note_delete(self, key) -> bool:
        """Record a pending delete.  Returns ``False`` when the key is
        already definitely absent (the second delete must report a miss
        without device work)."""
        st = self.entries.get(key)
        if st is not None and st[0] == "absent":
            return False
        if self._contains is not None:
            self.entries[key] = _ABSENT
        return True

    def note_insert(self, key, value) -> None:
        """Record a pending insert: the key is definitely present."""
        if self._contains is not None:
            self.entries[key] = ("present", value)

    def snapshot(self) -> dict:
        """Stable copy of the pending-effect map: ``{key: (status,
        value)}`` with status in ``"present"`` / ``"absent"`` /
        ``"maybe"`` — the hook a memtable / checkpointer consumes."""
        return dict(self.entries)

    def forget(self, key) -> None:
        """Retire one key's pending effect *and* its base-existence memo.

        The memtable's merge-compactor calls this per installed key: the
        device layout now carries the folded write, so the overlay entry
        would merely restate applied state — and the memo is stale, the
        install may have changed the key's base existence."""
        self.entries.pop(key, None)
        self._exists_memo.pop(key, None)

    def forget_exists(self, key) -> None:
        """Drop only the base-existence memo for a key (the entry stays
        pending).  Used when a compaction changes applied state under a
        key whose newest write lives in a still-active segment."""
        self._exists_memo.pop(key, None)

    def clear(self) -> None:
        """Forget all pending effects (e.g. after a full drain when the
        caller wants overlay reads to reflect only applied state)."""
        self.entries.clear()
        self._exists_memo.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "disabled"
        return f"WriteOverlay({state}, pending={len(self.entries)})"
