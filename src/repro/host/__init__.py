"""Host-side machinery: query coalescing, the multi-threaded dispatch
pipeline model, the hybrid CPU/GPU long-key split and the end-to-end
engine implementing the paper's three benchmark stages (section 4.1):

1. populating the ART index,
2. mapping the CPU ART into the device buffer structure,
3. running the actual queries, measuring throughput end to end.
"""

from repro.host.batching import QueryBatcher, coalesce, coalesce_encoded
from repro.host.cache import CacheStats, HotKeyCache
from repro.host.dispatcher import (
    DispatchConfig,
    HostCostParameters,
    pipeline_throughput,
)
from repro.host.hybrid import (
    HybridConfig,
    degraded_cpu_throughput,
    hybrid_throughput,
    split_queries,
)
from repro.host.config import EngineConfig
from repro.host.engine import CuartEngine, EngineReport, GrtEngine
from repro.host.memtable import Memtable, MemtableConfig, MemtableSnapshot
from repro.host.overlay import WriteOverlay
from repro.host.resilience import (
    DeviceHealth,
    ResiliencePolicy,
    ResilientDispatcher,
    RetryPolicy,
)
from repro.host.results import (
    BatchResult,
    OpStatus,
    status_codes,
    values_to_list,
)
from repro.host.mixed import MixedWorkloadExecutor, MixedReport
from repro.host.autotune import autotune_dispatch, TunePoint, TuneResult
from repro.host.multigpu import MultiGpuConfig, multi_gpu_throughput, scaling_curve
from repro.host.sharding import (
    ShardedEngine,
    ShardedMixedExecutor,
    ShardingConfig,
    ShardRouter,
)

__all__ = [
    "QueryBatcher",
    "coalesce",
    "coalesce_encoded",
    "CacheStats",
    "HotKeyCache",
    "DispatchConfig",
    "HostCostParameters",
    "pipeline_throughput",
    "HybridConfig",
    "degraded_cpu_throughput",
    "hybrid_throughput",
    "split_queries",
    "CuartEngine",
    "GrtEngine",
    "EngineConfig",
    "EngineReport",
    "BatchResult",
    "OpStatus",
    "status_codes",
    "values_to_list",
    "WriteOverlay",
    "Memtable",
    "MemtableConfig",
    "MemtableSnapshot",
    "DeviceHealth",
    "ResiliencePolicy",
    "ResilientDispatcher",
    "RetryPolicy",
    "MixedWorkloadExecutor",
    "MixedReport",
    "autotune_dispatch",
    "TunePoint",
    "TuneResult",
    "MultiGpuConfig",
    "multi_gpu_throughput",
    "scaling_curve",
    "ShardedEngine",
    "ShardedMixedExecutor",
    "ShardingConfig",
    "ShardRouter",
]
