"""Hybrid CPU/GPU query processing (section 3.2.3 option (a),
figures 13 and 14).

Keys longer than the device maximum are "skipped" by the GPU path and
processed on the CPU against the host ART, in parallel with the GPU
batches.  The end-to-end rate of the combined system is set by whichever
side finishes its share last:

    T(Q) = max( T_gpu(share_gpu · Q),  T_cpu(share_cpu · Q) )

Figure 14's punchline is that the CPU side is *much* slower per query
than the GPU pipeline — the paper measures ~50% total degradation with
only 3% of queries on the CPU, implying a CPU path in the very low
MOps/s aggregate (its per-query cost includes taking a query out of the
stream, a full pointer-chasing ART descent and merging the result back
under synchronization).  The constants below are calibrated to that
plateau; the pointer-chase itself comes from the structural CPU model in
:func:`repro.gpusim.cost_model.cpu_lookup_time`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.cost_model import cpu_lookup_time
from repro.gpusim.devices import CpuSpec
from repro.gpusim.streams import PipelineResult

#: per-query overhead of pulling one query out of the coalesced stream,
#: dispatching it to a worker and merging its result back (locking +
#: cache-line ping-pong between the splitter and 56 workers).  Calibrated
#: against figure 14's CPU-bound plateau.
SPLIT_MERGE_OVERHEAD_S = 6.0e-6


@dataclass(frozen=True)
class HybridConfig:
    """Settings of the hybrid split."""

    #: fraction of the query stream processed on the CPU.
    cpu_fraction: float
    #: host threads devoted to CPU-side lookups (the paper uses 56 of the
    #: server's 64 physical cores; 8 keep feeding the GPU).
    cpu_threads: int = 56
    #: average tree levels a CPU lookup traverses (from TreeStats).
    avg_levels: float = 5.0
    #: average node record size on the CPU path.
    node_bytes: float = 176.0
    #: host working set of the CPU-side tree in bytes.
    working_set_bytes: int = 1 << 30
    #: classic pointer ART (False) or the CuART flat layout (True) on the
    #: CPU side — figure 14 compares implementations.
    contiguous_layout: bool = False


def cpu_path_rate(config: HybridConfig, cpu: CpuSpec) -> float:
    """Aggregate CPU-side queries/second across the worker threads."""
    per_lookup = cpu_lookup_time(
        cpu,
        avg_levels=config.avg_levels,
        node_bytes=config.node_bytes,
        working_set_bytes=config.working_set_bytes,
        contiguous=config.contiguous_layout,
        threads=1,
    )
    per_query = per_lookup + SPLIT_MERGE_OVERHEAD_S
    threads = min(config.cpu_threads, cpu.threads)
    return threads / per_query


def split_queries(keys, max_key_bytes: int):
    """Partition a query stream into (short → GPU, long → CPU) preserving
    original positions."""
    short, short_pos, long_, long_pos = [], [], [], []
    for i, k in enumerate(keys):
        if len(k) <= max_key_bytes:
            short.append(k)
            short_pos.append(i)
        else:
            long_.append(k)
            long_pos.append(i)
    return (short, short_pos), (long_, long_pos)


def degraded_cpu_throughput(config: HybridConfig, cpu: CpuSpec) -> dict:
    """Modeled serving rate while the resilience layer has degraded the
    engine to the CPU path (``DEGRADED_CPU``): the device is unhealthy,
    so *100%* of the stream rides the hybrid split's CPU side.

    This is the figure-14 CPU plateau taken to its limit — the number to
    quote for "what does a dead GPU cost us" capacity planning next to
    the healthy-pipeline rate."""
    degraded = HybridConfig(
        cpu_fraction=1.0,
        cpu_threads=config.cpu_threads,
        avg_levels=config.avg_levels,
        node_bytes=config.node_bytes,
        working_set_bytes=config.working_set_bytes,
        contiguous_layout=config.contiguous_layout,
    )
    rate = cpu_path_rate(degraded, cpu)
    return {
        "degraded_mops": rate / 1e6,
        "cpu_threads": min(config.cpu_threads, cpu.threads),
        "contiguous_layout": config.contiguous_layout,
        "bottleneck": "cpu",
        "cpu_fraction": 1.0,
    }


def hybrid_throughput(
    gpu_pipeline: PipelineResult,
    config: HybridConfig,
    cpu: CpuSpec,
) -> dict:
    """Combined end-to-end rate when ``cpu_fraction`` of queries run on
    the CPU and the rest flow through the GPU pipeline."""
    f = min(max(config.cpu_fraction, 0.0), 1.0)
    gpu_rate = gpu_pipeline.throughput_ops  # queries/s when fed 100%
    cpu_rate = cpu_path_rate(config, cpu)
    # per unit of total queries: time the GPU needs for its (1-f) share
    # and the CPU for its f share; they run concurrently
    t_gpu = (1.0 - f) / gpu_rate if gpu_rate > 0 else float("inf")
    t_cpu = f / cpu_rate if f > 0 else 0.0
    total_rate = 1.0 / max(t_gpu, t_cpu) if max(t_gpu, t_cpu) > 0 else 0.0
    return {
        "total_mops": total_rate / 1e6,
        "gpu_share_mops": gpu_rate / 1e6,
        "cpu_share_mops": cpu_rate / 1e6,
        "bottleneck": "cpu" if t_cpu > t_gpu else "gpu",
        "cpu_fraction": f,
    }
