"""End-to-end engines — the public facade of the reproduction.

A :class:`CuartEngine` (or the baseline :class:`GrtEngine`) executes the
paper's three benchmark stages (section 4.1): it populates a host ART,
maps it into the device layout, and then serves batched queries.  Every
query batch runs the *real* vectorized kernels (results are exact) while
its transaction log flows through the simulated device's cost model and
the host pipeline model, producing the end-to-end throughput estimates
reported by the benchmarks.

The serving path is array-native end to end: the whole query stream is
bulk-encoded into one key matrix, batches are views of it, results are
scattered back with single fancy-index assignments, and the Python-object
conversion of lookup results is deferred until a caller actually consumes
them (:class:`LazyValues`).  An optional hot-key LRU result cache
(:mod:`repro.host.cache`) short-circuits repeat lookups under skewed
traffic.
"""

from __future__ import annotations

import time
from collections.abc import Sequence as _SequenceABC
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.art.bulk import bulk_load
from repro.art.tree import AdaptiveRadixTree
from repro.constants import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_HOST_THREADS,
    DEFAULT_UPDATE_HASH_SLOTS,
    LINK_TYPE_NAMES,
    MAX_SHORT_KEY,
    NIL_VALUE,
)
from repro.cuart.delete import delete_batch
from repro.cuart.hashtable import AtomicMaxHashTable
from repro.cuart.insert import InsertEngine
from repro.cuart.layout import CuartLayout, LongKeyStrategy
from repro.cuart.lookup import lookup_batch
from repro.cuart.range_query import prefix_query, range_query
from repro.cuart.root_table import RootTable
from repro.cuart.update import UpdateEngine
from repro.errors import ReproError
from repro.grt.kernel import grt_lookup_batch
from repro.grt.layout import GrtLayout
from repro.grt.update import grt_update_batch
from repro.gpusim.cost_model import CostModel
from repro.gpusim.devices import (
    CpuSpec,
    DeviceSpec,
    RTX3090,
    WORKSTATION_CPU,
)
from repro.gpusim.trace import kernel_span_args
from repro.gpusim.transactions import TransactionLog
from repro.host.batching import coalesce_encoded
from repro.host.cache import HotKeyCache
from repro.host.dispatcher import DispatchConfig, pipeline_throughput
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER
from repro.util.keys import keys_to_matrix


@dataclass
class EngineReport:
    """Simulated performance of the last operation."""

    operation: str
    queries: int
    batches: int
    #: average simulated kernel seconds per batch.
    kernel_s_per_batch: float
    #: simulated kernel-only throughput.
    kernel_mops: float
    #: simulated end-to-end throughput through the host pipeline.
    end_to_end_mops: float
    #: which roofline bound the kernel hit.
    binding_constraint: str
    #: which pipeline stage bound the end-to-end rate.
    pipeline_bottleneck: str
    transactions_per_query: float
    bytes_per_query: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.operation}: {self.end_to_end_mops:8.1f} MOps/s end-to-end "
            f"({self.kernel_mops:8.1f} kernel-only, "
            f"{self.transactions_per_query:.2f} tx/query, "
            f"bound by {self.binding_constraint}/{self.pipeline_bottleneck})"
        )


class LazyValues(_SequenceABC):
    """Batched lookup results, kept as the kernel's uint64 vector.

    Python-object conversion (``int`` / ``None``) happens once, lazily, on
    first consumption — engines and executors that only need hit/miss
    statistics read :attr:`array` / :attr:`hit_mask` and never pay it.
    Compares equal to the equivalent ``list``.
    """

    __slots__ = ("array", "_overrides", "_list")

    def __init__(
        self, array: np.ndarray, overrides: Optional[dict] = None
    ) -> None:
        #: (n,) uint64 raw kernel values (``NIL_VALUE`` = miss).
        self.array = array
        # host-resolved rows (long-key strategy b): position -> value/None
        self._overrides = overrides or {}
        self._list: Optional[list] = None

    def to_list(self) -> list:
        """Materialize (and memoize) the Python-object result list."""
        if self._list is None:
            obj = self.array.astype(object)
            obj[self.array == np.uint64(NIL_VALUE)] = None
            for pos, val in self._overrides.items():
                obj[pos] = val
            self._list = obj.tolist()
        return self._list

    @property
    def hit_mask(self) -> np.ndarray:
        """(n,) bool — which queries found their key (vectorized)."""
        mask = self.array != np.uint64(NIL_VALUE)
        for pos, val in self._overrides.items():
            mask[pos] = val is not None
        return mask

    def __len__(self) -> int:
        return len(self.array)

    def __getitem__(self, index):
        return self.to_list()[index]

    def __iter__(self):
        return iter(self.to_list())

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyValues):
            return self.to_list() == other.to_list()
        if isinstance(other, (list, tuple)):
            return self.to_list() == list(other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return repr(self.to_list())


class FoundFlags(list):
    """``list[bool]`` result that also carries the raw kernel flag vector
    (:attr:`array`) for vectorized tallies."""

    __slots__ = ("array",)

    def __init__(self, array: np.ndarray) -> None:
        super().__init__(array.tolist())
        self.array = array


class _EngineBase:
    """Shared pipeline bookkeeping for both engines."""

    def __init__(
        self,
        *,
        device: DeviceSpec = RTX3090,
        cpu: CpuSpec = WORKSTATION_CPU,
        batch_size: int = DEFAULT_BATCH_SIZE,
        host_threads: int = DEFAULT_HOST_THREADS,
        api: str = "cuda",
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        self.device = device
        self.cpu = cpu
        self.batch_size = batch_size
        self.host_threads = host_threads
        self.api = api
        self._tree = AdaptiveRadixTree()
        self.cost_model = CostModel(device)
        self.last_report: Optional[EngineReport] = None
        #: shared observability surface (repro.obs): pass one registry /
        #: tracer to correlate engine, executor, cache and write-engine
        #: metrics; the defaults are a private registry and the free
        #: no-op tracer.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        m = self.metrics
        self._m_queries = m.counter(
            "engine_queries_total", "queries served, by operation",
            labels=("op",),
        )
        self._m_batches = m.counter(
            "engine_batches_total", "device batches dispatched, by operation",
            labels=("op",),
        )
        self._m_op_latency = m.histogram(
            "engine_op_latency_us",
            "measured host wall-clock per query, by operation",
            labels=("op",),
        )
        self._m_kernel_us = m.histogram(
            "gpusim_kernel_us",
            "simulated kernel time per device batch, by operation",
            labels=("op",),
        )

    @contextmanager
    def _timed_op(self, op: str, n: int):
        """Span + per-query latency accounting around one public op."""
        t0 = time.perf_counter()
        with self.tracer.span(f"engine.{op}", {"n": n}):
            yield
        if n > 0:
            dt_us = (time.perf_counter() - t0) * 1e6
            self._m_op_latency.labels(op=op).observe(dt_us / n, n)

    @property
    def tree(self) -> AdaptiveRadixTree:
        """The authoritative host ART.  Reading it flushes any deferred
        mirror writes (see :meth:`_sync_host_tree`), so external readers
        always observe the device's state."""
        self._sync_host_tree()
        return self._tree

    @tree.setter
    def tree(self, tree: AdaptiveRadixTree) -> None:
        self._tree = tree

    def _sync_host_tree(self) -> None:
        """Hook: engines that defer host-tree mirroring flush it here."""

    def publish_tree_stats(self):
        """Walk the host tree and publish its shape (node/leaf
        populations, prefix-length histogram, depth) into the metrics
        registry as ``art_*`` gauges.  O(tree) — call at snapshot time,
        not per batch.  Returns the :class:`~repro.art.stats.TreeStats`.
        """
        from repro.art.stats import collect_stats, publish_stats

        stats = collect_stats(self.tree.root)
        publish_stats(self.metrics, stats)
        return stats

    # -- stage 1: populate ------------------------------------------------
    def populate(self, items: Iterable[tuple[bytes, int]]) -> None:
        """Insert ``(key, value)`` pairs into the host ART (stage 1).

        Populating an empty engine takes the vectorized bottom-up
        bulk-load path (:func:`repro.art.bulk.bulk_load`, duplicate keys
        collapsed last-wins like repeated inserts); anything it cannot
        express (non-empty tree, prefix-overlapping keys, exotic inputs)
        falls back to per-item root-to-leaf inserts.
        """
        items = list(items)
        with self._timed_op("populate", len(items)):
            self._populate(items)

    def _populate(self, items: list) -> None:
        if items and len(self.tree) == 0 and getattr(self, "layout", None) is None:
            dedup = None
            try:
                # common case first: distinct keys need no dedup pass
                self.tree = bulk_load(
                    [k for k, _ in items], [v for _, v in items]
                )
                return
            except ReproError:
                # duplicate keys (collapsed last-wins, like repeated
                # inserts) — or an input only the incremental path can
                # reject with its canonical error
                try:
                    dedup = dict(items)
                except (TypeError, ValueError):
                    dedup = None
            except (TypeError, ValueError):
                pass  # malformed pairs: the insert loop raises canonically
            if dedup is not None and len(dedup) < len(items):
                try:
                    self.tree = bulk_load(list(dedup), list(dedup.values()))
                    return
                except ReproError:
                    pass  # incremental path reproduces the per-item error
        for k, v in items:
            self.tree.insert(k, v)

    def __len__(self) -> int:
        return len(self.tree)

    # -- shared batching ---------------------------------------------------
    def _coalesce_stream(self, keys: Sequence[bytes]):
        """Bulk-encode one query stream and slice it into batch views.

        This is the single shared width-scan / encode / batch block that
        every batched operation (lookup, update, insert, delete, for both
        engines) dispatches through.
        """
        with self.tracer.span("encode", {"n": len(keys)}):
            mat, lens = keys_to_matrix(keys)
            return coalesce_encoded(mat, lens, self.batch_size), mat.shape[1]

    # -- reporting ---------------------------------------------------------
    def _report(
        self, operation: str, queries: int, batches: int, logs: list[TransactionLog],
        key_bytes: int,
    ) -> EngineReport:
        total_tx = sum(log.total_transactions for log in logs)
        total_bytes = sum(log.total_bytes for log in logs)
        timings = [self.cost_model.kernel_time(log) for log in logs]
        self._m_queries.labels(op=operation).inc(queries)
        self._m_batches.labels(op=operation).inc(batches)
        if timings:
            mk = self._m_kernel_us.labels(op=operation)
            for t in timings:
                mk.observe(t.total_s * 1e6)
            if self.tracer.enabled:
                # one synthetic gpu-sim span per batch, placed inside the
                # dispatching host span, so the chrome trace shows the
                # simulated kernel time beneath the host pipeline
                for log, t in zip(logs, timings):
                    self.tracer.emit_simulated(
                        f"sim:{operation}", t.total_s, kernel_span_args(log, t)
                    )
        if timings:
            kernel_s = float(np.mean([t.total_s for t in timings]))
        else:  # empty operation: charge the bare launch overhead
            kernel_s = self.device.launch_overhead_s
        per_batch_q = max(queries // max(batches, 1), 1)
        kernel_mops = per_batch_q / kernel_s / 1e6
        cfg = DispatchConfig(
            batch_size=self.batch_size,
            host_threads=self.host_threads,
            key_bytes=key_bytes,
            api=self.api,
        )
        pipe = pipeline_throughput(kernel_s, cfg, self.device, self.cpu)
        report = EngineReport(
            operation=operation,
            queries=queries,
            batches=batches,
            kernel_s_per_batch=kernel_s,
            kernel_mops=kernel_mops,
            end_to_end_mops=pipe.throughput_mops,
            binding_constraint=timings[0].binding_constraint if timings else "-",
            pipeline_bottleneck=pipe.bottleneck.name,
            transactions_per_query=total_tx / max(queries, 1),
            bytes_per_query=total_bytes / max(queries, 1),
        )
        self.last_report = report
        return report


class CuartEngine(_EngineBase):
    """The paper's system: CuART layout + kernels + async CUDA pipeline.

    >>> eng = CuartEngine()
    >>> eng.populate([(b'key-a\\x00', 1), (b'key-b\\x00', 2)])
    >>> eng.map_to_device()
    >>> eng.lookup([b'key-a\\x00', b'missing\\x00'])
    [1, None]
    """

    def __init__(
        self,
        *,
        device: DeviceSpec = RTX3090,
        cpu: CpuSpec = WORKSTATION_CPU,
        batch_size: int = DEFAULT_BATCH_SIZE,
        host_threads: int = DEFAULT_HOST_THREADS,
        root_table_depth: Optional[int] = None,
        long_keys: LongKeyStrategy = LongKeyStrategy.ERROR,
        hash_slots: int = DEFAULT_UPDATE_HASH_SLOTS,
        spare: float = 0.25,
        cache_size: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        """``spare`` over-allocates the device buffers so
        :meth:`insert` can place new keys without an immediate re-map
        (the §5.1 device-side insert path).

        ``cache_size`` > 0 enables the hot-key LRU result cache
        (:class:`repro.host.cache.HotKeyCache`): repeated lookups of hot
        keys are served from the host map, and every update / delete /
        insert keeps the cached entries coherent with the device."""
        super().__init__(
            device=device, cpu=cpu, batch_size=batch_size,
            host_threads=host_threads, api="cuda",
            metrics=metrics, tracer=tracer,
        )
        self.root_table_depth = root_table_depth
        self.long_keys = long_keys
        self.hash_slots = hash_slots
        self.spare = spare
        self.layout: Optional[CuartLayout] = None
        self.root_table: Optional[RootTable] = None
        self.cache: Optional[HotKeyCache] = (
            HotKeyCache(cache_size, metrics=self.metrics) if cache_size
            else None
        )
        # device-buffer shape gauges, refreshed after every write batch
        m = self.metrics
        self._g_nodes = m.gauge(
            "device_nodes_live", "live inner-node records per type",
            labels=("type",),
        )
        self._g_leaves = m.gauge(
            "device_leaves_live", "live leaf records per type",
            labels=("type",),
        )
        self._g_free = m.gauge(
            "device_free_list_depth", "recycled slots awaiting reuse",
            labels=("type",),
        )
        self._gauge_children = None
        # kernel engines are layout-bound; cached so repeated update /
        # insert / delete calls reuse one conflict hash table instead of
        # re-allocating it per call (see AtomicMaxHashTable.reset)
        self._updater: Optional[UpdateEngine] = None
        self._inserter: Optional[InsertEngine] = None
        self._delete_table = None
        #: deferred host-tree mirror: key -> value (None = delete).  The
        #: device buffers are mutated immediately; the host-tree mirror
        #: of update/delete batches is an order-preserving dict overlay
        #: flushed on the next structural operation or external read —
        #: per-key ``tree.insert`` mirroring used to dominate the whole
        #: update path (~90% of wall time).
        self._mirror_pending: dict = {}

    def _sync_host_tree(self) -> None:
        """Flush the deferred update/delete mirror into the host tree.

        Dict semantics (one surviving value per key, insertion order)
        match the serial mirror exactly: within the overlay the last
        write to a key wins, and cross-key order is irrelevant to the
        resulting tree content."""
        pending = self._mirror_pending
        if not pending:
            return
        self._mirror_pending = {}
        tree = self._tree
        for k, v in pending.items():
            if v is None:
                tree.delete(k)
            else:
                tree.insert(k, v)
        if self.layout is not None:
            self.layout.mark_synced()

    # -- stage 2: map -------------------------------------------------------
    def map_to_device(self) -> None:
        """Map the populated host tree into the device buffers (stage 2),
        rebuilding the compacted root table if configured."""
        with self.tracer.span("engine.map_to_device", {"keys": len(self)}):
            self.layout = CuartLayout(
                self.tree, long_keys=self.long_keys, spare=self.spare
            )
            if self.root_table_depth is not None:
                self.root_table = RootTable(
                    self.layout, k=self.root_table_depth
                )
            else:
                self.root_table = None
        self._updater = None
        self._inserter = None
        if self.cache is not None:
            self.cache.clear()
        self._refresh_device_gauges()

    def _refresh_device_gauges(self) -> None:
        """Publish the device buffers' live populations and free-list
        depths (O(#types) — called after every write batch, so the label
        children are resolved once and cached)."""
        layout = self.layout
        if layout is None:
            return
        pop = layout.live_populations()
        cached = self._gauge_children
        if cached is None:
            cached = self._gauge_children = {
                section: {
                    code: family.labels(type=LINK_TYPE_NAMES[code])
                    for code in pop[section]
                }
                for section, family in (
                    ("nodes", self._g_nodes),
                    ("leaves", self._g_leaves),
                    ("free_nodes", self._g_free),
                    ("free_leaves", self._g_free),
                )
            }
        for section, children in cached.items():
            for code, n in pop[section].items():
                children[code].set(n)

    def _require_layout(self) -> CuartLayout:
        if self.layout is None:
            raise ReproError("call map_to_device() after populating")
        return self.layout

    # -- stage 3: queries ----------------------------------------------------
    def _lookup_dispatch(
        self, layout: CuartLayout, keys: Sequence[bytes], encoded=None
    ):
        """Run one lookup stream through the kernels; returns the raw
        value vector, host-leaf resolutions, batch count, width, logs.
        ``encoded`` passes an already-encoded ``(mat, lens)`` pair for
        the same keys to skip a second encoding pass."""
        if encoded is None:
            batches, width = self._coalesce_stream(keys)
        else:
            mat, lens = encoded
            batches = coalesce_encoded(mat, lens, self.batch_size)
            width = mat.shape[1]
        values = np.full(len(keys), np.uint64(NIL_VALUE), dtype=np.uint64)
        refs = np.full(len(keys), -1, dtype=np.int64)
        logs = []
        for batch in batches:
            res = lookup_batch(
                layout, batch.keys_mat, batch.key_lens,
                root_table=self.root_table,
            )
            logs.append(res.log)
            values[batch.origin] = res.values
            refs[batch.origin] = res.host_refs
        overrides: dict[int, Optional[int]] = {}
        if layout.host_leaves:
            # long keys stored via HOST_LINK: the CPU resolves the
            # device's host-leaf signals (rare rows only)
            for i in np.flatnonzero(refs >= 0):
                hk, hv = layout.host_leaves[int(refs[i])]
                overrides[int(i)] = hv if hk == keys[int(i)] else None
        return values, overrides, len(batches), width, logs

    def lookup(self, keys: Sequence[bytes]):
        """Batched exact lookups; returns values (``None`` for misses).

        Long keys stored via :attr:`LongKeyStrategy.HOST_LINK` come back
        after the CPU resolves the device's host-leaf signals.  With the
        result cache enabled, hot keys are served from the host LRU and
        only cold keys reach the kernels.
        """
        if not isinstance(keys, (list, tuple)):
            keys = list(keys)
        with self._timed_op("lookup", len(keys)):
            return self._lookup(keys)

    def _lookup(self, keys):
        layout = self._require_layout()
        layout.check_fresh()
        if self.cache is None:
            values, overrides, n_batches, width, logs = self._lookup_dispatch(
                layout, keys
            )
            self._report("lookup", len(keys), n_batches, logs, width)
            return LazyValues(values, overrides)
        # Hot-key cache path: hot keys repeat by definition, so dedupe
        # the stream first and probe the LRU once per *distinct* key;
        # only cold distinct keys reach the kernels.  A dict over the
        # raw bytes keys beats encoding the whole stream: bytes objects
        # cache their hash, so a repeat costs one dict probe and the
        # encoder only ever sees the cold distinct keys.
        idx_of: dict = {}
        setdef = idx_of.setdefault
        inverse = np.array(
            [setdef(k, len(idx_of)) for k in keys], dtype=np.int64
        )
        uniq_keys = list(idx_of)
        if len(keys) > len(uniq_keys):
            # repeats collapsed by the in-call dedup are cache hits: the
            # hot-key tier (this dict plus the LRU) serves them without
            # touching the device; routed through the cache's accounting
            # API so registry, stats view and BENCH JSON always agree
            self.cache.record_dedup_hits(len(keys) - len(uniq_keys))
        values = np.full(len(uniq_keys), np.uint64(NIL_VALUE), dtype=np.uint64)
        overrides: dict[int, Optional[int]] = {}
        miss_pos: list[int] = []
        get = self.cache.get
        for j, k in enumerate(uniq_keys):
            hit, val = get(k)
            if not hit:
                miss_pos.append(j)
            elif type(val) is int:
                values[j] = val
            elif val is not None:
                overrides[j] = val
        n_batches, width, logs = 0, 1, []
        if miss_pos:
            miss_keys = [uniq_keys[j] for j in miss_pos]
            mvals, movr, n_batches, width, logs = self._lookup_dispatch(
                layout, miss_keys
            )
            values[np.asarray(miss_pos)] = mvals
            put = self.cache.put
            for k, v in zip(miss_keys, LazyValues(mvals, movr)):
                put(k, v)
            for p, val in movr.items():
                overrides[miss_pos[p]] = val
        out_vals = values[inverse]
        out_ovr: dict[int, Optional[int]] = {}
        for j, val in overrides.items():
            for pos in np.flatnonzero(inverse == j):
                out_ovr[int(pos)] = val
        self._report("lookup", len(keys), n_batches, logs, width)
        return LazyValues(out_vals, out_ovr)

    def update(
        self, items: Sequence[tuple[bytes, int]]
    ) -> FoundFlags:
        """Batched value updates (section 3.4); returns found-flags.

        Within a batch, later items win conflicts on the same key (the
        paper's thread-index priority).  The host tree mirrors every
        applied value so a future re-map cannot resurrect stale data.
        """
        items = list(items) if not isinstance(items, (list, tuple)) else items
        with self._timed_op("update", len(items)):
            return self._update(items)

    def _update(self, items) -> FoundFlags:
        layout = self._require_layout()
        keys = [k for k, _ in items]
        values = np.array([v for _, v in items], dtype=np.uint64)
        batches, width = self._coalesce_stream(keys)
        engine = self._updater
        if engine is None or engine.layout is not layout:
            engine = self._updater = UpdateEngine(
                layout, root_table=self.root_table,
                hash_slots=self.hash_slots, metrics=self.metrics,
            )
        found = np.zeros(len(items), dtype=bool)
        logs = []
        for batch in batches:
            res = engine.apply(
                batch.keys_mat, batch.key_lens, values[batch.origin]
            )
            logs.append(res.log)
            found[batch.origin] = res.found
        flags = FoundFlags(found)
        # mirror into the deferred overlay (dict insertion order ==
        # thread order, so last-writer-wins is preserved); the host tree
        # itself is only touched when something actually reads it
        pending = self._mirror_pending
        cache = self.cache
        if cache is None and bool(found.all()):
            pending.update(items)
        else:
            for (k, v), hit in zip(items, found.tolist()):
                if hit:
                    pending[k] = v
                    if cache is not None:
                        cache.update_if_cached(k, v)
        layout.mark_synced()
        self._report("update", len(items), len(batches), logs, width)
        self._refresh_device_gauges()
        return flags

    def insert(
        self, items: Sequence[tuple[bytes, int]], *, remap_on_defer: bool = True
    ) -> dict:
        """Batched inserts: device-side where the buffers allow it
        (section 5.1 path via :class:`repro.cuart.insert.InsertEngine`),
        host re-map for the structurally hard remainder.

        Returns ``{"device_inserted", "updated", "deferred", "remapped"}``.
        All items land in the host tree either way, so the engine's
        content stays authoritative.
        """
        items = list(items) if not isinstance(items, (list, tuple)) else items
        with self._timed_op("insert", len(items)):
            return self._insert(items, remap_on_defer=remap_on_defer)

    def _insert(self, items, *, remap_on_defer: bool) -> dict:
        layout = self._require_layout()
        keys = [k for k, _ in items]
        values = np.array([v for _, v in items], dtype=np.uint64)
        batches, width = self._coalesce_stream(keys)
        engine = self._inserter
        if engine is None or engine.layout is not layout:
            engine = self._inserter = InsertEngine(
                layout, root_table=self.root_table,
                hash_slots=self.hash_slots, metrics=self.metrics,
            )
        logs = []
        n_ins = n_upd = n_def = 0
        for batch in batches:
            res = engine.apply(batch.keys_mat, batch.key_lens,
                               values[batch.origin])
            logs.append(res.log)
            n_ins += res.n_inserted
            n_upd += res.n_updated
            n_def += res.n_deferred
        # the host tree mirrors everything (duplicates: last one wins,
        # matching the device's thread-priority rule); reading .tree
        # flushes pending update/delete mirrors first, preserving order
        tree = self.tree
        cache = self.cache
        for k, v in items:
            tree.insert(k, v)
            if cache is not None:
                # deferred rows are invisible to the kernels until the
                # re-map, so refresh from the device on next lookup
                cache.invalidate(k)
        remapped = False
        if n_def and remap_on_defer:
            self.map_to_device()
            remapped = True
        else:
            layout.mark_synced()
        self._report("insert", len(items), max(len(logs), 1), logs, width)
        self._refresh_device_gauges()
        return {
            "device_inserted": n_ins,
            "updated": n_upd,
            "deferred": n_def,
            "remapped": remapped,
        }

    def delete(self, keys: Sequence[bytes]) -> FoundFlags:
        """Batched device-side deletions (section 3.3).

        Mirrored into the host tree so a future re-map cannot resurrect
        the deleted keys."""
        if not isinstance(keys, (list, tuple)):
            keys = list(keys)
        with self._timed_op("delete", len(keys)):
            return self._delete(keys)

    def _delete(self, keys) -> FoundFlags:
        layout = self._require_layout()
        batches, width = self._coalesce_stream(keys)
        deleted = np.zeros(len(keys), dtype=bool)
        logs = []
        if self._delete_table is None:
            self._delete_table = AtomicMaxHashTable(self.hash_slots)
        for batch in batches:
            res = delete_batch(
                layout, batch.keys_mat, batch.key_lens,
                root_table=self.root_table, hash_slots=self.hash_slots,
                table=self._delete_table, metrics=self.metrics,
            )
            logs.append(res.log)
            deleted[batch.origin] = res.deleted
        flags = FoundFlags(deleted)
        pending = self._mirror_pending
        cache = self.cache
        if cache is None and bool(deleted.all()):
            pending.update(dict.fromkeys(keys))
        else:
            for k, hit in zip(keys, deleted.tolist()):
                if hit:
                    pending[k] = None
                    if cache is not None:
                        cache.update_if_cached(k, None)
        layout.mark_synced()
        self._report("delete", len(keys), len(batches), logs, width)
        self._refresh_device_gauges()
        return flags

    # -- persistence ---------------------------------------------------------
    def save(self, path) -> None:
        """Persist the mapped device buffers (``.npz``); see
        :mod:`repro.cuart.serialize`."""
        from repro.cuart.serialize import save_layout

        save_layout(self._require_layout(), path)

    @classmethod
    def load(cls, path, **engine_kwargs) -> "CuartEngine":
        """Rebuild an engine from a saved layout.

        The device buffers load directly (no mapping pass); the
        authoritative host tree is reconstructed from the complete keys
        the leaf buffers carry.  The compacted root table is *not*
        persisted — pass ``root_table_depth`` and call
        :meth:`map_to_device` to regain one (a fresh map), or run
        without a table.
        """
        from repro.cuart.serialize import iter_layout_items, load_layout

        layout = load_layout(path)
        engine = cls(long_keys=layout.long_keys, **engine_kwargs)
        engine.populate(iter_layout_items(layout))
        layout._source = engine.tree
        layout._source_version = engine.tree.version
        engine.layout = layout
        engine.root_table = None
        return engine

    def range(self, lo: bytes, hi: bytes) -> list[tuple[bytes, int]]:
        """Inclusive range query over the ordered leaf buffers."""
        layout = self._require_layout()
        res = range_query(layout, lo, hi)
        self._report("range", max(len(res), 1), 1, [res.log], MAX_SHORT_KEY)
        return list(zip(res.keys, (int(v) for v in res.values)))

    def prefix(self, prefix: bytes) -> list[tuple[bytes, int]]:
        """Prefix query over the ordered leaf buffers."""
        layout = self._require_layout()
        res = prefix_query(layout, prefix)
        self._report("prefix", max(len(res), 1), 1, [res.log], MAX_SHORT_KEY)
        return list(zip(res.keys, (int(v) for v in res.values)))


class GrtEngine(_EngineBase):
    """The baseline: GRT single-buffer layout with synchronous dispatch."""

    def __init__(
        self,
        *,
        device: DeviceSpec = RTX3090,
        cpu: CpuSpec = WORKSTATION_CPU,
        batch_size: int = DEFAULT_BATCH_SIZE,
        host_threads: int = DEFAULT_HOST_THREADS,
    ) -> None:
        super().__init__(
            device=device, cpu=cpu, batch_size=batch_size,
            host_threads=host_threads, api="sync",
        )
        self.layout: Optional[GrtLayout] = None

    def map_to_device(self) -> None:
        self.layout = GrtLayout(self.tree)

    def _require_layout(self) -> GrtLayout:
        if self.layout is None:
            raise ReproError("call map_to_device() after populating")
        return self.layout

    def lookup(self, keys: Sequence[bytes]) -> LazyValues:
        layout = self._require_layout()
        if not isinstance(keys, (list, tuple)):
            keys = list(keys)
        batches, width = self._coalesce_stream(keys)
        values = np.full(len(keys), np.uint64(NIL_VALUE), dtype=np.uint64)
        logs = []
        for batch in batches:
            res = grt_lookup_batch(layout, batch.keys_mat, batch.key_lens)
            logs.append(res.log)
            values[batch.origin] = res.values
        self._report("lookup", len(keys), len(batches), logs, width)
        return LazyValues(values)

    def update(self, items: Sequence[tuple[bytes, int]]) -> FoundFlags:
        layout = self._require_layout()
        items = list(items) if not isinstance(items, (list, tuple)) else items
        keys = [k for k, _ in items]
        values = np.array([v for _, v in items], dtype=np.uint64)
        batches, width = self._coalesce_stream(keys)
        found = np.zeros(len(items), dtype=bool)
        logs = []
        for batch in batches:
            res = grt_update_batch(
                layout, batch.keys_mat, batch.key_lens, values[batch.origin]
            )
            logs.append(res.log)
            found[batch.origin] = res.found
        self._report("update", len(items), len(batches), logs, width)
        return FoundFlags(found)

    def range(self, lo: bytes, hi: bytes) -> list[tuple[bytes, int]]:
        """Inclusive range via the in-order buffer scan (the GRT paper's
        point-and-range evaluation)."""
        from repro.grt.range import grt_range_query

        layout = self._require_layout()
        res = grt_range_query(layout, lo, hi)
        self._report("range", max(len(res), 1), 1, [res.log], MAX_SHORT_KEY)
        return list(zip(res.keys, (int(v) for v in res.values)))
