"""End-to-end engines — the public facade of the reproduction.

A :class:`CuartEngine` (or the baseline :class:`GrtEngine`) executes the
paper's three benchmark stages (section 4.1): it populates a host ART,
maps it into the device layout, and then serves batched queries.  Every
query batch runs the *real* vectorized kernels (results are exact) while
its transaction log flows through the simulated device's cost model and
the host pipeline model, producing the end-to-end throughput estimates
reported by the benchmarks.

The serving path is array-native end to end: the whole query stream is
bulk-encoded into one key matrix, batches are views of it, results are
scattered back with single fancy-index assignments, and the Python-object
conversion of lookup results is deferred until a caller actually consumes
them.  An optional hot-key LRU result cache (:mod:`repro.host.cache`)
short-circuits repeat lookups under skewed traffic.

Every public operation returns a :class:`repro.host.results.BatchResult`
carrying per-query :class:`~repro.host.results.OpStatus` codes.  With a
:class:`~repro.host.resilience.ResiliencePolicy` configured (via
:class:`~repro.host.config.EngineConfig`), device faults injected by
:mod:`repro.gpusim.faults` are retried with backoff, recovered from
(hash-table growth, re-map, device-buffer growth) or degraded to the CPU
path — callers observe ``RETRIED`` / ``DEGRADED_CPU`` statuses instead
of catching exceptions.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from operator import itemgetter
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.art.bulk import bulk_load
from repro.art.tree import AdaptiveRadixTree
from repro.constants import (
    LEAF_TYPE_CODES,
    LINK_TYPE_NAMES,
    MAX_SHORT_KEY,
    NIL_VALUE,
    NODE_TYPE_CODES,
)
from repro.cuart.cpu_lookup import cpu_lookup_flat
from repro.cuart.delete import delete_batch
from repro.cuart.hashtable import make_conflict_table
from repro.cuart.insert import InsertEngine
from repro.cuart.layout import CuartLayout
from repro.cuart.lookup import lookup_batch
from repro.cuart.range_query import prefix_query, range_query
from repro.cuart.root_table import RootTable
from repro.cuart.update import UpdateEngine
from repro.errors import (
    DeviceFault,
    HashTableFullError,
    ReproError,
    StaleLayoutError,
)
from repro.grt.kernel import grt_lookup_batch
from repro.grt.layout import GrtLayout
from repro.grt.update import grt_update_batch
from repro.gpusim.cost_model import CostModel
from repro.gpusim.faults import FaultInjector
from repro.gpusim.memory import allocation_guard
from repro.gpusim.pcie import link_for_device
from repro.gpusim.streams import StreamOverlapStats, StreamScheduler, launch_kernel
from repro.gpusim.trace import kernel_span_args
from repro.gpusim.transactions import TransactionLog
from repro.host.batching import QueryBatch, coalesce_encoded, split_batch
from repro.host.cache import HotKeyCache
from repro.host.config import EngineConfig
from repro.host.dispatcher import DispatchConfig, pipeline_throughput
from repro.host.resilience import ResilientDispatcher
from repro.host.results import (
    BatchResult,
    OpStatus,
    status_codes,
    values_to_list,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.flightrec import NULL_FLIGHT_RECORDER
from repro.obs.tracing import NULL_TRACER
from repro.util.keys import keys_to_matrix

__all__ = [
    "BatchResult",
    "CuartEngine",
    "EngineConfig",
    "EngineReport",
    "GrtEngine",
    "OpStatus",
]


@dataclass
class EngineReport:
    """Simulated performance of the last operation."""

    operation: str
    queries: int
    batches: int
    #: average simulated kernel seconds per batch.
    kernel_s_per_batch: float
    #: simulated kernel-only throughput.
    kernel_mops: float
    #: simulated end-to-end throughput through the host pipeline.
    end_to_end_mops: float
    #: which roofline bound the kernel hit.
    binding_constraint: str
    #: which pipeline stage bound the end-to-end rate.
    pipeline_bottleneck: str
    transactions_per_query: float
    bytes_per_query: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.operation}: {self.end_to_end_mops:8.1f} MOps/s end-to-end "
            f"({self.kernel_mops:8.1f} kernel-only, "
            f"{self.transactions_per_query:.2f} tx/query, "
            f"bound by {self.binding_constraint}/{self.pipeline_bottleneck})"
        )


def _next_pow2(n: int) -> int:
    return 1 << max(int(n) - 1, 0).bit_length()


class _EngineBase:
    """Shared pipeline bookkeeping for both engines."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        *,
        api: str = "cuda",
        **kwargs,
    ) -> None:
        if config is None:
            config = EngineConfig(**kwargs)
        elif kwargs:
            raise TypeError(
                "pass either config=EngineConfig(...) or individual "
                "keyword arguments, not both"
            )
        self.config = config
        self.device = config.device
        self.cpu = config.cpu
        self.batch_size = config.batch_size
        self.host_threads = config.host_threads
        self.api = api
        self._tree = AdaptiveRadixTree()
        self.cost_model = CostModel(config.device)
        self.last_report: Optional[EngineReport] = None
        #: shared observability surface (repro.obs): pass one registry /
        #: tracer to correlate engine, executor, cache and write-engine
        #: metrics; the defaults are a private registry and the free
        #: no-op tracer.
        self.metrics = (
            config.metrics if config.metrics is not None else MetricsRegistry()
        )
        self.tracer = config.tracer if config.tracer is not None else NULL_TRACER
        #: per-op flight recorder (repro.obs.flightrec); the null
        #: singleton keeps the disabled path allocation-free.
        self.flight = (
            config.flight_recorder
            if config.flight_recorder is not None
            else NULL_FLIGHT_RECORDER
        )
        #: StreamEvents of the most recent ``submit`` call (the flight
        #: recorder maps records onto device sub-batches through this).
        self.last_events: list = []
        m = self.metrics
        self._m_queries = m.counter(
            "engine_queries_total", "queries served, by operation",
            labels=("op",),
        )
        self._m_batches = m.counter(
            "engine_batches_total", "device batches dispatched, by operation",
            labels=("op",),
        )
        self._m_op_latency = m.histogram(
            "engine_op_latency_us",
            "measured host wall-clock per query, by operation",
            labels=("op",),
        )
        self._m_kernel_us = m.histogram(
            "gpusim_kernel_us",
            "simulated kernel time per device batch, by operation",
            labels=("op",),
        )
        #: the PCIe link feeding the simulated device (always modeled;
        #: the fault injector additionally guards its transfers).
        self._pcie = link_for_device(config.device.name)
        #: pipelined dispatch clock — the async ``submit``/``drain``
        #: surface accounts every batch here.  The GRT baseline's
        #: synchronous API pins it to one stream regardless of config.
        self.streams = StreamScheduler(
            config.streams if api == "cuda" else 1, metrics=self.metrics
        )

    @contextmanager
    def _timed_op(self, op: str, n: int):
        """Span + per-query latency accounting around one public op."""
        t0 = time.perf_counter()
        with self.tracer.span(f"engine.{op}", {"n": n}):
            yield
        if n > 0:
            dt_us = (time.perf_counter() - t0) * 1e6
            self._m_op_latency.labels(op=op).observe(dt_us / n, n)

    @property
    def device_health(self):
        """Circuit-breaker state (:class:`repro.host.resilience.DeviceHealth`)
        of this engine's device, or ``None`` when no resilience policy is
        configured.  The serving front-end layers its admission control
        on this: an open circuit shrinks the effective queue bound so
        backpressure engages before degraded CPU serving piles up
        latency."""
        d = getattr(self, "_dispatcher", None)
        return d.health if d is not None else None

    @property
    def tree(self) -> AdaptiveRadixTree:
        """The authoritative host ART.  Reading it flushes any deferred
        mirror writes (see :meth:`_sync_host_tree`), so external readers
        always observe the device's state."""
        self._sync_host_tree()
        return self._tree

    @tree.setter
    def tree(self, tree: AdaptiveRadixTree) -> None:
        self._tree = tree

    def _sync_host_tree(self) -> None:
        """Hook: engines that defer host-tree mirroring flush it here."""

    def contains(self, key: bytes) -> bool:
        """Membership against the engine's authoritative content.

        Cheap by design — it must not materialize deferred state, so the
        mixed executor's store-to-load forwarding can probe it per
        conflicting op (engines with a mirror overlay consult it first).
        """
        return self._tree.search(key) is not None

    def publish_tree_stats(self):
        """Walk the host tree and publish its shape (node/leaf
        populations, prefix-length histogram, depth) into the metrics
        registry as ``art_*`` gauges.  O(tree) — call at snapshot time,
        not per batch.  Returns the :class:`~repro.art.stats.TreeStats`.
        """
        from repro.art.stats import collect_stats, publish_stats

        stats = collect_stats(self.tree.root)
        publish_stats(self.metrics, stats)
        return stats

    # -- stage 1: populate ------------------------------------------------
    def populate(self, items: Iterable[tuple[bytes, int]]) -> None:
        """Insert ``(key, value)`` pairs into the host ART (stage 1).

        Populating an empty engine takes the vectorized bottom-up
        bulk-load path (:func:`repro.art.bulk.bulk_load`, duplicate keys
        collapsed last-wins like repeated inserts); anything it cannot
        express (non-empty tree, prefix-overlapping keys, exotic inputs)
        falls back to per-item root-to-leaf inserts.
        """
        items = list(items)
        with self._timed_op("populate", len(items)):
            self._populate(items)

    def _populate(self, items: list) -> None:
        if items and len(self.tree) == 0 and getattr(self, "layout", None) is None:
            dedup = None
            try:
                # common case first: distinct keys need no dedup pass
                self.tree = bulk_load(
                    [k for k, _ in items], [v for _, v in items]
                )
                return
            except ReproError:
                # duplicate keys (collapsed last-wins, like repeated
                # inserts) — or an input only the incremental path can
                # reject with its canonical error
                try:
                    dedup = dict(items)
                except (TypeError, ValueError):
                    dedup = None
            except (TypeError, ValueError):
                pass  # malformed pairs: the insert loop raises canonically
            if dedup is not None and len(dedup) < len(items):
                try:
                    self.tree = bulk_load(list(dedup), list(dedup.values()))
                    return
                except ReproError:
                    pass  # incremental path reproduces the per-item error
        for k, v in items:
            self.tree.insert(k, v)

    def __len__(self) -> int:
        return len(self.tree)

    # -- shared batching ---------------------------------------------------
    def _coalesce_stream(self, keys: Sequence[bytes]):
        """Bulk-encode one query stream and slice it into batch views.

        This is the single shared width-scan / encode / batch block that
        every batched operation (lookup, update, insert, delete, for both
        engines) dispatches through.
        """
        with self.tracer.span("encode", {"n": len(keys)}):
            mat, lens = keys_to_matrix(keys)
            return coalesce_encoded(mat, lens, self.batch_size), mat.shape[1]

    # -- async dispatch ----------------------------------------------------
    def submit(self, kind: str, payloads: Sequence) -> BatchResult:
        """Asynchronously dispatch one coalesced op-class batch.

        The pipelined counterpart of calling :meth:`lookup` /
        :meth:`update` / :meth:`delete` / :meth:`insert` directly: the
        operation executes eagerly (results are exact and immediately
        available), while its simulated timeline — PCIe staging, kernel,
        return DMA — is accounted against the double-buffered
        :class:`~repro.gpusim.streams.StreamScheduler`, so batch *i+1*'s
        host→device staging overlaps batch *i*'s kernel.  Call
        :meth:`drain` to close the submit window and read the overlap
        statistics.  ``payloads`` are keys for ``lookup``/``delete`` and
        ``(key, value)`` pairs for ``update``/``insert``.
        """
        op = getattr(self, kind, None)
        if kind not in ("lookup", "update", "delete", "insert") or op is None:
            raise ReproError(
                f"cannot submit {kind!r} batches to {type(self).__name__}"
            )
        result = op(payloads)
        rep = self.last_report
        events: list = []
        if rep is not None and rep.operation == kind and rep.batches > 0:
            if kind in ("update", "insert"):
                width = max((len(k) for k, _ in payloads), default=1)
                width += 8  # the value word rides with each key
            else:
                width = max((len(k) for k in payloads), default=1)
            per_batch_q = max(rep.queries // rep.batches, 1)
            h2d_s, d2h_s = self._pcie.batch_transfer_times(per_batch_q, width)
            for _ in range(rep.batches):
                events.append(self.streams.submit(
                    kind, h2d_s=h2d_s, kernel_s=rep.kernel_s_per_batch,
                    d2h_s=d2h_s,
                ))
        self.last_events = events
        return result

    def drain(self) -> StreamOverlapStats:
        """Close the current submit window: wait (in simulated time) for
        every in-flight batch and return the accumulated
        :class:`~repro.gpusim.streams.StreamOverlapStats`."""
        return self.streams.drain()

    # -- reporting ---------------------------------------------------------
    def _report(
        self, operation: str, queries: int, batches: int, logs: list[TransactionLog],
        key_bytes: int,
    ) -> EngineReport:
        total_tx = sum(log.total_transactions for log in logs)
        total_bytes = sum(log.total_bytes for log in logs)
        timings = [self.cost_model.kernel_time(log) for log in logs]
        self._m_queries.labels(op=operation).inc(queries)
        self._m_batches.labels(op=operation).inc(batches)
        if timings:
            mk = self._m_kernel_us.labels(op=operation)
            for t in timings:
                mk.observe(t.total_s * 1e6)
            if self.tracer.enabled:
                # one synthetic gpu-sim span per batch, placed inside the
                # dispatching host span, so the chrome trace shows the
                # simulated kernel time beneath the host pipeline
                for log, t in zip(logs, timings):
                    self.tracer.emit_simulated(
                        f"sim:{operation}", t.total_s, kernel_span_args(log, t)
                    )
        if timings:
            kernel_s = float(np.mean([t.total_s for t in timings]))
        else:  # empty operation: charge the bare launch overhead
            kernel_s = self.device.launch_overhead_s
        per_batch_q = max(queries // max(batches, 1), 1)
        kernel_mops = per_batch_q / kernel_s / 1e6
        cfg = DispatchConfig(
            batch_size=self.batch_size,
            host_threads=self.host_threads,
            key_bytes=key_bytes,
            api=self.api,
        )
        pipe = pipeline_throughput(kernel_s, cfg, self.device, self.cpu)
        report = EngineReport(
            operation=operation,
            queries=queries,
            batches=batches,
            kernel_s_per_batch=kernel_s,
            kernel_mops=kernel_mops,
            end_to_end_mops=pipe.throughput_mops,
            binding_constraint=timings[0].binding_constraint if timings else "-",
            pipeline_bottleneck=pipe.bottleneck.name,
            transactions_per_query=total_tx / max(queries, 1),
            bytes_per_query=total_bytes / max(queries, 1),
        )
        self.last_report = report
        return report


class CuartEngine(_EngineBase):
    """The paper's system: CuART layout + kernels + async CUDA pipeline.

    >>> eng = CuartEngine()
    >>> eng.populate([(b'key-a\\x00', 1), (b'key-b\\x00', 2)])
    >>> eng.map_to_device()
    >>> eng.lookup([b'key-a\\x00', b'missing\\x00'])
    [1, None]
    """

    def __init__(
        self, config: Optional[EngineConfig] = None, **kwargs
    ) -> None:
        """Accepts either a prebuilt :class:`EngineConfig` or its fields
        as keyword arguments (see :class:`repro.host.config.EngineConfig`
        for every knob).

        ``spare`` over-allocates the device buffers so :meth:`insert`
        can place new keys without an immediate re-map (the §5.1
        device-side insert path).  ``cache_size`` > 0 enables the
        hot-key LRU result cache (:class:`repro.host.cache.HotKeyCache`).
        ``faults`` + ``resilience`` activate the fault-injection /
        retry-degrade stack (:mod:`repro.gpusim.faults`,
        :mod:`repro.host.resilience`)."""
        super().__init__(config, api="cuda", **kwargs)
        config = self.config
        self.root_table_depth = config.root_table_depth
        self.long_keys = config.long_keys
        self.hash_slots = config.hash_slots
        self.hash_table = config.hash_table
        self.spare = config.spare
        self.layout: Optional[CuartLayout] = None
        self.root_table: Optional[RootTable] = None
        self.cache: Optional[HotKeyCache] = (
            HotKeyCache(config.cache_size, metrics=self.metrics)
            if config.cache_size else None
        )
        # fault-tolerance plumbing: a deterministic injector (mechanism)
        # and a retry/degrade dispatcher (policy), both optional
        faults = config.faults
        self._injector: Optional[FaultInjector] = (
            FaultInjector(faults, metrics=self.metrics)
            if faults is not None and faults.enabled else None
        )
        self._dispatcher: Optional[ResilientDispatcher] = (
            ResilientDispatcher(
                config.resilience, metrics=self.metrics, tracer=self.tracer,
                flight=self.flight,
            )
            if config.resilience is not None else None
        )
        #: device buffers are behind the host tree (degraded writes went
        #: to the CPU path); re-map as soon as the device is healthy.
        self._needs_remap = False
        self._init_buffer_gauges()

    def _init_buffer_gauges(self) -> None:
        # device-buffer shape gauges, refreshed after every write batch
        m = self.metrics
        self._g_nodes = m.gauge(
            "device_nodes_live", "live inner-node records per type",
            labels=("type",),
        )
        self._g_leaves = m.gauge(
            "device_leaves_live", "live leaf records per type",
            labels=("type",),
        )
        self._g_free = m.gauge(
            "device_free_list_depth", "recycled slots awaiting reuse",
            labels=("type",),
        )
        self._m_growths = m.counter(
            "device_buffer_growths_total",
            "in-place device buffer growths (capacity-pressure recovery)",
            labels=("buffer",),
        )
        self._m_recoveries = m.counter(
            "resilience_recoveries_total",
            "successful recovery interventions, by kind",
            labels=("kind",),
        )
        self._gauge_children = None
        #: monotonic device-layout version: bumped every time a freshly
        #: mapped layout is adopted (map / remap / recovery).  The
        #: memtable's snapshot epoch tracks compaction installs; this
        #: tracks wholesale layout swaps — together they version every
        #: way the device state can move under a reader.
        self.layout_epoch = 0
        self._g_layout_epoch = m.gauge(
            "device_layout_epoch",
            "monotonic version of the adopted device layout",
        )
        # kernel engines are layout-bound; cached so repeated update /
        # insert / delete calls reuse one conflict hash table instead of
        # re-allocating it per call (see AtomicMaxHashTable.reset)
        self._updater: Optional[UpdateEngine] = None
        self._inserter: Optional[InsertEngine] = None
        self._delete_table = None
        #: deferred host-tree mirror: key -> value (None = delete).  The
        #: device buffers are mutated immediately; the host-tree mirror
        #: of update/delete batches is an order-preserving dict overlay
        #: flushed on the next structural operation or external read —
        #: per-key ``tree.insert`` mirroring used to dominate the whole
        #: update path (~90% of wall time).
        self._mirror_pending: dict = {}

    def _sync_host_tree(self) -> None:
        """Flush the deferred update/delete mirror into the host tree.

        Dict semantics (one surviving value per key, insertion order)
        match the serial mirror exactly: within the overlay the last
        write to a key wins, and cross-key order is irrelevant to the
        resulting tree content."""
        pending = self._mirror_pending
        if not pending:
            return
        self._mirror_pending = {}
        tree = self._tree
        for k, v in pending.items():
            if v is None:
                tree.delete(k)
            else:
                tree.insert(k, v)
        if self.layout is not None:
            self.layout.mark_synced()

    def contains(self, key: bytes) -> bool:
        """Membership without flushing the deferred mirror: the overlay
        is consulted first (a pending ``None`` is a deletion), then the
        raw host tree."""
        pending = self._mirror_pending
        if key in pending:
            return pending[key] is not None
        return self._tree.search(key) is not None

    # -- stage 2: map -------------------------------------------------------
    def _map_once(self) -> CuartLayout:
        """One mapping pass: build the device layout from the host tree
        (flushing the mirror first) and charge its allocation against
        the fault injector."""
        layout = CuartLayout(
            self.tree, long_keys=self.long_keys, spare=self.spare
        )
        allocation_guard(
            layout.device_bytes(), "mapped layout",
            injector=self._injector, op="map",
        )
        return layout

    def _adopt_layout(self, layout: CuartLayout) -> None:
        self.layout = layout
        if self.root_table_depth is not None:
            self.root_table = RootTable(layout, k=self.root_table_depth)
        else:
            self.root_table = None
        self._updater = None
        self._inserter = None
        self._needs_remap = False
        self.layout_epoch += 1
        self._g_layout_epoch.set(self.layout_epoch)
        if self.cache is not None:
            self.cache.clear()
        self._refresh_device_gauges()

    def map_to_device(self) -> None:
        """Map the populated host tree into the device buffers (stage 2),
        rebuilding the compacted root table if configured.

        With resilience configured, transient allocation faults are
        retried; mapping never degrades (there is no CPU fallback for
        not having device buffers)."""
        with self.tracer.span("engine.map_to_device", {"keys": len(self)}):
            if self._dispatcher is not None:
                layout, _ = self._dispatcher.run(
                    "map", self._map_once, degrade=False
                )
            else:
                layout = self._map_once()
            self._adopt_layout(layout)

    def _refresh_device_gauges(self) -> None:
        """Publish the device buffers' live populations and free-list
        depths (O(#types) — called after every write batch, so the label
        children are resolved once and cached)."""
        layout = self.layout
        if layout is None:
            return
        pop = layout.live_populations()
        cached = self._gauge_children
        if cached is None:
            cached = self._gauge_children = {
                section: {
                    code: family.labels(type=LINK_TYPE_NAMES[code])
                    for code in pop[section]
                }
                for section, family in (
                    ("nodes", self._g_nodes),
                    ("leaves", self._g_leaves),
                    ("free_nodes", self._g_free),
                    ("free_leaves", self._g_free),
                )
            }
        for section, children in cached.items():
            for code, n in pop[section].items():
                children[code].set(n)

    def _require_layout(self) -> CuartLayout:
        if self.layout is None:
            raise ReproError("call map_to_device() after populating")
        if (
            self._needs_remap
            and self._dispatcher is not None
            and self._dispatcher.health.healthy
        ):
            # degraded writes left the device behind; catch it up now
            # that the device is (believed) healthy again
            self.map_to_device()
        return self.layout

    # -- resilience plumbing -------------------------------------------------
    def _recover(self, exc: ReproError) -> bool:
        """Recovery callback for non-transient dispatch errors: re-map on
        a stale layout, grow the conflict hash table on genuine capacity
        pressure.  Returns True when the dispatch should be repeated."""
        try:
            if isinstance(exc, StaleLayoutError):
                self._adopt_layout(self._map_once())
                self._m_recoveries.labels(kind="remap").inc()
                return True
            if isinstance(exc, HashTableFullError):
                need = int(exc.context.get("occupied") or 0) + int(
                    exc.context.get("requested") or 0
                )
                new_slots = max(self.hash_slots * 2, _next_pow2(need))
                if new_slots > self._dispatcher.policy.max_hash_slots:
                    return False
                self.hash_slots = new_slots
                self._updater = None
                self._inserter = None
                self._delete_table = None
                self._m_growths.labels(buffer="hash-table").inc()
                self._m_recoveries.labels(kind="hash-grow").inc()
                return True
        except DeviceFault:
            return False  # the recovery itself hit a fault: give up
        return False

    def _probe_device(self, op: str) -> bool:
        """While the circuit is open, periodically probe the device; on
        success, re-map if needed and close the circuit."""
        disp = self._dispatcher
        if not disp.due_probe():
            return False
        disp.record_probe()
        try:
            launch_kernel("probe", 1, injector=self._injector)
            if self._needs_remap:
                self._adopt_layout(self._map_once())
        except DeviceFault:
            return False
        disp.health.recover()
        self._m_recoveries.labels(kind="probe").inc()
        return True

    def _device_batch(self, op: str, call, *, n: int, h2d_bytes: int):
        """Dispatch one guarded device batch under the resilience policy.

        Returns ``(kernel_result, attempts)``; ``kernel_result`` is
        ``None`` when the batch must be served by the CPU path (retries
        exhausted, or circuit open and the probe failed).  Without a
        resilience policy, faults propagate to the caller.
        """
        injector = self._injector
        disp = self._dispatcher
        if disp is None and injector is None:
            # fast path: no faults to guard against, no policy to consult
            return call(), 1

        def guarded():
            # both PCIe guards fire before the kernel (the return DMA
            # descriptor is reserved at launch) so a fault always
            # precedes any device mutation — a retry replays the
            # identical batch against unchanged state, which keeps
            # non-idempotent kernels (delete, insert) exactly-once
            if injector is not None:
                self._pcie.transfer(
                    h2d_bytes, direction="h2d", injector=injector, op=op
                )
                self._pcie.transfer(
                    8 * n, direction="d2h", injector=injector, op=op
                )
            return call()

        if disp is None:
            return guarded(), 1
        if not disp.health.healthy and not self._probe_device(op):
            return None, 0
        return disp.run(op, guarded, recover=self._recover)

    # -- degraded (CPU) serving ----------------------------------------------
    def _batch_key(self, batch: QueryBatch, i: int) -> bytes:
        return batch.keys_mat[i, : int(batch.key_lens[i])].tobytes()

    def _cpu_lookup_rows(self, batch: QueryBatch):
        """Serve one lookup batch on the CPU: through the flat layout
        when it is content-fresh (:func:`cpu_lookup_flat`), else against
        the authoritative host tree.  Returns ``(values, overrides)``
        with batch-local override positions."""
        layout = self.layout
        if layout is not None and not self._needs_remap:
            try:
                layout.check_fresh()
            except StaleLayoutError:
                pass
            else:
                res = cpu_lookup_flat(layout, batch.keys_mat, batch.key_lens)
                overrides: dict[int, Optional[int]] = {}
                if layout.host_leaves:
                    for i in np.flatnonzero(res.host_refs >= 0):
                        hk, hv = layout.host_leaves[int(res.host_refs[i])]
                        key = self._batch_key(batch, int(i))
                        overrides[int(i)] = hv if hk == key else None
                return res.values, overrides
        tree = self.tree
        values = np.full(batch.size, np.uint64(NIL_VALUE), dtype=np.uint64)
        overrides = {}
        for i in range(batch.size):
            v = tree.search(self._batch_key(batch, i))
            if v is not None:
                overrides[i] = v
        return values, overrides

    def _degraded_update_rows(self, batch: QueryBatch, values, found) -> None:
        """Apply one update batch directly to the host tree (CPU path).

        Reading ``self.tree`` flushes the pending mirror first, so
        earlier device writes land before these rows.  The device is now
        behind: flag the re-map."""
        tree = self.tree
        cache = self.cache
        for i in range(batch.size):
            key = self._batch_key(batch, i)
            pos = int(batch.origin[i])
            if tree.search(key) is not None:
                val = int(values[pos])
                tree.insert(key, val)
                found[pos] = True
                if cache is not None:
                    cache.update_if_cached(key, val)
        self._needs_remap = True

    def _degraded_delete_rows(self, batch: QueryBatch, deleted) -> None:
        """Apply one delete batch directly to the host tree (CPU path)."""
        tree = self.tree
        cache = self.cache
        for i in range(batch.size):
            key = self._batch_key(batch, i)
            if tree.delete(key):
                deleted[int(batch.origin[i])] = True
                if cache is not None:
                    cache.update_if_cached(key, None)
        self._needs_remap = True

    # -- stage 3: queries ----------------------------------------------------
    def _lookup_dispatch(self, keys: Sequence[bytes], encoded=None):
        """Run one lookup stream through the kernels (CPU-serving the
        batches the resilience layer degrades); returns the raw value
        vector, host-leaf resolutions, device batch count, width, logs
        and the per-query attempt/degraded vectors.  ``encoded`` passes
        an already-encoded ``(mat, lens)`` pair for the same keys to
        skip a second encoding pass."""
        if encoded is None:
            batches, width = self._coalesce_stream(keys)
        else:
            mat, lens = encoded
            batches = coalesce_encoded(mat, lens, self.batch_size)
            width = mat.shape[1]
        values = np.full(len(keys), np.uint64(NIL_VALUE), dtype=np.uint64)
        refs = np.full(len(keys), -1, dtype=np.int64)
        # attempt/degraded tracking only exists under a resilience policy;
        # the fast path returns None vectors (BatchResult defaults apply)
        track = self._dispatcher is not None
        attempts = np.ones(len(keys), dtype=np.int32) if track else None
        degraded = np.zeros(len(keys), dtype=bool) if track else None
        overrides: dict[int, Optional[int]] = {}
        logs = []
        n_dev_batches = 0
        for batch in batches:
            def call(b=batch):
                # resolve layout / root table at call time: a mid-stream
                # recovery re-map must be visible to the retry
                return lookup_batch(
                    self.layout, b.keys_mat, b.key_lens,
                    root_table=self.root_table, injector=self._injector,
                )
            res, att = self._device_batch(
                "lookup", call, n=batch.size, h2d_bytes=batch.keys_mat.nbytes
            )
            if res is None:
                self._dispatcher.note_degraded("lookup")
                vals, ovr = self._cpu_lookup_rows(batch)
                values[batch.origin] = vals
                for p, v in ovr.items():
                    overrides[int(batch.origin[p])] = v
                degraded[batch.origin] = True
                attempts[batch.origin] = att
                continue
            logs.append(res.log)
            n_dev_batches += 1
            values[batch.origin] = res.values
            refs[batch.origin] = res.host_refs
            if track:
                attempts[batch.origin] = att
        layout = self.layout
        if layout.host_leaves:
            # long keys stored via HOST_LINK: the CPU resolves the
            # device's host-leaf signals (rare rows only)
            for i in np.flatnonzero(refs >= 0):
                hk, hv = layout.host_leaves[int(refs[i])]
                overrides[int(i)] = hv if hk == keys[int(i)] else None
        return values, overrides, n_dev_batches, width, logs, attempts, degraded

    def lookup(self, keys: Sequence[bytes]) -> BatchResult:
        """Batched exact lookups; the result lists values (``None`` for
        misses) and carries per-query :class:`OpStatus` codes.

        Long keys stored via :attr:`LongKeyStrategy.HOST_LINK` come back
        after the CPU resolves the device's host-leaf signals.  With the
        result cache enabled, hot keys are served from the host LRU and
        only cold keys reach the kernels.
        """
        if not isinstance(keys, (list, tuple)):
            keys = list(keys)
        with self._timed_op("lookup", len(keys)):
            return self._lookup(keys)

    @staticmethod
    def _lookup_result(values, overrides, attempts, degraded) -> BatchResult:
        found = values != np.uint64(NIL_VALUE)
        for pos, val in overrides.items():
            found[pos] = val is not None
        if attempts is None and degraded is None:
            # fast path: nothing retried or degraded, status is lazy
            return BatchResult(
                "lookup", found=found, values=values, overrides=overrides,
            )
        status = status_codes(found, attempts=attempts, degraded=degraded)
        return BatchResult(
            "lookup", found=found, values=values, overrides=overrides,
            status=status, attempts=attempts,
        )

    def _lookup(self, keys) -> BatchResult:
        layout = self._require_layout()
        if self._dispatcher is None:
            # no resilience: surface staleness immediately (the kernels
            # check too; this keeps the error at the call site).  With a
            # dispatcher the kernel-level check routes through recovery.
            layout.check_fresh()
        if self.cache is None:
            values, overrides, n_batches, width, logs, attempts, degraded = (
                self._lookup_dispatch(keys)
            )
            self._report("lookup", len(keys), n_batches, logs, width)
            return self._lookup_result(values, overrides, attempts, degraded)
        # Hot-key cache path: hot keys repeat by definition, so dedupe
        # the stream first and probe the LRU once per *distinct* key;
        # only cold distinct keys reach the kernels.  A dict over the
        # raw bytes keys beats encoding the whole stream: bytes objects
        # cache their hash, so a repeat costs one dict probe and the
        # encoder only ever sees the cold distinct keys.
        idx_of: dict = {}
        setdef = idx_of.setdefault
        inverse = np.array(
            [setdef(k, len(idx_of)) for k in keys], dtype=np.int64
        )
        uniq_keys = list(idx_of)
        if len(keys) > len(uniq_keys):
            # repeats collapsed by the in-call dedup are cache hits: the
            # hot-key tier (this dict plus the LRU) serves them without
            # touching the device; routed through the cache's accounting
            # API so registry, stats view and BENCH JSON always agree
            self.cache.record_dedup_hits(len(keys) - len(uniq_keys))
        values = np.full(len(uniq_keys), np.uint64(NIL_VALUE), dtype=np.uint64)
        track = self._dispatcher is not None
        attempts_u = np.ones(len(uniq_keys), dtype=np.int32) if track else None
        degraded_u = np.zeros(len(uniq_keys), dtype=bool) if track else None
        overrides: dict[int, Optional[int]] = {}
        miss_pos: list[int] = []
        get = self.cache.get
        for j, k in enumerate(uniq_keys):
            hit, val = get(k)
            if not hit:
                miss_pos.append(j)
            elif type(val) is int:
                values[j] = val
            elif val is not None:
                overrides[j] = val
        n_batches, width, logs = 0, 1, []
        if miss_pos:
            miss_keys = [uniq_keys[j] for j in miss_pos]
            mvals, movr, n_batches, width, logs, m_att, m_deg = (
                self._lookup_dispatch(miss_keys)
            )
            pos_arr = np.asarray(miss_pos)
            values[pos_arr] = mvals
            if track:
                attempts_u[pos_arr] = m_att
                degraded_u[pos_arr] = m_deg
            put = self.cache.put
            for k, v in zip(miss_keys, values_to_list(mvals, movr)):
                put(k, v)
            for p, val in movr.items():
                overrides[miss_pos[p]] = val
        out_vals = values[inverse]
        out_ovr: dict[int, Optional[int]] = {}
        for j, val in overrides.items():
            for pos in np.flatnonzero(inverse == j):
                out_ovr[int(pos)] = val
        self._report("lookup", len(keys), n_batches, logs, width)
        return self._lookup_result(
            out_vals, out_ovr,
            attempts_u[inverse] if track else None,
            degraded_u[inverse] if track else None,
        )

    def _get_updater(self) -> UpdateEngine:
        """The layout-bound update engine, rebuilt after a re-map or a
        hash-table growth (both null the cached instance)."""
        engine = self._updater
        layout = self.layout
        if engine is None or engine.layout is not layout:
            engine = self._updater = UpdateEngine(
                layout, root_table=self.root_table,
                hash_slots=self.hash_slots, hash_table=self.hash_table,
                metrics=self.metrics, injector=self._injector,
            )
        return engine

    def _get_inserter(self) -> InsertEngine:
        engine = self._inserter
        layout = self.layout
        if engine is None or engine.layout is not layout:
            engine = self._inserter = InsertEngine(
                layout, root_table=self.root_table,
                hash_slots=self.hash_slots, hash_table=self.hash_table,
                metrics=self.metrics, injector=self._injector,
            )
        return engine

    def update(self, items: Sequence[tuple[bytes, int]]) -> BatchResult:
        """Batched value updates (section 3.4); the result lists found
        flags and carries per-query :class:`OpStatus` codes.

        Within a batch, later items win conflicts on the same key (the
        paper's thread-index priority).  The host tree mirrors every
        applied value so a future re-map cannot resurrect stale data.
        """
        items = list(items) if not isinstance(items, (list, tuple)) else items
        with self._timed_op("update", len(items)):
            return self._update(items)

    def _update(self, items) -> BatchResult:
        self._require_layout()
        keys = list(map(itemgetter(0), items))
        values = np.fromiter(
            map(itemgetter(1), items), dtype=np.uint64, count=len(items)
        )
        batches, width = self._coalesce_stream(keys)
        found = np.zeros(len(items), dtype=bool)
        track = self._dispatcher is not None
        attempts = np.ones(len(items), dtype=np.int32) if track else None
        degraded = np.zeros(len(items), dtype=bool) if track else None
        logs = []
        n_dev_batches = 0
        queue = deque(batches)
        while queue:
            batch = queue.popleft()
            def call(b=batch):
                return self._get_updater().apply(
                    b.keys_mat, b.key_lens, values[b.origin]
                )
            try:
                res, att = self._device_batch(
                    "update", call, n=batch.size,
                    h2d_bytes=batch.keys_mat.nbytes + 8 * batch.size,
                )
            except HashTableFullError:
                # genuine capacity pressure the growth recovery could not
                # absorb (cap reached): halve the dispatch so fewer
                # distinct keys contend for the table
                if self._dispatcher is None:
                    raise
                if batch.size > 1:
                    queue.extendleft(reversed(split_batch(batch)))
                    continue
                if not self._dispatcher.policy.allow_degrade:
                    raise
                res, att = None, 0
            if res is None:
                self._dispatcher.note_degraded("update")
                self._degraded_update_rows(batch, values, found)
                degraded[batch.origin] = True
                attempts[batch.origin] = att
                continue
            logs.append(res.log)
            n_dev_batches += 1
            found[batch.origin] = res.found
            if track:
                attempts[batch.origin] = att
        any_degraded = track and bool(degraded.any())
        # mirror into the deferred overlay (dict insertion order ==
        # thread order, so last-writer-wins is preserved); the host tree
        # itself is only touched when something actually reads it.
        # Degraded rows already hit the tree directly and must not be
        # re-applied through the overlay.
        pending = self._mirror_pending
        cache = self.cache
        if cache is None and not any_degraded and bool(found.all()):
            pending.update(items)
        else:
            deg_list = degraded.tolist() if track else ((False,) * len(items))
            for pos, ((k, v), hit) in enumerate(zip(items, found.tolist())):
                if hit and not deg_list[pos]:
                    pending[k] = v
                    if cache is not None:
                        cache.update_if_cached(k, v)
        if not any_degraded:
            self.layout.mark_synced()
        self._report("update", len(items), n_dev_batches, logs, width)
        self._refresh_device_gauges()
        status = (
            status_codes(found, attempts=attempts, degraded=degraded)
            if track else None
        )
        return BatchResult(
            "update", found=found, status=status, attempts=attempts
        )

    def insert(
        self, items: Sequence[tuple[bytes, int]], *, remap_on_defer: bool = True
    ) -> BatchResult:
        """Batched inserts: device-side where the buffers allow it
        (section 5.1 path via :class:`repro.cuart.insert.InsertEngine`),
        host re-map for the structurally hard remainder.

        The result's :attr:`BatchResult.summary` carries
        ``{"device_inserted", "updated", "deferred", "remapped"}``.
        With resilience configured, capacity-exhausted buffers are grown
        in place and only the deferred rows are re-dispatched before
        falling back to a re-map.  All items land in the host tree
        either way, so the engine's content stays authoritative.
        """
        items = list(items) if not isinstance(items, (list, tuple)) else items
        with self._timed_op("insert", len(items)):
            return self._insert(items, remap_on_defer=remap_on_defer)

    def _grow_for_pressure(self) -> bool:
        """Capacity-pressure recovery: grow every exhausted device
        buffer in place (§5.1 "sophisticated buffer management").
        Returns True when at least one buffer grew."""
        layout = self.layout
        disp = self._dispatcher
        grew = False
        exhausted = [
            (code, True) for code in LEAF_TYPE_CODES
            if layout.spare_leaf_slots(code) == 0
        ] + [
            (code, False) for code in NODE_TYPE_CODES
            if layout.spare_node_slots(code) == 0
        ]
        for code, is_leaf in exhausted:
            name = LINK_TYPE_NAMES[code]

            def grow(code=code, is_leaf=is_leaf, name=name):
                extra = max(layout.node_count(code), 8)
                allocation_guard(
                    extra * layout.node_record_bytes[code], f"{name} buffer",
                    injector=self._injector, op="insert",
                )
                if is_leaf:
                    return layout.grow_leaf_buffer(code)
                return layout.grow_node_buffer(code)

            added, _ = disp.run("grow", grow)
            if added is not None:
                grew = True
                self._m_growths.labels(buffer=name).inc()
                self._m_recoveries.labels(kind="buffer-grow").inc()
        return grew

    def _insert(self, items, *, remap_on_defer: bool) -> BatchResult:
        self._require_layout()
        keys = list(map(itemgetter(0), items))
        values = np.fromiter(
            map(itemgetter(1), items), dtype=np.uint64, count=len(items)
        )
        batches, width = self._coalesce_stream(keys)
        logs = []
        n_ins = n_upd = 0
        n_dev_batches = 0
        disp = self._dispatcher
        track = disp is not None
        attempts = np.ones(len(items), dtype=np.int32) if track else None
        degraded = np.zeros(len(items), dtype=bool) if track else None
        def_mask = np.zeros(len(items), dtype=bool)
        for batch in batches:
            def call(b=batch):
                return self._get_inserter().apply(
                    b.keys_mat, b.key_lens, values[b.origin]
                )
            try:
                res, att = self._device_batch(
                    "insert", call, n=batch.size,
                    h2d_bytes=batch.keys_mat.nbytes + 8 * batch.size,
                )
            except HashTableFullError:
                if disp is None or not disp.policy.allow_degrade:
                    raise
                res, att = None, 0
            if track:
                attempts[batch.origin] = att
            if res is None:
                # the host tree covers the content below; the device
                # just misses these keys until the re-map
                disp.note_degraded("insert")
                degraded[batch.origin] = True
                def_mask[batch.origin] = True
                continue
            logs.append(res.log)
            n_dev_batches += 1
            n_ins += res.n_inserted
            n_upd += res.n_updated
            def_mask[batch.origin] = res.deferred
            if res.n_deferred and disp is not None and self._grow_for_pressure():
                # partial replay: only the deferred rows re-dispatch
                # against the grown buffers (dedup winners et al. stay)
                rows = np.flatnonzero(res.deferred)
                sub = QueryBatch(
                    keys_mat=batch.keys_mat[rows],
                    key_lens=batch.key_lens[rows],
                    origin=batch.origin[rows],
                )
                def replay(b=sub):
                    return self._get_inserter().apply(
                        b.keys_mat, b.key_lens, values[b.origin]
                    )
                try:
                    res2, att2 = self._device_batch(
                        "insert", replay, n=sub.size,
                        h2d_bytes=sub.keys_mat.nbytes + 8 * sub.size,
                    )
                except HashTableFullError:
                    res2, att2 = None, 0
                if res2 is None:
                    disp.note_degraded("insert")
                    degraded[sub.origin] = True
                else:
                    logs.append(res2.log)
                    n_dev_batches += 1
                    n_ins += res2.n_inserted
                    n_upd += res2.n_updated
                    attempts[sub.origin] += att2
                    def_mask[sub.origin] = res2.deferred
        # the host tree mirrors everything (duplicates: last one wins,
        # matching the device's thread-priority rule); reading .tree
        # flushes pending update/delete mirrors first, preserving order
        tree = self.tree
        cache = self.cache
        for k, v in items:
            tree.insert(k, v)
            if cache is not None:
                # deferred rows are invisible to the kernels until the
                # re-map, so refresh from the device on next lookup
                cache.invalidate(k)
        n_def = int(def_mask.sum())
        remapped = False
        if n_def and remap_on_defer:
            if disp is not None and not disp.health.healthy:
                self._needs_remap = True  # catch up once the device heals
            else:
                self.map_to_device()
                remapped = True
        else:
            self.layout.mark_synced()
            if track and bool(degraded.any()):
                self._needs_remap = True
        self._report("insert", len(items), max(n_dev_batches, 1), logs, width)
        self._refresh_device_gauges()
        found = np.ones(len(items), dtype=bool)
        status = (
            status_codes(found, attempts=attempts, degraded=degraded)
            if track else None
        )
        return BatchResult(
            "insert", found=found, status=status, attempts=attempts,
            summary={
                "device_inserted": n_ins,
                "updated": n_upd,
                "deferred": n_def,
                "remapped": remapped,
            },
        )

    def delete(self, keys: Sequence[bytes]) -> BatchResult:
        """Batched device-side deletions (section 3.3); the result lists
        deleted flags and carries per-query :class:`OpStatus` codes.

        Mirrored into the host tree so a future re-map cannot resurrect
        the deleted keys."""
        if not isinstance(keys, (list, tuple)):
            keys = list(keys)
        with self._timed_op("delete", len(keys)):
            return self._delete(keys)

    def _delete(self, keys) -> BatchResult:
        self._require_layout()
        batches, width = self._coalesce_stream(keys)
        deleted = np.zeros(len(keys), dtype=bool)
        track = self._dispatcher is not None
        attempts = np.ones(len(keys), dtype=np.int32) if track else None
        degraded = np.zeros(len(keys), dtype=bool) if track else None
        logs = []
        n_dev_batches = 0
        queue = deque(batches)
        while queue:
            batch = queue.popleft()
            def call(b=batch):
                if self._delete_table is None:
                    # share the updater's conflict table when sizes match:
                    # batches run serially and both sides reset between
                    # uses, so one allocation serves every write class
                    shared = getattr(self._updater, "_table", None)
                    if (shared is not None
                            and shared.slots == self.hash_slots
                            and shared.variant == self.hash_table):
                        self._delete_table = shared
                    else:
                        self._delete_table = make_conflict_table(
                            self.hash_slots, variant=self.hash_table
                        )
                return delete_batch(
                    self.layout, b.keys_mat, b.key_lens,
                    root_table=self.root_table, hash_slots=self.hash_slots,
                    hash_table=self.hash_table, table=self._delete_table,
                    metrics=self.metrics, injector=self._injector,
                )
            try:
                res, att = self._device_batch(
                    "delete", call, n=batch.size,
                    h2d_bytes=batch.keys_mat.nbytes,
                )
            except HashTableFullError:
                if self._dispatcher is None:
                    raise
                if batch.size > 1:
                    queue.extendleft(reversed(split_batch(batch)))
                    continue
                if not self._dispatcher.policy.allow_degrade:
                    raise
                res, att = None, 0
            if res is None:
                self._dispatcher.note_degraded("delete")
                self._degraded_delete_rows(batch, deleted)
                degraded[batch.origin] = True
                attempts[batch.origin] = att
                continue
            logs.append(res.log)
            n_dev_batches += 1
            deleted[batch.origin] = res.deleted
            if track:
                attempts[batch.origin] = att
        any_degraded = track and bool(degraded.any())
        pending = self._mirror_pending
        cache = self.cache
        if cache is None and not any_degraded and bool(deleted.all()):
            pending.update(dict.fromkeys(keys))
        else:
            deg_list = degraded.tolist() if track else ((False,) * len(keys))
            for pos, (k, hit) in enumerate(zip(keys, deleted.tolist())):
                if hit and not deg_list[pos]:
                    pending[k] = None
                    if cache is not None:
                        cache.update_if_cached(k, None)
        if not any_degraded:
            self.layout.mark_synced()
        self._report("delete", len(keys), n_dev_batches, logs, width)
        self._refresh_device_gauges()
        status = (
            status_codes(deleted, attempts=attempts, degraded=degraded)
            if track else None
        )
        return BatchResult(
            "delete", found=deleted, status=status, attempts=attempts
        )

    # -- persistence ---------------------------------------------------------
    def save(self, path) -> None:
        """Persist the mapped device buffers (``.npz``); see
        :mod:`repro.cuart.serialize`."""
        from repro.cuart.serialize import save_layout

        save_layout(self._require_layout(), path)

    @classmethod
    def load(cls, path, **engine_kwargs) -> "CuartEngine":
        """Rebuild an engine from a saved layout.

        The device buffers load directly (no mapping pass); the
        authoritative host tree is reconstructed from the complete keys
        the leaf buffers carry.  The compacted root table is *not*
        persisted — pass ``root_table_depth`` and call
        :meth:`map_to_device` to regain one (a fresh map), or run
        without a table.
        """
        from repro.cuart.serialize import iter_layout_items, load_layout

        layout = load_layout(path)
        engine = cls(long_keys=layout.long_keys, **engine_kwargs)
        engine.populate(iter_layout_items(layout))
        layout._source = engine.tree
        layout._source_version = engine.tree.version
        engine.layout = layout
        engine.root_table = None
        return engine

    def range(self, lo: bytes, hi: bytes) -> list[tuple[bytes, int]]:
        """Inclusive range query over the ordered leaf buffers."""
        layout = self._require_layout()
        res = range_query(layout, lo, hi)
        self._report("range", max(len(res), 1), 1, [res.log], MAX_SHORT_KEY)
        return list(zip(res.keys, (int(v) for v in res.values)))

    def prefix(self, prefix: bytes) -> list[tuple[bytes, int]]:
        """Prefix query over the ordered leaf buffers."""
        layout = self._require_layout()
        res = prefix_query(layout, prefix)
        self._report("prefix", max(len(res), 1), 1, [res.log], MAX_SHORT_KEY)
        return list(zip(res.keys, (int(v) for v in res.values)))


class GrtEngine(_EngineBase):
    """The baseline: GRT single-buffer layout with synchronous dispatch.

    Shares :class:`EngineConfig` with :class:`CuartEngine`; the
    CuART-only knobs (root table, long keys, spare, cache, faults,
    resilience) are ignored here."""

    def __init__(
        self, config: Optional[EngineConfig] = None, **kwargs
    ) -> None:
        super().__init__(config, api="sync", **kwargs)
        self.layout: Optional[GrtLayout] = None

    def map_to_device(self) -> None:
        self.layout = GrtLayout(self.tree)

    def _require_layout(self) -> GrtLayout:
        if self.layout is None:
            raise ReproError("call map_to_device() after populating")
        return self.layout

    def lookup(self, keys: Sequence[bytes]) -> BatchResult:
        layout = self._require_layout()
        if not isinstance(keys, (list, tuple)):
            keys = list(keys)
        batches, width = self._coalesce_stream(keys)
        values = np.full(len(keys), np.uint64(NIL_VALUE), dtype=np.uint64)
        logs = []
        for batch in batches:
            res = grt_lookup_batch(layout, batch.keys_mat, batch.key_lens)
            logs.append(res.log)
            values[batch.origin] = res.values
        self._report("lookup", len(keys), len(batches), logs, width)
        found = values != np.uint64(NIL_VALUE)
        return BatchResult("lookup", found=found, values=values)

    def update(self, items: Sequence[tuple[bytes, int]]) -> BatchResult:
        layout = self._require_layout()
        items = list(items) if not isinstance(items, (list, tuple)) else items
        keys = list(map(itemgetter(0), items))
        values = np.fromiter(
            map(itemgetter(1), items), dtype=np.uint64, count=len(items)
        )
        batches, width = self._coalesce_stream(keys)
        found = np.zeros(len(items), dtype=bool)
        logs = []
        for batch in batches:
            res = grt_update_batch(
                layout, batch.keys_mat, batch.key_lens, values[batch.origin]
            )
            logs.append(res.log)
            found[batch.origin] = res.found
        self._report("update", len(items), len(batches), logs, width)
        return BatchResult("update", found=found)

    def range(self, lo: bytes, hi: bytes) -> list[tuple[bytes, int]]:
        """Inclusive range via the in-order buffer scan (the GRT paper's
        point-and-range evaluation)."""
        from repro.grt.range import grt_range_query

        layout = self._require_layout()
        res = grt_range_query(layout, lo, hi)
        self._report("range", max(len(res), 1), 1, [res.log], MAX_SHORT_KEY)
        return list(zip(res.keys, (int(v) for v in res.values)))
