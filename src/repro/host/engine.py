"""End-to-end engines — the public facade of the reproduction.

A :class:`CuartEngine` (or the baseline :class:`GrtEngine`) executes the
paper's three benchmark stages (section 4.1): it populates a host ART,
maps it into the device layout, and then serves batched queries.  Every
query batch runs the *real* vectorized kernels (results are exact) while
its transaction log flows through the simulated device's cost model and
the host pipeline model, producing the end-to-end throughput estimates
reported by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.art.tree import AdaptiveRadixTree
from repro.constants import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_HOST_THREADS,
    DEFAULT_UPDATE_HASH_SLOTS,
    MAX_SHORT_KEY,
    NIL_VALUE,
)
from repro.cuart.delete import delete_batch
from repro.cuart.insert import InsertEngine
from repro.cuart.layout import CuartLayout, LongKeyStrategy
from repro.cuart.lookup import lookup_batch
from repro.cuart.range_query import prefix_query, range_query
from repro.cuart.root_table import RootTable
from repro.cuart.update import UpdateEngine
from repro.errors import ReproError
from repro.grt.kernel import grt_lookup_batch
from repro.grt.layout import GrtLayout
from repro.grt.update import grt_update_batch
from repro.gpusim.cost_model import CostModel
from repro.gpusim.devices import (
    CpuSpec,
    DeviceSpec,
    RTX3090,
    WORKSTATION_CPU,
)
from repro.gpusim.transactions import TransactionLog
from repro.host.batching import coalesce
from repro.host.dispatcher import DispatchConfig, pipeline_throughput


@dataclass
class EngineReport:
    """Simulated performance of the last operation."""

    operation: str
    queries: int
    batches: int
    #: average simulated kernel seconds per batch.
    kernel_s_per_batch: float
    #: simulated kernel-only throughput.
    kernel_mops: float
    #: simulated end-to-end throughput through the host pipeline.
    end_to_end_mops: float
    #: which roofline bound the kernel hit.
    binding_constraint: str
    #: which pipeline stage bound the end-to-end rate.
    pipeline_bottleneck: str
    transactions_per_query: float
    bytes_per_query: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.operation}: {self.end_to_end_mops:8.1f} MOps/s end-to-end "
            f"({self.kernel_mops:8.1f} kernel-only, "
            f"{self.transactions_per_query:.2f} tx/query, "
            f"bound by {self.binding_constraint}/{self.pipeline_bottleneck})"
        )


class _EngineBase:
    """Shared pipeline bookkeeping for both engines."""

    def __init__(
        self,
        *,
        device: DeviceSpec = RTX3090,
        cpu: CpuSpec = WORKSTATION_CPU,
        batch_size: int = DEFAULT_BATCH_SIZE,
        host_threads: int = DEFAULT_HOST_THREADS,
        api: str = "cuda",
    ) -> None:
        self.device = device
        self.cpu = cpu
        self.batch_size = batch_size
        self.host_threads = host_threads
        self.api = api
        self.tree = AdaptiveRadixTree()
        self.cost_model = CostModel(device)
        self.last_report: Optional[EngineReport] = None

    # -- stage 1: populate ------------------------------------------------
    def populate(self, items: Iterable[tuple[bytes, int]]) -> None:
        """Insert ``(key, value)`` pairs into the host ART (stage 1)."""
        for k, v in items:
            self.tree.insert(k, v)

    def __len__(self) -> int:
        return len(self.tree)

    # -- reporting ---------------------------------------------------------
    def _report(
        self, operation: str, queries: int, batches: int, logs: list[TransactionLog],
        key_bytes: int,
    ) -> EngineReport:
        total_tx = sum(log.total_transactions for log in logs)
        total_bytes = sum(log.total_bytes for log in logs)
        timings = [self.cost_model.kernel_time(log) for log in logs]
        if timings:
            kernel_s = float(np.mean([t.total_s for t in timings]))
        else:  # empty operation: charge the bare launch overhead
            kernel_s = self.device.launch_overhead_s
        per_batch_q = max(queries // max(batches, 1), 1)
        kernel_mops = per_batch_q / kernel_s / 1e6
        cfg = DispatchConfig(
            batch_size=self.batch_size,
            host_threads=self.host_threads,
            key_bytes=key_bytes,
            api=self.api,
        )
        pipe = pipeline_throughput(kernel_s, cfg, self.device, self.cpu)
        report = EngineReport(
            operation=operation,
            queries=queries,
            batches=batches,
            kernel_s_per_batch=kernel_s,
            kernel_mops=kernel_mops,
            end_to_end_mops=pipe.throughput_mops,
            binding_constraint=timings[0].binding_constraint if timings else "-",
            pipeline_bottleneck=pipe.bottleneck.name,
            transactions_per_query=total_tx / max(queries, 1),
            bytes_per_query=total_bytes / max(queries, 1),
        )
        self.last_report = report
        return report


class CuartEngine(_EngineBase):
    """The paper's system: CuART layout + kernels + async CUDA pipeline.

    >>> eng = CuartEngine()
    >>> eng.populate([(b'key-a\\x00', 1), (b'key-b\\x00', 2)])
    >>> eng.map_to_device()
    >>> eng.lookup([b'key-a\\x00', b'missing\\x00'])
    [1, None]
    """

    def __init__(
        self,
        *,
        device: DeviceSpec = RTX3090,
        cpu: CpuSpec = WORKSTATION_CPU,
        batch_size: int = DEFAULT_BATCH_SIZE,
        host_threads: int = DEFAULT_HOST_THREADS,
        root_table_depth: Optional[int] = None,
        long_keys: LongKeyStrategy = LongKeyStrategy.ERROR,
        hash_slots: int = DEFAULT_UPDATE_HASH_SLOTS,
        spare: float = 0.25,
    ) -> None:
        """``spare`` over-allocates the device buffers so
        :meth:`insert` can place new keys without an immediate re-map
        (the §5.1 device-side insert path)."""
        super().__init__(
            device=device, cpu=cpu, batch_size=batch_size,
            host_threads=host_threads, api="cuda",
        )
        self.root_table_depth = root_table_depth
        self.long_keys = long_keys
        self.hash_slots = hash_slots
        self.spare = spare
        self.layout: Optional[CuartLayout] = None
        self.root_table: Optional[RootTable] = None

    # -- stage 2: map -------------------------------------------------------
    def map_to_device(self) -> None:
        """Map the populated host tree into the device buffers (stage 2),
        rebuilding the compacted root table if configured."""
        self.layout = CuartLayout(
            self.tree, long_keys=self.long_keys, spare=self.spare
        )
        if self.root_table_depth is not None:
            self.root_table = RootTable(self.layout, k=self.root_table_depth)
        else:
            self.root_table = None

    def _require_layout(self) -> CuartLayout:
        if self.layout is None:
            raise ReproError("call map_to_device() after populating")
        return self.layout

    # -- stage 3: queries ----------------------------------------------------
    def lookup(self, keys: Sequence[bytes]) -> list[Optional[int]]:
        """Batched exact lookups; returns values (``None`` for misses).

        Long keys stored via :attr:`LongKeyStrategy.HOST_LINK` come back
        after the CPU resolves the device's host-leaf signals.
        """
        layout = self._require_layout()
        width = max(max((len(k) for k in keys), default=1), 1)
        out: list[Optional[int]] = [None] * len(keys)
        logs = []
        batches = coalesce(list(keys), self.batch_size, width=width)
        for batch in batches:
            res = lookup_batch(
                layout, batch.keys_mat, batch.key_lens,
                root_table=self.root_table,
            )
            logs.append(res.log)
            vals = res.values
            for j, pos in enumerate(batch.origin):
                ref = int(res.host_refs[j])
                if ref >= 0:
                    hk, hv = layout.host_leaves[ref]
                    out[pos] = hv if hk == keys[pos] else None
                else:
                    v = int(vals[j])
                    out[pos] = None if v == NIL_VALUE else v
        self._report("lookup", len(keys), len(batches), logs, width)
        return out

    def update(
        self, items: Sequence[tuple[bytes, int]]
    ) -> list[bool]:
        """Batched value updates (section 3.4); returns found-flags.

        Within a batch, later items win conflicts on the same key (the
        paper's thread-index priority).  The host tree mirrors every
        applied value so a future re-map cannot resurrect stale data.
        """
        layout = self._require_layout()
        keys = [k for k, _ in items]
        width = max(max((len(k) for k in keys), default=1), 1)
        found = [False] * len(items)
        engine = UpdateEngine(
            layout, root_table=self.root_table, hash_slots=self.hash_slots
        )
        logs = []
        batches = coalesce(keys, self.batch_size, width=width)
        values = np.array([v for _, v in items], dtype=np.uint64)
        for batch in batches:
            res = engine.apply(
                batch.keys_mat, batch.key_lens, values[batch.origin]
            )
            logs.append(res.log)
            for j, pos in enumerate(batch.origin):
                found[pos] = bool(res.found[j])
        # mirror into the host tree (sequential order == thread order)
        for (k, v), hit in zip(items, found):
            if hit:
                self.tree.insert(k, v)
        layout.mark_synced()
        self._report("update", len(items), len(batches), logs, width)
        return found

    def insert(
        self, items: Sequence[tuple[bytes, int]], *, remap_on_defer: bool = True
    ) -> dict:
        """Batched inserts: device-side where the buffers allow it
        (section 5.1 path via :class:`repro.cuart.insert.InsertEngine`),
        host re-map for the structurally hard remainder.

        Returns ``{"device_inserted", "updated", "deferred", "remapped"}``.
        All items land in the host tree either way, so the engine's
        content stays authoritative.
        """
        layout = self._require_layout()
        keys = [k for k, _ in items]
        width = max(max((len(k) for k in keys), default=1), 1)
        engine = InsertEngine(
            layout, root_table=self.root_table, hash_slots=self.hash_slots
        )
        values = np.array([v for _, v in items], dtype=np.uint64)
        logs = []
        n_ins = n_upd = n_def = 0
        for batch in coalesce(keys, self.batch_size, width=width):
            res = engine.apply(batch.keys_mat, batch.key_lens,
                               values[batch.origin])
            logs.append(res.log)
            n_ins += res.n_inserted
            n_upd += res.n_updated
            n_def += res.n_deferred
        # the host tree mirrors everything (duplicates: last one wins,
        # matching the device's thread-priority rule)
        for k, v in items:
            self.tree.insert(k, v)
        remapped = False
        if n_def and remap_on_defer:
            self.map_to_device()
            remapped = True
        else:
            layout.mark_synced()
        self._report("insert", len(items), max(len(logs), 1), logs, width)
        return {
            "device_inserted": n_ins,
            "updated": n_upd,
            "deferred": n_def,
            "remapped": remapped,
        }

    def delete(self, keys: Sequence[bytes]) -> list[bool]:
        """Batched device-side deletions (section 3.3).

        Mirrored into the host tree so a future re-map cannot resurrect
        the deleted keys."""
        layout = self._require_layout()
        width = max(max((len(k) for k in keys), default=1), 1)
        out = [False] * len(keys)
        logs = []
        batches = coalesce(list(keys), self.batch_size, width=width)
        for batch in batches:
            res = delete_batch(
                layout, batch.keys_mat, batch.key_lens,
                root_table=self.root_table, hash_slots=self.hash_slots,
            )
            logs.append(res.log)
            for j, pos in enumerate(batch.origin):
                out[pos] = bool(res.deleted[j])
        for k, hit in zip(keys, out):
            if hit:
                self.tree.delete(k)
        layout.mark_synced()
        self._report("delete", len(keys), len(batches), logs, width)
        return out

    # -- persistence ---------------------------------------------------------
    def save(self, path) -> None:
        """Persist the mapped device buffers (``.npz``); see
        :mod:`repro.cuart.serialize`."""
        from repro.cuart.serialize import save_layout

        save_layout(self._require_layout(), path)

    @classmethod
    def load(cls, path, **engine_kwargs) -> "CuartEngine":
        """Rebuild an engine from a saved layout.

        The device buffers load directly (no mapping pass); the
        authoritative host tree is reconstructed from the complete keys
        the leaf buffers carry.  The compacted root table is *not*
        persisted — pass ``root_table_depth`` and call
        :meth:`map_to_device` to regain one (a fresh map), or run
        without a table.
        """
        from repro.cuart.serialize import iter_layout_items, load_layout

        layout = load_layout(path)
        engine = cls(long_keys=layout.long_keys, **engine_kwargs)
        engine.populate(iter_layout_items(layout))
        layout._source = engine.tree
        layout._source_version = engine.tree.version
        engine.layout = layout
        engine.root_table = None
        return engine

    def range(self, lo: bytes, hi: bytes) -> list[tuple[bytes, int]]:
        """Inclusive range query over the ordered leaf buffers."""
        layout = self._require_layout()
        res = range_query(layout, lo, hi)
        self._report("range", max(len(res), 1), 1, [res.log], MAX_SHORT_KEY)
        return list(zip(res.keys, (int(v) for v in res.values)))

    def prefix(self, prefix: bytes) -> list[tuple[bytes, int]]:
        """Prefix query over the ordered leaf buffers."""
        layout = self._require_layout()
        res = prefix_query(layout, prefix)
        self._report("prefix", max(len(res), 1), 1, [res.log], MAX_SHORT_KEY)
        return list(zip(res.keys, (int(v) for v in res.values)))


class GrtEngine(_EngineBase):
    """The baseline: GRT single-buffer layout with synchronous dispatch."""

    def __init__(
        self,
        *,
        device: DeviceSpec = RTX3090,
        cpu: CpuSpec = WORKSTATION_CPU,
        batch_size: int = DEFAULT_BATCH_SIZE,
        host_threads: int = DEFAULT_HOST_THREADS,
    ) -> None:
        super().__init__(
            device=device, cpu=cpu, batch_size=batch_size,
            host_threads=host_threads, api="sync",
        )
        self.layout: Optional[GrtLayout] = None

    def map_to_device(self) -> None:
        self.layout = GrtLayout(self.tree)

    def _require_layout(self) -> GrtLayout:
        if self.layout is None:
            raise ReproError("call map_to_device() after populating")
        return self.layout

    def lookup(self, keys: Sequence[bytes]) -> list[Optional[int]]:
        layout = self._require_layout()
        width = max(max((len(k) for k in keys), default=1), 1)
        out: list[Optional[int]] = [None] * len(keys)
        logs = []
        batches = coalesce(list(keys), self.batch_size, width=width)
        for batch in batches:
            res = grt_lookup_batch(layout, batch.keys_mat, batch.key_lens)
            logs.append(res.log)
            for j, pos in enumerate(batch.origin):
                v = int(res.values[j])
                out[pos] = None if v == NIL_VALUE else v
        self._report("lookup", len(keys), len(batches), logs, width)
        return out

    def update(self, items: Sequence[tuple[bytes, int]]) -> list[bool]:
        layout = self._require_layout()
        keys = [k for k, _ in items]
        width = max(max((len(k) for k in keys), default=1), 1)
        found = [False] * len(items)
        logs = []
        batches = coalesce(keys, self.batch_size, width=width)
        values = np.array([v for _, v in items], dtype=np.uint64)
        for batch in batches:
            res = grt_update_batch(
                layout, batch.keys_mat, batch.key_lens, values[batch.origin]
            )
            logs.append(res.log)
            for j, pos in enumerate(batch.origin):
                found[pos] = bool(res.found[j])
        self._report("update", len(items), len(batches), logs, width)
        return found

    def range(self, lo: bytes, hi: bytes) -> list[tuple[bytes, int]]:
        """Inclusive range via the in-order buffer scan (the GRT paper's
        point-and-range evaluation)."""
        from repro.grt.range import grt_range_query

        layout = self._require_layout()
        res = grt_range_query(layout, lo, hi)
        self._report("range", max(len(res), 1), 1, [res.log], MAX_SHORT_KEY)
        return list(zip(res.keys, (int(v) for v in res.values)))
