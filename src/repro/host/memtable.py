"""Log-structured write absorption: host memtable + merge-compaction.

ROADMAP item "log-structured write absorption with snapshot reads":
heavy write traffic used to pay a device round-trip per coalesced
batch — every update/insert/delete burst was scattered into the §3.4
device kernels synchronously, so sustained write throughput was bounded
by PCIe + kernel makespan even when readers would be satisfied
host-side.  This module absorbs writes the way an LSM engine does
(LUDA's GPU-assisted-compaction idea, PAPERS.md, transplanted to an
index; FliX is the frame for how reads interleave with in-flight
updates):

* **absorb** — a write acks in O(1): its hit/miss outcome is resolved
  host-side against the delta + one memoized ``contains`` probe, the
  effective mutation is recorded in the *active segment*, and nothing
  touches the device.  Miss writes (update/delete of an absent key) are
  dropped outright — they are device no-ops a serial client would
  observe as misses.
* **seal** — an active segment reaching ``segment_ops`` effective
  mutations is sealed and queued; the count of sealed segments is the
  *compaction debt*.
* **merge-compact** — when the debt exceeds ``max_debt`` (or a caller
  forces a drain at a scan barrier / end of stream), the sealed
  segments fold per key with last-writer-wins semantics and scatter
  into the device layout as at most three class batches (update /
  delete / insert) through the caller's dispatch hook — in the
  executors that is :meth:`~repro.host.engine.CuartEngine.submit`, so
  compaction batches ride the double-buffered second stream
  (:mod:`repro.gpusim.streams`) behind foreground lookups.  Folding
  shrinks device work under skew: N writes to one hot key become one
  row, and an insert cancelled by a later delete becomes zero rows.

Reads stay *serially correct* throughout: the delta is a
:class:`~repro.host.overlay.WriteOverlay` with definite per-key
statuses, so read-your-writes is one dict probe, and keys without a
pending write read the device layout, which the compactor only ever
moves *forward* to a folded prefix of the absorbed history.

**Snapshot reads (MVCC-lite).**  A reader that must not observe a
compaction install pins :meth:`Memtable.pin`: the snapshot copies the
delta at pin time and records the *epoch* (monotonic, bumped once per
compaction install).  Before the compactor mutates the device state it
*shields* every live snapshot — for each key it is about to install
that the snapshot's pinned delta does not already answer, it captures
the pre-install base value into the snapshot.  A snapshot read is then
``shield -> pinned delta -> device``, so a reader pinned at epoch N
never observes epoch N+1 writes, at zero cost while no snapshot is
live.  The serving layers pin one snapshot per in-flight lookup batch,
which is what keeps batched reads byte-identical to a serial oracle
even when a debt-triggered compaction races mid-stream.

**Byte-identity.**  For update/delete traffic the folded batches are
byte-identical to serial execution: updates write leaf value words in
place, deletes clear the leaf (values to ``NIL_VALUE``, key bytes to 0
— :mod:`repro.cuart.delete`) and never restructure nodes, so disjoint
keys commute; and because the serialized layout includes the free-leaf
lists, each class batch is dispatched in absorb order (the fold keeps
each surviving op's global sequence number) so free-list push order
matches the serial history.  Insert / delete-then-reinsert traffic is
content-identical but may legitimately differ in slot-reuse order —
the lockstep suite compares those through a canonical re-serialization.

**Degrade interaction** (the PR 4 circuit breaker): while the device
circuit is open, :meth:`Memtable.should_compact` holds — writes keep
absorbing into segments at host speed and *nothing* is scattered into
the degraded path, so the circuit-open cost of a write burst is O(1)
per op instead of a degraded CPU batch per flush.  Reads are served
from the delta plus the last installed layout (the engine's existing
degraded lookup path).  When the circuit closes, the next trigger
drains the accumulated debt through the normal device kernels exactly
once — the delta is the replay log, and a key is retired from it only
after its folded write is installed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ReproError
from repro.host.overlay import WriteOverlay
from repro.obs.metrics import MetricsRegistry

__all__ = ["Memtable", "MemtableConfig", "MemtableSnapshot", "Segment"]


@dataclass(frozen=True)
class MemtableConfig:
    """Knobs for the write-absorption layer."""

    #: effective mutations the active segment holds before sealing.
    segment_ops: int = 256
    #: sealed segments tolerated before a (non-forced) compaction is
    #: due.  0 compacts as soon as anything seals.
    max_debt: int = 4

    def __post_init__(self) -> None:
        if self.segment_ops < 1:
            raise ReproError(
                f"segment_ops must be >= 1, got {self.segment_ops}"
            )
        if self.max_debt < 0:
            raise ReproError(f"max_debt must be >= 0, got {self.max_debt}")


class Segment:
    """One append window of effective mutations.

    ``ops`` maps key -> ``(kind, value, op_seq)`` with kind ``"put"``
    (update/insert payload) or ``"del"``; within a segment the last
    write to a key wins (dict overwrite), which *is* the first level of
    LWW folding.  ``op_seq`` is the global absorb sequence number of the
    surviving op — the compactor sorts class batches by it so device
    dispatch order (and with it free-list push order, which serializes)
    matches the serial history.
    """

    __slots__ = ("seq", "ops")

    def __init__(self, seq: int) -> None:
        self.seq = seq
        self.ops: dict = {}

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Segment(seq={self.seq}, ops={len(self.ops)})"


class MemtableSnapshot:
    """A pinned read view: the delta as of :meth:`Memtable.pin` plus a
    shield of pre-install base values the compactor fills in before it
    moves the device state.  Read order: shield -> pinned delta ->
    device.  Release (or use as a context manager) when done — live
    snapshots cost the compactor one base read per installed key.
    """

    __slots__ = ("epoch", "pinned", "shield", "_mt", "released")

    def __init__(self, mt: "Memtable", epoch: int, pinned: dict) -> None:
        self.epoch = epoch
        #: ``{key: (status, value)}`` — memtable entries are always
        #: definite ("present"/"absent"), resolved at absorb time.
        self.pinned = pinned
        #: ``{key: (found, value)}`` pre-install base state, filled by
        #: the compactor for keys it installs that ``pinned`` does not
        #: already answer.
        self.shield: dict = {}
        self._mt = mt
        self.released = False

    def read(self, key) -> tuple[bool, object]:
        """``(found, value)`` exactly as a reader pinned at
        :attr:`epoch` would observe the key."""
        hit = self.shield.get(key)
        if hit is not None:
            return hit
        entry = self.pinned.get(key)
        if entry is not None:
            status, val = entry
            if status == "absent":
                return False, None
            return True, val
        return self._mt.base_read(key)

    def release(self) -> None:
        if not self.released:
            self.released = True
            self._mt._unpin(self)

    def __enter__(self) -> "MemtableSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "released" if self.released else "live"
        return (f"MemtableSnapshot(epoch={self.epoch}, "
                f"pinned={len(self.pinned)}, shield={len(self.shield)}, "
                f"{state})")


class Memtable:
    """Host-side log-structured delta over one engine (module
    docstring).  Owned by a dispatch surface (mixed executor / server
    core), one per engine/shard; the owner calls the ``absorb_*``
    trio from its hot loop and :meth:`compact` at trigger points,
    passing its own dispatch hook so device batches are accounted like
    any other flush."""

    def __init__(
        self,
        engine,
        config: Optional[MemtableConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        contains = getattr(engine, "contains", None)
        if contains is None:
            raise ReproError(
                "memtable requires an engine with a contains() probe"
            )
        self.engine = engine
        self.config = config if config is not None else MemtableConfig()
        #: the delta: definite per-key pending effects + the memoized
        #: base-existence probe (absorb resolves hit/miss through it).
        self.delta = WriteOverlay(contains)
        self.active = Segment(0)
        self.sealed: deque = deque()
        #: monotonic layout version, bumped once per compaction install.
        self.epoch = 0
        #: key -> seq of the segment holding its newest op (retirement
        #: and superseded-op detection at compaction time).
        self._writer_seq: dict = {}
        self._op_seq = 0
        self._snapshots: list = []
        # -- lifetime stats (the BENCH write_burst scenario reads these)
        self.absorbed: dict = {}
        self.dropped: dict = {}
        self.compactions = 0
        self.dispatched_rows = 0
        self.folded_away = 0
        self.max_debt_seen = 0

        m = metrics if metrics is not None else (
            getattr(engine, "metrics", None) or MetricsRegistry()
        )
        self.metrics = m
        self._m_absorbed = m.counter(
            "memtable_absorbed_total",
            "writes acked host-side into the memtable", labels=("op",),
        )
        self._m_dropped = m.counter(
            "memtable_dropped_total",
            "miss writes short-circuited without any device work",
            labels=("op",),
        )
        self._m_compactions = m.counter(
            "memtable_compactions_total",
            "merge-compaction installs into the device layout",
        )
        self._m_rows = m.counter(
            "memtable_compacted_rows_total",
            "device rows scattered by compaction, by op class",
            labels=("op",),
        )
        self._m_folded = m.counter(
            "memtable_folded_ops_total",
            "absorbed ops retired without a device row (LWW folding)",
        )
        self._g_debt = m.gauge(
            "memtable_debt_segments",
            "sealed segments awaiting merge-compaction",
        )
        self._g_delta = m.gauge(
            "memtable_delta_keys", "keys with a pending effect in the delta",
        )
        self._g_epoch = m.gauge(
            "memtable_epoch", "layout version (compaction installs)",
        )

    # -- read side -----------------------------------------------------

    @property
    def debt(self) -> int:
        """Sealed segments awaiting compaction."""
        return len(self.sealed)

    def pending_ops(self) -> int:
        """Effective mutations not yet installed on the device."""
        return len(self.active.ops) + sum(len(s.ops) for s in self.sealed)

    def read(self, key) -> Optional[tuple[bool, object]]:
        """Read-your-writes: ``None`` when the key has no pending
        effect (go to the device), else ``(found, value)``."""
        return self.delta.read(key)

    def base_read(self, key) -> tuple[bool, object]:
        """``(found, value)`` against the engine's *applied* state,
        bypassing the delta — what the device would answer now."""
        tree = getattr(self.engine, "tree", None)
        if tree is not None:
            val = tree.search(key)
            return (val is not None, val)
        res = self.engine.lookup([key])
        val = res[0]
        return (val is not None, val)

    def pin(self) -> MemtableSnapshot:
        """Pin the current read view (see :class:`MemtableSnapshot`)."""
        snap = MemtableSnapshot(self, self.epoch, self.delta.snapshot())
        self._snapshots.append(snap)
        return snap

    def _unpin(self, snap: MemtableSnapshot) -> None:
        try:
            self._snapshots.remove(snap)
        except ValueError:  # pragma: no cover - double release
            pass

    # -- write side (the O(1) ack path) --------------------------------

    def absorb_update(self, key, value) -> bool:
        """Absorb one update; returns its hit/miss outcome exactly as a
        serial client would observe it.  Misses are dropped — the
        device would not mutate anything for them."""
        delta = self.delta
        entry = delta.entries.get(key)
        if entry is not None:
            if entry[0] == "absent":
                return self._drop("update")
        elif not delta.base_exists(key):
            return self._drop("update")
        delta.entries[key] = ("present", value)
        self._append("update", key, ("put", value))
        return True

    def absorb_delete(self, key) -> bool:
        """Absorb one delete; returns hit/miss.  Double deletes (and
        deletes of never-present keys) are dropped."""
        delta = self.delta
        entry = delta.entries.get(key)
        if entry is not None:
            if entry[0] == "absent":
                return self._drop("delete")
        elif not delta.base_exists(key):
            return self._drop("delete")
        delta.entries[key] = ("absent", None)
        self._append("delete", key, ("del", None))
        return True

    def absorb_insert(self, key, value) -> None:
        """Absorb one insert (upsert semantics, like the device
        kernel): the key is definitely present afterwards."""
        self.delta.entries[key] = ("present", value)
        self._append("insert", key, ("put", value))

    def _drop(self, op: str) -> bool:
        self.absorbed[op] = self.absorbed.get(op, 0) + 1
        self.dropped[op] = self.dropped.get(op, 0) + 1
        self._m_absorbed.labels(op=op).inc()
        self._m_dropped.labels(op=op).inc()
        return False

    def _append(self, op: str, key, entry: tuple) -> None:
        seq = self._op_seq
        self._op_seq = seq + 1
        seg = self.active
        if key in seg.ops:
            # within-segment LWW: the older op dies right here, before
            # the compactor ever sees it
            self.folded_away += 1
            self._m_folded.inc()
        seg.ops[key] = (entry[0], entry[1], seq)
        self._writer_seq[key] = seg.seq
        self.absorbed[op] = self.absorbed.get(op, 0) + 1
        self._m_absorbed.labels(op=op).inc()
        # hot-key cache coherence: an absorbed write must refresh (or
        # negative-cache) the key's LRU entry *now* — the device-applied
        # patch in the engine write path only runs at compaction time,
        # long after a reader could see the stale cached value.
        cache = getattr(self.engine, "cache", None)
        if cache is not None:
            cache.update_if_cached(key, entry[1])
        if len(seg.ops) >= self.config.segment_ops:
            self.seal()

    def seal(self) -> None:
        """Seal the active segment (if non-empty) and open a new one."""
        if self.active.ops:
            self.sealed.append(self.active)
            self.active = Segment(self.active.seq + 1)
            debt = len(self.sealed)
            if debt > self.max_debt_seen:
                self.max_debt_seen = debt
            self._g_debt.set(debt)

    # -- merge-compaction ----------------------------------------------

    def device_healthy(self) -> bool:
        """False while the engine's device circuit is open — compaction
        holds (the debt is the replay log) rather than scattering into
        the degraded CPU path."""
        health = getattr(self.engine, "device_health", None)
        return health is None or health.healthy

    def should_compact(self) -> bool:
        """A non-forced compaction is due: debt over budget and the
        device circuit closed."""
        return len(self.sealed) > self.config.max_debt \
            and self.device_healthy()

    def compact(
        self,
        dispatch: Optional[Callable] = None,
        *,
        force: bool = False,
    ) -> Optional[dict]:
        """Drain the sealed segments into the device layout.

        ``dispatch(kind, payloads)`` scatters one folded class batch
        (defaults to ``engine.submit`` / the engine method) — owners
        pass their own hook so compaction batches are accounted like
        any other flush.  ``force=True`` additionally seals the active
        segment and dispatches even while the circuit is open (end of
        stream: correctness over cost; the engine's degrade path still
        applies the writes).  Returns a summary dict, or ``None`` when
        nothing was compacted (no debt, or deferred on an open
        circuit).
        """
        if force:
            self.seal()
        elif not self.device_healthy():
            return None
        if not self.sealed:
            return None
        sealed = self.sealed
        max_seq = sealed[-1].seq
        fold: dict = {}
        n_ops = 0
        while sealed:
            seg = sealed.popleft()
            n_ops += len(seg.ops)
            fold.update(seg.ops)

        engine = self.engine
        contains = engine.contains
        writer_seq = self._writer_seq
        updates: list = []
        inserts: list = []
        deletes: list = []
        retire: list = []
        superseded = 0
        for key, (kind, value, seq) in fold.items():
            if writer_seq.get(key, -1) > max_seq:
                # the active segment already rewrote this key: the
                # sealed op is dead, skip its device row entirely (it
                # will fold into a later compaction) — but the entry
                # stays pending, owned by the newer write
                superseded += 1
                continue
            retire.append(key)
            if kind == "put":
                # classification against the *applied* base decides the
                # kernel class: update scatters in place (byte-identical
                # to the serial history), insert claims a slot
                if contains(key):
                    updates.append((key, value, seq))
                else:
                    inserts.append((key, value, seq))
            elif contains(key):
                deletes.append((key, seq))
            # else: delete of a never-installed insert — fully cancelled

        n_rows = len(updates) + len(inserts) + len(deletes)

        # shield live snapshots before the device state moves: capture
        # the pre-install base value for every key we are about to
        # install that the snapshot's pinned delta does not answer
        if self._snapshots and n_rows:
            install_keys = (
                [k for k, _, _ in updates]
                + [k for k, _, _ in inserts]
                + [k for k, _ in deletes]
            )
            for snap in self._snapshots:
                shield = snap.shield
                pinned = snap.pinned
                for key in install_keys:
                    if key not in pinned and key not in shield:
                        shield[key] = self.base_read(key)

        if dispatch is None:
            dispatch = self._default_dispatch
        # absorb order within each class keeps free-list push order (a
        # serialized part of the layout) identical to serial execution
        if updates:
            updates.sort(key=lambda t: t[2])
            dispatch("update", [(k, v) for k, v, _ in updates])
        if deletes:
            deletes.sort(key=lambda t: t[1])
            dispatch("delete", [k for k, _ in deletes])
        if inserts:
            inserts.sort(key=lambda t: t[2])
            dispatch("insert", [(k, v) for k, v, _ in inserts])

        # install: retire folded keys from the delta (their entries now
        # restate applied state) and invalidate stale existence memos
        delta = self.delta
        for key in retire:
            if writer_seq.get(key, -1) <= max_seq:
                writer_seq.pop(key, None)
                delta.forget(key)
            else:  # pragma: no cover - retired key rewritten mid-compact
                delta.forget_exists(key)

        self.epoch += 1
        self.compactions += 1
        self.dispatched_rows += n_rows
        self.folded_away += n_ops - n_rows
        self._m_compactions.inc()
        self._m_folded.inc(n_ops - n_rows)
        if updates:
            self._m_rows.labels(op="update").inc(len(updates))
        if deletes:
            self._m_rows.labels(op="delete").inc(len(deletes))
        if inserts:
            self._m_rows.labels(op="insert").inc(len(inserts))
        self._g_debt.set(len(self.sealed))
        self._g_delta.set(len(delta.entries))
        self._g_epoch.set(self.epoch)
        return {
            "ops_folded": n_ops,
            "keys": len(fold),
            "rows": n_rows,
            "updates": len(updates),
            "deletes": len(deletes),
            "inserts": len(inserts),
            "superseded": superseded,
            "epoch": self.epoch,
        }

    def _default_dispatch(self, kind: str, payloads: list):
        engine = self.engine
        submit = getattr(engine, "submit", None)
        if submit is not None and getattr(engine, "drain", None) is not None:
            return submit(kind, payloads)
        return getattr(engine, kind)(payloads)

    # -- reporting ------------------------------------------------------

    def absorbed_writes(self) -> int:
        return sum(self.absorbed.values())

    def absorbed_write_ratio(self) -> float:
        """Fraction of absorbed writes that never became a device row
        (miss drops + LWW folding); 0.0 until something was absorbed,
        and an *interim* number while debt is outstanding."""
        total = self.absorbed_writes()
        if not total:
            return 0.0
        return max(1.0 - self.dispatched_rows / total, 0.0)

    def stats(self) -> dict:
        """Lifetime counters for reports and the BENCH scenario."""
        return {
            "absorbed": dict(self.absorbed),
            "dropped": dict(self.dropped),
            "absorbed_writes": self.absorbed_writes(),
            "dispatched_rows": self.dispatched_rows,
            "folded_away": self.folded_away,
            "absorbed_write_ratio": round(self.absorbed_write_ratio(), 4),
            "compactions": self.compactions,
            "epoch": self.epoch,
            "debt": len(self.sealed),
            "max_debt_seen": self.max_debt_seen,
            "pending_ops": self.pending_ops(),
            "delta_keys": len(self.delta.entries),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Memtable(epoch={self.epoch}, debt={len(self.sealed)}, "
                f"pending={self.pending_ops()})")
