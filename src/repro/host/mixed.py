"""Mixed OLTP read/write execution (section 3.1's motivating scenario).

"Another problem arises when running mixed read/write workloads such as
typical OLTP benchmarks."  The executor consumes an interleaved stream
of lookups, updates and deletes (from
:func:`repro.workloads.queries.mixed_queries`) against a
:class:`~repro.host.engine.CuartEngine`, coalescing *runs of the same
operation type* into device batches while preserving the stream's
cross-type ordering — a read issued after a write to the same key
observes the write, exactly like a serial client would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.host.engine import CuartEngine


@dataclass
class MixedReport:
    """Counts and outcomes of one executed stream."""

    lookups: int = 0
    updates: int = 0
    deletes: int = 0
    inserts: int = 0
    scans: int = 0
    hits: int = 0
    misses: int = 0
    update_misses: int = 0
    delete_misses: int = 0
    inserts_deferred: int = 0
    records_scanned: int = 0
    #: device batches dispatched (one per same-op run per batch size).
    batches: int = 0
    #: end-to-end simulated MOps/s per op type (last batch of each).
    simulated_mops: dict = field(default_factory=dict)

    @property
    def operations(self) -> int:
        return (self.lookups + self.updates + self.deletes
                + self.inserts + self.scans)


class MixedWorkloadExecutor:
    """Run interleaved ``lookup`` / ``update`` / ``delete`` / ``insert`` /
    ``scan`` streams (the YCSB-profile op set,
    :mod:`repro.workloads.ycsb`)."""

    def __init__(self, engine: CuartEngine) -> None:
        self.engine = engine

    def run(self, stream) -> tuple[list, MixedReport]:
        """Execute the stream; returns (lookup results in stream order,
        report).  Lookup results align with the stream's lookup ops."""
        report = MixedReport()
        results: list = []
        run_kind: str | None = None
        pending: list = []

        def flush() -> None:
            nonlocal run_kind, pending
            if not pending:
                return
            if run_kind == "lookup":
                values = self.engine.lookup(pending)
                results.extend(values)
                report.lookups += len(pending)
                report.hits += sum(1 for v in values if v is not None)
                report.misses += sum(1 for v in values if v is None)
            elif run_kind == "update":
                found = self.engine.update(pending)
                report.updates += len(pending)
                report.update_misses += sum(1 for f in found if not f)
            elif run_kind == "insert":
                out = self.engine.insert(pending)
                report.inserts += len(pending)
                report.inserts_deferred += out["deferred"]
            elif run_kind == "scan":
                for lo, hi in pending:
                    rows = self.engine.range(lo, hi)
                    report.records_scanned += len(rows)
                report.scans += len(pending)
            else:  # delete
                found = self.engine.delete(pending)
                report.deletes += len(pending)
                report.delete_misses += sum(1 for f in found if not f)
            report.batches += 1
            if self.engine.last_report is not None:
                report.simulated_mops[run_kind] = (
                    self.engine.last_report.end_to_end_mops
                )
            pending = []

        for kind, payload in stream:
            if kind not in ("lookup", "update", "delete", "insert", "scan"):
                raise ValueError(f"unknown operation {kind!r}")
            if kind != run_kind:
                flush()
                run_kind = kind
            pending.append(payload)
            if len(pending) >= self.engine.batch_size:
                flush()
        flush()
        return results, report
