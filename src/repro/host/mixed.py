"""Mixed OLTP read/write execution (section 3.1's motivating scenario).

"Another problem arises when running mixed read/write workloads such as
typical OLTP benchmarks."  The executor consumes an interleaved stream
of lookups, updates, deletes and inserts (from
:func:`repro.workloads.queries.mixed_queries`) against a
:class:`~repro.host.engine.CuartEngine`, accumulating each operation
class in its own queue (:class:`repro.host.batching.OpClassCoalescer`)
and flushing on batch-size or on an op-order dependency — a read issued
after a write to the same key observes the write, exactly like a serial
client would, but an interleaved stream no longer fragments into a tiny
device batch per op-type run.

Hit/miss tallies come straight from the batch result arrays
(:attr:`repro.host.results.BatchResult.found_array`) — no per-item
Python counting — and every result's :class:`~repro.host.results.OpStatus`
codes are accumulated into :attr:`MixedReport.ops_by_status`, so a run
under fault injection reports how many ops were retried, served by the
CPU degradation path, or failed.  Latency accounting goes through the engine's metrics
registry (:mod:`repro.obs`): per-op-class histograms
(``mixed_op_latency_us{op=...}``) carry p50/p95/p99 summaries into the
report and the BENCH JSON, the coalescer's flush-reason counters explain
the batch cuts, and each flush runs under a tracer span so a chrome
trace shows the executor → engine → simulated-kernel nesting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.host.batching import OpClassCoalescer
from repro.host.engine import CuartEngine
from repro.host.memtable import Memtable, MemtableConfig
from repro.host.overlay import WriteOverlay
from repro.host.results import OpStatus

#: OpStatus code -> name, for flight-record stamping.
_STATUS_NAMES = {int(s): s.name for s in OpStatus}
from repro.obs.flightrec import NULL_FLIGHT_RECORDER
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER


def merge_percentile_summaries(cur: dict | None, other: dict | None) -> dict:
    """Merge two histogram summary dicts (count/mean/p50/p95/p99/min/max)
    as count-weighted means — an estimate, exact only when the two
    distributions match — with exact count/min/max."""
    if not cur or not cur.get("count"):
        return dict(other or {})
    if not other or not other.get("count"):
        return dict(cur)
    n1, n2 = cur["count"], other["count"]
    total = n1 + n2
    merged = {"count": total}
    for k in ("mean", "p50", "p95", "p99"):
        if k in cur and k in other:
            merged[k] = (cur[k] * n1 + other[k] * n2) / total
    if "min" in cur and "min" in other:
        merged["min"] = min(cur["min"], other["min"])
    if "max" in cur and "max" in other:
        merged["max"] = max(cur["max"], other["max"])
    return merged


@dataclass
class MixedReport:
    """Counts and outcomes of one executed stream."""

    lookups: int = 0
    updates: int = 0
    deletes: int = 0
    inserts: int = 0
    scans: int = 0
    hits: int = 0
    misses: int = 0
    update_misses: int = 0
    delete_misses: int = 0
    inserts_deferred: int = 0
    records_scanned: int = 0
    #: device batches dispatched (coalesced per op class).
    batches: int = 0
    #: batches dispatched per op class (fragmentation visibility).
    batches_by_op: dict = field(default_factory=dict)
    #: end-to-end simulated MOps/s per op type (last batch of each).
    simulated_mops: dict = field(default_factory=dict)
    #: measured host wall-clock seconds spent per op class.
    wall_s: dict = field(default_factory=dict)
    #: per-op-class latency summaries from the registry histograms
    #: (``{"lookup": {"count", "mean", "p50", "p95", "p99", ...}, ...}``).
    latency_percentiles_by_op: dict = field(default_factory=dict)
    #: batches cut per flush reason during this run
    #: (``size-full`` / ``write-dependency`` / ``drain``).
    flush_reasons: dict = field(default_factory=dict)
    #: merge-compaction installs run by this dispatch surface (the
    #: memtable write-absorption path; 0 when it is disabled).
    compactions: int = 0
    #: writes acked host-side by the memtable (O(1) absorb), per op
    #: class — their folded device rows ride compaction batches, which
    #: show up as ``compact-*`` entries in :attr:`batches_by_op`.
    absorbed: dict = field(default_factory=dict)
    #: operations per :class:`~repro.host.results.OpStatus` name
    #: (``OK`` / ``NOT_FOUND`` / ``RETRIED`` / ``DEGRADED_CPU`` /
    #: ``FAILED``); scans count as ``OK``.
    ops_by_status: dict = field(default_factory=dict)
    #: simulated multi-stream overlap accounting of the run
    #: (:meth:`repro.gpusim.streams.StreamOverlapStats.as_dict`): serial
    #: vs pipelined makespan, seconds hidden by double-buffering.
    stream_overlap: dict = field(default_factory=dict)
    #: ops served host-side by store-to-load forwarding, per op class —
    #: a read on a key with a queued write is answered from the pending
    #: overlay (and a write on a definitely-absent key short-circuits to
    #: a miss) instead of fragmenting the device batches.
    forwarded: dict = field(default_factory=dict)

    @property
    def operations(self) -> int:
        return (self.lookups + self.updates + self.deletes
                + self.inserts + self.scans)

    def mean_latency_us(self, kind: str) -> float:
        """Measured mean host latency per operation of one class, in
        microseconds (0.0 if that class never ran)."""
        count = {
            "lookup": self.lookups, "update": self.updates,
            "delete": self.deletes, "insert": self.inserts,
            "scan": self.scans,
        }[kind]
        if not count:
            return 0.0
        return self.wall_s.get(kind, 0.0) / count * 1e6

    _COUNT_FIELDS = (
        "lookups", "updates", "deletes", "inserts", "scans", "hits",
        "misses", "update_misses", "delete_misses", "inserts_deferred",
        "records_scanned", "batches", "compactions",
    )
    _SUM_DICTS = (
        "batches_by_op", "wall_s", "flush_reasons", "ops_by_status",
        "forwarded", "absorbed",
    )

    def merge(self, other: "MixedReport", *, concurrent: bool = True) -> None:
        """Fold another report into this one.

        ``concurrent=True`` means the two runs shared the same simulated
        interval on independent devices (one shard each), so the
        combined :attr:`stream_overlap` makespan is the max of the two
        and stream counts add; ``concurrent=False`` means the runs were
        sequential (e.g. segments separated by a scan barrier), so
        makespans add.  Latency percentiles are merged as count-weighted
        means — an estimate, exact only when the distributions match —
        with exact count/min/max.
        """
        for name in self._COUNT_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name in self._SUM_DICTS:
            mine = getattr(self, name)
            for k, v in getattr(other, name).items():
                mine[k] = mine.get(k, 0) + v
        # per-op simulated throughput records the *last* batch of each
        # class; across shards keep the best observed rate per class
        for k, v in other.simulated_mops.items():
            self.simulated_mops[k] = max(self.simulated_mops.get(k, 0.0), v)
        for op, s in other.latency_percentiles_by_op.items():
            self.latency_percentiles_by_op[op] = merge_percentile_summaries(
                self.latency_percentiles_by_op.get(op), s
            )
        so, oo = self.stream_overlap, other.stream_overlap
        if not so:
            self.stream_overlap = dict(oo)
        elif oo:
            serial = so.get("serial_s", 0.0) + oo.get("serial_s", 0.0)
            if concurrent:
                makespan = max(so.get("makespan_s", 0.0),
                               oo.get("makespan_s", 0.0))
                streams = so.get("streams", 0) + oo.get("streams", 0)
            else:
                makespan = (so.get("makespan_s", 0.0)
                            + oo.get("makespan_s", 0.0))
                streams = max(so.get("streams", 0), oo.get("streams", 0))
            saved = max(serial - makespan, 0.0)
            self.stream_overlap = {
                "batches": so.get("batches", 0) + oo.get("batches", 0),
                "streams": streams,
                "serial_s": round(serial, 9),
                "makespan_s": round(makespan, 9),
                "saved_s": round(saved, 9),
                "overlap_ratio": round(saved / serial, 4) if serial else 0.0,
            }


def _found_count(result) -> int:
    """Hits / found-flags in one result batch, vectorized when the
    engine returned a :class:`~repro.host.results.BatchResult` (the
    canonical ``found_array``; the legacy ``.hit_mask`` / ``.array``
    accessors are deprecated and never probed here)."""
    arr = getattr(result, "found_array", None)
    if arr is not None:
        return int(np.count_nonzero(arr))
    if isinstance(result, (list, tuple)):
        return sum(1 for v in result if v is not None and v is not False)
    return sum(1 for v in result if v is not None and v is not False)


def _tally_status(report: MixedReport, result, n: int) -> None:
    """Fold one result's per-op status codes into the report (foreign
    result shapes without statuses count as ``OK``)."""
    by = report.ops_by_status
    counts = getattr(result, "counts_by_status", None)
    if counts is not None:
        for name, c in counts().items():
            by[name] = by.get(name, 0) + c
    else:
        by["OK"] = by.get("OK", 0) + n


class MixedWorkloadExecutor:
    """Run interleaved ``lookup`` / ``update`` / ``delete`` / ``insert`` /
    ``scan`` streams (the YCSB-profile op set,
    :mod:`repro.workloads.ycsb`)."""

    def __init__(self, engine: CuartEngine, *, shard=None,
                 memtable=None) -> None:
        self.engine = engine
        #: shard id stamped onto flight records (set by the sharded
        #: executor; None when serving a single device).
        self.shard = shard
        #: write-absorption policy: ``None`` keeps the synchronous
        #: coalesced write path; a :class:`~repro.host.memtable.
        #: MemtableConfig` (or ``True`` for the defaults) absorbs
        #: writes host-side and merge-compacts in the background (a
        #: fresh :class:`~repro.host.memtable.Memtable` per run, on
        #: :attr:`memtable`).
        self.memtable_config = (
            MemtableConfig() if memtable is True else memtable
        )
        #: :class:`~repro.host.memtable.Memtable` of the current/last
        #: run (None while disabled); ``memtable.stats()`` carries the
        #: absorbed-ratio / compaction-debt numbers.
        self.memtable = None
        #: shares the engine's observability surface so executor, engine,
        #: cache and write-kernel series land in one registry snapshot.
        self.metrics: MetricsRegistry = getattr(
            engine, "metrics", None
        ) or MetricsRegistry()
        self.tracer = getattr(engine, "tracer", None) or NULL_TRACER
        self.flight = getattr(engine, "flight", None) or NULL_FLIGHT_RECORDER
        #: StreamOverlapStats of the last run (with per-window event
        #: timelines) — feed to repro.obs.critical_path.attribute_stats.
        self.last_overlap_stats = None
        #: :class:`~repro.host.overlay.WriteOverlay` of the current/last
        #: run (fresh per run(); snapshot() exposes pending effects).
        self.overlay = None
        self._m_latency = self.metrics.histogram(
            "mixed_op_latency_us",
            "measured host wall-clock per op through the mixed executor",
            labels=("op",),
        )
        self._m_forwarded = self.metrics.counter(
            "mixed_forwarded_total",
            "ops answered host-side by store-to-load forwarding",
            labels=("op",),
        )

    def run(self, stream) -> tuple[list, MixedReport]:
        """Execute the stream; returns (lookup results in stream order,
        report).  Lookup results align with the stream's lookup ops.

        The report's :attr:`~MixedReport.latency_percentiles_by_op` reads
        the registry histograms, which are *cumulative over the engine's
        lifetime* (Prometheus semantics); :attr:`~MixedReport.flush_reasons`
        is the per-run delta.
        """
        report = MixedReport()
        results: list = []
        engine = self.engine
        tracer = self.tracer
        latency = self._m_latency
        coal = OpClassCoalescer(engine.batch_size, metrics=self.metrics)
        reasons_before = coal.flush_reasons()
        # pipelined dispatch: engines exposing the async submit/drain
        # surface get their batches accounted against the double-buffered
        # stream scheduler (batch i+1's staging overlaps batch i's
        # kernel); results are exact either way.
        submit = getattr(engine, "submit", None)
        if getattr(engine, "drain", None) is None:
            submit = None
        overlap = None
        # flight recording: one hoisted bool keeps the disabled path at
        # a single truthiness check per op (NULL_FLIGHT_RECORDER is the
        # allocation-free NullTracer pattern).
        flight = self.flight
        fl_on = flight.enabled
        fr_begin = flight.begin
        shard = self.shard
        #: sampled records awaiting their class queue's flush, in queue
        #: order (only sampled ops appear, so never count-match these
        #: against payload lists — records carry their queue_pos).
        pending_fr: dict = {}
        #: records whose batch already flushed, keyed by the flushed
        #: payload list's id (popped by execute immediately after).
        batch_fr: dict = {}

        def fr_enqueue(kind: str, key, payload_obj, batches) -> None:
            """Create this op's record (sampling permitting) and migrate
            records of any just-flushed class queues onto their payload
            lists, so execute() can stamp them."""
            rec = fr_begin(kind, key, shard)
            placed = rec is None
            for k, ps in batches:
                moved = pending_fr.pop(k, None)
                mine = (
                    not placed and k == kind and ps and ps[-1] is payload_obj
                )
                if moved or mine:
                    tgt = batch_fr.setdefault(id(ps), [])
                    if moved:
                        tgt.extend(moved)
                    if mine:
                        # the op that triggered the size-full flush rides
                        # in the returned batch itself
                        rec.queue_pos = len(ps) - 1
                        tgt.append(rec)
                        placed = True
            if not placed:
                rec.queue_pos = coal.queue_len(kind) - 1
                pending_fr.setdefault(kind, []).append(rec)

        def fr_complete(kind: str, payloads: list, res, td: float) -> None:
            """Stamp the batch's sampled records with dispatch time,
            status/attempts and the simulated device-stage timeline."""
            recs = batch_fr.pop(id(payloads), None)
            pend = pending_fr.pop(kind, None)
            if pend:
                recs = recs + pend if recs else pend
            if not recs:
                return
            statuses = attempts = None
            if res is not None:
                codes = getattr(res, "status", None)
                if codes is not None:
                    statuses = [
                        _STATUS_NAMES.get(int(c), str(c)) for c in codes
                    ]
                attempts = getattr(res, "attempts", None)
            flight.complete(
                recs, batch_id=coal.batches_flushed, t_dispatch_us=td,
                statuses=statuses, attempts=attempts,
                sim_events=getattr(engine, "last_events", None),
                batch_size=len(payloads),
            )

        def dispatch(kind: str, payloads: list):
            if submit is not None:
                return submit(kind, payloads)
            return getattr(engine, kind)(payloads)

        def close_window() -> None:
            """Drain the stream pipeline (scan barrier / end of stream)
            and fold the window's overlap stats into the report."""
            nonlocal overlap
            if submit is None:
                return
            window = engine.drain()
            if overlap is None:
                overlap = window
            else:
                overlap.add_window(window)

        def execute(kind: str, payloads: list) -> None:
            nonlocal read_snap
            t0 = time.perf_counter()
            res = None
            td = flight.now_us() if fl_on else 0.0
            with tracer.span(f"mixed.{kind}", {"n": len(payloads)}):
                if kind == "lookup":
                    values = res = dispatch(
                        "lookup", [p[0] for p in payloads]
                    )
                    vals = list(values)
                    flips: list = []
                    if read_snap is not None:
                        # snapshot reads: the batch pinned the layout
                        # epoch its first lookup was enqueued on; if a
                        # debt-triggered compaction installed newer
                        # writes since, restate those keys from the
                        # snapshot's shield / pinned delta
                        snap = read_snap
                        read_snap = None
                        shield, pinned = snap.shield, snap.pinned
                        if shield or pinned:
                            for i, (key, _) in enumerate(payloads):
                                ent = shield.get(key)
                                if ent is None:
                                    pe = pinned.get(key)
                                    if pe is not None:
                                        ent = (pe[0] != "absent", pe[1])
                                if ent is not None:
                                    found, val = ent
                                    dev_found = vals[i] is not None
                                    if dev_found != found:
                                        flips.append(found)
                                    vals[i] = val if found else None
                        snap.release()
                    for (_, seq), v in zip(payloads, vals):
                        results[seq] = v
                    report.lookups += len(payloads)
                    hits = sum(1 for v in vals if v is not None)
                    report.hits += hits
                    report.misses += len(payloads) - hits
                    _tally_status(report, values, len(payloads))
                    for found in flips:
                        by = report.ops_by_status
                        dec = "NOT_FOUND" if found else "OK"
                        inc = "OK" if found else "NOT_FOUND"
                        by[dec] = by.get(dec, 0) - 1
                        by[inc] = by.get(inc, 0) + 1
                elif kind == "update":
                    found = res = dispatch("update", payloads)
                    report.updates += len(payloads)
                    report.update_misses += (
                        len(payloads) - _found_count(found)
                    )
                    _tally_status(report, found, len(payloads))
                elif kind == "insert":
                    out = res = dispatch("insert", payloads)
                    report.inserts += len(payloads)
                    summary = getattr(out, "summary", None)
                    report.inserts_deferred += (
                        summary["deferred"] if summary is not None
                        else out["deferred"]
                    )
                    _tally_status(report, out, len(payloads))
                elif kind == "scan":
                    for lo, hi in payloads:
                        rows = engine.range(lo, hi)
                        report.records_scanned += len(rows)
                    report.scans += len(payloads)
                    _tally_status(report, None, len(payloads))
                else:  # delete
                    found = res = dispatch("delete", payloads)
                    report.deletes += len(payloads)
                    report.delete_misses += (
                        len(payloads) - _found_count(found)
                    )
                    _tally_status(report, found, len(payloads))
            if fl_on:
                fr_complete(kind, payloads, res, td)
            dt = time.perf_counter() - t0
            report.batches += 1
            report.batches_by_op[kind] = report.batches_by_op.get(kind, 0) + 1
            report.wall_s[kind] = report.wall_s.get(kind, 0.0) + dt
            n = len(payloads)
            latency.labels(op=kind).observe(dt / n * 1e6, n)
            if engine.last_report is not None:
                report.simulated_mops[kind] = (
                    engine.last_report.end_to_end_mops
                )

        # Store-to-load forwarding through the engine-level pending-write
        # overlay (repro.host.overlay): a lookup on an overlaid key is
        # answered host-side — exactly what a serial client would see —
        # instead of forcing a dependency cut through the coalescer, and
        # a write against a definitely-absent key short-circuits to a
        # miss without any device work.
        #
        # With the memtable enabled (repro.host.memtable) the overlay IS
        # the memtable's delta: writes absorb host-side in O(1) instead
        # of queueing, and their folded device rows ride background
        # merge-compaction batches; reads keep the same one-dict-probe
        # forwarding path over the shared delta.
        mt = None
        if self.memtable_config is not None \
                and getattr(engine, "contains", None) is not None:
            mt = Memtable(
                engine, self.memtable_config, metrics=self.metrics
            )
        self.memtable = mt
        overlay = self.overlay = (
            mt.delta if mt is not None
            else WriteOverlay(getattr(engine, "contains", None))
        )
        #: snapshot pinned by the oldest queued device lookup (None
        #: while no lookup is in flight); released at its batch flush.
        read_snap = None

        def compact_dispatch(kind: str, payloads: list):
            """Scatter one folded compaction batch, accounted like any
            other flush (it rides the submit/drain stream pipeline) but
            without re-tallying per-op outcomes — those were resolved
            at absorb time."""
            t0 = time.perf_counter()
            with tracer.span(f"mixed.compact.{kind}",
                             {"n": len(payloads)}):
                res = dispatch(kind, payloads)
            dt = time.perf_counter() - t0
            report.batches += 1
            bkey = f"compact-{kind}"
            report.batches_by_op[bkey] = (
                report.batches_by_op.get(bkey, 0) + 1
            )
            report.wall_s[bkey] = report.wall_s.get(bkey, 0.0) + dt
            if kind == "insert":
                summary = getattr(res, "summary", None)
                if summary is not None:
                    report.inserts_deferred += summary["deferred"]
            if engine.last_report is not None:
                report.simulated_mops[kind] = (
                    engine.last_report.end_to_end_mops
                )
            return res

        def maybe_compact(force: bool = False) -> None:
            if mt is None:
                return
            if force or mt.should_compact():
                out = mt.compact(compact_dispatch, force=force)
                if out is not None:
                    report.compactions += 1

        def absorb_done(kind: str, key, ok: bool) -> None:
            """Account one write acked host-side by the memtable, then
            run a compaction if the debt went over budget."""
            report.absorbed[kind] = report.absorbed.get(kind, 0) + 1
            by = report.ops_by_status
            name = "OK" if ok else "NOT_FOUND"
            by[name] = by.get(name, 0) + 1
            if fl_on:
                rec = fr_begin(kind, key, shard)
                if rec is not None:
                    flight.complete_absorbed(rec, ok)
            maybe_compact()

        def forward(kind: str, key, ok: bool) -> None:
            report.forwarded[kind] = report.forwarded.get(kind, 0) + 1
            self._m_forwarded.labels(op=kind).inc()
            by = report.ops_by_status
            name = "OK" if ok else "NOT_FOUND"
            by[name] = by.get(name, 0) + 1
            if fl_on:
                rec = fr_begin(kind, key, shard)
                if rec is not None:
                    flight.complete_forwarded(rec, ok)

        # hot loop: branches ordered by op frequency, bound locals, and
        # a forwarding fast path of one dict probe per read (the overlay
        # entries stay empty when the engine lacks ``contains``, so the
        # probes degrade to no-ops without per-op feature checks; writes
        # pay one bound-method call that records their pending effect)
        coal_add = coal.add
        overlay_get = overlay.entries.get
        resolve_read = overlay.resolve_read
        note_update = overlay.note_update
        note_delete = overlay.note_delete
        note_insert = overlay.note_insert
        results_append = results.append
        for kind, payload in stream:
            if kind == "lookup":
                st = overlay_get(payload)
                if st is None:
                    if mt is not None:
                        # snapshot reads: every queued lookup batch is
                        # pinned to ONE layout epoch.  If a compaction
                        # installed since the open batch pinned, close
                        # that batch at its own epoch (the snapshot's
                        # shield keeps its answers exact) before this
                        # read starts a new window on the fresh epoch.
                        if read_snap is not None \
                                and read_snap.epoch != mt.epoch:
                            for k, ps in coal.drain():
                                execute(k, ps)
                        if read_snap is None:
                            read_snap = mt.pin()
                    results_append(None)
                    pl = (payload, len(results) - 1)
                    batches = coal_add("lookup", payload, pl)
                    if fl_on:
                        fr_enqueue("lookup", payload, pl, batches)
                    for k, ps in batches:
                        execute(k, ps)
                else:
                    found, val = resolve_read(payload, st)
                    if found:
                        results_append(val)
                        report.hits += 1
                        forward("lookup", payload, True)
                    else:
                        results_append(None)
                        report.misses += 1
                        forward("lookup", payload, False)
                    report.lookups += 1
            elif kind == "update":
                key = payload[0]
                if mt is not None:
                    ok = mt.absorb_update(key, payload[1])
                    report.updates += 1
                    if not ok:
                        report.update_misses += 1
                    absorb_done("update", key, ok)
                    continue
                if not note_update(key, payload[1]):
                    # definitely gone: a guaranteed miss, and updates
                    # never resurrect — skip the device entirely
                    report.updates += 1
                    report.update_misses += 1
                    forward("update", key, False)
                    continue
                batches = coal_add("update", key, payload)
                if fl_on:
                    fr_enqueue("update", key, payload, batches)
                for k, ps in batches:
                    execute(k, ps)
            elif kind == "delete":
                if mt is not None:
                    ok = mt.absorb_delete(payload)
                    report.deletes += 1
                    if not ok:
                        report.delete_misses += 1
                    absorb_done("delete", payload, ok)
                    continue
                if not note_delete(payload):
                    report.deletes += 1
                    report.delete_misses += 1
                    forward("delete", payload, False)
                    continue
                batches = coal_add("delete", payload, payload)
                if fl_on:
                    fr_enqueue("delete", payload, payload, batches)
                for k, ps in batches:
                    execute(k, ps)
            elif kind == "insert":
                key = payload[0]
                if mt is not None:
                    mt.absorb_insert(key, payload[1])
                    report.inserts += 1
                    absorb_done("insert", key, True)
                    continue
                note_insert(key, payload[1])
                batches = coal_add("insert", key, payload)
                if fl_on:
                    fr_enqueue("insert", key, payload, batches)
                for k, ps in batches:
                    execute(k, ps)
            elif kind == "scan":
                # a range touches an unbounded key set: full barrier,
                # executed immediately
                if not (isinstance(payload, (tuple, list))
                        and len(payload) == 2):
                    raise ValueError(f"malformed scan payload {payload!r}")
                for k, ps in coal.drain():
                    execute(k, ps)
                # the scan reads the device layout: install every
                # absorbed write first (forced — correctness over cost)
                maybe_compact(force=True)
                close_window()
                pl = [tuple(payload)]
                if fl_on:
                    rec = fr_begin("scan", payload[0], shard)
                    if rec is not None:
                        rec.queue_pos = 0
                        batch_fr[id(pl)] = [rec]
                execute("scan", pl)
            else:
                raise ValueError(f"unknown operation {kind!r}")
        for k, ps in coal.drain():
            execute(k, ps)
        # end of stream: drain the memtable so the device layout holds
        # the folded effect of every absorbed write (serial-equivalent)
        maybe_compact(force=True)
        close_window()
        self.last_overlap_stats = overlap
        if overlap is not None:
            report.stream_overlap = overlap.as_dict()

        for kind in report.wall_s:
            summary = self.metrics.value("mixed_op_latency_us", op=kind)
            if summary:
                report.latency_percentiles_by_op[kind] = summary
        report.flush_reasons = {
            reason: count - reasons_before.get(reason, 0)
            for reason, count in coal.flush_reasons().items()
        }
        return results, report
