"""Mixed OLTP read/write execution (section 3.1's motivating scenario).

"Another problem arises when running mixed read/write workloads such as
typical OLTP benchmarks."  The executor consumes an interleaved stream
of lookups, updates and deletes (from
:func:`repro.workloads.queries.mixed_queries`) against a
:class:`~repro.host.engine.CuartEngine`, coalescing *runs of the same
operation type* into device batches while preserving the stream's
cross-type ordering — a read issued after a write to the same key
observes the write, exactly like a serial client would.

Hit/miss tallies come straight from the batch result arrays
(:attr:`LazyValues.hit_mask` / :attr:`FoundFlags.array`) — no per-item
Python counting — and the report carries measured host wall-clock per
operation class for latency accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.host.engine import CuartEngine


@dataclass
class MixedReport:
    """Counts and outcomes of one executed stream."""

    lookups: int = 0
    updates: int = 0
    deletes: int = 0
    inserts: int = 0
    scans: int = 0
    hits: int = 0
    misses: int = 0
    update_misses: int = 0
    delete_misses: int = 0
    inserts_deferred: int = 0
    records_scanned: int = 0
    #: device batches dispatched (one per same-op run per batch size).
    batches: int = 0
    #: end-to-end simulated MOps/s per op type (last batch of each).
    simulated_mops: dict = field(default_factory=dict)
    #: measured host wall-clock seconds spent per op class.
    wall_s: dict = field(default_factory=dict)

    @property
    def operations(self) -> int:
        return (self.lookups + self.updates + self.deletes
                + self.inserts + self.scans)

    def mean_latency_us(self, kind: str) -> float:
        """Measured mean host latency per operation of one class, in
        microseconds (0.0 if that class never ran)."""
        count = {
            "lookup": self.lookups, "update": self.updates,
            "delete": self.deletes, "insert": self.inserts,
            "scan": self.scans,
        }[kind]
        if not count:
            return 0.0
        return self.wall_s.get(kind, 0.0) / count * 1e6


def _hit_count(values) -> int:
    """Hits in one lookup result batch, vectorized when the engine
    returned a :class:`LazyValues` (plain lists come from the cache
    path)."""
    mask = getattr(values, "hit_mask", None)
    if mask is not None:
        return int(np.count_nonzero(mask))
    return sum(1 for v in values if v is not None)


def _found_count(found) -> int:
    """Found-flags in one update/delete result, vectorized when the
    engine returned a :class:`FoundFlags`."""
    arr = getattr(found, "array", None)
    if arr is not None:
        return int(np.count_nonzero(arr))
    return sum(1 for f in found if f)


class MixedWorkloadExecutor:
    """Run interleaved ``lookup`` / ``update`` / ``delete`` / ``insert`` /
    ``scan`` streams (the YCSB-profile op set,
    :mod:`repro.workloads.ycsb`)."""

    def __init__(self, engine: CuartEngine) -> None:
        self.engine = engine

    def run(self, stream) -> tuple[list, MixedReport]:
        """Execute the stream; returns (lookup results in stream order,
        report).  Lookup results align with the stream's lookup ops."""
        report = MixedReport()
        results: list = []
        run_kind: str | None = None
        pending: list = []

        def flush() -> None:
            nonlocal run_kind, pending
            if not pending:
                return
            t0 = time.perf_counter()
            if run_kind == "lookup":
                values = self.engine.lookup(pending)
                results.extend(values)
                report.lookups += len(pending)
                hits = _hit_count(values)
                report.hits += hits
                report.misses += len(pending) - hits
            elif run_kind == "update":
                found = self.engine.update(pending)
                report.updates += len(pending)
                report.update_misses += len(pending) - _found_count(found)
            elif run_kind == "insert":
                out = self.engine.insert(pending)
                report.inserts += len(pending)
                report.inserts_deferred += out["deferred"]
            elif run_kind == "scan":
                for lo, hi in pending:
                    rows = self.engine.range(lo, hi)
                    report.records_scanned += len(rows)
                report.scans += len(pending)
            else:  # delete
                found = self.engine.delete(pending)
                report.deletes += len(pending)
                report.delete_misses += len(pending) - _found_count(found)
            report.batches += 1
            report.wall_s[run_kind] = (
                report.wall_s.get(run_kind, 0.0) + time.perf_counter() - t0
            )
            if self.engine.last_report is not None:
                report.simulated_mops[run_kind] = (
                    self.engine.last_report.end_to_end_mops
                )
            pending = []

        for kind, payload in stream:
            if kind not in ("lookup", "update", "delete", "insert", "scan"):
                raise ValueError(f"unknown operation {kind!r}")
            if kind != run_kind:
                flush()
                run_kind = kind
            pending.append(payload)
            if len(pending) >= self.engine.batch_size:
                flush()
        flush()
        return results, report
