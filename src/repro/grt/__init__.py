"""GRT — the GPU Radix Tree baseline (Alam, Yoginath, Perumalla 2016).

The starting point of the paper: the host ART is flattened into a
*single* tightly-packed byte buffer via an in-order traversal and nodes
are addressed by 64-bit byte offsets.  Because the node type is encoded
inside the node itself, every node visit costs two dependent memory
transactions — read the header to learn the type, then read a body whose
size depends on it (section 3.1, figure 2).  Leaves are dynamically
sized.

CuART's evaluation compares against both a CUDA and an OpenCL build of
GRT; in this reproduction the two differ only in their host-pipeline
parameters (the OpenCL dispatch overlaps worse, section 4.3), selected in
:mod:`repro.host.dispatcher`.
"""

from repro.grt.layout import GrtLayout
from repro.grt.kernel import grt_lookup_batch, GrtLookupResult
from repro.grt.update import grt_update_batch, GrtUpdateResult
from repro.grt.range import grt_range_query, GrtRangeResult

__all__ = [
    "GrtLayout",
    "grt_lookup_batch",
    "GrtLookupResult",
    "grt_update_batch",
    "GrtUpdateResult",
    "grt_range_query",
    "GrtRangeResult",
]
