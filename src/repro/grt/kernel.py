"""Batched GRT lookup kernel over the single packed buffer.

The defining cost difference to CuART (section 3.1): "the node type is
encoded within the node structure itself ... This leads to at least two
memory accesses/transactions towards the local or global memory, because
the correct size to read depends on the node type, which is encoded
within the header."  Every traversal level therefore contributes *two*
dependent rounds (header, then body) of unaligned transactions, and leaf
comparisons run byte-oriented (section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    GRT_BODY_BYTES,
    GRT_HEADER_BYTES,
    GRT_MAX_PREFIX,
    LINK_N4,
    LINK_N16,
    LINK_N48,
    LINK_N256,
    N48_EMPTY_SLOT,
    NIL_VALUE,
)
from repro.grt.layout import GRT_LEAF_TYPE, GrtLayout
from repro.gpusim.transactions import TransactionLog

#: per-node traversal compute (same algorithm as ART, section 3.1).
NODE_COMPUTE_CYCLES = 20


@dataclass
class GrtLookupResult:
    """Outcome of one batched GRT lookup."""

    values: np.ndarray  # (B,) u64, NIL_VALUE on miss
    #: byte offset of the matched leaf record (0 on miss) — the GRT
    #: update path writes through this.
    locations: np.ndarray  # (B,) i64
    log: TransactionLog

    @property
    def hits(self) -> np.ndarray:
        return self.values != np.uint64(NIL_VALUE)


def grt_lookup_batch(
    layout: GrtLayout,
    keys_mat: np.ndarray,
    key_lens: np.ndarray,
    *,
    log: TransactionLog | None = None,
) -> GrtLookupResult:
    """Exact lookups against the packed GRT buffer."""
    layout.check_fresh()
    B, W = keys_mat.shape
    if log is None:
        log = TransactionLog()
    log.launched_threads = max(log.launched_threads, B)

    buf = layout.buffer
    offsets = np.full(B, layout.root_offset, dtype=np.int64)
    depth = np.zeros(B, dtype=np.int64)
    values = np.full(B, np.uint64(NIL_VALUE), dtype=np.uint64)
    locations = np.zeros(B, dtype=np.int64)
    active = np.ones(B, dtype=bool)
    if layout.root_offset == 0:
        active[:] = False

    for _ in range(W + 2):
        rows = np.nonzero(active)[0]
        if rows.size == 0:
            break
        off = offsets[rows]

        # ---- dependent round 1: header (type unknown until read) -----
        log.begin_round(rows.size)
        log.record(GRT_HEADER_BYTES, rows.size, aligned=False)
        hdr = buf[off[:, None] + np.arange(GRT_HEADER_BYTES, dtype=np.int64)]
        types = hdr[:, 0].astype(np.int64)
        counts = hdr[:, 1].astype(np.int64)
        plen = hdr[:, 2].astype(np.int64) | (hdr[:, 3].astype(np.int64) << 8)
        stored_prefix = hdr[:, 4 : 4 + GRT_MAX_PREFIX]
        log.rounds[-1].distinct_bytes = int(np.unique(off).size) * GRT_HEADER_BYTES

        # ---- dependent round 2: body (size now known) -----------------
        log.begin_round(rows.size)
        distinct = 0
        for code in np.unique(types):
            sel = types == code
            grp = rows[sel]
            goff = off[sel]
            if code == GRT_LEAF_TYPE:
                distinct += _step_leaf(
                    layout, grp, goff, plen[sel], keys_mat, key_lens,
                    values, locations, active, log,
                )
            elif code in (LINK_N4, LINK_N16, LINK_N48, LINK_N256):
                distinct += _step_node(
                    layout, int(code), grp, goff, counts[sel], plen[sel],
                    stored_prefix[sel], keys_mat, key_lens, offsets, depth,
                    active, log,
                )
            else:  # corrupted link / sentinel
                active[grp] = False
        log.rounds[-1].distinct_bytes = distinct
    return GrtLookupResult(values=values, locations=locations, log=log)


#: bytes GRT actually gathers from a node body after the header decode.
#: Small bodies (N4/N16) stream in one read; N48 needs the child-index
#: region *then* the selected offset (a second dependent access — charged
#: in the same round, latency slightly undercounted); N256 fetches just
#: the addressed offset.  GRT never streams the full 650B/2KB records —
#: it cannot afford to without knowing alignment — which is exactly why
#: its accesses stay small, scattered and dependent (section 3.1), while
#: CuART deliberately "trades memory bandwidth for access latency" and
#: pulls whole known-size records.
_GRT_BODY_READS = {
    LINK_N4: (GRT_BODY_BYTES[LINK_N4],),  # 40 B: keys + offsets
    LINK_N16: (GRT_BODY_BYTES[LINK_N16],),  # 144 B: keys + offsets
    LINK_N48: (256, 8),  # child index region, then the offset
    LINK_N256: (8,),  # the addressed offset only
}


def _step_node(
    layout, code, rows, off, counts, plen, stored_prefix, keys_mat, key_lens,
    offsets, depth, active, log,
) -> int:
    buf = layout.buffer
    body_reads = _GRT_BODY_READS[code]
    body_bytes = sum(body_reads)
    for nbytes in body_reads:
        log.record(nbytes, rows.size, aligned=False)
    log.record_compute(NODE_COMPUTE_CYCLES * rows.size)
    W = keys_mat.shape[1]

    # optimistic prefix check over the 12 stored bytes
    ok = depth[rows] + plen < key_lens[rows]
    stored = np.minimum(plen, GRT_MAX_PREFIX)
    if stored.max(initial=0) > 0:
        P = GRT_MAX_PREFIX
        pos = depth[rows, None] + np.arange(P, dtype=np.int64)[None, :]
        gathered = keys_mat[rows[:, None], np.minimum(pos, W - 1)]
        valid = np.arange(P, dtype=np.int64)[None, :] < stored[:, None]
        ok &= ~((gathered != stored_prefix) & valid).any(axis=1)

    ndepth = depth[rows] + plen
    byte = keys_mat[rows, np.minimum(ndepth, W - 1)].astype(np.int64)
    body = off + GRT_HEADER_BYTES
    if code in (LINK_N4, LINK_N16):
        cap = 4 if code == LINK_N4 else 16
        keys_area = buf[body[:, None] + np.arange(cap, dtype=np.int64)[None, :]]
        slot_valid = np.arange(cap, dtype=np.int64)[None, :] < counts[:, None]
        eq = (keys_area == byte[:, None].astype(np.uint8)) & slot_valid
        found = eq.any(axis=1)
        slot = eq.argmax(axis=1)
        off_area = body + (8 if code == LINK_N4 else cap)
        child = layout.read_u64(off_area + slot * 8).astype(np.int64)
    elif code == LINK_N48:
        slot = buf[body + byte].astype(np.int64)
        found = slot != N48_EMPTY_SLOT
        child = layout.read_u64(body + 256 + np.minimum(slot, 47) * 8).astype(
            np.int64
        )
    else:  # N256
        child = layout.read_u64(body + byte * 8).astype(np.int64)
        found = child != 0
    ok &= found
    ok &= child > 0
    active[rows[~ok]] = False
    go = rows[ok]
    offsets[go] = child[ok]
    depth[go] = ndepth[ok] + 1
    return int(np.unique(off).size) * body_bytes


def _step_leaf(
    layout, rows, off, key_len_field, keys_mat, key_lens, values, locations,
    active, log,
) -> int:
    """Dynamically-sized leaf: read the key bytes (second transaction on
    top of the header) and compare byte-by-byte."""
    buf = layout.buffer
    stored_len = key_len_field  # from the header's key_len field
    value = layout.read_u64(off + 8)
    W = keys_mat.shape[1]
    L = int(min(max(int(stored_len.max(initial=0)), 1), W))
    pos = off[:, None] + GRT_HEADER_BYTES + np.arange(L, dtype=np.int64)[None, :]
    stored = buf[np.minimum(pos, buf.size - 1)]
    valid = np.arange(L, dtype=np.int64)[None, :] < stored_len[:, None]
    mismatch = ((stored != keys_mat[rows, :L]) & valid).any(axis=1)
    match = (stored_len == key_lens[rows]) & ~mismatch

    padded = ((stored_len + 7) & ~7).astype(np.int64)
    log.record(8, int((padded // 8).sum()), aligned=False)
    # byte-oriented compare loop (section 4.4): one cycle per key byte
    log.record_compute(int(stored_len.sum()))

    values[rows[match]] = value[match]
    locations[rows[match]] = off[match]
    active[rows] = False
    uniq_first = np.unique(off, return_index=True)[1]
    return int((GRT_HEADER_BYTES + padded[uniq_first]).sum())
