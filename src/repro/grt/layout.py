"""GRT single-buffer layout (figure 1, lower half; figure 2, left).

Record formats inside the packed buffer (all little-endian, *no*
alignment guarantees — records are packed back to back, which is exactly
the property CuART fixes):

Inner node::

    header (16 B): [type u8][num_children u8][prefix_len u16][prefix 12 B]
    body by type:
        N4   : keys 4 B  + pad 4 B + offsets 4×8 B   =   40 B
        N16  : keys 16 B           + offsets 16×8 B  =  144 B
        N48  : child_index 256 B   + offsets 48×8 B  =  640 B
        N256 :                       offsets 256×8 B = 2048 B

(640 + 16 ≈ the paper's "650B for N48", 2048 + 16 ≈ its "2KB for N256".)

Leaf (dynamically sized)::

    header (16 B): [type u8][pad u8][key_len u16][pad u32][value u64]
    key bytes (key_len, padded to the next 8-byte boundary)

Child offsets are absolute byte offsets of the target record; offset 0 is
the null reference (the buffer starts with a 16-byte sentinel, so no real
record lives at 0).
"""

from __future__ import annotations

import numpy as np

from repro.art.nodes import InnerNode, Leaf
from repro.art.tree import AdaptiveRadixTree
from repro.constants import (
    GRT_BODY_BYTES,
    GRT_HEADER_BYTES,
    GRT_MAX_PREFIX,
    LINK_N4,
    LINK_N16,
    LINK_N48,
    LINK_N256,
    N48_EMPTY_SLOT,
)
from repro.errors import StaleLayoutError

#: type tag of a GRT leaf record inside the buffer.
GRT_LEAF_TYPE = 5

_SENTINEL = 16  # bytes reserved at offset 0 so that 0 can mean "null"


def _leaf_record_size(key_len: int) -> int:
    return GRT_HEADER_BYTES + ((key_len + 7) & ~7)


def _node_record_size(type_code: int) -> int:
    return GRT_HEADER_BYTES + GRT_BODY_BYTES[type_code]


class GrtLayout:
    """The mapped single-buffer GRT index."""

    def __init__(self, tree: AdaptiveRadixTree) -> None:
        self._source = tree
        self._source_version = tree.version
        size = _SENTINEL + _total_size(tree)
        self.buffer = np.zeros(size, dtype=np.uint8)
        self._cursor = _SENTINEL
        self.root_offset = 0 if tree.root is None else self._map(tree.root)
        #: deepest traversal level, for query cost accounting.
        self.max_levels = _depth(tree.root)
        self.num_keys = len(tree)

    # ------------------------------------------------------------------
    def check_fresh(self) -> None:
        if self._source.version != self._source_version:
            raise StaleLayoutError(
                "host tree changed since mapping; re-map the GRT buffer",
                mapped_version=self._source_version,
                tree_version=self._source.version,
            )

    @property
    def device_bytes(self) -> int:
        return self.buffer.nbytes

    # ------------------------------------------------------------------
    def _map(self, node) -> int:
        """DFS in-order serialization; returns the record's byte offset."""
        if isinstance(node, Leaf):
            return self._map_leaf(node)
        code = node.TYPE
        off = self._cursor
        self._cursor += _node_record_size(code)
        buf = self.buffer
        buf[off] = code
        # the count byte is only consumed for N4/N16 slot masking; a full
        # N256 (256 children) saturates the u8 harmlessly
        buf[off + 1] = min(node.num_children, 255)
        plen = len(node.prefix)
        buf[off + 2 : off + 4] = np.frombuffer(
            plen.to_bytes(2, "little"), dtype=np.uint8
        )
        stored = node.prefix[:GRT_MAX_PREFIX]
        if stored:
            buf[off + 4 : off + 4 + len(stored)] = np.frombuffer(
                stored, dtype=np.uint8
            )
        body = off + GRT_HEADER_BYTES
        if code in (LINK_N4, LINK_N16):
            cap = 4 if code == LINK_N4 else 16
            key_area = body
            # N4 pads its 4 key bytes to 8 so the offsets start uniformly
            off_area = body + (8 if code == LINK_N4 else cap)
            for slot, (byte, child) in enumerate(node.children_items()):
                buf[key_area + slot] = byte
                self._write_offset(off_area + slot * 8, self._map(child))
        elif code == LINK_N48:
            buf[body : body + 256] = N48_EMPTY_SLOT
            off_area = body + 256
            for slot, (byte, child) in enumerate(node.children_items()):
                buf[body + byte] = slot
                self._write_offset(off_area + slot * 8, self._map(child))
        else:  # N256
            for byte, child in node.children_items():
                self._write_offset(body + byte * 8, self._map(child))
        return off

    def _map_leaf(self, leaf: Leaf) -> int:
        off = self._cursor
        self._cursor += _leaf_record_size(len(leaf.key))
        buf = self.buffer
        buf[off] = GRT_LEAF_TYPE
        buf[off + 2 : off + 4] = np.frombuffer(
            len(leaf.key).to_bytes(2, "little"), dtype=np.uint8
        )
        buf[off + 8 : off + 16] = np.frombuffer(
            int(leaf.value).to_bytes(8, "little"), dtype=np.uint8
        )
        buf[off + 16 : off + 16 + len(leaf.key)] = np.frombuffer(
            leaf.key, dtype=np.uint8
        )
        return off

    def _write_offset(self, at: int, offset: int) -> None:
        self.buffer[at : at + 8] = np.frombuffer(
            int(offset).to_bytes(8, "little"), dtype=np.uint8
        )

    # ------------------------------------------------------------------
    # helpers shared with the kernel
    # ------------------------------------------------------------------
    def read_u64(self, offsets: np.ndarray) -> np.ndarray:
        """Vectorized little-endian u64 gather at arbitrary byte offsets."""
        out = np.zeros(offsets.size, dtype=np.uint64)
        for b in range(8):
            out |= self.buffer[offsets + b].astype(np.uint64) << np.uint64(8 * b)
        return out


def _total_size(tree: AdaptiveRadixTree) -> int:
    total = 0
    stack = [tree.root] if tree.root is not None else []
    while stack:
        node = stack.pop()
        if isinstance(node, Leaf):
            total += _leaf_record_size(len(node.key))
        else:
            assert isinstance(node, InnerNode)
            total += _node_record_size(node.TYPE)
            stack.extend(c for _, c in node.children_items())
    return total


def _depth(root) -> int:
    if root is None:
        return 0
    best = 0
    stack = [(root, 1)]
    while stack:
        node, d = stack.pop()
        best = max(best, d)
        if not isinstance(node, Leaf):
            stack.extend((c, d + 1) for _, c in node.children_items())
    return best
