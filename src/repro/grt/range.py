"""GRT range queries over the single in-order buffer.

The GRT paper (Alam et al. 2016) evaluates *point and range* queries:
because the mapping serializes the tree depth-first in byte order, leaf
records appear in the packed buffer in lexicographic key order.  A range
query therefore finds the first leaf ≥ lo and the last leaf ≤ hi and
scans the records in between — but unlike CuART's per-size leaf arrays
(where the answer is a pair of *indices*, section 3.2.1), the GRT scan
must decode every record header on the way because inner-node records of
arbitrary sizes are interleaved with the leaves.  That decode-as-you-go
scan is exactly the cost CuART's split leaf buffers delete.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    GRT_BODY_BYTES,
    GRT_HEADER_BYTES,
    NIL_VALUE,
)
from repro.grt.layout import (
    GRT_LEAF_TYPE,
    GrtLayout,
    _leaf_record_size,
    _node_record_size,
)
from repro.gpusim.transactions import TransactionLog


@dataclass
class GrtRangeResult:
    """One GRT range query's outcome."""

    keys: list
    values: np.ndarray
    #: records decoded during the scan (leaves + interleaved nodes).
    records_scanned: int
    log: TransactionLog

    def __len__(self) -> int:
        return len(self.keys)


def grt_range_query(
    layout: GrtLayout,
    lo: bytes,
    hi: bytes,
    *,
    log: TransactionLog | None = None,
) -> GrtRangeResult:
    """All ``(key, value)`` pairs with ``lo <= key <= hi``.

    Implemented as the in-order buffer scan described above; every
    decoded record charges its header (and, for leaves in range, its key
    bytes) as unaligned transactions.
    """
    layout.check_fresh()
    if log is None:
        log = TransactionLog()
    buf = layout.buffer
    out_keys: list[bytes] = []
    out_vals: list[int] = []
    scanned = 0

    # Locate the start: descend for `lo` and begin the scan at the record
    # where the descent stopped.  The mapping serializes every node
    # *before* its subtree, and subtrees left of the descent path hold
    # only keys smaller than `lo`, so nothing qualifying precedes this
    # offset; keys below it that are still < lo are filtered by the scan.
    log.begin_round(2)
    log.record(GRT_HEADER_BYTES, 2 * max(layout.max_levels, 1), aligned=False)
    start = _descent_offset(layout, lo)

    off = start if start else 16  # empty tree: scan nothing past sentinel
    end = layout.buffer.size if start else 16
    log.begin_round(1)
    past_hi = False
    while off < end and not past_hi:
        rtype = int(buf[off])
        if rtype == 0:
            break  # trailing padding
        scanned += 1
        if rtype == GRT_LEAF_TYPE:
            key_len = int(buf[off + 2]) | (int(buf[off + 3]) << 8)
            log.record(GRT_HEADER_BYTES, 1, aligned=False)
            key = bytes(buf[off + 16 : off + 16 + key_len])
            if key > hi:
                past_hi = True  # in-order: nothing later can qualify
            elif key >= lo:
                log.record(((key_len + 7) & ~7) + 8, 1, aligned=False)
                value = layout.read_u64(np.array([off + 8], dtype=np.int64))
                v = int(value[0])
                if v != NIL_VALUE:
                    out_keys.append(key)
                    out_vals.append(v)
            off += _leaf_record_size(key_len)
        else:
            # inner record: decode the header to learn how far to skip
            log.record(GRT_HEADER_BYTES, 1, aligned=False)
            off += _node_record_size(rtype)
    log.rounds[-1].distinct_bytes = min(end - 16, scanned * 64)

    return GrtRangeResult(
        keys=out_keys,
        values=np.array(out_vals, dtype=np.uint64),
        records_scanned=scanned,
        log=log,
    )


def _descent_offset(layout: GrtLayout, key: bytes) -> int | None:
    """Offset of the record where a traversal for ``key`` stops (the
    scan's start position); ``None`` for an empty tree."""
    from repro.constants import (
        GRT_MAX_PREFIX,
        LINK_N4,
        LINK_N16,
        LINK_N48,
        LINK_N256,
        N48_EMPTY_SLOT,
    )

    if layout.root_offset == 0:
        return None
    buf = layout.buffer
    off = layout.root_offset
    depth = 0
    while True:
        rtype = int(buf[off])
        if rtype == GRT_LEAF_TYPE or rtype not in (
            LINK_N4, LINK_N16, LINK_N48, LINK_N256,
        ):
            return off
        plen = int(buf[off + 2]) | (int(buf[off + 3]) << 8)
        stored = bytes(buf[off + 4 : off + 4 + min(plen, GRT_MAX_PREFIX)])
        window = key[depth : depth + len(stored)]
        if window != stored[: len(window)]:
            return off
        depth += plen
        if depth >= len(key):
            return off
        b = key[depth]
        body = off + GRT_HEADER_BYTES
        child = 0
        if rtype in (LINK_N4, LINK_N16):
            cap = 4 if rtype == LINK_N4 else 16
            count = int(buf[off + 1])
            off_area = body + (8 if rtype == LINK_N4 else cap)
            for slot in range(min(count, cap)):
                if int(buf[body + slot]) == b:
                    child = int(
                        layout.read_u64(
                            np.array([off_area + slot * 8], dtype=np.int64)
                        )[0]
                    )
                    break
        elif rtype == LINK_N48:
            slot = int(buf[body + b])
            if slot != N48_EMPTY_SLOT:
                child = int(
                    layout.read_u64(
                        np.array([body + 256 + slot * 8], dtype=np.int64)
                    )[0]
                )
        else:  # N256
            child = int(
                layout.read_u64(np.array([body + b * 8], dtype=np.int64))[0]
            )
        if child == 0:
            return off
        off = child
        depth += 1
