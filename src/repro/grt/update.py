"""GRT batched update path — the baseline of figure 17.

GRT has no conflict-elimination stage: every thread that located its leaf
performs a *globally visible atomic* read-modify-write on the value word,
ordered by thread id so the batch semantics stay deterministic
(last-writer-wins, like CuART).  Correctness is identical to CuART's
result; the cost is not: conflicting writers serialize on the same
address, every write pays a global-visibility fence, and the L2 cannot
coalesce the traffic.  Figure 17 shows the consequence — GRT updates
plateau around 13 MOps/s regardless of tree size ("the throughput of GRT
remains almost constant in GRT, which indicates memory conflicts") while
CuART sustains ~120 MOps/s.

The stall model: each atomic RMW occupies its target cache line for a
full memory round trip; the device can only keep a small number of such
fenced atomics in flight (``ATOMIC_CONCURRENCY``), so a batch of ``n``
writes self-inflicts ``n / concurrency × latency`` of serialization on
top of the traversal cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import NIL_VALUE
from repro.grt.kernel import grt_lookup_batch
from repro.grt.layout import GrtLayout
from repro.gpusim.transactions import TransactionLog

#: fenced atomic RMWs a GPU keeps in flight to *conflux-free* addresses;
#: globally-visible atomics with store ordering are far more restricted
#: than plain loads (tens, not tens of thousands).
ATOMIC_CONCURRENCY = 8
#: full global round trip of one fenced atomic (read + own + write back).
ATOMIC_RMW_LATENCY_S = 6.0e-7


@dataclass
class GrtUpdateResult:
    found: np.ndarray  # (B,) bool
    writes: int
    #: writes that hit an address another thread also wrote (serialized).
    conflicting_writes: int
    log: TransactionLog


def grt_update_batch(
    layout: GrtLayout,
    keys_mat: np.ndarray,
    key_lens: np.ndarray,
    new_values: np.ndarray,
    *,
    deletes: np.ndarray | None = None,
    log: TransactionLog | None = None,
) -> GrtUpdateResult:
    """Apply one update batch with GRT's direct-atomic strategy."""
    layout.check_fresh()
    B = keys_mat.shape[0]
    if log is None:
        log = TransactionLog()
    new_values = np.asarray(new_values, dtype=np.uint64)
    if deletes is None:
        deletes = np.zeros(B, dtype=bool)

    res = grt_lookup_batch(layout, keys_mat, key_lens, log=log)
    found = res.locations != 0
    rows = np.nonzero(found)[0]

    # deterministic last-writer-wins: apply in thread order (ascending
    # thread id = ascending priority), every write really executes
    vals = np.where(deletes, np.uint64(NIL_VALUE), new_values)
    for r in rows:
        off = int(res.locations[r]) + 8  # value word inside the leaf header
        layout.buffer[off : off + 8] = np.frombuffer(
            int(vals[r]).to_bytes(8, "little"), dtype=np.uint8
        )

    # cost: every located thread performs a fenced atomic RMW
    n_writes = int(rows.size)
    uniq, counts = np.unique(res.locations[rows], return_counts=True)
    conflicting = int(counts[counts > 1].sum())
    log.record(16, n_writes, aligned=False)  # RMW traffic
    log.record_atomics(n_writes)
    # serialized stall: conflicts queue behind each other on one line;
    # non-conflicting atomics still fence but pipeline up to the
    # concurrency limit
    serial_chains = counts.max(initial=0)  # deepest same-address queue
    pipelined = n_writes / ATOMIC_CONCURRENCY
    log.serial_stall_s += (
        max(pipelined, float(serial_chains)) * ATOMIC_RMW_LATENCY_S
    )
    return GrtUpdateResult(
        found=found,
        writes=n_writes,
        conflicting_writes=conflicting,
        log=log,
    )
