"""The one batch-serving contract every front-end drives.

Three execution surfaces grew side by side — the single-device
:class:`~repro.host.mixed.MixedWorkloadExecutor`, the key-space-sharded
:class:`~repro.host.sharding.ShardedMixedExecutor`, and now the online
:class:`~repro.serve.core.ServerCore` — all consuming the same
interleaved op stream and producing the same ``(results, MixedReport)``
pair.  :class:`Dispatch` names that contract so benchmarks, the load
generator and user code can accept "anything that serves a stream"
without caring which engine topology sits behind it, and
:func:`make_dispatch` picks the right implementation from whatever the
caller already has in hand.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.errors import ReproError
from repro.host.mixed import MixedReport, MixedWorkloadExecutor
from repro.host.sharding import ShardedEngine, ShardedMixedExecutor

__all__ = ["Dispatch", "make_dispatch"]


@runtime_checkable
class Dispatch(Protocol):
    """A batch-serving execution surface.

    Implementations hold an ``engine`` (the device topology they
    account against) and execute one interleaved op stream —
    ``(kind, payload)`` pairs with kinds ``lookup`` / ``update`` /
    ``delete`` / ``insert`` / ``scan`` — returning the lookup results
    in stream order plus a :class:`~repro.host.mixed.MixedReport`.

    Known implementations: :class:`~repro.host.mixed.MixedWorkloadExecutor`
    (one device), :class:`~repro.host.sharding.ShardedMixedExecutor`
    (key-space shards) and :class:`~repro.serve.core.ServerCore` /
    :class:`~repro.serve.server.CuartServer` (online serving with
    adaptive batch close and admission control).
    """

    engine: object

    def run(self, stream) -> tuple[list, MixedReport]:
        """Execute the stream; returns (lookup results in stream order,
        report)."""
        ...


def make_dispatch(target) -> Dispatch:
    """Resolve *target* to a :class:`Dispatch` implementation.

    - an object already satisfying the protocol passes through
      (executors, servers, user implementations);
    - a :class:`~repro.host.sharding.ShardedEngine` gets a
      :class:`~repro.host.sharding.ShardedMixedExecutor`;
    - any single engine exposing the batch-op surface gets a
      :class:`~repro.host.mixed.MixedWorkloadExecutor`.
    """
    if isinstance(target, Dispatch):
        return target
    if isinstance(target, ShardedEngine):
        return ShardedMixedExecutor(target)
    if hasattr(target, "lookup") and hasattr(target, "batch_size"):
        return MixedWorkloadExecutor(target)
    raise ReproError(
        f"cannot build a Dispatch from {type(target).__name__!r}: pass an "
        "engine, a sharded engine, or an object with run(stream)"
    )
