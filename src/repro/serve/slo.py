"""Closed-loop SLO control over the adaptive batch-close knobs.

The serving trade-off is the paper's figure 8 in real time: bigger
batches amortize PCIe staging and kernel launch (throughput), smaller
batches and shorter close deadlines bound queueing delay (latency).
:class:`SloController` closes the loop — it watches the windowed p99 of
the unlabeled ``server_slo_latency_us`` histogram (PR 3's metrics
surface; the window is the *delta* of bucket counts between retune
decisions, so Prometheus-style cumulative semantics stay intact) and
nudges :class:`~repro.serve.core.ServerCore`'s ``batch_close`` /
``deadline_us`` with an AIMD-flavoured policy:

- **tighten** (p99 above the objective): halve the close deadline
  first — it bounds the queueing term directly — then, once the
  deadline floors out, halve the batch size;
- **relax** (p99 under half the objective with a clean shed window):
  grow the batch back toward the cap — landing on the
  throughput-optimal *probed* point when an autotune sweep
  (:meth:`~repro.host.autotune.TuneResult.best_under`) is wired in —
  then stretch the deadline.

Relaxing only on *half* the objective gives the loop hysteresis; one
retune never simultaneously moves both knobs, so each window measures
one change.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["SloController", "windowed_quantile"]


def windowed_quantile(bounds: Sequence[float], deltas: Sequence[int],
                      q: float) -> float:
    """Quantile estimate over one observation *window*: ``deltas`` are
    per-bucket count increases since the window opened (cumulative
    histograms never reset, so windows subtract snapshots).  Linear
    interpolation within the owning bucket, like
    :meth:`repro.obs.metrics.Histogram.quantile`; the open overflow
    bucket extrapolates to twice the last bound."""
    total = sum(deltas)
    if total <= 0:
        return 0.0
    rank = q * total
    cum = 0
    for i, n in enumerate(deltas):
        if n <= 0:
            continue
        if cum + n >= rank:
            lo = bounds[i - 1] if i > 0 else 0.0
            hi = bounds[i] if i < len(bounds) else bounds[-1] * 2.0
            return lo + (hi - lo) * ((rank - cum) / n)
        cum += n
    return bounds[-1] * 2.0


class SloController:
    """AIMD retuner for a :class:`~repro.serve.core.ServerCore` (see
    module docstring for the policy).  Attach once; the core calls
    :meth:`maybe_retune` after every dispatched batch."""

    def __init__(
        self,
        slo_p99_us: float,
        *,
        interval: int = 1024,
        min_batch: int = 32,
        batch_cap: int = 1024,
        min_deadline_us: float = 25.0,
        max_deadline_us: float = 5_000.0,
        tune=None,
        relax_headroom: float = 0.5,
    ) -> None:
        self.slo_p99_us = float(slo_p99_us)
        self.interval = int(interval)
        self.min_batch = int(min_batch)
        self.batch_cap = int(batch_cap)
        self.min_deadline_us = float(min_deadline_us)
        self.max_deadline_us = float(max_deadline_us)
        #: optional :class:`~repro.host.autotune.TuneResult`; relax
        #: steps then snap to the best probed batch under the cap.
        self.tune = tune
        self.relax_headroom = float(relax_headroom)
        self.retunes = 0
        #: retune decisions, newest last: ``(direction, p99_us,
        #: window_ops)`` with direction tighten / relax / hold.
        self.history: list = []
        self._last_buckets: Optional[list] = None
        self._last_count = 0
        self._last_sheds = 0

    def attach(self, core) -> None:
        """Open the first observation window against the core's SLO
        histogram."""
        h = core.slo_histogram
        self._last_buckets = list(h.bucket_counts)
        self._last_count = h.count
        self._last_sheds = core.sheds

    def window_p99_us(self, core) -> tuple[float, int]:
        """Current window's (p99 estimate, op count) without closing
        the window."""
        h = core.slo_histogram
        if self._last_buckets is None:
            self.attach(core)
        deltas = [
            c - p for c, p in zip(h.bucket_counts, self._last_buckets)
        ]
        return windowed_quantile(h.bounds, deltas, 0.99), h.count - self._last_count

    def maybe_retune(self, core) -> Optional[str]:
        """Close the window and adjust one knob if it spans at least
        ``interval`` ops.  Returns the direction taken (``tighten`` /
        ``relax`` / ``hold``) or None while the window is still
        filling."""
        h = core.slo_histogram
        if self._last_buckets is None:
            self.attach(core)
            return None
        window_ops = h.count - self._last_count
        if window_ops < self.interval:
            return None
        deltas = [
            c - p for c, p in zip(h.bucket_counts, self._last_buckets)
        ]
        p99 = windowed_quantile(h.bounds, deltas, 0.99)
        shed_delta = core.sheds - self._last_sheds
        self._last_buckets = list(h.bucket_counts)
        self._last_count = h.count
        self._last_sheds = core.sheds

        direction = "hold"
        if p99 > self.slo_p99_us:
            direction = "tighten"
            if core.deadline_us > self.min_deadline_us:
                core.set_deadline(
                    max(core.deadline_us / 2.0, self.min_deadline_us)
                )
            elif core.batch_close > self.min_batch:
                core.set_batch_close(
                    max(core.batch_close // 2, self.min_batch)
                )
            else:
                direction = "hold"  # floored out on both knobs
        elif p99 < self.relax_headroom * self.slo_p99_us and shed_delta == 0:
            new_batch = core.batch_close
            if self.tune is not None:
                # the sweep already ranks every design point: jump to
                # the probed optimum under the global cap (tighten
                # recovers if the jump overshoots the SLO)
                new_batch = max(
                    self.tune.best_under(self.batch_cap).batch,
                    self.min_batch,
                )
                if new_batch < core.batch_close:
                    new_batch = core.batch_close  # relax never shrinks
            else:
                cap = min(core.batch_close * 2, self.batch_cap)
                if cap > core.batch_close:
                    new_batch = cap
            if new_batch > core.batch_close:
                direction = "relax"
                core.set_batch_close(new_batch)
            elif core.deadline_us < self.max_deadline_us:
                direction = "relax"
                core.set_deadline(
                    min(core.deadline_us * 2.0, self.max_deadline_us)
                )
        if direction != "hold":
            self.retunes += 1
            core._m_retunes.labels(direction=direction).inc()
        self.history.append((direction, p99, window_ops))
        return direction
