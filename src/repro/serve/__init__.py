"""Async serving front-end: SLO-driven adaptive batching behind one
``submit`` API.

The offline executors answer "how fast can this engine chew a recorded
stream"; this package answers the online question — individual clients
submitting single ops, a bounded queue, batches closed adaptively on
size *or* deadline, p99 latency held to an SLO by a closed feedback
loop over the PR 3 metrics histograms, and overload handled by shedding
(:attr:`~repro.host.results.OpStatus.SHED` + retry-after) with
per-tenant weighted fairness.

Layering:

- :class:`ServerCore` (:mod:`repro.serve.core`) — the whole policy as a
  deterministic, clock-injectable object;
- :class:`CuartServer` / :class:`SyncCuartServer`
  (:mod:`repro.serve.server`) — asyncio and threaded front doors;
- :class:`SloController` (:mod:`repro.serve.slo`) — the batch-close
  feedback loop;
- :class:`Dispatch` / :func:`make_dispatch`
  (:mod:`repro.serve.dispatch`) — the shared ``run(stream)`` contract
  uniting executors and servers.

See ``docs/serving.md`` for the queueing model and knob guide.
"""

from repro.serve.core import (
    ServedOp,
    ServerConfig,
    ServerCore,
    ServerOverloadedError,
    VirtualClock,
)
from repro.serve.dispatch import Dispatch, make_dispatch
from repro.serve.server import CuartServer, SyncCuartServer
from repro.serve.slo import SloController, windowed_quantile

__all__ = [
    "CuartServer",
    "Dispatch",
    "ServedOp",
    "ServerConfig",
    "ServerCore",
    "ServerOverloadedError",
    "SloController",
    "SyncCuartServer",
    "VirtualClock",
    "make_dispatch",
    "windowed_quantile",
]
