"""Deterministic heart of the async serving front-end.

:class:`ServerCore` is the whole serving policy — admission control,
tenant fairness, adaptive batch close, store-to-load forwarding, the
virtual device timeline — as a plain synchronous object driven by an
injectable microsecond clock.  The asyncio wrapper
(:class:`repro.serve.server.CuartServer`) owns *when* ``poll`` runs;
this module owns *what happens*, so every queueing decision is testable
against a :class:`VirtualClock` with zero wall-clock sleeps.

Batching model (the paper's fig. 8 trade-off, made adaptive): ops
accumulate per class in an :class:`~repro.host.batching.OpClassCoalescer`
and a batch closes on whichever comes first —

- **size**: the class queue reaches ``batch_close`` ops (throughput
  side of the trade-off), or
- **deadline**: the oldest queued op has waited ``deadline_us``
  (latency side; the timer flush honours the coalescer's cross-class
  dependency DAG, so a read never jumps its write).

Both knobs are live-tunable; when :attr:`ServerConfig.slo_p99_us` is
set, an :class:`~repro.serve.slo.SloController` retunes them against the
windowed p99 of the ``server_slo_latency_us`` histogram.

Admission control: the bounded queue sheds with
:attr:`~repro.host.results.OpStatus.SHED` plus a ``retry_after_us``
hint when the backlog hits ``queue_depth`` — and earlier, above the
``high_water`` mark, for tenants exceeding their weighted fair share.
An open device circuit (:attr:`~repro.host.engine.CuartEngine.device_health`)
shrinks the effective depth so backpressure engages before degraded CPU
serving piles up latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.errors import ReproError
from repro.host.batching import OpClassCoalescer
from repro.host.memtable import Memtable, MemtableConfig
from repro.host.mixed import MixedReport
from repro.host.overlay import WriteOverlay
from repro.host.results import OpStatus
from repro.obs.flightrec import NULL_FLIGHT_RECORDER
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER
from repro.util.validation import require_power_of_two

__all__ = [
    "ServedOp",
    "ServerConfig",
    "ServerCore",
    "ServerOverloadedError",
    "VirtualClock",
]

_STATUS_NAMES = {int(s): s.name for s in OpStatus}

#: op kinds accepted by :meth:`ServerCore.offer`.
_KINDS = ("lookup", "update", "delete", "insert", "scan")


class ServerOverloadedError(ReproError):
    """Raised by the convenience coroutines when admission control shed
    the op; ``retry_after_us`` carries the backoff hint."""

    def __init__(self, tenant: str, retry_after_us: float):
        super().__init__(
            f"queue full for tenant {tenant!r}; "
            f"retry after ~{retry_after_us:.0f}us"
        )
        self.tenant = tenant
        self.retry_after_us = retry_after_us


class VirtualClock:
    """A manually advanced microsecond clock.

    The deterministic test double for the server's time axis: tests
    ``advance()`` it past batch deadlines instead of sleeping, so timer
    behaviour (partial-batch flushes, the empty-queue race, shed
    ordering) is exact and instant.  Instances are callables returning
    the current time in µs — the shape :class:`ServerCore` expects —
    and convert to the flight recorder's nanosecond clock via
    :meth:`now_ns`.
    """

    __slots__ = ("_now_us",)

    def __init__(self, start_us: float = 0.0) -> None:
        self._now_us = float(start_us)

    def __call__(self) -> float:
        return self._now_us

    def now_us(self) -> float:
        return self._now_us

    def now_ns(self) -> int:
        """For ``FlightRecorder(clock=vclock.now_ns)``: flight records
        then share the server's virtual time axis, making queue-wait
        attribution exact in simulated time."""
        return int(self._now_us * 1e3)

    def advance(self, dt_us: float) -> float:
        if dt_us < 0:
            raise ReproError(f"cannot rewind the clock by {dt_us}us")
        self._now_us += dt_us
        return self._now_us


def _wall_clock_us() -> float:
    return time.perf_counter() * 1e6


@dataclass
class ServerConfig:
    """Serving policy knobs (see the module docstring for the model)."""

    #: batch-close size — a class queue reaching this many ops flushes.
    #: This is the *initial* value; the SLO controller may retune it.
    max_batch: int = 1024
    #: batch-close deadline — the oldest queued op waits at most this
    #: long (µs) before its class (and ordering ancestors) flush.
    deadline_us: float = 200.0
    #: admission bound: total ops queued-but-undispatched across all
    #: classes and tenants before hard shedding.
    queue_depth: int = 8192
    #: fraction of the depth above which per-tenant weighted fair
    #: shares are enforced (soft shedding of over-share tenants).
    high_water: float = 0.75
    #: per-tenant scheduling weights; unlisted tenants weigh 1.0.
    tenant_weights: dict = field(default_factory=dict)
    #: an open device circuit multiplies the effective depth by this,
    #: so backpressure engages while the device is degraded.
    degraded_depth_factor: float = 0.25
    #: p99 latency objective (µs) — set to enable the closed SLO
    #: feedback loop (:class:`repro.serve.slo.SloController`).
    slo_p99_us: Optional[float] = None
    #: ops between SLO retune decisions (the p99 window size).
    retune_interval: int = 1024
    #: retune bounds for the batch-close size …
    min_batch: int = 32
    batch_cap: Optional[int] = None
    #: … and the deadline (µs).
    min_deadline_us: float = 25.0
    max_deadline_us: float = 5_000.0
    #: an autotune sweep (:class:`~repro.host.autotune.TuneResult`):
    #: when present, relax steps land on the throughput-optimal probed
    #: batch size under the cap (``tune.best_under``) instead of blind
    #: doubling.
    tune: object = None
    #: write-absorption policy (:class:`~repro.host.memtable.
    #: MemtableConfig`, or ``True`` for the defaults): writes ack O(1)
    #: host-side and merge-compact in the background instead of paying
    #: a device batch per coalesced flush.  ``None`` keeps the
    #: synchronous write path.
    memtable: object = None

    def __post_init__(self) -> None:
        # the coalescer (and every halve/double retune step) keeps
        # batch sizes on the power-of-two grid of the paper's sweep
        require_power_of_two(self.max_batch, "max_batch")
        if self.batch_cap is not None:
            require_power_of_two(self.batch_cap, "batch_cap")
        require_power_of_two(self.min_batch, "min_batch")
        if self.deadline_us <= 0:
            raise ReproError(
                f"deadline_us must be positive, got {self.deadline_us}"
            )
        if self.queue_depth < 1:
            raise ReproError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if not 0.0 < self.high_water <= 1.0:
            raise ReproError(
                f"high_water must be in (0, 1], got {self.high_water}"
            )
        if not 0.0 < self.degraded_depth_factor <= 1.0:
            raise ReproError(
                "degraded_depth_factor must be in (0, 1], got "
                f"{self.degraded_depth_factor}"
            )
        if self.slo_p99_us is not None and self.slo_p99_us <= 0:
            raise ReproError(
                f"slo_p99_us must be positive, got {self.slo_p99_us}"
            )
        if self.min_batch < 1:
            raise ReproError(
                f"min_batch must be >= 1, got {self.min_batch}"
            )
        # the retune floor never exceeds the starting batch size
        self.min_batch = min(self.min_batch, self.max_batch)
        if self.batch_cap is not None and self.batch_cap < self.max_batch:
            raise ReproError(
                f"batch_cap must be >= max_batch, got {self.batch_cap}"
            )
        if self.min_deadline_us <= 0:
            raise ReproError(
                f"min_deadline_us must be positive, got "
                f"{self.min_deadline_us}"
            )
        # retune bounds bracket the starting deadline
        self.min_deadline_us = min(self.min_deadline_us, self.deadline_us)
        self.max_deadline_us = max(self.max_deadline_us, self.deadline_us)


class ServedOp:
    """One in-flight operation through the server.

    Completion is signalled through :attr:`done` and the optional
    :attr:`on_done` callback (the asyncio layer resolves its future
    there); :attr:`status` is an :class:`~repro.host.results.OpStatus`
    code, with :attr:`retry_after_us` set only for ``SHED``.
    """

    __slots__ = (
        "op", "key", "value_arg", "tenant", "t_enqueue_us", "t_done_us",
        "status", "value", "retry_after_us", "done", "forwarded",
        "on_done", "rec",
    )

    def __init__(self, op, key, value_arg, tenant, t_enqueue_us, on_done):
        self.op = op
        self.key = key
        self.value_arg = value_arg
        self.tenant = tenant
        self.t_enqueue_us = t_enqueue_us
        self.t_done_us = 0.0
        self.status = int(OpStatus.OK)
        self.value = None
        self.retry_after_us = 0.0
        self.done = False
        self.forwarded = False
        self.on_done = on_done
        self.rec = None

    @property
    def latency_us(self) -> float:
        """Enqueue-to-completion latency on the server's clock (device
        queueing included via the virtual device cursor)."""
        return max(self.t_done_us - self.t_enqueue_us, 0.0)

    @property
    def shed(self) -> bool:
        return self.status == int(OpStatus.SHED)

    def __repr__(self) -> str:
        state = _STATUS_NAMES.get(self.status, "?") if self.done else "PENDING"
        return f"<ServedOp {self.op} tenant={self.tenant} {state}>"


class ServerCore:
    """Synchronous, clock-driven serving engine (see module docstring).

    The front-end contract is three calls:

    - :meth:`offer` admits (or sheds) one op and dispatches any batches
      its arrival closed (size / dependency cuts);
    - :meth:`next_deadline_us` tells the event loop when the oldest
      queued op's deadline expires;
    - :meth:`poll` fires expired deadlines.

    :meth:`run` additionally implements the offline
    :class:`~repro.serve.dispatch.Dispatch` protocol, so a ``ServerCore``
    drops into any benchmark slot an executor fits.
    """

    def __init__(
        self,
        engine,
        config: Optional[ServerConfig] = None,
        *,
        clock: Optional[Callable[[], float]] = None,
        **kwargs,
    ) -> None:
        if config is None:
            config = ServerConfig(**kwargs)
        elif kwargs:
            raise TypeError(
                "pass either config=ServerConfig(...) or individual "
                "keyword arguments, not both"
            )
        self.engine = engine
        self.config = config
        self.clock = clock if clock is not None else _wall_clock_us
        self.metrics: MetricsRegistry = getattr(
            engine, "metrics", None
        ) or MetricsRegistry()
        self.tracer = getattr(engine, "tracer", None) or NULL_TRACER
        self.flight = getattr(engine, "flight", None) or NULL_FLIGHT_RECORDER

        #: live batch-close knobs (the SLO controller retunes these
        #: through :meth:`set_batch_close` / :meth:`set_deadline`).
        self.batch_close = config.max_batch
        self.deadline_us = config.deadline_us

        self._coal = OpClassCoalescer(self.batch_close, metrics=self.metrics)
        self._reasons_before = self._coal.flush_reasons()
        #: :class:`~repro.host.memtable.Memtable` when write absorption
        #: is on (:attr:`ServerConfig.memtable`): writes ack host-side
        #: in O(1) and never consume queue depth; the overlay below IS
        #: its delta, so forwarding reads stay one dict probe.
        self.memtable = None
        if config.memtable is not None \
                and getattr(engine, "contains", None) is not None:
            mtc = (MemtableConfig() if config.memtable is True
                   else config.memtable)
            self.memtable = Memtable(engine, mtc, metrics=self.metrics)
        self.overlay = (
            self.memtable.delta if self.memtable is not None
            else WriteOverlay(getattr(engine, "contains", None))
        )
        #: snapshot pinned by the oldest queued device lookup (None
        #: while no lookup is in flight): every queued lookup batch is
        #: answered at ONE memtable epoch (released at its dispatch).
        self._read_snap = None
        self._submit = getattr(engine, "submit", None)
        if getattr(engine, "drain", None) is None:
            self._submit = None
        self._overlap = None

        #: queued-but-undispatched ops, total and per tenant.
        self.backlog = 0
        self.tenant_backlog: dict = {}
        #: simulated time the device is busy through (the virtual
        #: device cursor: completions serialize behind it).
        self.device_free_us = 0.0
        #: EWMA of simulated per-op service time, for retry-after hints.
        self.service_ewma_us = 0.0
        self.admitted = 0
        self.sheds = 0
        self.completed = 0
        self.report = MixedReport()

        m = self.metrics
        self._m_latency = m.histogram(
            "server_op_latency_us",
            "enqueue-to-completion latency through the serving front-end",
            labels=("op",),
        )
        #: unlabeled: the SLO controller reads windowed p99 straight
        #: from this child's bucket counts.
        self.slo_histogram = m.histogram(
            "server_slo_latency_us",
            "all-op serving latency, the SLO feedback-loop source",
        )
        self._m_queue_wait = m.histogram(
            "server_queue_wait_us",
            "enqueue-to-dispatch wait inside the batch-close window",
        )
        self._m_shed = m.counter(
            "server_shed_total",
            "ops refused by admission control", labels=("tenant",),
        )
        self._m_forwarded = m.counter(
            "server_forwarded_total",
            "ops answered host-side from the write overlay", labels=("op",),
        )
        self._m_retunes = m.counter(
            "server_retunes_total",
            "SLO feedback-loop adjustments", labels=("direction",),
        )
        self._g_batch_close = m.gauge(
            "server_batch_close", "current adaptive batch-close size",
        )
        self._g_deadline = m.gauge(
            "server_deadline_us", "current adaptive batch-close deadline",
        )
        self._g_backlog = m.gauge(
            "server_backlog", "ops queued awaiting batch close",
        )
        self._g_batch_close.set(self.batch_close)
        self._g_deadline.set(self.deadline_us)

        self.controller = None
        if config.slo_p99_us is not None:
            from repro.serve.slo import SloController

            self.controller = SloController(
                config.slo_p99_us,
                interval=config.retune_interval,
                min_batch=config.min_batch,
                batch_cap=config.batch_cap or config.max_batch,
                min_deadline_us=config.min_deadline_us,
                max_deadline_us=config.max_deadline_us,
                tune=config.tune,
            )
            self.controller.attach(self)

    # -- tuning surface (the SLO controller's write side) ----------------

    def set_batch_close(self, n: int) -> None:
        n = max(int(n), 1)
        self.batch_close = n
        self._coal.batch_size = n
        self._g_batch_close.set(n)

    def set_deadline(self, us: float) -> None:
        self.deadline_us = float(us)
        self._g_deadline.set(us)

    # -- admission -------------------------------------------------------

    def _effective_depth(self) -> int:
        depth = self.config.queue_depth
        health = getattr(self.engine, "device_health", None)
        if health is not None and not health.healthy:
            depth = max(int(depth * self.config.degraded_depth_factor), 1)
        return depth

    def _admit(self, tenant: str) -> bool:
        depth = self._effective_depth()
        if self.backlog >= depth:
            return False
        if self.backlog >= self.config.high_water * depth:
            weights = self.config.tenant_weights
            active_w = weights.get(tenant, 1.0)
            total_w = active_w
            for t, n in self.tenant_backlog.items():
                if n > 0 and t != tenant:
                    total_w += weights.get(t, 1.0)
            fair_share = depth * active_w / total_w
            if self.tenant_backlog.get(tenant, 0) >= fair_share:
                return False
        return True

    def _retry_after_us(self) -> float:
        return self.deadline_us + self.backlog * self.service_ewma_us

    # -- completion ------------------------------------------------------

    def _finish(self, op: ServedOp, status: int, value, t_done: float,
                *, observe: bool = True) -> None:
        op.status = status
        op.value = value
        op.t_done_us = t_done
        op.done = True
        self.completed += 1
        if observe:
            lat = op.latency_us
            self._m_latency.labels(op=op.op).observe(lat)
            self.slo_histogram.observe(lat)
        by = self.report.ops_by_status
        name = _STATUS_NAMES.get(status, str(status))
        by[name] = by.get(name, 0) + 1
        cb = op.on_done
        if cb is not None:
            cb(op)

    def _shed(self, op: ServedOp, now: float) -> ServedOp:
        self.sheds += 1
        self._m_shed.labels(tenant=op.tenant).inc()
        op.retry_after_us = self._retry_after_us()
        self._finish(op, int(OpStatus.SHED), None, now, observe=False)
        return op

    def _forward(self, op: ServedOp, found: bool, value, now: float
                 ) -> ServedOp:
        op.forwarded = True
        self._m_forwarded.labels(op=op.op).inc()
        rep = self.report
        rep.forwarded[op.op] = rep.forwarded.get(op.op, 0) + 1
        if self.flight.enabled:
            rec = self.flight.begin(op.op, op.key, None)
            if rec is not None:
                self.flight.complete_forwarded(rec, found)
        status = OpStatus.OK if found else OpStatus.NOT_FOUND
        self._finish(op, int(status), value, now)
        return op

    # -- the front door --------------------------------------------------

    def offer(self, kind: str, payload, *, tenant: str = "default",
              on_done: Optional[Callable] = None) -> ServedOp:
        """Admit one operation.

        ``payload`` is a key for ``lookup``/``delete``, a
        ``(key, value)`` pair for ``update``/``insert`` and a
        ``(lo, hi)`` range for ``scan``.  Returns the op's
        :class:`ServedOp`; when it completed synchronously (forwarded
        host-side, shed, or swept up in a size-triggered batch close)
        ``op.done`` is already True and ``on_done`` has fired.
        """
        if kind not in _KINDS:
            raise ReproError(f"unknown operation {kind!r}")
        now = self.clock()
        rep = self.report
        if kind in ("update", "insert"):
            key, value_arg = payload
        elif kind == "scan":
            if not (isinstance(payload, (tuple, list)) and len(payload) == 2):
                raise ReproError(f"malformed scan payload {payload!r}")
            key, value_arg = payload[0], payload[1]
        else:
            key, value_arg = payload, None
        op = ServedOp(kind, key, value_arg, tenant, now, on_done)

        if kind == "scan":
            # unbounded key range: full barrier, served immediately
            # (flush() force-compacts first, so the range observes
            # every absorbed write)
            self.flush()
            rows = self.engine.range(key, value_arg)
            rep.scans += 1
            rep.records_scanned += len(rows)
            self._finish(op, int(OpStatus.OK), rows, self.clock())
            return op

        mt = self.memtable
        if mt is not None and kind != "lookup":
            # log-structured write absorption: the op acks right here —
            # hit/miss resolved against the delta + one memoized base
            # probe — and its folded device row rides a background
            # compaction batch.  Absorbed writes never consume queue
            # depth, so they are never shed.
            if kind == "update":
                ok = mt.absorb_update(key, value_arg)
                rep.updates += 1
                if not ok:
                    rep.update_misses += 1
                value = ok
            elif kind == "delete":
                ok = mt.absorb_delete(key)
                rep.deletes += 1
                if not ok:
                    rep.delete_misses += 1
                value = ok
            else:
                mt.absorb_insert(key, value_arg)
                ok = True
                value = True
                rep.inserts += 1
            rep.absorbed[kind] = rep.absorbed.get(kind, 0) + 1
            if self.flight.enabled:
                rec = self.flight.begin(kind, key, None)
                if rec is not None:
                    self.flight.complete_absorbed(rec, ok)
            status = OpStatus.OK if ok else OpStatus.NOT_FOUND
            self._finish(op, int(status), value, now)
            self._maybe_compact()
            return op

        # store-to-load forwarding through the pending-write overlay:
        # answered host-side, so these never consume queue depth.  Only
        # non-mutating probes run before admission — a shed op must
        # leave no pending effect behind.
        overlay = self.overlay
        entry = overlay.entries.get(key)
        if kind == "lookup":
            if entry is not None:
                found, val = overlay.resolve_read(key, entry)
                rep.lookups += 1
                if found:
                    rep.hits += 1
                else:
                    rep.misses += 1
                return self._forward(op, found, val if found else None, now)
        elif kind in ("update", "delete") and entry is not None \
                and entry[0] == "absent":
            # definitely gone (pending delete): a guaranteed miss, and
            # updates never resurrect — skip the device entirely
            if kind == "update":
                rep.updates += 1
                rep.update_misses += 1
            else:
                rep.deletes += 1
                rep.delete_misses += 1
            return self._forward(op, False, False, now)

        if not self._admit(tenant):
            return self._shed(op, now)

        self.admitted += 1
        if kind == "update":
            overlay.note_update(key, value_arg)
        elif kind == "delete":
            overlay.note_delete(key)
        elif kind == "insert":
            overlay.note_insert(key, value_arg)
        elif mt is not None:
            # snapshot reads: the queued lookup batch is pinned to ONE
            # memtable epoch.  If a compaction installed since the open
            # batch pinned, dispatch that batch at its own epoch (the
            # snapshot's shield keeps its answers exact) before this
            # read opens a new window on the fresh epoch.
            if self._read_snap is not None \
                    and self._read_snap.epoch != mt.epoch:
                for k, ops in self._coal.drain():
                    self._dispatch(k, ops)
            if self._read_snap is None:
                self._read_snap = mt.pin()
        self.backlog += 1
        self.tenant_backlog[tenant] = self.tenant_backlog.get(tenant, 0) + 1
        self._g_backlog.set(self.backlog)
        if self.flight.enabled:
            op.rec = self.flight.begin(kind, key, None)
        for k, ops in self._coal.add(kind, key, op):
            self._dispatch(k, ops)
        return op

    # -- the timer side --------------------------------------------------

    def next_deadline_us(self) -> Optional[float]:
        """Absolute clock time the oldest queued op's batch-close
        deadline expires, or None when nothing is queued — the event
        loop's wait bound."""
        coal = self._coal
        earliest = None
        for kind in coal.pending_kinds():
            oldest = coal.peek_oldest(kind)
            if oldest is None:
                continue
            due = oldest.t_enqueue_us + self.deadline_us
            if earliest is None or due < earliest:
                earliest = due
        return earliest

    def poll(self) -> int:
        """Fire every expired batch-close deadline; returns the number
        of ops dispatched."""
        now = self.clock()
        coal = self._coal
        dispatched = 0
        for kind in coal.pending_kinds():
            oldest = coal.peek_oldest(kind)
            if oldest is None:
                continue  # flushed as an ancestor of an earlier class
            if now >= oldest.t_enqueue_us + self.deadline_us:
                for k, ops in coal.flush_due(kind):
                    dispatched += len(ops)
                    self._dispatch(k, ops)
        return dispatched

    def flush(self) -> int:
        """Dispatch everything queued (shutdown / scan barrier), drain
        the memtable into the device layout, and close the simulated
        stream window."""
        dispatched = 0
        for k, ops in self._coal.drain():
            dispatched += len(ops)
            self._dispatch(k, ops)
        self._maybe_compact(force=True)
        self._close_window()
        return dispatched

    def _close_window(self) -> None:
        if self._submit is None:
            return
        window = self.engine.drain()
        if self._overlap is None:
            self._overlap = window
        else:
            self._overlap.add_window(window)
        self.report.stream_overlap = self._overlap.as_dict()

    # -- batch dispatch --------------------------------------------------

    def _dispatch(self, kind: str, ops: list) -> None:
        engine = self.engine
        td = self.clock()
        n = len(ops)
        if kind in ("update", "insert"):
            payloads = [(o.key, o.value_arg) for o in ops]
        else:
            payloads = [o.key for o in ops]
        with self.tracer.span(f"serve.{kind}", {"n": n}):
            if self._submit is not None:
                res = self._submit(kind, payloads)
            else:
                res = getattr(engine, kind)(payloads)

        # virtual device cursor: this batch's simulated service time
        # serializes behind whatever the device is already busy with
        sim_us = 0.0
        for ev in getattr(engine, "last_events", ()) or ():
            sim_us += (ev.h2d_s + ev.kernel_s + ev.d2h_s) * 1e6
        if sim_us == 0.0:
            # engines without the submit/drain event surface (e.g. the
            # sharded wrapper) still report end-to-end MOps/s = ops/µs
            last = getattr(engine, "last_report", None)
            rate = getattr(last, "end_to_end_mops", 0.0) if last else 0.0
            if rate > 0.0:
                sim_us = n / rate
        start = max(td, self.device_free_us)
        t_done = start + sim_us
        self.device_free_us = t_done
        per_op = sim_us / n if n else 0.0
        self.service_ewma_us = (
            per_op if self.service_ewma_us == 0.0
            else 0.8 * self.service_ewma_us + 0.2 * per_op
        )

        # snapshot reads: the batch pinned the memtable epoch its first
        # lookup was enqueued on; if a compaction installed newer writes
        # since, restate those keys from the snapshot's shield / pinned
        # delta so the batch answers at its own epoch
        overrides: dict = {}
        values = list(res) if kind == "lookup" else None
        if kind == "lookup" and self._read_snap is not None:
            snap = self._read_snap
            self._read_snap = None
            shield, pinned = snap.shield, snap.pinned
            if shield or pinned:
                for i, o in enumerate(ops):
                    ent = shield.get(o.key)
                    if ent is None:
                        pe = pinned.get(o.key)
                        if pe is not None:
                            ent = (pe[0] != "absent", pe[1])
                    if ent is not None:
                        overrides[i] = ent
                        values[i] = ent[1] if ent[0] else None
            snap.release()

        # book-keeping mirrors the offline executor's report shape
        rep = self.report
        rep.batches += 1
        rep.batches_by_op[kind] = rep.batches_by_op.get(kind, 0) + 1
        found = getattr(res, "found_array", None)
        hits = int(np.count_nonzero(found)) if found is not None else 0
        if kind == "lookup":
            if overrides:
                hits = sum(1 for v in values if v is not None)
            rep.lookups += n
            rep.hits += hits
            rep.misses += n - hits
        elif kind == "update":
            rep.updates += n
            rep.update_misses += n - hits
        elif kind == "delete":
            rep.deletes += n
            rep.delete_misses += n - hits
        else:
            rep.inserts += n
            summary = getattr(res, "summary", None)
            if summary is not None:
                rep.inserts_deferred += summary["deferred"]
        if engine.last_report is not None:
            rep.simulated_mops[kind] = engine.last_report.end_to_end_mops

        codes = getattr(res, "status", None)
        recs = []
        for i, op in enumerate(ops):
            self.backlog -= 1
            tb = self.tenant_backlog
            tb[op.tenant] = tb.get(op.tenant, 0) - 1
            self._m_queue_wait.observe(max(td - op.t_enqueue_us, 0.0))
            if op.rec is not None:
                op.rec.queue_pos = i
                recs.append(op.rec)
            status = int(codes[i]) if codes is not None else int(OpStatus.OK)
            if kind == "lookup":
                ov = overrides.get(i)
                if ov is not None:
                    # answered from the pinned snapshot, not the device
                    status = int(
                        OpStatus.OK if ov[0] else OpStatus.NOT_FOUND
                    )
                value = values[i]
            elif kind == "insert":
                value = status != int(OpStatus.FAILED)
            else:
                value = bool(found[i]) if found is not None else True
            self._finish(op, status, value, t_done)
        self._g_backlog.set(self.backlog)

        if recs:
            statuses = None
            if codes is not None:
                statuses = [
                    _STATUS_NAMES.get(int(c), str(c)) for c in codes
                ]
            self.flight.complete(
                recs, batch_id=self._coal.batches_flushed,
                t_dispatch_us=self.flight.now_us(), statuses=statuses,
                attempts=getattr(res, "attempts", None),
                sim_events=getattr(engine, "last_events", None),
                batch_size=n,
            )
        if self.controller is not None:
            self.controller.maybe_retune(self)

    # -- background merge-compaction -------------------------------------

    def _compact_dispatch(self, kind: str, payloads: list):
        """Scatter one folded compaction batch.  It occupies the virtual
        device like any foreground batch (the cursor advances) but
        completes no ServedOps — their outcomes were resolved at absorb
        time — so foreground lookups queue behind it exactly the way
        they would behind a second stream's transfer."""
        engine = self.engine
        td = self.clock()
        with self.tracer.span(f"serve.compact.{kind}",
                              {"n": len(payloads)}):
            if self._submit is not None:
                res = self._submit(kind, payloads)
            else:
                res = getattr(engine, kind)(payloads)
        sim_us = 0.0
        for ev in getattr(engine, "last_events", ()) or ():
            sim_us += (ev.h2d_s + ev.kernel_s + ev.d2h_s) * 1e6
        start = max(td, self.device_free_us)
        self.device_free_us = start + sim_us
        rep = self.report
        rep.batches += 1
        bkey = f"compact-{kind}"
        rep.batches_by_op[bkey] = rep.batches_by_op.get(bkey, 0) + 1
        if kind == "insert":
            summary = getattr(res, "summary", None)
            if summary is not None:
                rep.inserts_deferred += summary["deferred"]
        if engine.last_report is not None:
            rep.simulated_mops[kind] = engine.last_report.end_to_end_mops
        return res

    def _maybe_compact(self, force: bool = False) -> None:
        mt = self.memtable
        if mt is None:
            return
        if force or mt.should_compact():
            out = mt.compact(self._compact_dispatch, force=force)
            if out is not None:
                self.report.compactions += 1

    # -- offline Dispatch conformance ------------------------------------

    def run(self, stream) -> tuple[list, MixedReport]:
        """Execute one interleaved stream offline — the
        :class:`~repro.serve.dispatch.Dispatch` contract.  Arrival
        times all read the server clock at call time, so with the
        default wall clock batches close on size exactly like the
        offline executors; a :class:`VirtualClock` advanced between ops
        exercises the deadline path deterministically."""
        results: list = []

        def capture(op: ServedOp, seq: int) -> None:
            results[seq] = op.value

        for kind, payload in stream:
            if kind == "lookup":
                results.append(None)
                seq = len(results) - 1
                self.offer(
                    kind, payload,
                    on_done=lambda op, s=seq: capture(op, s),
                )
            else:
                self.offer(kind, payload)
            self.poll()
        self.flush()
        return results, self.report_snapshot()

    # -- reporting -------------------------------------------------------

    def report_snapshot(self) -> MixedReport:
        """The run's :class:`~repro.host.mixed.MixedReport`, with
        latency percentiles and the flush-reason delta filled in."""
        rep = self.report
        for op in ("lookup", "update", "delete", "insert"):
            summary = self.metrics.value("server_op_latency_us", op=op)
            if summary and summary.get("count"):
                rep.latency_percentiles_by_op[op] = summary
        rep.flush_reasons = {
            reason: count - self._reasons_before.get(reason, 0)
            for reason, count in self._coal.flush_reasons().items()
        }
        return rep

    def stats(self) -> dict:
        """Serving-side counters for dashboards and the load
        generator's per-step snapshots."""
        return {
            "admitted": self.admitted,
            "sheds": self.sheds,
            "completed": self.completed,
            "forwarded": dict(self.report.forwarded),
            "absorbed": dict(self.report.absorbed),
            "compactions": self.report.compactions,
            "memtable": (
                self.memtable.stats() if self.memtable is not None else None
            ),
            "backlog": self.backlog,
            "batch_close": self.batch_close,
            "deadline_us": self.deadline_us,
            "device_free_us": self.device_free_us,
            "service_ewma_us": self.service_ewma_us,
            "retunes": (
                self.controller.retunes if self.controller is not None else 0
            ),
            "slo_latency": self.slo_histogram.summary(),
            "queue_wait": self._m_queue_wait.summary(),
        }
