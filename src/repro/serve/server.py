"""Asyncio front door over :class:`~repro.serve.core.ServerCore`.

:class:`CuartServer` turns the core's three-call contract (``offer`` /
``next_deadline_us`` / ``poll``) into an awaitable per-op API: callers
``await server.lookup(key)`` (or the unified :meth:`CuartServer.submit`)
and a single pump task closes batches on size or deadline, whichever
comes first.  Everything stateful lives in the core, so the asyncio
layer is just future plumbing plus one timer loop — concurrency-safe
because offers, polls and completions all run on the event loop thread.

:class:`SyncCuartServer` is the shim for synchronous callers: it hosts
the async server on a daemon event-loop thread and bridges each call
with ``run_coroutine_threadsafe``, so many *threads* submitting singly
still coalesce into shared device batches.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.host.mixed import MixedReport
from repro.serve.core import (
    ServedOp,
    ServerConfig,
    ServerCore,
    ServerOverloadedError,
)

__all__ = ["CuartServer", "SyncCuartServer"]


class CuartServer:
    """Async serving front-end over one engine (single-device, GRT or
    key-space-sharded — anything with the batch-op surface).

    >>> server = CuartServer(engine, deadline_us=200.0)
    >>> await server.start()
    >>> value = await server.lookup(b"key-a\\x00")
    >>> ok = await server.update((b"key-a\\x00", 7))
    >>> await server.stop()

    Ops shed by admission control raise
    :class:`~repro.serve.core.ServerOverloadedError` from the
    convenience coroutines; :meth:`submit` instead returns the completed
    :class:`~repro.serve.core.ServedOp` so callers can branch on
    ``op.shed`` / ``op.retry_after_us`` without exception handling.

    Also implements the offline :class:`~repro.serve.dispatch.Dispatch`
    protocol (:meth:`run` delegates to the core), so a server instance
    drops into benchmark slots an executor fits.
    """

    def __init__(
        self,
        engine,
        config: Optional[ServerConfig] = None,
        *,
        clock=None,
        **kwargs,
    ) -> None:
        self.core = ServerCore(engine, config, clock=clock, **kwargs)
        self._wake: Optional[asyncio.Event] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._running = False

    @property
    def engine(self):
        return self.core.engine

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._wake = asyncio.Event()
        self._pump_task = asyncio.create_task(self._pump())

    async def stop(self) -> None:
        """Stop the pump, flush every queued op (their futures resolve)
        and close the simulated stream window."""
        if not self._running:
            return
        self._running = False
        self._wake.set()
        await self._pump_task
        self._pump_task = None
        self.core.flush()

    async def __aenter__(self) -> "CuartServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def _pump(self) -> None:
        """The batch-close timer: sleep until the oldest queued op's
        deadline, wake early on arrivals (they may close a batch on
        size, moving the next deadline)."""
        core = self.core
        wake = self._wake
        while self._running:
            due = core.next_deadline_us()
            if due is None:
                await wake.wait()
                wake.clear()
                continue
            delay_s = max(due - core.clock(), 0.0) / 1e6
            try:
                await asyncio.wait_for(wake.wait(), timeout=delay_s)
                wake.clear()
            except asyncio.TimeoutError:
                pass
            # poll even when woken by an arrival: the offer that woke
            # us may have raced an already-expired deadline
            core.poll()

    # -- the unified op API ----------------------------------------------

    async def submit(self, kind: str, payload, *, tenant: str = "default"
                     ) -> ServedOp:
        """Submit one op; resolves when its batch completes (or
        immediately for forwarded / shed ops).  Returns the completed
        :class:`~repro.serve.core.ServedOp`."""
        if not self._running:
            raise RuntimeError("server is not running; await start() first")
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()

        def resolve(op: ServedOp) -> None:
            if not fut.done():
                fut.set_result(op)

        op = self.core.offer(kind, payload, tenant=tenant, on_done=resolve)
        if op.done and not fut.done():
            fut.set_result(op)
        self._wake.set()
        return await fut

    async def _op(self, kind: str, payload, tenant: str) -> ServedOp:
        op = await self.submit(kind, payload, tenant=tenant)
        if op.shed:
            raise ServerOverloadedError(op.tenant, op.retry_after_us)
        return op

    async def lookup(self, key, *, tenant: str = "default"):
        """The key's value, or None when absent."""
        return (await self._op("lookup", key, tenant)).value

    async def update(self, key, value, *, tenant: str = "default") -> bool:
        """True when the key existed and was updated."""
        return bool((await self._op("update", (key, value), tenant)).value)

    async def insert(self, key, value, *, tenant: str = "default") -> bool:
        """True when the insert was applied (device or deferred)."""
        return bool((await self._op("insert", (key, value), tenant)).value)

    async def delete(self, key, *, tenant: str = "default") -> bool:
        """True when the key existed and was removed."""
        return bool((await self._op("delete", key, tenant)).value)

    async def scan(self, lo, hi, *, tenant: str = "default") -> list:
        """All (key, value) pairs in [lo, hi] — a full batch barrier."""
        return (await self._op("scan", (lo, hi), tenant)).value

    # -- offline Dispatch conformance ------------------------------------

    def run(self, stream) -> tuple[list, MixedReport]:
        """Offline stream execution through the same core (no event
        loop required) — the :class:`~repro.serve.dispatch.Dispatch`
        contract."""
        return self.core.run(stream)

    def stats(self) -> dict:
        return self.core.stats()


class SyncCuartServer:
    """Blocking facade for threaded applications.

    Runs a :class:`CuartServer` on a private daemon event-loop thread;
    each method schedules the matching coroutine and blocks on its
    result, so concurrent calls from many threads share device batches
    exactly like concurrent coroutines would.

    >>> with SyncCuartServer(engine) as server:
    ...     value = server.lookup(b"key-a\\x00")
    """

    def __init__(self, engine, config: Optional[ServerConfig] = None,
                 **kwargs) -> None:
        self._server = CuartServer(engine, config, **kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def engine(self):
        return self._server.engine

    @property
    def core(self) -> ServerCore:
        return self._server.core

    def start(self) -> None:
        if self._thread is not None:
            return
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="cuart-serve", daemon=True
        )
        self._thread.start()
        self._call(self._server.start())

    def stop(self) -> None:
        if self._thread is None:
            return
        self._call(self._server.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "SyncCuartServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _call(self, coro):
        if self._loop is None:
            coro.close()  # keep the "never awaited" warning quiet
            raise RuntimeError("server is not running; call start() first")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def submit(self, kind: str, payload, *, tenant: str = "default"
               ) -> ServedOp:
        return self._call(self._server.submit(kind, payload, tenant=tenant))

    def lookup(self, key, *, tenant: str = "default"):
        return self._call(self._server.lookup(key, tenant=tenant))

    def update(self, key, value, *, tenant: str = "default") -> bool:
        return self._call(self._server.update(key, value, tenant=tenant))

    def insert(self, key, value, *, tenant: str = "default") -> bool:
        return self._call(self._server.insert(key, value, tenant=tenant))

    def delete(self, key, *, tenant: str = "default") -> bool:
        return self._call(self._server.delete(key, tenant=tenant))

    def scan(self, lo, hi, *, tenant: str = "default") -> list:
        return self._call(self._server.scan(lo, hi, tenant=tenant))

    def stats(self) -> dict:
        return self._server.stats()
