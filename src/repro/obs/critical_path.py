"""Per-window critical-path attribution over the stream pipeline.

:class:`~repro.gpusim.streams.StreamScheduler` models two serial
engines (PCIe copy, compute) with ``n_streams`` batch buffers in
flight.  Every timestamp it assigns is the max of a small set of
recomputable predecessors, so given a window's ordered
:class:`~repro.gpusim.streams.StreamEvent` list we can walk the binding
chain *backwards* from the makespan-defining event to t=0 and charge
every instant of the window to exactly one stage:

* ``h2d``    — the copy engine bound progress (PCIe host->device)
* ``kernel`` — the compute engine bound progress (device kernels,
  including the dedup hash table for write batches)
* ``d2h``    — a return DMA bound progress (only via buffer-reuse
  waits or the final event's tail)

The chain decomposes ``[0, makespan]`` exactly — stage totals sum to
the window makespan to float precision, which is how the <1%
reconciliation gate in ``benchmarks/perf_smoke.py`` holds trivially.

Window structure comes from :class:`~repro.gpusim.streams.
StreamOverlapStats`: sequential folds (``add_window``) keep per-window
slices in ``window_starts``; parallel folds (``merge_parallel``) keep
per-device timelines in ``shard_parts``, where the slowest device's
chain *is* the merged critical path and the other devices contribute
**shard-skew** (device-idle time under the imbalance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: attribution stage names (superset of the device stages: shard-skew
#: only appears for parallel folds, idle only for empty windows).
CP_STAGES = ("h2d", "kernel", "d2h", "shard-skew")


@dataclass
class WindowAttribution:
    """Stage attribution of one submit/drain window."""

    makespan_s: float = 0.0
    batches: int = 0
    stage_s: dict = field(default_factory=dict)
    #: per-op-class share of the critical path, stage -> seconds
    by_op: dict = field(default_factory=dict)

    @property
    def total_stage_s(self) -> float:
        return sum(self.stage_s.values())

    @property
    def bottleneck(self) -> str:
        if not self.stage_s:
            return "idle"
        return max(self.stage_s, key=self.stage_s.get)

    def add(self, other: "WindowAttribution") -> None:
        self.makespan_s += other.makespan_s
        self.batches += other.batches
        for k, v in other.stage_s.items():
            self.stage_s[k] = self.stage_s.get(k, 0.0) + v
        for op, stages in other.by_op.items():
            mine = self.by_op.setdefault(op, {})
            for k, v in stages.items():
                mine[k] = mine.get(k, 0.0) + v

    def as_dict(self) -> dict:
        return {
            "makespan_s": round(self.makespan_s, 9),
            "batches": self.batches,
            "bottleneck": self.bottleneck,
            "stage_s": {k: round(v, 9) for k, v in self.stage_s.items()},
            "by_op": {
                op: {k: round(v, 9) for k, v in st.items()}
                for op, st in self.by_op.items()
            },
        }


def attribute_window(events, n_streams: int) -> WindowAttribution:
    """Walk the binding chain of one window backwards from its
    makespan-defining event, charging each interval to (stage, op).

    Predecessor rules mirror ``StreamScheduler.submit`` exactly:

    * ``kernel_start[i] = max(copy_done[i], kernel_done[i-1])``
    * ``copy_start[i]   = max(copy_done[i-1], wait)`` where ``wait`` is
      ``done[i-1]`` for ``n_streams == 1`` (full serialization) or
      ``done[i - n_streams]`` once all batch buffers are busy — a
      buffer-reuse wait, charged to the older event's return DMA.
    """
    attr = WindowAttribution(batches=len(events))
    if not events:
        return attr

    stage_s = attr.stage_s
    by_op = attr.by_op

    def charge(stage: str, op: str, dt: float) -> None:
        if dt <= 0.0:
            return
        stage_s[stage] = stage_s.get(stage, 0.0) + dt
        d = by_op.setdefault(op, {})
        d[stage] = d.get(stage, 0.0) + dt

    i = max(range(len(events)), key=lambda j: events[j].done_s)
    attr.makespan_s = events[i].done_s
    state = "done"
    while True:
        ev = events[i]
        if state == "done":
            # at ev.done_s: the return DMA is the binding tail
            charge("d2h", ev.op, ev.d2h_s)
            t = ev.done_s - ev.d2h_s
            state = "kernel_done"
        elif state == "kernel_done":
            # at kernel_done: the kernel itself, then its start bound
            charge("kernel", ev.op, ev.kernel_s)
            t = ev.kernel_start_s
            copy_done = ev.copy_start_s + ev.h2d_s
            prev_kd = (
                events[i - 1].done_s - events[i - 1].d2h_s if i > 0 else 0.0
            )
            if copy_done >= prev_kd:
                state = "copy_done"  # own staging bound the start
            else:
                i -= 1               # compute engine was busy
                state = "kernel_done"
        else:  # state == "copy_done"
            # at copy_start + h2d: the H2D copy, then its start bound
            charge("h2d", ev.op, ev.h2d_s)
            t = ev.copy_start_s
            if i == 0:
                break  # the first copy starts at the window epoch
            prev_cd = events[i - 1].copy_start_s + events[i - 1].h2d_s
            if n_streams == 1:
                j, wait = i - 1, events[i - 1].done_s
            elif i >= n_streams:
                j, wait = i - n_streams, events[i - n_streams].done_s
            else:
                j, wait = -1, -1.0
            if wait >= prev_cd and j >= 0:
                i = j          # buffer-reuse: older batch's completion
                state = "done"
            else:
                i -= 1         # copy engine was busy
                state = "copy_done"
        if t <= 0.0:
            break
    return attr


def _window_slices(events, window_starts):
    bounds = [0, *window_starts, len(events)]
    for a, b in zip(bounds, bounds[1:]):
        if b > a:
            yield events[a:b]


def _attribute_sequential(events, window_starts, n_streams):
    """Fold per-window attributions of a sequentially-folded timeline
    (windows are barrier-separated, so makespans and stages add)."""
    total = WindowAttribution()
    windows = []
    for sl in _window_slices(events, window_starts):
        w = attribute_window(sl, n_streams)
        windows.append(w)
        total.add(w)
    return total, windows


@dataclass
class CriticalPathReport:
    """Attribution of a full :class:`StreamOverlapStats` fold."""

    makespan_s: float = 0.0
    stage_s: dict = field(default_factory=dict)
    by_op: dict = field(default_factory=dict)
    bottleneck: str = "idle"
    windows: list = field(default_factory=list)
    shards: list = field(default_factory=list)
    shard_skew_s: float = 0.0

    @property
    def total_stage_s(self) -> float:
        return sum(
            v for k, v in self.stage_s.items() if k != "shard-skew"
        )

    def as_dict(self) -> dict:
        doc = {
            "makespan_s": round(self.makespan_s, 9),
            "bottleneck": self.bottleneck,
            "stage_s": {k: round(v, 9) for k, v in self.stage_s.items()},
            "by_op": {
                op: {k: round(v, 9) for k, v in st.items()}
                for op, st in self.by_op.items()
            },
            "windows": [w.as_dict() for w in self.windows],
        }
        if self.shards:
            doc["shards"] = self.shards
            doc["shard_skew_s"] = round(self.shard_skew_s, 9)
        return doc


def attribute_stats(stats) -> CriticalPathReport:
    """Attribute a drained/folded ``StreamOverlapStats``.

    * plain or sequentially-folded stats: per-window critical paths,
      summed (stage totals reconcile with ``stats.makespan_s`` exactly);
    * parallel-folded stats (``shard_parts``): the slowest device's
      chain is the merged critical path; every faster device adds
      ``makespan - its makespan`` of shard-skew (idle device time).
    """
    rep = CriticalPathReport(makespan_s=stats.makespan_s)
    if stats.shard_parts:
        slowest = None
        for idx, part in enumerate(stats.shard_parts):
            total, _ = _attribute_sequential(
                part.events, part.window_starts, part.streams
            )
            skew = max(stats.makespan_s - part.makespan_s, 0.0)
            rep.shard_skew_s += skew
            rep.shards.append({
                "shard": idx,
                "makespan_s": round(part.makespan_s, 9),
                "skew_s": round(skew, 9),
                "bottleneck": total.bottleneck,
                "stage_s": {
                    k: round(v, 9) for k, v in total.stage_s.items()
                },
            })
            if slowest is None or part.makespan_s > slowest[0]:
                slowest = (part.makespan_s, total)
        if slowest is not None:
            rep.stage_s = dict(slowest[1].stage_s)
            rep.by_op = {
                op: dict(st) for op, st in slowest[1].by_op.items()
            }
        if rep.shard_skew_s > 0.0:
            rep.stage_s["shard-skew"] = rep.shard_skew_s
    else:
        total, windows = _attribute_sequential(
            stats.events, stats.window_starts, stats.streams
        )
        rep.stage_s = total.stage_s
        rep.by_op = total.by_op
        rep.windows = windows
    rep.bottleneck = (
        max(rep.stage_s, key=rep.stage_s.get) if rep.stage_s else "idle"
    )
    return rep


def stage_breakdown(stats, flight_summary: dict | None = None) -> dict:
    """Per-op-class stage-breakdown table: device-stage seconds summed
    over *all* events (not just the critical path) plus, when a flight
    summary is supplied, host-side queue-wait.  Columns:

    ``queue_wait_us`` (coalescer residence, flight records) |
    ``h2d_s`` / ``d2h_s`` (PCIe) | ``kernel_s`` (device) |
    ``compute_wait_s`` (staging done -> kernel start: time a batch sat
    ready while the compute engine served an earlier batch).
    """

    def _all_events(st):
        if st.shard_parts:
            for part in st.shard_parts:
                yield from part.events
        else:
            yield from st.events

    table: dict = {}
    for ev in _all_events(stats):
        row = table.setdefault(ev.op, {
            "batches": 0, "h2d_s": 0.0, "kernel_s": 0.0, "d2h_s": 0.0,
            "compute_wait_s": 0.0,
        })
        row["batches"] += 1
        row["h2d_s"] += ev.h2d_s
        row["kernel_s"] += ev.kernel_s
        row["d2h_s"] += ev.d2h_s
        row["compute_wait_s"] += max(
            ev.kernel_start_s - (ev.copy_start_s + ev.h2d_s), 0.0
        )
    if flight_summary:
        for op, agg in flight_summary.get("by_op", {}).items():
            row = table.setdefault(op, {
                "batches": 0, "h2d_s": 0.0, "kernel_s": 0.0,
                "d2h_s": 0.0, "compute_wait_s": 0.0,
            })
            row["queue_wait_us_sum"] = agg.get("queue_wait_us_sum", 0.0)
            row["queue_wait_us_max"] = agg.get("queue_wait_us_max", 0.0)
            row["sampled_ops"] = agg.get("count", 0)
            row["forwarded"] = agg.get("forwarded", 0)
    for row in table.values():
        for k, v in row.items():
            if isinstance(v, float):
                row[k] = round(v, 9)
    return table
