"""Unified observability: metrics registry, span tracing, exporters.

Every layer of the serving and write paths reports through this one
zero-dependency subsystem instead of hand-rolled counters: the host
engines (:mod:`repro.host.engine`), the mixed-workload executor and
op-class coalescer (:mod:`repro.host.mixed`, :mod:`repro.host.batching`),
the hot-key cache (:mod:`repro.host.cache`), the three write kernels
(:mod:`repro.cuart.update` / ``insert`` / ``delete``) and the simulated
GPU cost model (:mod:`repro.gpusim`).

Three pieces:

* :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms (p50/p95/p99 summaries), optionally labelled;
* :class:`Tracer` — context-manager spans with nesting, plus synthetic
  "simulated kernel" events fed from the GPU cost model; the module
  singleton :data:`NULL_TRACER` makes disabled tracing allocation-free;
* exporters (:mod:`repro.obs.export`) — JSON snapshot, Prometheus text
  exposition, and chrome://tracing trace-event JSON;
* :class:`FlightRecorder` (:mod:`repro.obs.flightrec`) — bounded,
  samplable per-op flight records with black-box dumps; the disabled
  singleton :data:`NULL_FLIGHT_RECORDER` is allocation-free;
* :mod:`repro.obs.critical_path` — per-window critical-path and
  stage-breakdown attribution over ``StreamOverlapStats`` timelines.

See ``docs/observability.md`` for the metric catalog and the stage
taxonomy.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_US_BUCKETS,
    MetricsRegistry,
    OCCUPANCY_BUCKETS,
)
from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer, TracerView
from repro.obs.export import (
    chrome_trace,
    snapshot_json,
    to_prometheus,
    write_chrome_trace,
)
from repro.obs.flightrec import (
    NULL_FLIGHT_RECORDER,
    FlightRecord,
    FlightRecorder,
    NullFlightRecorder,
)
from repro.obs.critical_path import (
    CriticalPathReport,
    WindowAttribution,
    attribute_stats,
    attribute_window,
    stage_breakdown,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_US_BUCKETS",
    "OCCUPANCY_BUCKETS",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "TracerView",
    "NULL_FLIGHT_RECORDER",
    "FlightRecord",
    "FlightRecorder",
    "NullFlightRecorder",
    "CriticalPathReport",
    "WindowAttribution",
    "attribute_stats",
    "attribute_window",
    "stage_breakdown",
    "chrome_trace",
    "snapshot_json",
    "to_prometheus",
    "write_chrome_trace",
]
