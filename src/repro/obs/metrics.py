"""Metric primitives and the registry.

Design constraints, in order:

1. **Hot-path cost** — the serving path observes a histogram per device
   batch and increments a couple of counters; everything on that path is
   attribute arithmetic on plain Python objects (no locks, no string
   formatting, no datetime).  Label resolution (:meth:`_Family.labels`)
   is a dict probe and is meant to be hoisted out of loops.
2. **Zero dependencies** — stdlib only (``bisect``, ``math``).
3. **One shape for every consumer** — :meth:`MetricsRegistry.snapshot`
   is the single source the BENCH JSON, the Prometheus exporter and the
   tests all read; nothing hand-builds report dicts next to it.

Histograms are fixed-bucket: ``observe`` bisects into a precomputed
bound list, and quantiles are estimated by linear interpolation inside
the owning bucket (the classic Prometheus ``histogram_quantile``
estimator, tightened with the exact observed min/max at the tails).
"""

from __future__ import annotations

from bisect import bisect_left
from math import inf, isnan
from typing import Optional, Sequence

from repro.errors import ReproError

#: default bucket upper bounds for latency-in-microseconds histograms: a
#: 1-2-5 geometric ladder from 1us to 10s (wide enough for a scaled-down
#: populate pass, fine enough near the per-op serving latencies).
LATENCY_US_BUCKETS: tuple[float, ...] = tuple(
    m * 10**e for e in range(0, 7) for m in (1.0, 2.0, 5.0)
) + (1e7,)

#: bucket bounds for 0..1 fractions (batch occupancy, hit rates).
OCCUPANCY_BUCKETS: tuple[float, ...] = tuple(i / 20 for i in range(1, 21))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ReproError(f"counters only go up; got inc({n})")
        self.value += n


class Gauge:
    """A value that can go up and down (populations, depths)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Fixed-bucket histogram with streaming count/sum/min/max.

    ``observe(value, count=n)`` records ``n`` identical observations in
    one call — the executors measure wall-clock per *batch* and attribute
    the per-op share to every op in it, so a 4096-op batch costs one
    bisect, not 4096.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float]) -> None:
        b = tuple(float(x) for x in bounds)
        if not b or any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ReproError("histogram bounds must be strictly increasing")
        self.bounds = b
        # one overflow bucket past the last bound (+inf)
        self.bucket_counts = [0] * (len(b) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = inf
        self.max = -inf

    def observe(self, value: float, count: int = 1) -> None:
        if count <= 0:
            return
        if isnan(value):
            raise ReproError("refusing to observe NaN")
        self.bucket_counts[bisect_left(self.bounds, value)] += count
        self.count += count
        self.sum += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1) by linear
        interpolation within the owning bucket, clamped to the exact
        observed ``[min, max]`` envelope."""
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if cum + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                frac = (rank - cum) / n
                est = lo + (hi - lo) * frac
                return min(max(est, self.min), self.max)
            cum += n
        return self.max

    def summary(self) -> dict:
        """The percentile record every exporter embeds."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "min": self.min,
            "max": self.max,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric: a set of children keyed by label values."""

    __slots__ = ("name", "kind", "help", "label_names", "children", "_mk")

    def __init__(self, name: str, kind: str, help: str,
                 label_names: tuple[str, ...], mk) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.children: dict[tuple, object] = {}
        self._mk = mk

    def labels(self, **labels):
        """Fetch (creating on first use) the child for one label set."""
        if tuple(labels) != self.label_names:
            raise ReproError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(v) for v in labels.values())
        child = self.children.get(key)
        if child is None:
            child = self.children[key] = self._mk()
        return child

    def label_values(self) -> list[tuple]:
        return sorted(self.children)


class _ScopedFamily:
    """A family view that pre-binds constant labels (see
    :class:`ScopedRegistry`).  ``labels(...)`` takes only the caller's
    variable labels; the scope's constants are appended on resolution, in
    the registered order (variable labels first)."""

    __slots__ = ("_family", "_const")

    def __init__(self, family: _Family, const: dict) -> None:
        self._family = family
        self._const = const

    @property
    def name(self) -> str:
        return self._family.name

    def labels(self, **labels):
        return self._family.labels(**labels, **self._const)


class ScopedRegistry:
    """A constant-label view over a shared :class:`MetricsRegistry`.

    Instrumented code declares metrics exactly as before —
    ``m.counter("engine_queries_total", labels=("op",))`` — but every
    family registered through a scope carries the scope's constant
    labels appended to its schema, and every child resolution / value
    probe binds them automatically.  This is how the sharded serving
    layer gives each shard engine its own ``shard="i"``-labeled series
    in one shared registry without touching the engine's metric calls.

    ``snapshot()`` / ``families()`` read the *whole* underlying
    registry (one reporting surface); only declaration and ``value``
    are scoped.
    """

    def __init__(self, registry: "MetricsRegistry", **const) -> None:
        if not const:
            raise ReproError("ScopedRegistry needs at least one constant label")
        self._registry = registry
        self._const = {k: str(v) for k, v in const.items()}

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        full = tuple(labels) + tuple(self._const)
        fam = self._registry._register(name, "counter", help, full, Counter)
        return (_ScopedFamily(fam, self._const) if labels
                else fam.labels(**self._const))

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        full = tuple(labels) + tuple(self._const)
        fam = self._registry._register(name, "gauge", help, full, Gauge)
        return (_ScopedFamily(fam, self._const) if labels
                else fam.labels(**self._const))

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = LATENCY_US_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        full = tuple(labels) + tuple(self._const)
        fam = self._registry._register(
            name, "histogram", help, full, lambda: Histogram(bounds)
        )
        return (_ScopedFamily(fam, self._const) if labels
                else fam.labels(**self._const))

    def value(self, name: str, **labels):
        """Read one scoped child (the constant labels are appended to
        the probe)."""
        return self._registry.value(name, **labels, **self._const)

    # shared reporting surface: delegate unscoped
    def families(self):
        return self._registry.families()

    def get(self, name: str):
        return self._registry.get(name)

    def snapshot(self) -> dict:
        return self._registry.snapshot()

    def scoped(self, **const) -> "ScopedRegistry":
        """Nest a further scope (labels append outside-in)."""
        merged = dict(self._const)
        merged.update({k: str(v) for k, v in const.items()})
        return ScopedRegistry(self._registry, **merged)


class MetricsRegistry:
    """Process-local registry of named metric families.

    Registration is idempotent — asking for an existing name returns the
    same family (or bare child), so every layer can declare the metrics
    it touches without coordinating ownership; a kind or label-schema
    mismatch raises instead of silently forking the series.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def scoped(self, **const) -> ScopedRegistry:
        """A view of this registry that appends constant labels (e.g.
        ``registry.scoped(shard="0")``) to every family declared and
        every value probed through it."""
        return ScopedRegistry(self, **const)

    # -- declaration ----------------------------------------------------
    def _register(self, name: str, kind: str, help: str,
                  labels: Sequence[str], mk) -> _Family:
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind or fam.label_names != tuple(labels):
                raise ReproError(
                    f"metric {name!r} already registered as {fam.kind}"
                    f"{fam.label_names}, not {kind}{tuple(labels)}"
                )
            return fam
        fam = _Family(name, kind, help, tuple(labels), mk)
        self._families[name] = fam
        return fam

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()):
        """A counter family; with no labels, the single child directly."""
        fam = self._register(name, "counter", help, labels, Counter)
        return fam if labels else fam.labels()

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        fam = self._register(name, "gauge", help, labels, Gauge)
        return fam if labels else fam.labels()

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = LATENCY_US_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        fam = self._register(
            name, "histogram", help, labels, lambda: Histogram(bounds)
        )
        return fam if labels else fam.labels()

    # -- introspection --------------------------------------------------
    def families(self) -> list[_Family]:
        return [self._families[n] for n in sorted(self._families)]

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    def value(self, name: str, **labels):
        """Read one child's current value (counters/gauges) or summary
        (histograms); ``None`` when the series does not exist yet."""
        fam = self._families.get(name)
        if fam is None:
            return None
        key = tuple(str(v) for v in labels.values())
        child = fam.children.get(key)
        if child is None:
            return None
        if isinstance(child, Histogram):
            return child.summary()
        return child.value

    def snapshot(self) -> dict:
        """JSON-safe dump of every series — the one reporting surface.

        Shape::

            {"counters":   {"name": value | {"label=val[,...]": value}},
             "gauges":     {...same...},
             "histograms": {"name": summary | {"label=val": summary}}}
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for fam in self.families():
            section = out[fam.kind + "s"]
            if not fam.label_names:
                child = fam.children.get(())
                if child is None:
                    continue
                section[fam.name] = (
                    child.summary() if fam.kind == "histogram" else child.value
                )
                continue
            series = {}
            for key in fam.label_values():
                child = fam.children[key]
                label_str = ",".join(
                    f"{n}={v}" for n, v in zip(fam.label_names, key)
                )
                series[label_str] = (
                    child.summary() if fam.kind == "histogram" else child.value
                )
            if series:
                section[fam.name] = series
        return out
