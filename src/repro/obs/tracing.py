"""Span tracing with a free disabled path.

A :class:`Tracer` records *complete* events (begin + duration) that the
chrome://tracing exporter can emit directly: host spans carry real
wall-clock from ``perf_counter_ns``, and the engines additionally
``emit_simulated`` the GPU cost model's kernel timings onto a separate
"gpu-sim" track, placed at the moment the host dispatched the batch — so
opening the trace shows the simulated kernel time lined up beneath the
host span that paid for it.

Nesting needs no explicit parent bookkeeping: chrome's trace viewer (and
our tests) derive it from time containment per track, which complete
events guarantee because a span closes before its enclosing span does.

Disabled tracing must cost nothing: :data:`NULL_TRACER` is a singleton
whose :meth:`~NullTracer.span` returns one shared no-op context manager
— no per-call allocation on the hot path (verified by a tracemalloc
test).  Instrumented code can also branch on :attr:`Tracer.enabled`
before building argument dicts.
"""

from __future__ import annotations

import time
from typing import Optional

#: track ids (chrome "tid") the exporters name.
HOST_TRACK = 0
GPU_TRACK = 1


class Span:
    """One open host span; use via ``with tracer.span(...):``."""

    __slots__ = ("_tracer", "name", "args", "_start_us")

    def __init__(self, tracer: "Tracer", name: str,
                 args: Optional[dict]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "Span":
        self._start_us = self._tracer._now_us()
        self._tracer._depth += 1
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        tracer._depth -= 1
        end = tracer._now_us()
        ev = {
            "name": self.name,
            "ph": "X",
            "ts": self._start_us,
            "dur": end - self._start_us,
            "pid": 0,
            "tid": tracer.host_tid,
        }
        if self.args:
            ev["args"] = self.args
        tracer.events.append(ev)


class Tracer:
    """Collects trace events; export with :func:`repro.obs.export.chrome_trace`."""

    enabled = True
    #: default track ids; subtracks get fresh ids via :meth:`subtrack`.
    host_tid = HOST_TRACK
    gpu_tid = GPU_TRACK

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._epoch_ns = time.perf_counter_ns()
        self._depth = 0
        #: chrome "thread_name" per tid — exporters read this; stays at
        #: the two defaults until :meth:`subtrack` allocates more.
        self.track_names: dict[int, str] = {
            HOST_TRACK: "host", GPU_TRACK: "gpu-sim",
        }
        self._next_tid = GPU_TRACK + 1

    def _now_us(self) -> float:
        return (time.perf_counter_ns() - self._epoch_ns) / 1e3

    def _alloc_tid(self, name: str) -> int:
        # same label → same track: successive sharded engines (1/2/4/8
        # devices, then rebalance) reuse the shard-N tracks instead of
        # piling up identically-named threads in the trace viewer
        for tid, existing in self.track_names.items():
            if existing == name:
                return tid
        tid = self._next_tid
        self._next_tid += 1
        self.track_names[tid] = name
        return tid

    def subtrack(self, label: str,
                 args: Optional[dict] = None) -> "TracerView":
        """A view of this tracer writing to its own pair of named
        tracks (``label/host``, ``label/gpu-sim``) in the shared event
        stream — one per shard keeps concurrent engines from
        collapsing onto a single track.  ``args`` (e.g. the shard id)
        are merged into every event the view emits."""
        return TracerView(self, label, args)

    def span(self, name: str, args: Optional[dict] = None) -> Span:
        """Open a (nestable) host span as a context manager."""
        return Span(self, name, args)

    def instant(self, name: str, args: Optional[dict] = None) -> None:
        """Record a zero-duration marker on the host track."""
        ev = {"name": name, "ph": "i", "ts": self._now_us(), "pid": 0,
              "tid": self.host_tid, "s": "t"}
        if args:
            ev["args"] = args
        self.events.append(ev)

    def emit_simulated(self, name: str, duration_s: float,
                       args: Optional[dict] = None) -> None:
        """Record a simulated-kernel span on the gpu-sim track, starting
        now (i.e. inside whichever host span is dispatching)."""
        ev = {
            "name": name,
            "ph": "X",
            "ts": self._now_us(),
            "dur": duration_s * 1e6,
            "pid": 0,
            "tid": self.gpu_tid,
        }
        if args:
            ev["args"] = args
        self.events.append(ev)

    def clear(self) -> None:
        self.events = []


class TracerView(Tracer):
    """Per-shard view of a root :class:`Tracer`: shares the root's
    event list, epoch and track-name table but writes to its own track
    ids and stamps its ``args`` (the shard id) onto every event."""

    def __init__(self, root: Tracer, label: str,
                 args: Optional[dict] = None) -> None:
        root = root._root if isinstance(root, TracerView) else root
        self._root = root
        self._label = label
        self._args = dict(args) if args else None
        self.events = root.events
        self.track_names = root.track_names
        self._depth = 0
        self.host_tid = root._alloc_tid(f"{label}/host")
        self.gpu_tid = root._alloc_tid(f"{label}/gpu-sim")

    def _now_us(self) -> float:
        return self._root._now_us()

    def _alloc_tid(self, name: str) -> int:
        return self._root._alloc_tid(name)

    def subtrack(self, label: str,
                 args: Optional[dict] = None) -> "TracerView":
        merged = dict(self._args or {})
        if args:
            merged.update(args)
        return TracerView(
            self._root, f"{self._label}/{label}", merged or None
        )

    def _merge(self, args: Optional[dict]) -> Optional[dict]:
        if self._args is None:
            return args
        if not args:
            return self._args
        merged = dict(self._args)
        merged.update(args)
        return merged

    def span(self, name: str, args: Optional[dict] = None) -> Span:
        return Span(self, name, self._merge(args))

    def instant(self, name: str, args: Optional[dict] = None) -> None:
        super().instant(name, self._merge(args))

    def emit_simulated(self, name: str, duration_s: float,
                       args: Optional[dict] = None) -> None:
        super().emit_simulated(name, duration_s, self._merge(args))

    def clear(self) -> None:
        self._root.clear()
        self.events = self._root.events


class _NullSpan:
    """Shared no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every call is a constant-return no-op."""

    enabled = False
    events: list = []  # always empty; shared sentinel is fine for a no-op

    def subtrack(self, label: str,
                 args: Optional[dict] = None) -> "NullTracer":
        return self

    def span(self, name: str, args: Optional[dict] = None) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, args: Optional[dict] = None) -> None:
        return None

    def emit_simulated(self, name: str, duration_s: float,
                       args: Optional[dict] = None) -> None:
        return None

    def clear(self) -> None:
        return None


#: the module-wide disabled tracer every engine defaults to.
NULL_TRACER = NullTracer()
