"""Span tracing with a free disabled path.

A :class:`Tracer` records *complete* events (begin + duration) that the
chrome://tracing exporter can emit directly: host spans carry real
wall-clock from ``perf_counter_ns``, and the engines additionally
``emit_simulated`` the GPU cost model's kernel timings onto a separate
"gpu-sim" track, placed at the moment the host dispatched the batch — so
opening the trace shows the simulated kernel time lined up beneath the
host span that paid for it.

Nesting needs no explicit parent bookkeeping: chrome's trace viewer (and
our tests) derive it from time containment per track, which complete
events guarantee because a span closes before its enclosing span does.

Disabled tracing must cost nothing: :data:`NULL_TRACER` is a singleton
whose :meth:`~NullTracer.span` returns one shared no-op context manager
— no per-call allocation on the hot path (verified by a tracemalloc
test).  Instrumented code can also branch on :attr:`Tracer.enabled`
before building argument dicts.
"""

from __future__ import annotations

import time
from typing import Optional

#: track ids (chrome "tid") the exporters name.
HOST_TRACK = 0
GPU_TRACK = 1


class Span:
    """One open host span; use via ``with tracer.span(...):``."""

    __slots__ = ("_tracer", "name", "args", "_start_us")

    def __init__(self, tracer: "Tracer", name: str,
                 args: Optional[dict]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "Span":
        self._start_us = self._tracer._now_us()
        self._tracer._depth += 1
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        tracer._depth -= 1
        end = tracer._now_us()
        ev = {
            "name": self.name,
            "ph": "X",
            "ts": self._start_us,
            "dur": end - self._start_us,
            "pid": 0,
            "tid": HOST_TRACK,
        }
        if self.args:
            ev["args"] = self.args
        tracer.events.append(ev)


class Tracer:
    """Collects trace events; export with :func:`repro.obs.export.chrome_trace`."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._epoch_ns = time.perf_counter_ns()
        self._depth = 0

    def _now_us(self) -> float:
        return (time.perf_counter_ns() - self._epoch_ns) / 1e3

    def span(self, name: str, args: Optional[dict] = None) -> Span:
        """Open a (nestable) host span as a context manager."""
        return Span(self, name, args)

    def instant(self, name: str, args: Optional[dict] = None) -> None:
        """Record a zero-duration marker on the host track."""
        ev = {"name": name, "ph": "i", "ts": self._now_us(), "pid": 0,
              "tid": HOST_TRACK, "s": "t"}
        if args:
            ev["args"] = args
        self.events.append(ev)

    def emit_simulated(self, name: str, duration_s: float,
                       args: Optional[dict] = None) -> None:
        """Record a simulated-kernel span on the gpu-sim track, starting
        now (i.e. inside whichever host span is dispatching)."""
        ev = {
            "name": name,
            "ph": "X",
            "ts": self._now_us(),
            "dur": duration_s * 1e6,
            "pid": 0,
            "tid": GPU_TRACK,
        }
        if args:
            ev["args"] = args
        self.events.append(ev)

    def clear(self) -> None:
        self.events = []


class _NullSpan:
    """Shared no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every call is a constant-return no-op."""

    enabled = False
    events: list = []  # always empty; shared sentinel is fine for a no-op

    def span(self, name: str, args: Optional[dict] = None) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, args: Optional[dict] = None) -> None:
        return None

    def emit_simulated(self, name: str, duration_s: float,
                       args: Optional[dict] = None) -> None:
        return None

    def clear(self) -> None:
        return None


#: the module-wide disabled tracer every engine defaults to.
NULL_TRACER = NullTracer()
