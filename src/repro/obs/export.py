"""Exporters: JSON snapshot, Prometheus text exposition, chrome trace.

All three read the same primitives (:meth:`MetricsRegistry.snapshot` /
:attr:`Tracer.events`), so any number they print is the number every
other consumer saw.
"""

from __future__ import annotations

import json
import os
from math import inf

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import GPU_TRACK, HOST_TRACK


def snapshot_json(registry: MetricsRegistry, *, indent: int | None = None) -> str:
    """The registry snapshot as a JSON document (re-parseable)."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# Prometheus text exposition (version 0.0.4)
# ---------------------------------------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _labels_str(names, values, extra: str = "") -> str:
    parts = [f'{n}="{_escape_label(str(v))}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(v: float) -> str:
    if v == inf:
        return "+Inf"
    if v == -inf:
        return "-Inf"
    return repr(float(v)) if isinstance(v, float) and not float(v).is_integer() \
        else str(int(v))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every family in the Prometheus text format."""
    lines: list[str] = []
    for fam in registry.families():
        if not fam.children:
            continue
        if fam.help:
            lines.append(f"# HELP {fam.name} {_escape_help(fam.help)}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        for key in fam.label_values():
            child = fam.children[key]
            if isinstance(child, Histogram):
                cum = 0
                for bound, n in zip(child.bounds, child.bucket_counts):
                    cum += n
                    le = 'le="' + _fmt(bound) + '"'
                    lines.append(
                        f"{fam.name}_bucket"
                        f"{_labels_str(fam.label_names, key, le)} {cum}"
                    )
                le_inf = 'le="+Inf"'
                lines.append(
                    f"{fam.name}_bucket"
                    f"{_labels_str(fam.label_names, key, le_inf)}"
                    f" {child.count}"
                )
                ls = _labels_str(fam.label_names, key)
                lines.append(f"{fam.name}_sum{ls} {repr(float(child.sum))}")
                lines.append(f"{fam.name}_count{ls} {child.count}")
            else:
                ls = _labels_str(fam.label_names, key)
                lines.append(f"{fam.name}{ls} {_fmt(child.value)}")
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# chrome://tracing trace-event JSON
# ---------------------------------------------------------------------------

_TRACK_NAMES = {HOST_TRACK: "host", GPU_TRACK: "gpu-sim"}


def chrome_trace(tracer) -> dict:
    """Trace-event-format document; load via chrome://tracing or
    https://ui.perfetto.dev.  Tracks come from the tracer's
    ``track_names`` table when present (per-shard subtracks), else the
    two defaults."""
    names = getattr(tracer, "track_names", None) or _TRACK_NAMES
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": label},
        }
        for tid, label in sorted(names.items())
    ] + [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": HOST_TRACK,
            "args": {"name": "cuart"},
        }
    ]
    return {
        "traceEvents": meta + list(tracer.events),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(tracer, path) -> None:
    parent = os.path.dirname(os.fspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer), fh)
        fh.write("\n")
