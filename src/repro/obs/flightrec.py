"""Per-operation flight recorder (bounded, samplable "black box").

The spans/metrics layer (:mod:`repro.obs.tracing`,
:mod:`repro.obs.metrics`) answers *how much* — aggregate latency
percentiles, counter totals.  The flight recorder answers *which op*:
one structured :class:`FlightRecord` per (sampled) operation, threaded
through the whole serving pipeline and stamped at each stage:

    enqueue -> coalescer residence -> dispatch (dedup + H2D + kernel
    + D2H, from the batch's simulated :class:`~repro.gpusim.streams.
    StreamEvent`) -> merge / forwarded

plus retry/degrade/exhaustion events observed by
:class:`~repro.host.resilience.ResilientDispatcher`.  Records live in a
bounded ring buffer (``capacity`` newest records) and can be sampled
(``sample_every=N`` keeps every Nth op) so the recorder is safe to leave
on in perf runs.

A "black box" dump — a JSON-able snapshot of the ring plus the trigger
context — fires automatically on

* a **fault burst**: ``fault_burst`` resilience events within a window
  of ``fault_window`` operations, or
* a **p99 breach**: the rolling p99 of completed-op host latency
  exceeding ``p99_threshold_us``.

Dumps accumulate on :attr:`FlightRecorder.dumps` and are written to
``dump_path`` (suffixed per trigger) when one is configured.

The disabled path mirrors the ``NULL_TRACER`` pattern:
:data:`NULL_FLIGHT_RECORDER` is a shared singleton whose hot-path
methods (``begin`` / ``note_fault``) return constants and allocate
nothing, so instrumented code pays one attribute load + truthiness
check when recording is off (verified by a tracemalloc test).
"""

from __future__ import annotations

import json
import time
import zlib
from collections import deque

#: ordered stage taxonomy (documented in docs/observability.md); the
#: sim_* stage stamps come from the batch's StreamEvent, everything
#: else from the host wall clock.
STAGES = (
    "enqueue",       # op accepted by the executor, record created
    "queue-wait",    # coalescer residence: enqueue -> dispatch
    "dispatch",      # batch flushed to the engine (dedup runs here)
    "h2d",           # simulated host->device PCIe copy
    "kernel",        # simulated device kernel (incl. dedup hash table)
    "d2h",           # simulated device->host PCIe copy
    "complete",      # results merged back / op forwarded host-side
)


def _key_hash(key) -> int:
    """Stable 32-bit content hash of an op's key (``hash()`` is
    per-process salted for str/bytes, useless for cross-run triage)."""
    if key is None:
        return 0
    if isinstance(key, (bytes, bytearray, memoryview)):
        return zlib.crc32(key) & 0xFFFFFFFF
    return zlib.crc32(repr(key).encode()) & 0xFFFFFFFF


class FlightRecord:
    """One operation's flight through the pipeline.  Mutable slots
    object: the executor stamps fields as the op advances."""

    __slots__ = (
        "op", "key_hash", "shard", "batch_id", "queue_pos",
        "status", "attempts", "forwarded", "absorbed",
        "t_enqueue_us", "t_dispatch_us", "t_complete_us",
        "queue_wait_us", "host_latency_us",
        "sim_h2d_us", "sim_kernel_us", "sim_d2h_us",
        "events",
    )

    def __init__(self, op: str, key_hash: int, shard, t_enqueue_us: float):
        self.op = op
        self.key_hash = key_hash
        self.shard = shard
        self.batch_id = -1
        self.queue_pos = -1
        self.status = "PENDING"
        self.attempts = 1
        self.forwarded = False
        self.absorbed = False
        self.t_enqueue_us = t_enqueue_us
        self.t_dispatch_us = 0.0
        self.t_complete_us = 0.0
        self.queue_wait_us = 0.0
        self.host_latency_us = 0.0
        self.sim_h2d_us = 0.0
        self.sim_kernel_us = 0.0
        self.sim_d2h_us = 0.0
        self.events = None  # lazily-created list of (t_us, kind, op)

    def note(self, t_us: float, kind: str, op: str) -> None:
        if self.events is None:
            self.events = []
        self.events.append((round(t_us, 3), kind, op))

    def as_dict(self) -> dict:
        return {
            "op": self.op,
            "key_hash": self.key_hash,
            "shard": self.shard,
            "batch_id": self.batch_id,
            "queue_pos": self.queue_pos,
            "status": self.status,
            "attempts": self.attempts,
            "forwarded": self.forwarded,
            "absorbed": self.absorbed,
            "t_enqueue_us": round(self.t_enqueue_us, 3),
            "t_dispatch_us": round(self.t_dispatch_us, 3),
            "t_complete_us": round(self.t_complete_us, 3),
            "queue_wait_us": round(self.queue_wait_us, 3),
            "host_latency_us": round(self.host_latency_us, 3),
            "sim_h2d_us": round(self.sim_h2d_us, 6),
            "sim_kernel_us": round(self.sim_kernel_us, 6),
            "sim_d2h_us": round(self.sim_d2h_us, 6),
            "events": list(self.events) if self.events else [],
        }


class FlightRecorder:
    """Bounded ring buffer of :class:`FlightRecord` with sampling and
    automatic black-box dumps.  Pass one instance as
    ``EngineConfig(flight_recorder=...)``; the executor and resilience
    layer find it on the engine."""

    enabled = True

    def __init__(
        self,
        capacity: int = 4096,
        *,
        sample_every: int = 1,
        p99_threshold_us: float | None = None,
        fault_burst: int = 8,
        fault_window: int = 256,
        dump_path=None,
        clock=None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.capacity = capacity
        self.sample_every = sample_every
        self.p99_threshold_us = p99_threshold_us
        self.fault_burst = fault_burst
        self.fault_window = fault_window
        self.dump_path = dump_path
        self.records: deque = deque(maxlen=capacity)
        self.dumps: list = []
        self.ops_seen = 0
        self.ops_recorded = 0
        self.faults_seen = 0
        self._fault_marks: deque = deque()
        self._latencies: deque = deque(maxlen=256)
        self._dump_cooldown_until = 0
        self._clock = clock if clock is not None else time.perf_counter_ns
        self._epoch_ns = self._clock()

    # -- hot path -----------------------------------------------------

    def now_us(self) -> float:
        return (self._clock() - self._epoch_ns) / 1e3

    def begin(self, op: str, key=None, shard=None):
        """Admit one op; returns its record, or ``None`` when sampled
        out (callers skip all further stamping for unsampled ops)."""
        self.ops_seen += 1
        if self.sample_every > 1 and self.ops_seen % self.sample_every:
            return None
        rec = FlightRecord(op, _key_hash(key), shard, self.now_us())
        self.records.append(rec)
        self.ops_recorded += 1
        return rec

    def note_fault(self, op: str, kind: str, record=None) -> None:
        """Resilience event (retry / degraded / exhausted / recovered).
        Counts toward the fault-burst dump trigger; also appended to
        ``record.events`` when the faulting op was sampled."""
        self.faults_seen += 1
        if record is not None:
            record.note(self.now_us(), kind, op)
        marks = self._fault_marks
        marks.append(self.ops_seen)
        floor = self.ops_seen - self.fault_window
        while marks and marks[0] < floor:
            marks.popleft()
        if len(marks) >= self.fault_burst:
            marks.clear()
            self._maybe_dump(
                "fault-burst",
                {"faults_in_window": self.fault_burst,
                 "window_ops": self.fault_window, "last_op": op,
                 "last_kind": kind},
            )

    # -- completion ---------------------------------------------------

    def complete(
        self,
        recs,
        *,
        batch_id: int,
        t_dispatch_us: float,
        statuses=None,
        attempts=None,
        sim_events=None,
        batch_size: int = 0,
    ) -> None:
        """Stamp a flushed batch's sampled records with dispatch /
        completion times, per-op status and the batch's simulated
        device-stage timeline (one or more ``StreamEvent`` per device
        sub-batch; a record maps to sub-batch ``queue_pos //
        ceil(batch/len(events))``)."""
        t_done = self.now_us()
        n_ev = len(sim_events) if sim_events else 0
        per_ev = 1
        if n_ev > 1 and batch_size > 0:
            per_ev = max((batch_size + n_ev - 1) // n_ev, 1)
        for rec in recs:
            rec.batch_id = batch_id
            rec.t_dispatch_us = t_dispatch_us
            rec.t_complete_us = t_done
            rec.queue_wait_us = max(t_dispatch_us - rec.t_enqueue_us, 0.0)
            rec.host_latency_us = max(t_done - rec.t_enqueue_us, 0.0)
            q = rec.queue_pos if rec.queue_pos >= 0 else 0
            if statuses is not None and q < len(statuses):
                rec.status = statuses[q]
            elif rec.status == "PENDING":
                rec.status = "OK"
            if attempts is not None and q < len(attempts):
                rec.attempts = int(attempts[q])
            if n_ev:
                ev = sim_events[min(q // per_ev, n_ev - 1)]
                rec.sim_h2d_us = ev.h2d_s * 1e6
                rec.sim_kernel_us = ev.kernel_s * 1e6
                rec.sim_d2h_us = ev.d2h_s * 1e6
            self._latencies.append(rec.host_latency_us)
        self._check_p99()

    def complete_forwarded(self, rec, found: bool) -> None:
        """Stamp an op answered host-side (store-to-load forwarding):
        it never reached the device, so every sim stage stays 0."""
        t = self.now_us()
        rec.forwarded = True
        rec.status = "OK" if found else "NOT_FOUND"
        rec.t_dispatch_us = t
        rec.t_complete_us = t
        rec.host_latency_us = max(t - rec.t_enqueue_us, 0.0)
        self._latencies.append(rec.host_latency_us)

    def complete_absorbed(self, rec, found: bool) -> None:
        """Stamp a write acked host-side by the memtable: its folded
        effect reaches the device later through a compaction batch, so
        the record carries no sim stages of its own — ``absorbed``
        distinguishes it from device-served writes in the summary."""
        self.complete_forwarded(rec, found)
        rec.forwarded = False
        rec.absorbed = True

    # -- dumps and summaries ------------------------------------------

    def _check_p99(self) -> None:
        if self.p99_threshold_us is None or len(self._latencies) < 32:
            return
        lat = sorted(self._latencies)
        p99 = lat[min(int(len(lat) * 0.99), len(lat) - 1)]
        if p99 > self.p99_threshold_us:
            self._maybe_dump(
                "p99-breach",
                {"p99_us": round(p99, 3),
                 "threshold_us": self.p99_threshold_us,
                 "sample": len(lat)},
            )

    def _maybe_dump(self, trigger: str, context: dict) -> None:
        # one dump per fault_window ops: a sustained burst should not
        # produce a dump per op
        if self.ops_seen < self._dump_cooldown_until:
            return
        self._dump_cooldown_until = self.ops_seen + self.fault_window
        self.dump(trigger, context)

    def dump(self, trigger: str = "manual", context: dict | None = None) -> dict:
        """Snapshot the ring into a black-box dump (and to
        ``dump_path`` when configured).  Returns the dump document."""
        doc = {
            "trigger": trigger,
            "context": context or {},
            "at_op": self.ops_seen,
            "summary": self.summary(),
            "records": [r.as_dict() for r in self.records],
        }
        self.dumps.append(doc)
        if self.dump_path is not None:
            import pathlib

            p = pathlib.Path(str(self.dump_path))
            if len(self.dumps) > 1:
                p = p.with_name(f"{p.stem}.{len(self.dumps)}{p.suffix}")
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(json.dumps(doc, indent=1, sort_keys=True))
        return doc

    def snapshot(self) -> dict:
        """Full recorder state (meta + ring + any triggered dumps),
        suitable for ``--flight-dump`` artifacts."""
        return {
            "capacity": self.capacity,
            "sample_every": self.sample_every,
            "ops_seen": self.ops_seen,
            "ops_recorded": self.ops_recorded,
            "faults_seen": self.faults_seen,
            "summary": self.summary(),
            "records": [r.as_dict() for r in self.records],
            "dumps": [
                {k: d[k] for k in ("trigger", "context", "at_op")}
                for d in self.dumps
            ],
        }

    def summary(self) -> dict:
        """Per-op-class aggregates over the ring: counts, queue-wait /
        host-latency means and maxes, sim-stage sums, status tallies.
        This is what ``bench_diff`` consumes from flight dumps."""
        by_op: dict = {}
        for r in self.records:
            d = by_op.get(r.op)
            if d is None:
                d = by_op[r.op] = {
                    "count": 0, "forwarded": 0, "absorbed": 0,
                    "queue_wait_us_sum": 0.0, "queue_wait_us_max": 0.0,
                    "host_latency_us_sum": 0.0, "host_latency_us_max": 0.0,
                    "sim_h2d_us_sum": 0.0, "sim_kernel_us_sum": 0.0,
                    "sim_d2h_us_sum": 0.0,
                    "statuses": {}, "retries": 0,
                }
            d["count"] += 1
            d["forwarded"] += bool(r.forwarded)
            d["absorbed"] += bool(r.absorbed)
            d["queue_wait_us_sum"] += r.queue_wait_us
            d["queue_wait_us_max"] = max(
                d["queue_wait_us_max"], r.queue_wait_us
            )
            d["host_latency_us_sum"] += r.host_latency_us
            d["host_latency_us_max"] = max(
                d["host_latency_us_max"], r.host_latency_us
            )
            d["sim_h2d_us_sum"] += r.sim_h2d_us
            d["sim_kernel_us_sum"] += r.sim_kernel_us
            d["sim_d2h_us_sum"] += r.sim_d2h_us
            d["statuses"][r.status] = d["statuses"].get(r.status, 0) + 1
            d["retries"] += max(r.attempts - 1, 0)
        for d in by_op.values():
            for k in list(d):
                if isinstance(d[k], float):
                    d[k] = round(d[k], 3)
        return {
            "ops_seen": self.ops_seen,
            "ops_recorded": self.ops_recorded,
            "faults_seen": self.faults_seen,
            "dumps_triggered": len(self.dumps),
            "by_op": by_op,
        }


class NullFlightRecorder:
    """Allocation-free disabled recorder (the ``NullTracer`` pattern):
    every hot-path method returns a constant, so the instrumented fast
    path costs one truthiness check and records nothing."""

    enabled = False
    records: tuple = ()
    dumps: tuple = ()
    ops_seen = 0
    ops_recorded = 0
    faults_seen = 0

    def now_us(self) -> float:
        return 0.0

    def begin(self, op, key=None, shard=None):
        return None

    def note_fault(self, op, kind, record=None) -> None:
        return None

    def complete(self, recs, **kwargs) -> None:
        return None

    def complete_forwarded(self, rec, found) -> None:
        return None

    def complete_absorbed(self, rec, found) -> None:
        return None

    def dump(self, trigger="manual", context=None) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {}

    def summary(self) -> dict:
        return {}


#: shared no-op singleton — use this instead of constructing
#: NullFlightRecorder so the disabled path allocates nothing.
NULL_FLIGHT_RECORDER = NullFlightRecorder()
