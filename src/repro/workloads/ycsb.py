"""YCSB-style workload profiles.

Section 3.1 motivates the update engine with "mixed read/write workloads
such as typical OLTP benchmarks"; the de-facto standard for those is the
Yahoo! Cloud Serving Benchmark.  This module generates op streams shaped
like the six core YCSB workloads, consumable by
:class:`repro.host.mixed.MixedWorkloadExecutor`:

========  =========================================  ==================
profile   mix                                        request skew
========  =========================================  ==================
A         50% read / 50% update                      zipfian
B         95% read / 5% update                       zipfian
C         100% read                                  zipfian
D         95% read / 5% insert (read-latest)         latest-biased
E         95% scan / 5% insert                       zipfian
F         50% read / 50% read-modify-write           zipfian
========  =========================================  ==================

Inserts draw fresh keys from an open key sequence (YCSB's growing
keyspace); "latest" bias reads preferentially near the insertion
frontier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.util.keys import encode_int
from repro.util.rng import make_rng
from repro.workloads.distributions import zipf_indices


@dataclass(frozen=True)
class YcsbProfile:
    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0  # read-modify-write
    latest: bool = False  # latest-biased request distribution

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.scan + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise ReproError(f"profile {self.name}: mix sums to {total}")


PROFILES: dict[str, YcsbProfile] = {
    "A": YcsbProfile("A", read=0.5, update=0.5),
    "B": YcsbProfile("B", read=0.95, update=0.05),
    "C": YcsbProfile("C", read=1.0),
    "D": YcsbProfile("D", read=0.95, insert=0.05, latest=True),
    "E": YcsbProfile("E", scan=0.95, insert=0.05),
    "F": YcsbProfile("F", read=0.5, rmw=0.5),
}

#: key width of the generated record ids.
KEY_WIDTH = 8
#: scan length (records) drawn per scan op, YCSB's default max is 100.
SCAN_SPAN = 50


def ycsb_keyspace(n: int) -> list[bytes]:
    """The initial record ids 0..n-1 (load phase)."""
    return [encode_int(i, KEY_WIDTH) for i in range(n)]


def ycsb_stream(
    profile: str | YcsbProfile,
    n_records: int,
    n_ops: int,
    *,
    zipf_a: float = 1.2,
    seed=None,
) -> list[tuple[str, object]]:
    """Generate ``n_ops`` operations over an ``n_records`` table.

    Returns ops for :class:`MixedWorkloadExecutor`:
    ``("lookup", key)``, ``("update", (key, value))``,
    ``("insert", (key, value))`` and ``("scan", (lo, hi))``.
    Read-modify-write expands into a lookup followed by an update.
    """
    prof = PROFILES[profile] if isinstance(profile, str) else profile
    if n_records <= 0:
        raise ReproError("n_records must be positive")
    rng = make_rng(seed)
    frontier = n_records  # next fresh record id (insert sequence)
    ops: list[tuple[str, object]] = []
    kinds = rng.choice(
        5, size=n_ops,
        p=[prof.read, prof.update, prof.insert, prof.scan, prof.rmw],
    )
    # pre-draw a zipf stream for request popularity
    zipf = zipf_indices(max(n_records, 1), n_ops, a=zipf_a, seed=rng)

    def pick(i: int) -> int:
        if prof.latest:
            # cluster near the insertion frontier: newest records hottest
            return max(frontier - 1 - int(zipf[i]), 0)
        return int(zipf[i])

    for i, kind in enumerate(kinds):
        if kind == 0:  # read
            ops.append(("lookup", encode_int(pick(i), KEY_WIDTH)))
        elif kind == 1:  # update
            ops.append(
                ("update",
                 (encode_int(pick(i), KEY_WIDTH), int(rng.integers(0, 2**62))))
            )
        elif kind == 2:  # insert
            ops.append(
                ("insert",
                 (encode_int(frontier, KEY_WIDTH), int(rng.integers(0, 2**62))))
            )
            frontier += 1
        elif kind == 3:  # scan
            start = pick(i)
            lo = encode_int(start, KEY_WIDTH)
            hi = encode_int(min(start + SCAN_SPAN, 2**62), KEY_WIDTH)
            ops.append(("scan", (lo, hi)))
        else:  # read-modify-write
            key = encode_int(pick(i), KEY_WIDTH)
            ops.append(("lookup", key))
            ops.append(("update", (key, int(rng.integers(0, 2**62)))))
    return ops
