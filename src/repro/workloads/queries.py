"""Query-stream generators (section 4.1: "generate update, delete, range
and exact lookup queries")."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.util.rng import make_rng
from repro.workloads.distributions import uniform_indices, zipf_indices


def lookup_queries(
    keys, n_queries: int, *, hit_rate: float = 1.0, skew: float | None = None,
    seed=None,
) -> list[bytes]:
    """Exact-lookup stream drawn from ``keys``.

    ``hit_rate`` < 1 mixes in misses (random keys of the same length);
    ``skew`` switches from uniform to Zipf popularity.
    """
    rng = make_rng(seed)
    if skew is None:
        idx = uniform_indices(len(keys), n_queries, seed=rng)
    else:
        idx = zipf_indices(len(keys), n_queries, a=skew, seed=rng)
    out = [keys[i] for i in idx]
    n_miss = int(round((1.0 - hit_rate) * n_queries))
    if n_miss:
        key_len = len(keys[0])
        positions = rng.choice(n_queries, size=n_miss, replace=False)
        for p in positions:
            out[p] = rng.integers(0, 256, size=key_len, dtype=np.int64).astype(
                np.uint8
            ).tobytes()
    return out


def update_queries(
    keys, n_queries: int, *, skew: float | None = None, seed=None
) -> list[tuple[bytes, int]]:
    """Value-replacement stream over existing keys."""
    rng = make_rng(seed)
    if skew is None:
        idx = uniform_indices(len(keys), n_queries, seed=rng)
    else:
        idx = zipf_indices(len(keys), n_queries, a=skew, seed=rng)
    values = rng.integers(0, 2**62, size=n_queries, dtype=np.int64)
    return [(keys[i], int(v)) for i, v in zip(idx, values)]


def delete_queries(keys, n_queries: int, *, seed=None) -> list[bytes]:
    """Deletion stream of *distinct* keys (sampled without replacement)."""
    if n_queries > len(keys):
        raise ReproError(
            f"cannot delete {n_queries} distinct keys out of {len(keys)}"
        )
    rng = make_rng(seed)
    picked = rng.choice(len(keys), size=n_queries, replace=False)
    return [keys[i] for i in picked]


def range_queries(
    keys, n_queries: int, *, span: int = 100, seed=None
) -> list[tuple[bytes, bytes]]:
    """Range-query bounds covering about ``span`` consecutive keys each;
    ``keys`` must be sorted."""
    rng = make_rng(seed)
    out = []
    hi_limit = max(len(keys) - span - 1, 1)
    for start in rng.integers(0, hi_limit, size=n_queries):
        lo = keys[int(start)]
        hi = keys[min(int(start) + span, len(keys) - 1)]
        out.append((lo, hi))
    return out


@dataclass(frozen=True)
class QueryMix:
    """An OLTP-style mixed read/write stream (section 3.1 motivates the
    split: reads go to the GPU, writes stay on the CPU or run batched)."""

    lookups: float = 0.8
    updates: float = 0.15
    deletes: float = 0.05

    def __post_init__(self) -> None:
        total = self.lookups + self.updates + self.deletes
        if abs(total - 1.0) > 1e-9:
            raise ReproError(f"mix fractions must sum to 1, got {total}")


def mixed_queries(
    keys, n_queries: int, mix: QueryMix, *, seed=None
) -> list[tuple[str, object]]:
    """Interleaved stream of ``("lookup", key)``, ``("update", (key, v))``
    and ``("delete", key)`` operations, delete targets distinct."""
    rng = make_rng(seed)
    ops = rng.choice(
        3, size=n_queries, p=[mix.lookups, mix.updates, mix.deletes]
    )
    n_del = int((ops == 2).sum())
    del_keys = iter(delete_queries(keys, min(n_del, len(keys)), seed=rng))
    out: list[tuple[str, object]] = []
    for op in ops:
        if op == 0:
            out.append(("lookup", keys[int(rng.integers(0, len(keys)))]))
        elif op == 1:
            out.append(
                (
                    "update",
                    (
                        keys[int(rng.integers(0, len(keys)))],
                        int(rng.integers(0, 2**62)),
                    ),
                )
            )
        else:
            try:
                out.append(("delete", next(del_keys)))
            except StopIteration:
                out.append(("lookup", keys[int(rng.integers(0, len(keys)))]))
    return out
