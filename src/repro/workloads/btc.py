"""BTC-like key generator — substitution for the BTC-2019 dataset.

The paper extracts "all keys of 32byte length from the BTC dataset"
(Billion Triple Challenge 2019: RDF triples, i.e. IRIs) and observes that
"long duplicate segments are quite common, which adds computational
overhead during prefix compression and increases the overall tree depth"
(figure 12).  The generator below reproduces those structural properties
without the (multi-hundred-GB, not redistributable) original:

* keys start with an ``http(s)://<host>/`` namespace drawn from a
  Zipf-distributed catalog (a few namespaces dominate, as in real RDF),
* within a namespace, entities share path segments (``/resource/``,
  ``/ontology/`` …) producing second-level duplicate prefixes,
* keys are truncated/padded to exactly 32 bytes like the paper's
  extraction.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import make_rng

_HOSTS = [
    b"http://dbpedia.org/",
    b"http://www.wikidata.org/",
    b"http://xmlns.com/foaf/0.1/",
    b"http://purl.org/dc/terms/",
    b"http://schema.org/",
    b"http://www.w3.org/1999/02/22-rdf-syntax-ns#",
    b"http://yago-knowledge.org/",
    b"http://rdf.freebase.com/ns/",
    b"http://data.nytimes.com/",
    b"http://sws.geonames.org/",
    b"http://linkedgeodata.org/",
    b"http://www.opengis.net/ont/",
]

_SEGMENTS = [b"resource/", b"ontology/", b"property/", b"page/", b"entity/Q", b"class/"]

_ALNUM = np.frombuffer(
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_",
    dtype=np.uint8,
)

#: key length of the paper's BTC extraction.
BTC_KEY_LEN = 32


def btc_like_keys(
    n: int, *, key_len: int = BTC_KEY_LEN, zipf_a: float = 1.4, seed=None
) -> list[bytes]:
    """``n`` distinct RDF-IRI-like keys of exactly ``key_len`` bytes."""
    rng = make_rng(seed)
    hosts = sorted(_HOSTS, key=len)  # stable order for reproducibility
    out: set[bytes] = set()
    while len(out) < n:
        need = n - len(out)
        host_idx = np.minimum(
            rng.zipf(zipf_a, size=need + 32) - 1, len(hosts) - 1
        ).astype(np.int64)
        seg_idx = rng.integers(0, len(_SEGMENTS), size=need + 32)
        for hi, si in zip(host_idx, seg_idx):
            stem = hosts[hi] + _SEGMENTS[si]
            fill = key_len - len(stem)
            if fill <= 0:
                key = stem[:key_len]
            else:
                tail = _ALNUM[rng.integers(0, _ALNUM.size, size=fill)].tobytes()
                key = stem + tail
            out.add(key)
            if len(out) == n:
                break
    return sorted(out)
