"""Workload generators (section 4.1).

"We build a framework that is capable of generating reproducible trees
with data of different characteristics and afterwards generate update,
delete, range and exact lookup queries.  ... We tested against synthetic
random test data as well as real world test data from the publicly
available BTC dataset."

The BTC-2019 dataset itself is not redistributable here;
:mod:`repro.workloads.btc` generates RDF-IRI-like keys with the same
structural property the paper leans on (long duplicate prefixes → deeper
trees) — see DESIGN.md for the substitution notes.
"""

from repro.workloads.synthetic import (
    random_int_keys,
    random_keys,
    dense_keys,
    mixed_length_keys,
    build_tree,
)
from repro.workloads.btc import btc_like_keys
from repro.workloads.queries import (
    QueryMix,
    lookup_queries,
    update_queries,
    delete_queries,
    range_queries,
    mixed_queries,
)
from repro.workloads.distributions import zipf_indices, uniform_indices
from repro.workloads.ycsb import PROFILES, YcsbProfile, ycsb_keyspace, ycsb_stream

__all__ = [
    "random_int_keys",
    "random_keys",
    "dense_keys",
    "mixed_length_keys",
    "build_tree",
    "btc_like_keys",
    "QueryMix",
    "lookup_queries",
    "update_queries",
    "delete_queries",
    "range_queries",
    "mixed_queries",
    "zipf_indices",
    "uniform_indices",
    "PROFILES",
    "YcsbProfile",
    "ycsb_keyspace",
    "ycsb_stream",
]
