"""Key-popularity samplers for query streams."""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.util.rng import make_rng


def uniform_indices(n_keys: int, n_queries: int, *, seed=None) -> np.ndarray:
    """Uniform-random positions into a key list (the paper's "random
    lookup operations against this tree")."""
    if n_keys <= 0:
        raise ReproError("n_keys must be positive")
    rng = make_rng(seed)
    return rng.integers(0, n_keys, size=n_queries, dtype=np.int64)


def zipf_indices(
    n_keys: int, n_queries: int, *, a: float = 1.2, seed=None
) -> np.ndarray:
    """Zipf-skewed positions (hot keys dominate — the OLTP-ish case that
    stresses the update engine's conflict resolution)."""
    if n_keys <= 0:
        raise ReproError("n_keys must be positive")
    if a <= 1.0:
        raise ReproError(f"zipf exponent must be > 1, got {a}")
    rng = make_rng(seed)
    raw = rng.zipf(a, size=n_queries)
    return np.minimum(raw - 1, n_keys - 1).astype(np.int64)
