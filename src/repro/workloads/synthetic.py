"""Reproducible synthetic key sets.

The evaluation varies tree size (64k–144M), key length (4–32 bytes) and
key-space density; all generators here are pure functions of their seed.
"""

from __future__ import annotations

import numpy as np

from repro.art.tree import AdaptiveRadixTree
from repro.errors import ReproError
from repro.util.rng import make_rng


def random_keys(
    n: int, key_len: int, *, seed=None, density: float = 0.0
) -> list[bytes]:
    """``n`` distinct uniform-random keys of exactly ``key_len`` bytes.

    ``density`` > 0 confines keys to the bottom ``density`` fraction of
    the key space, producing the denser trees (more large nodes) the
    paper associates with bigger indexes (figure 10 discussion).
    """
    if n <= 0:
        raise ReproError(f"n must be positive, got {n}")
    if key_len <= 0:
        raise ReproError(f"key_len must be positive, got {key_len}")
    rng = make_rng(seed)
    out: set[bytes] = set()
    # cap the leading bytes when a density is requested
    fixed_zero = 0
    if density > 0:
        import math

        space_bytes = max(math.ceil(math.log(n / density, 256)), 1)
        fixed_zero = max(key_len - space_bytes, 0)
    while len(out) < n:
        need = n - len(out)
        block = rng.integers(0, 256, size=(need + 16, key_len), dtype=np.int64)
        if fixed_zero:
            block[:, :fixed_zero] = 0
        for row in block.astype(np.uint8):
            out.add(row.tobytes())
            if len(out) == n:
                break
    return sorted(out)


def random_int_keys(n: int, *, width: int = 8, seed=None) -> list[bytes]:
    """``n`` distinct big-endian integer keys of ``width`` bytes."""
    rng = make_rng(seed)
    limit = min(2**63 - 1, 2 ** (8 * width) - 1)
    vals: set[int] = set()
    while len(vals) < n:
        chunk = rng.integers(0, limit, size=n - len(vals) + 16, dtype=np.int64)
        vals.update(int(v) for v in chunk)
    picked = sorted(vals)[:n]
    return [int(v).to_bytes(width, "big") for v in picked]


def dense_keys(n: int, *, width: int = 8, start: int = 0) -> list[bytes]:
    """``n`` consecutive integer keys — the fully dense case (an index on
    an auto-increment primary key)."""
    return [int(start + i).to_bytes(width, "big") for i in range(n)]


def mixed_length_keys(
    n: int,
    *,
    long_fraction: float,
    short_len: int = 16,
    long_len: int = 48,
    seed=None,
) -> list[bytes]:
    """Key set with a controlled share of over-limit keys (figure 13:
    "we generate a tree with a controlled percentage of long keys")."""
    rng = make_rng(seed)
    n_long = int(round(n * long_fraction))
    short = random_keys(n - n_long, short_len, seed=rng)
    long_ = random_keys(n_long, long_len, seed=rng) if n_long else []
    return short + long_


def build_tree(keys, *, values=None, bulk: bool = True) -> AdaptiveRadixTree:
    """Populate a host ART from a key list (stage 1 of section 4.1).

    Values default to each key's position in the list.  ``bulk=True``
    (default) builds bottom-up from the sorted keys
    (:func:`repro.art.bulk.bulk_load` — same tree, no growth churn);
    ``bulk=False`` exercises the incremental insert path.
    """
    if bulk:
        from repro.art.bulk import bulk_load

        return bulk_load(list(keys), list(values) if values is not None else None)
    tree = AdaptiveRadixTree()
    if values is None:
        for i, k in enumerate(keys):
            tree.insert(k, i)
    else:
        for k, v in zip(keys, values):
            tree.insert(k, v)
    return tree
