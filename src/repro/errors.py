"""Exception hierarchy for the CuART reproduction.

Every exception carries an optional *structured context* — keyword
arguments recorded in :attr:`ReproError.context` and appended to the
message — so policy code (the resilience engine, tests, operators
reading logs) can inspect *which* buffer overflowed or *which* op was
in flight without parsing strings::

    raise HashTableFullError(
        "distinct keys exceed the free slots",
        buffer="hash-table", slots=1024, occupied=980, requested=200,
    )

    except CapacityError as exc:
        exc.context["buffer"]     # -> "hash-table"
        exc.transient             # -> False: grow, don't just retry

:attr:`ReproError.transient` classifies recoverability: transient
faults (the :class:`DeviceFault` family, injected hash-table failures)
are safe to retry verbatim because they fire *before* any device state
was mutated; non-transient errors need an actual intervention (grow a
buffer, re-map the layout, fix the input).
"""

from __future__ import annotations


class ReproDeprecationWarning(DeprecationWarning):
    """Deprecation warnings raised by this library's own back-compat
    shims (e.g. the legacy accessors on
    :class:`repro.host.results.BatchResult`).

    A distinct category so CI can escalate every *other*
    ``DeprecationWarning`` to an error (``-W error::DeprecationWarning``)
    while allow-listing ours
    (``-W default::repro.errors.ReproDeprecationWarning``)."""


class ReproError(Exception):
    """Base class for all library errors.

    ``ReproError(message, **context)`` stores ``context`` (``None``
    values dropped) on :attr:`context` and renders it into the message.
    """

    #: safe to retry verbatim — the failure fired before any state
    #: changed.  Class default; may be overridden per instance via the
    #: ``transient=`` keyword.
    transient = False

    def __init__(self, message: str = "", *, transient: bool | None = None,
                 **context) -> None:
        self.message = message
        self.context = {k: v for k, v in context.items() if v is not None}
        if transient is not None:
            self.transient = transient
        super().__init__(self._render())

    def _render(self) -> str:
        if not self.context:
            return self.message
        ctx = " ".join(f"{k}={v!r}" for k, v in self.context.items())
        return f"{self.message} [{ctx}]" if self.message else f"[{ctx}]"

    def with_context(self, **context) -> "ReproError":
        """Annotate in flight (e.g. the engine adds ``op=`` / ``batch=``
        to a kernel-raised error).  Existing keys win; returns ``self``
        so ``raise exc.with_context(op=op)`` reads naturally."""
        for k, v in context.items():
            if v is not None and k not in self.context:
                self.context[k] = v
        self.args = (self._render(),)
        return self


class KeyEncodingError(ReproError, ValueError):
    """A key could not be encoded into binary-comparable bytes."""


class KeyPrefixError(ReproError, ValueError):
    """A key that is a proper prefix of an existing key (or vice versa)
    was inserted.

    Radix trees index binary-comparable keys; a key that is a proper
    prefix of another cannot be distinguished from the traversal that
    passes *through* it.  The standard remedy (Leis et al. 2013, sec. IV)
    is to append a terminator byte — :func:`repro.util.keys.encode_str`
    does exactly that.
    """


class KeyTooLongError(ReproError, ValueError):
    """A key exceeds the compile-time maximum leaf size and no long-key
    strategy is configured (section 3.2.3)."""


class CapacityError(ReproError, RuntimeError):
    """A fixed-capacity device buffer (node buffer, hash table, free list)
    ran out of space.

    Raise sites say *which* buffer via context: ``buffer=`` names it
    (``"hash-table"``, a per-type node/leaf buffer name), with
    occupancy figures (``slots`` / ``occupied`` / ``requested``) so the
    resilience layer can size the recovery."""


class HashTableFullError(CapacityError):
    """The update-engine hash table could not place an entry even after a
    full linear-probe cycle (section 3.4/4.5)."""


class StaleLayoutError(ReproError, RuntimeError):
    """A device layout was used after the host-side tree changed in a way
    the layout cannot reflect (structural insert without re-mapping)."""


class SimulationError(ReproError, RuntimeError):
    """The GPU simulation was configured inconsistently."""


class DeviceFault(ReproError, RuntimeError):
    """A transient device-side fault (simulated).

    All faults fire at the dispatch boundary — *before* the kernel
    mutates device state — so a retry replays the identical batch
    against unchanged buffers."""

    transient = True


class TransientKernelError(DeviceFault):
    """A kernel launch aborted (simulated ECC trap / launch failure);
    nothing was executed."""


class PcieTransferError(DeviceFault):
    """A host↔device transfer failed (simulated timeout or a checksum
    mismatch detected before the batch was committed)."""


class DeviceOOMError(DeviceFault):
    """A simulated device allocation (node/leaf buffers, re-map) was
    refused; the existing buffers are untouched."""
