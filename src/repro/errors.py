"""Exception hierarchy for the CuART reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class KeyEncodingError(ReproError, ValueError):
    """A key could not be encoded into binary-comparable bytes."""


class KeyPrefixError(ReproError, ValueError):
    """A key that is a proper prefix of an existing key (or vice versa)
    was inserted.

    Radix trees index binary-comparable keys; a key that is a proper
    prefix of another cannot be distinguished from the traversal that
    passes *through* it.  The standard remedy (Leis et al. 2013, sec. IV)
    is to append a terminator byte — :func:`repro.util.keys.encode_str`
    does exactly that.
    """


class KeyTooLongError(ReproError, ValueError):
    """A key exceeds the compile-time maximum leaf size and no long-key
    strategy is configured (section 3.2.3)."""


class CapacityError(ReproError, RuntimeError):
    """A fixed-capacity device buffer (node buffer, hash table, free list)
    ran out of space."""


class HashTableFullError(CapacityError):
    """The update-engine hash table could not place an entry even after a
    full linear-probe cycle (section 3.4/4.5)."""


class StaleLayoutError(ReproError, RuntimeError):
    """A device layout was used after the host-side tree changed in a way
    the layout cannot reflect (structural insert without re-mapping)."""


class SimulationError(ReproError, RuntimeError):
    """The GPU simulation was configured inconsistently."""
