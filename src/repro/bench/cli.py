"""Command-line figure regeneration: ``python -m repro.bench``.

Examples::

    python -m repro.bench --list
    python -m repro.bench fig10 fig18
    python -m repro.bench all --scale 128
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.figures import ALL_FIGURES
from repro.bench.runner import Scale


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Regenerate the paper's evaluation figures (7-18) through the "
            "simulated GPU substrate and check their qualitative claims."
        ),
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=["all"],
        help="figure ids (fig07..fig18) or 'all' (default)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=Scale().factor,
        metavar="N",
        help="divide the paper's tree sizes by N (default %(default)s; "
        "1 = paper scale, hours of runtime)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available figures and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name, fn in ALL_FIGURES.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name}: {doc}")
        return 0

    wanted = args.figures
    if wanted == ["all"] or "all" in wanted:
        wanted = list(ALL_FIGURES)
    unknown = [w for w in wanted if w not in ALL_FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_FIGURES)}", file=sys.stderr)
        return 2

    scale = Scale(factor=max(args.scale, 1))
    failed = 0
    for name in wanted:
        t0 = time.perf_counter()
        result = ALL_FIGURES[name](scale)
        elapsed = time.perf_counter() - t0
        print(result)
        print(f"({elapsed:.1f}s)")
        print()
        if not result.all_checks_pass:
            failed += 1
    if failed:
        print(f"{failed} figure(s) with failing shape checks", file=sys.stderr)
        return 1
    return 0
