"""Shared experiment plumbing: cached workloads/layouts and kernel runs.

The paper evaluates trees up to 144M keys on real CUDA hardware; the
pure-Python substrate runs the same experiments at ``1/Scale.factor`` of
the paper's sizes (default 1/256) — the cost model is driven by measured
tree statistics (depths, node-type mix, footprints), which is what shapes
every curve, so the scaled trees preserve the comparisons.  Pass
``Scale(factor=1)`` for a paper-scale run if you have the hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.art.stats import TreeStats, collect_stats
from repro.art.tree import AdaptiveRadixTree
from repro.cuart.layout import CuartLayout, LongKeyStrategy
from repro.cuart.lookup import lookup_batch
from repro.cuart.root_table import RootTable
from repro.cuart.update import UpdateEngine, UpdateResult
from repro.grt.kernel import grt_lookup_batch
from repro.grt.layout import GrtLayout
from repro.grt.update import grt_update_batch
from repro.gpusim.transactions import TransactionLog
from repro.util.keys import keys_to_matrix
from repro.util.rng import make_rng
from repro.workloads.btc import btc_like_keys
from repro.workloads.synthetic import build_tree, mixed_length_keys, random_keys

#: seed used by every cached bench workload.
BENCH_SEED = 1337


@dataclass(frozen=True)
class Scale:
    """Size divisor applied to the paper's tree sizes."""

    factor: int = 256

    def size(self, paper_size: int) -> int:
        """Scaled tree size (at least 256 keys so node types still mix)."""
        return max(paper_size // self.factor, 256)

    def hash_slots(self, paper_slots: int) -> int:
        """The update hash table scales with the trees so the collision
        crossover of figure 15 appears at the same *relative* point."""
        return max(paper_slots // self.factor, 256)


@dataclass
class TreeBundle:
    """One populated workload: keys + host tree + statistics."""

    keys: list
    tree: AdaptiveRadixTree
    stats: TreeStats

    @property
    def n(self) -> int:
        return len(self.keys)


@lru_cache(maxsize=12)
def get_tree(kind: str, n: int, key_len: int) -> TreeBundle:
    """Build (or fetch) one workload tree.

    ``kind``: ``random`` (uniform keys), ``btc`` (RDF-like keys), or
    ``mixed:<percent>`` (that share of 48-byte long keys).
    """
    if kind == "random":
        keys = random_keys(n, key_len, seed=BENCH_SEED)
    elif kind == "btc":
        keys = btc_like_keys(n, key_len=key_len, seed=BENCH_SEED)
    elif kind.startswith("mixed:"):
        frac = float(kind.split(":", 1)[1]) / 100.0
        keys = mixed_length_keys(
            n, long_fraction=frac, short_len=key_len, seed=BENCH_SEED
        )
    else:
        raise ValueError(f"unknown workload kind {kind!r}")
    tree = build_tree(keys)
    return TreeBundle(keys=keys, tree=tree, stats=collect_stats(tree.root))


@lru_cache(maxsize=12)
def get_cuart(
    kind: str,
    n: int,
    key_len: int,
    root_k: int | None = 2,
    single_leaf: int | None = None,
    long_keys: str = "error",
) -> tuple[CuartLayout, RootTable | None]:
    """Map (or fetch) the CuART layout for one workload."""
    bundle = get_tree(kind, n, key_len)
    layout = CuartLayout(
        bundle.tree,
        long_keys=LongKeyStrategy(long_keys),
        single_leaf_size=single_leaf,
    )
    table = RootTable(layout, k=root_k) if root_k else None
    return layout, table


@lru_cache(maxsize=12)
def get_grt(kind: str, n: int, key_len: int) -> GrtLayout:
    """Map (or fetch) the GRT baseline layout for one workload."""
    bundle = get_tree(kind, n, key_len)
    return GrtLayout(bundle.tree)


# ---------------------------------------------------------------------------
# representative-batch kernel runs
# ---------------------------------------------------------------------------


def _query_batch(bundle: TreeBundle, batch_size: int, seed: int = 7):
    rng = make_rng(seed)
    idx = rng.integers(0, bundle.n, size=batch_size)
    keys = [bundle.keys[i] for i in idx]
    width = max(len(k) for k in keys)
    return keys_to_matrix(keys, width=width)


def cuart_lookup_log(
    kind: str,
    n: int,
    key_len: int,
    batch_size: int,
    *,
    root_k: int | None = 2,
    single_leaf: int | None = None,
    seed: int = 7,
) -> TransactionLog:
    """Run one representative CuART lookup batch; return its log."""
    bundle = get_tree(kind, n, key_len)
    layout, table = get_cuart(kind, n, key_len, root_k, single_leaf)
    mat, lens = _query_batch(bundle, batch_size, seed)
    return lookup_batch(layout, mat, lens, root_table=table).log


def grt_lookup_log(
    kind: str, n: int, key_len: int, batch_size: int, *, seed: int = 7
) -> TransactionLog:
    """Run one representative GRT lookup batch; return its log."""
    bundle = get_tree(kind, n, key_len)
    layout = get_grt(kind, n, key_len)
    mat, lens = _query_batch(bundle, batch_size, seed)
    return grt_lookup_batch(layout, mat, lens).log


def cuart_update_run(
    kind: str,
    n: int,
    key_len: int,
    batch_size: int,
    hash_slots: int,
    *,
    root_k: int | None = 2,
    seed: int = 11,
    hash_table: str = "linear",
    metrics=None,
) -> UpdateResult:
    """Run one representative CuART update batch.  Pass a
    :class:`~repro.obs.metrics.MetricsRegistry` to collect the write
    engine's dedup/write counters alongside the returned result."""
    bundle = get_tree(kind, n, key_len)
    layout, table = get_cuart(kind, n, key_len, root_k)
    mat, lens = _query_batch(bundle, batch_size, seed)
    rng = make_rng(seed)
    values = rng.integers(0, 2**62, size=batch_size).astype(np.uint64)
    # the paper's figure-15 collision collapse IS linear probing, so the
    # reproduction pins the conflict table to the paper's layout
    engine = UpdateEngine(
        layout, root_table=table, hash_slots=hash_slots,
        hash_table=hash_table, metrics=metrics,
    )
    return engine.apply(mat, lens, values)


def grt_update_run(
    kind: str, n: int, key_len: int, batch_size: int, *, seed: int = 11
):
    """Run one representative GRT update batch."""
    bundle = get_tree(kind, n, key_len)
    layout = get_grt(kind, n, key_len)
    mat, lens = _query_batch(bundle, batch_size, seed)
    rng = make_rng(seed)
    values = rng.integers(0, 2**62, size=batch_size).astype(np.uint64)
    return grt_update_batch(layout, mat, lens, values)


def clear_caches() -> None:
    """Drop all cached workloads (tests use this for isolation)."""
    get_tree.cache_clear()
    get_cuart.cache_clear()
    get_grt.cache_clear()
