"""One reproduction function per evaluation figure of the paper.

Figures 1–6 are architecture diagrams; the evaluation artifacts are
figures 7–18 (there are no numbered result tables).  Every function
returns a :class:`~repro.bench.report.FigureResult` carrying the same
series the paper plots plus shape checks ("who wins, where the knee is").

Absolute numbers are *simulated* MOps/s from the transaction-level cost
model and are not expected to match the authors' testbed; the checks
encode the qualitative claims that must hold.  Tree sizes run at
``1/Scale.factor`` of the paper's (see runner.py).
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import FigureResult
from repro.bench.runner import (
    Scale,
    cuart_lookup_log,
    cuart_update_run,
    get_tree,
    grt_lookup_log,
    grt_update_run,
)
from repro.constants import DEFAULT_BATCH_SIZE
from repro.cuart.cpu_lookup import modeled_cpu_throughput
from repro.gpusim.cost_model import CostModel, cpu_update_time
from repro.gpusim.devices import (
    A100,
    GTX1070,
    RTX3090,
    SERVER_CPU,
    WORKSTATION_CPU,
)
from repro.host.dispatcher import DispatchConfig, HostCostParameters, pipeline_throughput
from repro.host.hybrid import HybridConfig, hybrid_throughput

MI = 1 << 20
KI = 1 << 10

#: extra per-batch overhead of the OpenCL GRT build (section 4.3 observes
#: the OpenCL dispatch pipelines worse than CUDA streams).
_OCL_COSTS = HostCostParameters(per_batch_s=4.5e-5, sync_extra_per_batch_s=3.0e-5)


def _cm(device, scale: Scale) -> CostModel:
    """Cost model with the L2 shrunk by the experiment's scale factor so
    cache-residency regimes match the paper's tree sizes."""
    return CostModel(device, l2_scale=1.0 / scale.factor)


def _endtoend(
    log, batch_size, device, cpu, scale, *, threads=8, key_bytes=32,
    api="cuda", ocl=False,
):
    """Kernel log -> simulated end-to-end MOps/s through the pipeline."""
    kernel = _cm(device, scale).kernel_time(log)
    cfg = DispatchConfig(
        batch_size=batch_size,
        host_threads=threads,
        key_bytes=key_bytes,
        api=api,
        host_costs=_OCL_COSTS if ocl else HostCostParameters(),
    )
    return pipeline_throughput(kernel, cfg, device, cpu).throughput_mops


# ---------------------------------------------------------------------------
# Figure 7 — CPU: classic ART vs the CuART memory layout
# ---------------------------------------------------------------------------


def fig07(scale: Scale = Scale()) -> FigureResult:
    """Lookup throughput on classical ART vs CuART memory layout on CPUs
    (12 threads, 32ki items per batch, workstation)."""
    sizes = [scale.size(s) for s in (256 * KI, 2 * MI, 16 * MI, 100 * MI)]
    key_lens = (8, 16, 32)
    rows = []
    speedups = {}
    for key_len in key_lens:
        for n in sizes:
            stats = get_tree("random", n, key_len).stats
            art = modeled_cpu_throughput(
                stats, WORKSTATION_CPU, contiguous=False, threads=12
            )
            cuart = modeled_cpu_throughput(
                stats, WORKSTATION_CPU, contiguous=True, threads=12
            )
            rows.append((n, key_len, art, cuart, cuart / art))
            speedups[(key_len, n)] = cuart / art
    result = FigureResult(
        figure="Figure 7",
        title="CPU lookup throughput: classic ART vs CuART layout",
        params={"threads": 12, "batch": "32ki", "machine": "workstation",
                "scale": f"1/{scale.factor}"},
        columns=["tree size", "KL", "ART MOps/s", "CuART MOps/s", "speedup"],
        rows=rows,
        paper_claim=(
            "CuART outperforms the original ART by 2.5x for small trees, "
            "up to 10-20x for large trees"
        ),
    )
    result.check(
        "CuART layout faster at every point",
        all(r[3] > r[2] for r in rows),
    )
    for key_len in key_lens:
        result.check(
            f"speedup grows with tree size (KL={key_len})",
            speedups[(key_len, sizes[-1])] > speedups[(key_len, sizes[0])],
        )
    result.check(
        "large-tree speedup reaches >= 4x",
        max(speedups.values()) >= 4.0,
    )
    return result


# ---------------------------------------------------------------------------
# Figure 8 — lookup throughput vs batch size
# ---------------------------------------------------------------------------


def fig08(scale: Scale = Scale()) -> FigureResult:
    """Lookup throughput with increasing batch size (26Mi entries,
    8 threads, 32 byte keys, server)."""
    n = scale.size(26 * MI)
    batches = [2 * KI, 4 * KI, 8 * KI, 16 * KI, 32 * KI, 64 * KI, 128 * KI]
    rows = []
    for b in batches:
        cu = _endtoend(
            cuart_lookup_log("random", n, 32, b), b, A100, SERVER_CPU, scale
        )
        gl = grt_lookup_log("random", n, 32, b)
        gc = _endtoend(gl, b, A100, SERVER_CPU, scale, api="sync")
        go = _endtoend(gl, b, A100, SERVER_CPU, scale, api="sync", ocl=True)
        rows.append((b, cu, gc, go))
    result = FigureResult(
        figure="Figure 8",
        title="Lookup throughput vs batch size",
        params={"entries": n, "threads": 8, "key": "32B", "machine": "server",
                "scale": f"1/{scale.factor}"},
        columns=["batch", "CuART", "GRT-CUDA", "GRT-OpenCL"],
        rows=rows,
        paper_claim=(
            "both GRT and CuART achieve a good performance at any batch "
            "size between 8192 and 131072 items"
        ),
    )
    plateau = [r[1] for r in rows if 8 * KI <= r[0] <= 128 * KI]
    result.check("CuART >= both GRT variants at every batch size",
                 all(r[1] >= max(r[2], r[3]) for r in rows))
    result.check("CuART strictly ahead across the 8ki-128ki plateau",
                 all(r[1] > max(r[2], r[3]) for r in rows if r[0] >= 8 * KI))
    result.check("CuART plateau 8ki-128ki varies < 2x",
                 max(plateau) / min(plateau) < 2.0)
    result.check("small batches are slower than the plateau (CuART)",
                 rows[0][1] < max(plateau))
    result.check("GRT-CUDA >= GRT-OpenCL everywhere",
                 all(r[2] >= r[3] for r in rows))
    return result


# ---------------------------------------------------------------------------
# Figure 9 — lookup throughput vs host threads
# ---------------------------------------------------------------------------


def fig09(scale: Scale = Scale()) -> FigureResult:
    """Lookup throughput with increasing number of threads (26Mi entries,
    32 byte keys, 32ki items per batch, server)."""
    n = scale.size(26 * MI)
    batch = DEFAULT_BATCH_SIZE
    cu_log = cuart_lookup_log("random", n, 32, batch)
    g_log = grt_lookup_log("random", n, 32, batch)
    threads = [1, 2, 4, 8, 12, 16, 24, 32]
    rows = []
    for t in threads:
        cu = _endtoend(cu_log, batch, A100, SERVER_CPU, scale, threads=t)
        gc = _endtoend(g_log, batch, A100, SERVER_CPU, scale, threads=t,
                       api="sync")
        go = _endtoend(g_log, batch, A100, SERVER_CPU, scale, threads=t,
                       api="sync", ocl=True)
        rows.append((t, cu, gc, go))
    result = FigureResult(
        figure="Figure 9",
        title="Lookup throughput vs host threads",
        params={"entries": n, "batch": batch, "key": "32B",
                "machine": "server", "scale": f"1/{scale.factor}"},
        columns=["threads", "CuART", "GRT-CUDA", "GRT-OpenCL"],
        rows=rows,
        paper_claim=(
            "more host threads are preferable for both; CuART is much "
            "more thread agnostic (async CUDA streams)"
        ),
    )
    result.check("throughput grows with threads for all variants",
                 all(rows[-1][i] >= rows[0][i] for i in (1, 2, 3)))
    # thread agnostic: CuART reaches 90% of its peak with fewer threads
    def threads_to_90(col):
        peak = max(r[col] for r in rows)
        return next(r[0] for r in rows if r[col] >= 0.9 * peak)

    result.check("CuART saturates with fewer threads than GRT",
                 threads_to_90(1) <= threads_to_90(2))
    result.check("CuART above GRT at every thread count",
                 all(r[1] > r[2] for r in rows))
    return result


# ---------------------------------------------------------------------------
# Figure 10 — lookup throughput vs tree size
# ---------------------------------------------------------------------------


def fig10(scale: Scale = Scale()) -> FigureResult:
    """Lookup throughput with increasing tree size (64k-144M entries,
    8 threads, 32 byte keys, 16ki items per batch, workstation)."""
    paper_sizes = [64 * KI, 256 * KI, MI, 4 * MI, 16 * MI, 64 * MI, 144 * MI]
    batch = 16 * KI
    rows = []
    cm = _cm(RTX3090, scale)
    for ps in paper_sizes:
        n = scale.size(ps)
        cu_log = cuart_lookup_log("random", n, 32, batch)
        gr_log = grt_lookup_log("random", n, 32, batch)
        cu = _endtoend(cu_log, batch, RTX3090, WORKSTATION_CPU, scale)
        gr = _endtoend(gr_log, batch, RTX3090, WORKSTATION_CPU, scale,
                       api="sync")
        kernel_ratio = (cm.kernel_time(gr_log).total_s
                        / cm.kernel_time(cu_log).total_s)
        rows.append((ps, n, cu, gr, cu / gr, kernel_ratio))
    result = FigureResult(
        figure="Figure 10",
        title="Lookup throughput vs tree size",
        params={"threads": 8, "key": "32B", "batch": batch,
                "machine": "workstation", "scale": f"1/{scale.factor}"},
        columns=["paper size", "scaled size", "CuART", "GRT", "e2e ratio",
                 "kernel ratio"],
        rows=rows,
        paper_claim=(
            "CuART outperforms GRT for all tested index sizes (up to 2x); "
            "CuART throughput even increases slightly with tree size"
        ),
    )
    result.check("CuART above GRT at every size", all(r[2] > r[3] for r in rows))
    result.check("kernel advantage reaches >= 1.5x (paper: up to 2x)",
                 max(r[5] for r in rows) >= 1.5)
    result.check(
        "CuART degrades more gracefully than GRT with size",
        (rows[-1][2] / rows[0][2]) >= (rows[-1][3] / rows[0][3]),
    )
    return result


# ---------------------------------------------------------------------------
# Figure 11 — lookup throughput vs key length
# ---------------------------------------------------------------------------


def fig11(scale: Scale = Scale()) -> FigureResult:
    """Lookup throughput with increasing key length (26Mi entries,
    8 threads, 32ki items per batch, server)."""
    n = scale.size(26 * MI)
    batch = DEFAULT_BATCH_SIZE
    key_lens = [4, 8, 12, 16, 20, 24, 28, 32]
    rows = []
    for kl in key_lens:
        cu = _endtoend(cuart_lookup_log("random", n, kl, batch), batch,
                       A100, SERVER_CPU, scale, key_bytes=kl)
        cu32 = _endtoend(
            cuart_lookup_log("random", n, kl, batch, single_leaf=32),
            batch, A100, SERVER_CPU, scale, key_bytes=kl,
        )
        gr = _endtoend(grt_lookup_log("random", n, kl, batch), batch,
                       A100, SERVER_CPU, scale, key_bytes=kl, api="sync")
        rows.append((kl, cu, cu32, gr, cu / gr))
    result = FigureResult(
        figure="Figure 11",
        title="Lookup throughput vs key length",
        params={"entries": n, "threads": 8, "batch": batch,
                "machine": "server", "scale": f"1/{scale.factor}"},
        columns=["key len", "CuART", "CuART(fix32)", "GRT", "CuART/GRT"],
        rows=rows,
        paper_claim=(
            "CuART outperforms GRT on longer keys while short keys are "
            "beneficial for GRT (byte- vs word-oriented comparison)"
        ),
        notes=(
            "partial reproduction: under the transaction model GRT's "
            "short-key win shrinks to a narrowing of the gap — CuART's "
            "advantage still grows monotonically with key length, and the "
            "fixed-32B-leaf ablation shows the wasted-leaf-bandwidth "
            "effect the paper's initial design suffered"
        ),
    )
    ratios = [r[4] for r in rows]
    result.check("CuART/GRT advantage grows from short to long keys",
                 ratios[-1] > ratios[0])
    result.check("fixed-32B-leaf ablation hurts short keys",
                 rows[0][2] <= rows[0][1])
    result.check("CuART wins clearly at 32B keys", ratios[-1] >= 1.3)
    return result


# ---------------------------------------------------------------------------
# Figure 12 — BTC dataset
# ---------------------------------------------------------------------------


def fig12(scale: Scale = Scale()) -> FigureResult:
    """Throughput against the BTC dataset (15.4M keys, 32 byte key
    length, 32ki items per batch, 8 threads, server)."""
    n = scale.size(int(15.4 * MI))
    batch = DEFAULT_BATCH_SIZE
    rows = []
    series = {}
    cm = _cm(A100, scale)
    for kind in ("random", "btc"):
        cu_log = cuart_lookup_log(kind, n, 32, batch)
        gr_log = grt_lookup_log(kind, n, 32, batch)
        cu = _endtoend(cu_log, batch, A100, SERVER_CPU, scale)
        gr = _endtoend(gr_log, batch, A100, SERVER_CPU, scale, api="sync")
        # kernel-level rates expose the tree-depth effect even when the
        # host pipeline, not the kernel, binds the end-to-end rate
        cu_k = batch / cm.kernel_time(cu_log).total_s / 1e6
        gr_k = batch / cm.kernel_time(gr_log).total_s / 1e6
        stats = get_tree(kind, n, 32).stats
        rows.append((kind, cu, gr, cu_k, gr_k, round(stats.avg_leaf_level, 2)))
        series[kind] = (cu_k, gr_k)
    result = FigureResult(
        figure="Figure 12",
        title="Throughput on the BTC(-like) dataset vs synthetic",
        params={"keys": n, "key": "32B", "batch": batch, "threads": 8,
                "machine": "server", "scale": f"1/{scale.factor}"},
        columns=["dataset", "CuART e2e", "GRT e2e", "CuART kernel",
                 "GRT kernel", "avg depth"],
        rows=rows,
        paper_claim=(
            "CuART outperforms GRT by ~20% on BTC; absolute performance "
            "lower than synthetic because long duplicate segments "
            "increase the overall tree depth"
        ),
        notes="BTC-2019 replaced by an RDF-IRI-like generator (DESIGN.md)",
    )
    result.check("CuART above GRT on BTC (kernel)",
                 series["btc"][0] > series["btc"][1])
    result.check("BTC slower than synthetic for CuART (kernel)",
                 series["btc"][0] < series["random"][0])
    result.check("BTC slower than synthetic for GRT (kernel)",
                 series["btc"][1] < series["random"][1])
    result.check(
        "BTC(-like) trees are deeper than synthetic",
        rows[1][5] > rows[0][5],
    )
    return result


# ---------------------------------------------------------------------------
# Figure 13 — hybrid CPU/GPU with a share of long keys on the CPU
# ---------------------------------------------------------------------------


def _hybrid_rows(scale: Scale, fractions, contiguous=False):
    n = scale.size(26 * MI)
    batch = DEFAULT_BATCH_SIZE
    stats = get_tree("random", n, 32).stats
    gpu_log = cuart_lookup_log("random", n, 32, batch)
    kernel = _cm(A100, scale).kernel_time(gpu_log)
    cfg = DispatchConfig(batch_size=batch, host_threads=8, key_bytes=32)
    pipe = pipeline_throughput(kernel, cfg, A100, SERVER_CPU)
    rows = []
    for f in fractions:
        hybrid = hybrid_throughput(
            pipe,
            HybridConfig(
                cpu_fraction=f / 100.0,
                cpu_threads=56,
                avg_levels=stats.avg_leaf_level + 1,
                node_bytes=176.0,
                working_set_bytes=stats.art_host_bytes(),
                contiguous_layout=contiguous,
            ),
            SERVER_CPU,
        )
        rows.append((f, hybrid["total_mops"], hybrid["bottleneck"]))
    return rows, pipe


def fig13(scale: Scale = Scale()) -> FigureResult:
    """Hybrid CPU/GPU query approach (8 threads GPU / 56 threads CPU,
    32+byte keys, 32ki items per batch, 26Mi entries, server)."""
    fractions = [0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 20.0]
    rows, pipe = _hybrid_rows(scale, fractions)
    result = FigureResult(
        figure="Figure 13",
        title="Hybrid CPU/GPU: share of long keys processed on the CPU",
        params={"gpu threads": 8, "cpu threads": 56, "batch": 32 * KI,
                "entries": scale.size(26 * MI), "machine": "server",
                "scale": f"1/{scale.factor}"},
        columns=["% long keys on CPU", "total MOps/s", "bottleneck"],
        rows=rows,
        paper_claim=(
            "overall performance drops quite fast, ~50% impact for only "
            "3% of the keys processed on the CPU"
        ),
    )
    by_f = {r[0]: r[1] for r in rows}
    # below the knee the GPU still binds, so offloading a sliver of the
    # stream cannot hurt (the paper's own 50%-at-3% numbers place the
    # knee near 1.5%); past it the decline must be steep and monotone
    result.check("near-flat below the knee (<= 2% variation)",
                 all(r[1] <= 1.02 * by_f[0.0] for r in rows if r[0] <= 1.0))
    decline = [r[1] for r in rows if r[0] >= 2.0]
    result.check("monotonically decreasing beyond the knee",
                 all(a >= b for a, b in zip(decline, decline[1:])))
    result.check(">=40% drop at 3% CPU share",
                 by_f[3.0] <= 0.6 * by_f[0.0])
    result.check("CPU becomes the bottleneck beyond a small share",
                 rows[-1][2] == "cpu")
    return result


# ---------------------------------------------------------------------------
# Figure 14 — hybrid with 5% *short* keys on the CPU: CPU-bound everywhere
# ---------------------------------------------------------------------------


def fig14(scale: Scale = Scale()) -> FigureResult:
    """Hybrid CPU/GPU query approach (8 threads GPU / 56 threads CPU, 5%
    CPU keys, 32ki items per batch, 26Mi entries, server)."""
    n = scale.size(26 * MI)
    batch = DEFAULT_BATCH_SIZE
    stats = get_tree("random", n, 32).stats
    variants = {
        "CuART": (cuart_lookup_log("random", n, 32, batch), "cuda", False),
        "GRT-CUDA": (grt_lookup_log("random", n, 32, batch), "sync", False),
        "GRT-OpenCL": (grt_lookup_log("random", n, 32, batch), "sync", True),
    }
    rows = []
    for name, (log, api, ocl) in variants.items():
        kernel = _cm(A100, scale).kernel_time(log)
        cfg = DispatchConfig(
            batch_size=batch, host_threads=8, key_bytes=32, api=api,
            host_costs=_OCL_COSTS if ocl else HostCostParameters(),
        )
        pipe = pipeline_throughput(kernel, cfg, A100, SERVER_CPU)
        hybrid = hybrid_throughput(
            pipe,
            HybridConfig(
                cpu_fraction=0.05,
                cpu_threads=56,
                avg_levels=stats.avg_leaf_level + 1,
                working_set_bytes=stats.art_host_bytes(),
            ),
            SERVER_CPU,
        )
        rows.append((name, pipe.throughput_mops, hybrid["total_mops"],
                     hybrid["bottleneck"]))
    result = FigureResult(
        figure="Figure 14",
        title="Hybrid with 5% short keys on the CPU",
        params={"cpu share": "5%", "batch": batch, "entries": n,
                "machine": "server", "scale": f"1/{scale.factor}"},
        columns=["impl", "GPU-only MOps/s", "hybrid MOps/s", "bottleneck"],
        rows=rows,
        paper_claim=(
            "all GPU implementations are in fact limited by the CPU "
            "processing"
        ),
    )
    hybrid_rates = [r[2] for r in rows]
    result.check("all variants converge to the same CPU bound",
                 max(hybrid_rates) / min(hybrid_rates) < 1.15)
    result.check("every variant is CPU-bottlenecked",
                 all(r[3] == "cpu" for r in rows))
    result.check("hybrid rate below each GPU-only rate",
                 all(r[2] < r[1] for r in rows))
    return result


# ---------------------------------------------------------------------------
# Figure 15 — update throughput vs batch size (hash-table collisions)
# ---------------------------------------------------------------------------


def fig15(scale: Scale = Scale()) -> FigureResult:
    """CuART update throughput with increasing batch size for different
    tree sizes (8 threads, 16 byte keys, workstation; 1Mi-entry hash
    table at paper scale)."""
    slots = scale.hash_slots(1 * MI)
    batches = [b for b in (256, 512, 1 * KI, 2 * KI, int(2.5 * KI), 3 * KI)
               if b < slots] or [slots // 4, slots // 2]
    paper_trees = [64 * KI, 1 * MI, 16 * MI]
    cm = _cm(RTX3090, scale)
    rows = []
    series = {ps: [] for ps in paper_trees}
    for b in batches:
        row = [b]
        for ps in paper_trees:
            n = scale.size(ps)
            res = cuart_update_run("random", n, 16, b, slots)
            # sustained rate with full stream overlap: fixed launch and
            # latency overheads amortize across in-flight batches, the
            # shared memory-command budget (where the probe traffic
            # lands) does not
            timing = cm.kernel_time(res.log)
            sustained = timing.command_bound_s + res.log.serial_stall_s
            mops = b / sustained / 1e6
            row.append(mops)
            series[ps].append((b, mops, res.load_factor, res.total_probes))
        rows.append(tuple(row))
    result = FigureResult(
        figure="Figure 15",
        title="Update throughput vs batch size per tree size",
        params={"hash slots": slots, "key": "16B", "threads": 8,
                "machine": "workstation", "scale": f"1/{scale.factor}"},
        columns=["batch"] + [f"tree {ps // KI}Ki" for ps in paper_trees],
        rows=rows,
        paper_claim=(
            "update throughput drops with increasing batch size — hash "
            "table collisions; the drop is not visible for a small tree "
            "because the table is only partially filled"
        ),
    )
    small = series[paper_trees[0]]
    big = series[paper_trees[-1]]
    result.check(
        "large tree: probes/op rise with batch size",
        big[-1][3] / big[-1][0] > big[0][3] / big[0][0],
    )
    result.check(
        "large tree: big batches lose throughput vs best",
        min(m for _, m, _, _ in big) < 0.85 * max(m for _, m, _, _ in big),
    )
    result.check(
        "small tree: flat (within 25%) across batch sizes",
        min(m for _, m, _, _ in small) > 0.75 * max(m for _, m, _, _ in small),
    )
    result.check(
        "small tree's hash-table load stays low",
        small[-1][2] < 0.25,
    )
    return result


# ---------------------------------------------------------------------------
# Figure 16 — update throughput vs key length
# ---------------------------------------------------------------------------


def fig16(scale: Scale = Scale()) -> FigureResult:
    """CuART update throughput with increasing key length for different
    tree sizes (16ki items per batch, 8 threads, workstation)."""
    paper_trees = [64 * KI, 1 * MI, 16 * MI]
    key_lens = [8, 16, 32]
    batch = 2 * KI
    slots = 1 << 16  # collisions are not the variable under study here
    cm = _cm(RTX3090, scale)
    rows = []
    for kl in key_lens:
        row = [kl]
        for ps in paper_trees:
            n = scale.size(ps)
            res = cuart_update_run("random", n, kl, batch, slots)
            row.append(batch / cm.kernel_time(res.log).total_s / 1e6)
        rows.append(tuple(row))
    result = FigureResult(
        figure="Figure 16",
        title="Update throughput vs key length per tree size",
        params={"batch": batch, "threads": 8, "machine": "workstation",
                "scale": f"1/{scale.factor}"},
        columns=["key len"] + [f"tree {ps // KI}Ki" for ps in paper_trees],
        rows=rows,
        paper_claim=(
            "for small trees caching effects are overwhelmingly large; "
            "update performance drops for larger keys"
        ),
    )
    result.check(
        "small tree faster than large tree at every key length",
        all(r[1] > r[3] for r in rows),
    )
    result.check(
        "throughput decreases with key length (largest tree)",
        rows[0][3] >= rows[-1][3],
    )
    return result


# ---------------------------------------------------------------------------
# Figure 17 — update: CuART vs GRT vs CPU
# ---------------------------------------------------------------------------


def fig17(scale: Scale = Scale()) -> FigureResult:
    """Update throughput of CuART, GRT and the CPU (16Mi entries,
    8 threads, 32ki items per batch, workstation)."""
    n = scale.size(16 * MI)
    batch = 2 * KI
    slots = 1 << 16
    cm = _cm(RTX3090, scale)
    stats = get_tree("random", n, 32).stats

    cu_res = cuart_update_run("random", n, 32, batch, slots)
    cu = batch / cm.kernel_time(cu_res.log).total_s / 1e6
    cu_lookup_log = cuart_lookup_log("random", n, 32, batch)
    cu_lookup = batch / cm.kernel_time(cu_lookup_log).total_s / 1e6

    grt_res = grt_update_run("random", n, 32, batch)
    grt = batch / cm.kernel_time(grt_res.log).total_s / 1e6

    cpu_t = cpu_update_time(
        WORKSTATION_CPU,
        avg_levels=stats.avg_leaf_level + 1,
        node_bytes=176.0,
        working_set_bytes=stats.art_host_bytes(),
        contiguous=False,
    )
    cpu = 1.0 / cpu_t / 1e6  # serialized RMW: threads do not help

    rows = [
        ("CuART (GPU)", cu),
        ("GRT (GPU)", grt),
        ("ART (CPU, atomic)", cpu),
        ("CuART lookup (reference)", cu_lookup),
    ]
    result = FigureResult(
        figure="Figure 17",
        title="Atomic update throughput: CuART vs GRT vs CPU",
        params={"entries": n, "batch": batch, "threads": 8,
                "machine": "workstation", "scale": f"1/{scale.factor}"},
        columns=["implementation", "MOps/s"],
        rows=rows,
        paper_claim=(
            "CuART updates ~20% below its lookup throughput (~120 vs "
            "~150 MOps/s); 10x over GRT (~13 MOps/s) and up to 50x over "
            "the CPU (~2.5 MOps/s)"
        ),
    )
    result.check("CuART >= 5x GRT updates", cu >= 5 * grt)
    result.check("CuART >= 20x CPU updates", cu >= 20 * cpu)
    result.check("CuART update within 40-100% of its lookup rate",
                 0.4 * cu_lookup <= cu <= 1.05 * cu_lookup)
    result.check("GRT above the CPU", grt > cpu)
    return result


# ---------------------------------------------------------------------------
# Figure 18 — lookup/update throughput across GPUs
# ---------------------------------------------------------------------------


def fig18(scale: Scale = Scale()) -> FigureResult:
    """Lookup/Update throughput on different GPUs (16Mi entries,
    8 threads, 32ki items per batch, 32 byte keys)."""
    n = scale.size(16 * MI)
    batch_l = DEFAULT_BATCH_SIZE
    batch_u = 2 * KI
    slots = 1 << 16
    devices = [("GTX1070", GTX1070), ("RTX3090", RTX3090), ("A100", A100)]
    cu_log = cuart_lookup_log("random", n, 32, batch_l)
    g_log = grt_lookup_log("random", n, 32, batch_l)
    cu_upd = cuart_update_run("random", n, 32, batch_u, slots)
    g_upd = grt_update_run("random", n, 32, batch_u)
    rows = []
    lookup_by_dev = {}
    for name, dev in devices:
        cm = _cm(dev, scale)
        cu_l = batch_l / cm.kernel_time(cu_log).total_s / 1e6
        g_l = batch_l / cm.kernel_time(g_log).total_s / 1e6
        cu_u = batch_u / cm.kernel_time(cu_upd.log).total_s / 1e6
        g_u = batch_u / cm.kernel_time(g_upd.log).total_s / 1e6
        rows.append((name, cu_l, g_l, cu_u, g_u))
        lookup_by_dev[name] = cu_l
    result = FigureResult(
        figure="Figure 18",
        title="Lookup/Update throughput across GPUs (memory impact)",
        params={"entries": n, "key": "32B", "threads": 8,
                "lookup batch": batch_l, "update batch": batch_u,
                "scale": f"1/{scale.factor}"},
        columns=["GPU", "CuART lookup", "GRT lookup", "CuART update",
                 "GRT update"],
        rows=rows,
        paper_claim=(
            "the RTX3090 (GDDR6X, higher command clock) outperforms the "
            "A100 (HBM2) despite lower bandwidth; CuART outperforms GRT "
            "on all tested GPUs"
        ),
    )
    result.check("RTX3090 beats A100 for CuART lookups",
                 lookup_by_dev["RTX3090"] > lookup_by_dev["A100"])
    result.check("GTX1070 is the slowest",
                 lookup_by_dev["GTX1070"] < min(lookup_by_dev["RTX3090"],
                                                lookup_by_dev["A100"]))
    result.check("CuART above GRT on every GPU (lookup)",
                 all(r[1] > r[2] for r in rows))
    result.check("CuART above GRT on every GPU (update)",
                 all(r[3] > r[4] for r in rows))
    return result


#: every reproduced figure, in paper order.
ALL_FIGURES = {
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
}


def run_all(scale: Scale = Scale()) -> dict[str, FigureResult]:
    """Regenerate every figure; returns results keyed by figure id."""
    return {name: fn(scale) for name, fn in ALL_FIGURES.items()}
