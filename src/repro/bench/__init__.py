"""Benchmark harness: one experiment definition per paper figure.

Every evaluation artifact of the paper (figures 7–18; the evaluation has
no numbered tables) has a generator in :mod:`repro.bench.figures` that
rebuilds the workload, runs the real kernels, feeds their transaction
logs through the simulated devices and prints the same series the paper
plots.  ``benchmarks/`` wraps these in pytest-benchmark targets.
"""

from repro.bench.runner import (
    Scale,
    get_tree,
    get_cuart,
    get_grt,
    cuart_lookup_log,
    grt_lookup_log,
    cuart_update_run,
    grt_update_run,
)
from repro.bench.report import FigureResult, format_table
from repro.bench import figures

__all__ = [
    "Scale",
    "get_tree",
    "get_cuart",
    "get_grt",
    "cuart_lookup_log",
    "grt_lookup_log",
    "cuart_update_run",
    "grt_update_run",
    "FigureResult",
    "format_table",
    "figures",
]
