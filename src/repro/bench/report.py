"""Plain-text rendering of figure reproductions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class FigureResult:
    """One reproduced figure: parameters + the plotted series as rows."""

    figure: str
    title: str
    params: dict
    columns: Sequence[str]
    rows: list[tuple]
    notes: str = ""
    #: the paper's qualitative claim this figure must reproduce.
    paper_claim: str = ""
    _checks: list[tuple[str, bool]] = field(default_factory=list)

    def check(self, description: str, passed: bool) -> None:
        """Record one shape assertion (who wins / where the knee is)."""
        self._checks.append((description, bool(passed)))

    @property
    def checks(self) -> list[tuple[str, bool]]:
        return list(self._checks)

    @property
    def all_checks_pass(self) -> bool:
        return all(ok for _, ok in self._checks)

    def __str__(self) -> str:
        return format_figure(self)


def format_table(columns: Sequence[str], rows: list[tuple]) -> str:
    """Align a list of tuples under their headers."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in cells)) if cells else len(str(col))
        for i, col in enumerate(columns)
    ]
    head = "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(c.rjust(w) for c, w in zip(row, widths)) for row in cells
    )
    return "\n".join([head, sep, body]) if rows else head


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_figure(result: FigureResult) -> str:
    lines = [
        f"== {result.figure}: {result.title} ==",
        "params: " + ", ".join(f"{k}={v}" for k, v in result.params.items()),
    ]
    if result.paper_claim:
        lines.append(f"paper:  {result.paper_claim}")
    lines.append("")
    lines.append(format_table(result.columns, result.rows))
    if result.notes:
        lines.append("")
        lines.append(f"note: {result.notes}")
    if result._checks:
        lines.append("")
        for desc, ok in result._checks:
            lines.append(f"  [{'PASS' if ok else 'MISS'}] {desc}")
    return "\n".join(lines)
