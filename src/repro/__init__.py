"""CuART reproduction — a scalable radix-tree lookup and update engine.

Python reproduction of *"CuART — a CUDA-based, scalable Radix-Tree lookup
and update engine"* (Koppehel, Pionteck, Groth, Groppe; ICPP 2021) with a
transaction-level simulated GPU substrate in place of CUDA.

Quickstart::

    from repro import CuartEngine
    from repro.util.keys import encode_str

    eng = CuartEngine()
    eng.populate([(encode_str("alpha"), 1), (encode_str("beta"), 2)])
    eng.map_to_device()
    eng.lookup([encode_str("alpha")])     # -> [1]
    print(eng.last_report)                # simulated throughput breakdown

Package map (see DESIGN.md for the paper-section cross-reference):

=====================  ====================================================
``repro.art``          host-side pointer ART (Leis 2013) — the substrate
``repro.cuart``        the paper's contribution: per-type buffers, packed
                       links, root table, lookup/update/delete kernels
``repro.grt``          the GRT single-buffer baseline (Alam 2016)
``repro.gpusim``       simulated GPU: memory architectures, transaction
                       logs, cost model, PCIe, streams
``repro.host``         batching, dispatch pipeline, hybrid split, engines
``repro.workloads``    reproducible key sets and query streams
``repro.bench``        per-figure experiment definitions and reports
=====================  ====================================================
"""

from repro.art import AdaptiveRadixTree
from repro.cuart import (
    CuartLayout,
    InsertEngine,
    LongKeyStrategy,
    PartitionedIndex,
    RootTable,
    UpdateEngine,
    approx_lookup,
    load_layout,
    lookup_batch,
    save_layout,
)
from repro.grt import GrtLayout, grt_lookup_batch
from repro.gpusim.faults import FaultConfig, FaultInjector
from repro.host import (
    BatchResult,
    CuartEngine,
    EngineConfig,
    GrtEngine,
    OpStatus,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.host.mixed import MixedWorkloadExecutor
from repro.constants import NIL_VALUE

__version__ = "1.0.0"

__all__ = [
    "AdaptiveRadixTree",
    "CuartLayout",
    "InsertEngine",
    "LongKeyStrategy",
    "PartitionedIndex",
    "RootTable",
    "UpdateEngine",
    "approx_lookup",
    "load_layout",
    "lookup_batch",
    "save_layout",
    "GrtLayout",
    "grt_lookup_batch",
    "CuartEngine",
    "GrtEngine",
    "BatchResult",
    "OpStatus",
    "EngineConfig",
    "FaultConfig",
    "FaultInjector",
    "ResiliencePolicy",
    "RetryPolicy",
    "MixedWorkloadExecutor",
    "NIL_VALUE",
    "__version__",
]
