"""Global constants shared across the ART, GRT and CuART implementations.

The node-type codes follow section 3.2.1 of the paper: the packed 64-bit
node link stores the *next* node's type in the most significant bits and
the node index within the per-type buffer in the least significant bits.
Codes 1-4 are the four adaptive inner-node sizes, 5-7 the three fixed-size
leaf buffers.  We additionally reserve 0 for the empty link and 8 for the
"long key stored in host memory" signal of section 3.2.3 (option b).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Packed node-link type codes (paper section 3.2.1, figure 2).
# ---------------------------------------------------------------------------
LINK_EMPTY = 0
LINK_N4 = 1
LINK_N16 = 2
LINK_N48 = 3
LINK_N256 = 4
LINK_LEAF8 = 5
LINK_LEAF16 = 6
LINK_LEAF32 = 7
LINK_HOST = 8  # leaf lives in host memory; the CPU must finish the lookup
LINK_DYNLEAF = 9  # dynamically-sized device leaf (GRT-style, section 3.2.3c)

NODE_TYPE_CODES = (LINK_N4, LINK_N16, LINK_N48, LINK_N256)
LEAF_TYPE_CODES = (LINK_LEAF8, LINK_LEAF16, LINK_LEAF32)

#: human-readable names for link type codes (metric labels, reports).
LINK_TYPE_NAMES = {
    LINK_EMPTY: "empty",
    LINK_N4: "N4",
    LINK_N16: "N16",
    LINK_N48: "N48",
    LINK_N256: "N256",
    LINK_LEAF8: "leaf8",
    LINK_LEAF16: "leaf16",
    LINK_LEAF32: "leaf32",
    LINK_HOST: "host",
    LINK_DYNLEAF: "dynleaf",
}

#: Number of bits used for the node index inside a packed link.  The type
#: lives in the top 8 bits which leaves 56 bits of addressable node space,
#: matching the paper's "packed 64bit integer containing the next node type
#: in the most significant bits".
LINK_INDEX_BITS = 56
LINK_INDEX_MASK = (1 << LINK_INDEX_BITS) - 1

# ---------------------------------------------------------------------------
# Inner node geometry.
# ---------------------------------------------------------------------------
#: Fan-out of each adaptive node type (maximum number of children).
NODE_CAPACITY = {LINK_N4: 4, LINK_N16: 16, LINK_N48: 48, LINK_N256: 256}

#: Marker inside a Node48 child index array meaning "no child".
N48_EMPTY_SLOT = 0xFF

#: Stored (truncated) prefix bytes per CuART node header.  The paper frees
#: the node-type byte from the GRT header and reuses it "for an increased
#: maximum prefix length"; we keep the stored prefix at 15 bytes (GRT
#: stores 14, see ``repro.grt.layout``).  Longer compressed paths fall back
#: to optimistic path compression: the skipped length is stored exactly,
#: the bytes beyond the stored window are verified at the leaf.
CUART_MAX_PREFIX = 15
#: GRT header is 16 bytes: type u8 + child count u8 + prefix_len u16 +
#: 12 stored prefix bytes.  CuART drops the type byte (it moved into the
#: link) which is how it affords the longer 15-byte window.
GRT_MAX_PREFIX = 12

#: Fixed leaf key capacities in bytes (paper: "several leaf objects of
#: different sizes (8, 16, 32 bytes)").
LEAF_CAPACITY = {LINK_LEAF8: 8, LINK_LEAF16: 16, LINK_LEAF32: 32}

#: Largest key the fixed-size leaf buffers can hold.  Keys above this need
#: one of the long-key strategies from section 3.2.3.
MAX_SHORT_KEY = 32

# ---------------------------------------------------------------------------
# Values.
# ---------------------------------------------------------------------------
#: Sentinel returned by lookups for missing keys and stored by deletions
#: ("signaling a deletion through setting a nil pointer", section 3.4).
NIL_VALUE = (1 << 64) - 1

# ---------------------------------------------------------------------------
# CuART per-node transaction sizes in bytes (figure 2 / section 3.2.1).
#
# All CuART node records are padded to a 16-byte-aligned size so a single
# memory transaction of known size fetches the whole node.
# ---------------------------------------------------------------------------


def _pad16(n: int) -> int:
    return (n + 15) & ~15


#: CuART node record layout: header (prefix_len u16 + count u16 + stored
#: prefix) followed by the key array and the packed child links.
CUART_NODE_BYTES = {
    LINK_N4: _pad16(4 + CUART_MAX_PREFIX + 1 + 4 + 4 * 8),  # 64
    LINK_N16: _pad16(4 + CUART_MAX_PREFIX + 1 + 16 + 16 * 8),  # 176
    LINK_N48: _pad16(4 + CUART_MAX_PREFIX + 1 + 256 + 48 * 8),  # 672
    LINK_N256: _pad16(4 + CUART_MAX_PREFIX + 1 + 256 * 8),  # 2080
    LINK_LEAF8: 16,  # 8 key bytes + key_len + value
    LINK_LEAF16: 32,
    LINK_LEAF32: 48,
}

#: GRT node sizes: the header must be read *first* (it contains the type),
#: then the body whose size depends on the type — the two dependent
#: transactions of section 3.1.  Sizes mirror the paper's "650B for N48 and
#: 2KB for N256".
GRT_HEADER_BYTES = 16
GRT_BODY_BYTES = {
    LINK_N4: 4 + 4 + 4 * 8,  # 40
    LINK_N16: 16 + 16 * 8,  # 144
    LINK_N48: 256 + 48 * 8,  # 640
    LINK_N256: 256 * 8,  # 2048
}

# ---------------------------------------------------------------------------
# Evaluation defaults (section 4.1/4.3).
# ---------------------------------------------------------------------------
#: "For the remaining experiments, we chose a batch size of 32768 items."
DEFAULT_BATCH_SIZE = 32768
#: "We chose to utilize 8 threads for the remaining experiments."
DEFAULT_HOST_THREADS = 8
#: "In our tests, we used a hash table size of 1Mi entries" (section 4.5).
DEFAULT_UPDATE_HASH_SLOTS = 1 << 20
#: Compacted upper layers: "we merged the first three layers into a lookup
#: table ... resulting in 128MB of memory consumption" (section 3.2.2).
PAPER_ROOT_TABLE_BYTES = 1 << 24 << 3  # 2**24 links * 8 bytes = 128 MiB
