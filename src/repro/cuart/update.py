"""Two-stage batched update engine (section 3.4).

"Update operations replace the value stored for certain keys. ... We
utilize a one-dimensional grid of threads in CUDA, which means that the
update operation priority increases along with the thread ID."

Stage 1 — every thread runs a lookup that returns the *memory location*
of its leaf instead of the value.

Stage 2 — duplicate writers to the same location are eliminated through
the atomic-max hash table: each thread publishes its thread index for its
location, a grid synchronization follows, then every thread reads the
maximum back and only the thread whose index equals it performs the
write.  "As updates and nonstructural modifying deletes are quite similar
in their functionality, we use the same implementation for both,
signaling a deletion through setting a nil pointer."

The engine is *atomic* in the paper's sense: within a batch, concurrent
writes to one key resolve to the highest-priority writer and readers
never observe a torn value (values are single 64-bit words).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    DEFAULT_UPDATE_HASH_SLOTS,
    LEAF_TYPE_CODES,
    NIL_VALUE,
)
from repro.cuart.hashtable import make_conflict_table
from repro.cuart.layout import CuartLayout
from repro.cuart.lookup import lookup_batch
from repro.errors import SimulationError
from repro.gpusim.streams import launch_kernel
from repro.gpusim.transactions import TransactionLog
from repro.obs.metrics import OCCUPANCY_BUCKETS, MetricsRegistry
from repro.util.packing import link_indices, link_types


def hashtable_stat_recorder(metrics: MetricsRegistry):
    """Per-batch device-cost export for the §3.4 conflict table.

    Returns a ``record(table)`` callable every write kernel invokes right
    after ``resolve_winners``: the table's since-reset tallies (memory
    transactions, coalesced probe groups, per-thread probe steps, atomic
    ops) land in ``variant``-labeled counters, and the batch load factor
    in an occupancy histogram — the series the BENCH transaction-drop
    gate and the probe-group dashboards read.
    """
    tx = metrics.counter(
        "hashtable_transactions_total",
        "memory transactions issued by the dedup conflict table",
        labels=("variant",),
    )
    groups = metrics.counter(
        "hashtable_probe_groups_total",
        "coalesced probe groups issued by the dedup conflict table",
        labels=("variant",),
    )
    steps = metrics.counter(
        "hashtable_probe_steps_total",
        "per-thread probe steps walked in the dedup conflict table",
        labels=("variant",),
    )
    atomics = metrics.counter(
        "hashtable_atomics_total",
        "atomic operations issued by the dedup conflict table",
        labels=("variant",),
    )
    load = metrics.histogram(
        "hashtable_load_factor",
        "dedup conflict-table load factor per resolved batch",
        labels=("variant",),
        buckets=OCCUPANCY_BUCKETS,
    )

    def record(table) -> None:
        v = table.variant
        tx.labels(variant=v).inc(table.transactions)
        groups.labels(variant=v).inc(table.probe_groups)
        steps.labels(variant=v).inc(table.total_probes)
        atomics.labels(variant=v).inc(table.atomics)
        load.labels(variant=v).observe(table.load_factor)

    return record


def write_path_counters(metrics: MetricsRegistry, op: str) -> tuple:
    """The dedup-accounting counter pair every write kernel shares:
    ``(winners, losers)`` for one op class.  Winners performed the
    device write; losers were eliminated by the §3.4 atomic-max pass."""
    winners = metrics.counter(
        "write_dedup_winners_total",
        "batch threads that won conflict resolution and wrote",
        labels=("op",),
    ).labels(op=op)
    losers = metrics.counter(
        "write_dedup_losers_total",
        "batch threads eliminated by the atomic-max dedup",
        labels=("op",),
    ).labels(op=op)
    return winners, losers


@dataclass
class UpdateResult:
    """Outcome of one batched update/delete kernel."""

    #: (B,) bool — the key was found (stage 1 hit).
    found: np.ndarray
    #: (B,) bool — this thread won conflict resolution and performed the
    #: write (at most one winner per distinct key).
    winners: np.ndarray
    #: number of leaf values actually written.
    writes: int
    #: number of write conflicts eliminated (threads that lost).
    conflicts_eliminated: int
    #: hash-table probe statistics of this batch.
    total_probes: int
    max_probe: int
    load_factor: float
    log: TransactionLog


class UpdateEngine:
    """Reusable batched updater bound to one mapped layout."""

    def __init__(
        self,
        layout: CuartLayout,
        *,
        root_table=None,
        hash_slots: int = DEFAULT_UPDATE_HASH_SLOTS,
        hash_table: str = "bucketed",
        metrics: MetricsRegistry | None = None,
        injector=None,
    ) -> None:
        self.layout = layout
        self.root_table = root_table
        self.hash_slots = hash_slots
        self.hash_table = hash_table
        self.injector = injector
        # the conflict table is reused (reset) across batches — the real
        # kernel allocates it once and memsets between launches, and a
        # fresh multi-MiB allocation per batch dominates small batches
        self._table = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_winners, self._m_losers = write_path_counters(
            self.metrics, "update"
        )
        self._record_table = hashtable_stat_recorder(self.metrics)
        self._m_writes = self.metrics.counter(
            "leaf_value_writes_total", "leaf value words written on device"
        )

    def apply(
        self,
        keys_mat: np.ndarray,
        key_lens: np.ndarray,
        new_values: np.ndarray,
        *,
        deletes: np.ndarray | None = None,
        log: TransactionLog | None = None,
    ) -> UpdateResult:
        """Apply one update batch; thread ``i`` writes ``new_values[i]``
        (or a nil pointer where ``deletes[i]``) to ``keys_mat[i]``.

        Updates to keys not present in the index are skipped (found=False)
        — structural inserts need a host re-map (section 5.1 leaves full
        device-side management to future work).
        """
        layout = self.layout
        layout.check_fresh()
        B = keys_mat.shape[0]
        # both fault hooks fire before any stage runs: the kernel has
        # mutated nothing yet, so an aborted batch can be replayed as-is
        launch_kernel("update", B, injector=self.injector)
        if self.injector is not None:
            self.injector.on_hashtable("update", B)
        if log is None:
            log = TransactionLog()
        new_values = np.asarray(new_values, dtype=np.uint64)
        if new_values.shape != (B,):
            raise SimulationError("new_values must be one value per query")
        if deletes is None:
            deletes = np.zeros(B, dtype=bool)
        if np.any((new_values == np.uint64(NIL_VALUE)) & ~deletes):
            raise SimulationError(
                "NIL_VALUE is the deletion signal; pass deletes=... instead"
            )

        # ---- stage 1: locate the leaves -----------------------------
        res = lookup_batch(
            layout, keys_mat, key_lens, root_table=self.root_table, log=log
        )
        locations = res.locations
        found = locations != np.uint64(0)
        thread_ids = np.arange(B, dtype=np.int64)

        # ---- stage 2: conflict resolution via atomic-max table ------
        # one fused linear-probe pass per batch: insert, grid sync and
        # read-back (see AtomicMaxHashTable.resolve_winners) instead of
        # re-walking every probe chain a second time per key
        table = self._table
        if table is None:
            table = self._table = make_conflict_table(
                self.hash_slots, variant=self.hash_table
            )
        else:
            table.reset()
        table.log = log
        winners = np.zeros(B, dtype=bool)
        winners[found] = table.resolve_winners(
            locations[found], thread_ids[found]
        )
        self._record_table(table)

        # ---- stage 3: winners write ----------------------------------
        writes = 0
        win_rows = np.nonzero(winners)[0]
        wlocs = locations[win_rows]
        wcodes = link_types(wlocs)
        widx = link_indices(wlocs)
        for code in LEAF_TYPE_CODES:
            sel = wcodes == code
            if not sel.any():
                continue
            buf = layout.leaves[code]
            vals = np.where(
                deletes[win_rows[sel]], np.uint64(NIL_VALUE), new_values[win_rows[sel]]
            )
            buf.values[widx[sel]] = vals
            # one 16-byte store per winner (value word, write-combined)
            log.record(16, int(sel.sum()))
            writes += int(sel.sum())
        # dynamic leaves: patch the value field inside the heap record
        # (whole-array scatter of the little-endian value words)
        from repro.constants import LINK_DYNLEAF

        sel = wcodes == LINK_DYNLEAF
        if sel.any():
            heap = layout.dyn.heap
            offs = widx[sel].astype(np.int64)
            vals = np.where(
                deletes[win_rows[sel]], np.uint64(NIL_VALUE),
                new_values[win_rows[sel]],
            ).astype("<u8")
            heap[offs[:, None] + np.arange(2, 10, dtype=np.int64)[None, :]] = (
                vals.view(np.uint8).reshape(-1, 8)
            )
            log.record(16, int(sel.sum()), aligned=False)
            writes += int(sel.sum())

        layout.device_mutations += writes
        conflicts = int(found.sum()) - int(winners.sum())
        self._m_winners.inc(int(winners.sum()))
        self._m_losers.inc(conflicts)
        self._m_writes.inc(writes)
        return UpdateResult(
            found=found,
            winners=winners,
            writes=writes,
            conflicts_eliminated=conflicts,
            total_probes=table.total_probes,
            max_probe=table.max_probe,
            load_factor=table.load_factor,
            log=log,
        )
