"""Compacted upper layers (section 3.2.2).

"In order to improve the total access latency, we merged the upper layers
into a multi-layer ART node, as proposed in [START] ... we merged the
first three layers into a lookup table.  We realized this optimization by
utilizing a dense array of compacted pointers (node links) ... Lookups
within the compacted root node are realized by using the first three
bytes of the key as an index into a dense array."

The table maps every possible ``k``-byte key prefix to the *deepest* node
whose traversal depth is still ≤ ``k`` bytes on that prefix's path, plus
the byte depth already consumed on arrival, so the kernel resumes a
normal traversal from there.  The paper uses ``k = 3`` (2^24 links =
128 MiB); the default here is configurable because the reproduction runs
trees of many sizes.
"""

from __future__ import annotations

import numpy as np

from repro.art.nodes import InnerNode, Leaf
from repro.art.tree import AdaptiveRadixTree
from repro.constants import LINK_EMPTY
from repro.cuart.layout import CuartLayout
from repro.errors import SimulationError
from repro.gpusim.transactions import TransactionLog
from repro.util.packing import pack_link


class RootTable:
    """Dense first-``k``-bytes dispatch table over a mapped layout."""

    def __init__(self, layout: CuartLayout, k: int = 3) -> None:
        if not 1 <= k <= 3:
            raise SimulationError(f"root table depth must be 1..3, got {k}")
        layout.check_fresh()
        self.k = k
        self.layout = layout
        size = 256**k
        self.links = np.full(size, np.uint64(pack_link(LINK_EMPTY, 0)), dtype=np.uint64)
        self.depths = np.zeros(size, dtype=np.uint8)
        tree: AdaptiveRadixTree = layout._source
        if tree.root is not None:
            self._fill(tree.root, 0, 0)
        # growth relocations (device-side inserts) must patch our links
        layout.attached_tables.append(self)

    # ------------------------------------------------------------------
    def _fill(self, node, depth: int, prefix_value: int) -> None:
        """Point every table entry under ``prefix_value`` (``depth`` bytes
        known) at ``node``, then let deeper nodes refine their subranges."""
        k = self.k
        span = 256 ** (k - depth)
        start = prefix_value * span
        link = self.layout.node_links[id(node)]
        self.links[start : start + span] = np.uint64(link)
        self.depths[start : start + span] = depth
        if isinstance(node, Leaf):
            return
        assert isinstance(node, InnerNode)
        plen = len(node.prefix)
        child_depth = depth + plen + 1
        if child_depth > k:
            return  # children would arrive past the table horizon
        base = prefix_value
        for b in node.prefix:
            base = (base << 8) | b
        for byte, child in node.children_items():
            self._fill(child, child_depth, (base << 8) | byte)

    # ------------------------------------------------------------------
    def start_links(
        self,
        keys_mat: np.ndarray,
        key_lens: np.ndarray,
        log: TransactionLog | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Table dispatch for a query batch.

        Returns ``(links, depths, covered)``; rows with keys shorter than
        ``k`` bytes are not covered and must start at the tree root.  The
        dispatch itself is one 8-byte aligned read per query (the paper's
        latency win: three tree levels collapse into one load).
        """
        B, W = keys_mat.shape
        k = self.k
        covered = key_lens >= k
        idx = np.zeros(B, dtype=np.int64)
        for j in range(min(k, W)):
            idx = (idx << 8) | keys_mat[:, j].astype(np.int64)
        if W < k:  # all keys shorter than the horizon
            covered = np.zeros(B, dtype=bool)
        idx = np.where(covered, idx, 0)
        if log is not None:
            log.begin_round(int(covered.sum()))
            log.record(8, int(covered.sum()))
            # the hot subset of the table is what competes for L2
            touched = np.unique(idx[covered]).size
            log.rounds[-1].distinct_bytes = touched * 8
        return (
            self.links[idx],
            self.depths[idx].astype(np.int64),
            covered,
        )

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Device memory of the dense link array (128 MiB at k=3)."""
        return self.links.nbytes
