"""Device-side deletions (section 3.3).

"To process a deletion directly on the device, the tree is traversed,
keeping the last visited offset in local memory.  Once a leaf is reached,
its contents are cleared and the reference to the leaf is removed from
the last visited node.  The leaf index is pushed into a list of free
leaves which can be used for future inserts.  By not modifying the
structure of the tree (i.e. not collapsing nodes immediately), the
deletion performance can be increased significantly."

Unlike the nil-value deletes of the update engine (which only blank the
payload), this kernel also unlinks the leaf from its parent and recycles
the leaf slot.  Nodes are *not* collapsed or shrunk — the tree structure
is left as-is, exactly like the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    CUART_NODE_BYTES,
    DEFAULT_UPDATE_HASH_SLOTS,
    LEAF_TYPE_CODES,
    LINK_N4,
    LINK_N16,
    LINK_N48,
    LINK_N256,
    N48_EMPTY_SLOT,
    NIL_VALUE,
)
from repro.cuart.hashtable import make_conflict_table
from repro.cuart.layout import CuartLayout
from repro.cuart.lookup import lookup_batch
from repro.cuart.update import hashtable_stat_recorder, write_path_counters
from repro.gpusim.streams import launch_kernel
from repro.gpusim.transactions import TransactionLog
from repro.obs.metrics import MetricsRegistry
from repro.util.packing import link_indices, link_types


@dataclass
class DeleteResult:
    #: (B,) bool — the key existed and its leaf is now cleared.
    deleted: np.ndarray
    #: leaves unlinked from their parent (and pushed onto the free list).
    unlinked: int
    #: leaves only cleared because their parent was unknown (dispatched
    #: straight to a leaf by the root table) — they still read as deleted.
    cleared_only: int
    log: TransactionLog


def delete_batch(
    layout: CuartLayout,
    keys_mat: np.ndarray,
    key_lens: np.ndarray,
    *,
    root_table=None,
    hash_slots: int = DEFAULT_UPDATE_HASH_SLOTS,
    hash_table: str = "bucketed",
    log: TransactionLog | None = None,
    table=None,
    metrics: MetricsRegistry | None = None,
    injector=None,
) -> DeleteResult:
    """Delete a batch of keys on the device.

    Duplicate deletions of one key inside the batch are deduplicated with
    the same atomic-max hash table the update engine uses, so each leaf
    is cleared and unlinked exactly once.  Callers issuing many batches
    can pass a ``table`` to reuse (it is reset here) and skip the
    per-batch allocation.
    """
    layout.check_fresh()
    B = keys_mat.shape[0]
    # fault hooks fire before the inner lookup and any clearing store, so
    # an aborted delete batch left every leaf and parent link untouched
    launch_kernel("delete", B, injector=injector)
    if injector is not None:
        injector.on_hashtable("delete", B)
    if log is None:
        log = TransactionLog()

    res = lookup_batch(layout, keys_mat, key_lens, root_table=root_table, log=log)
    locations = res.locations
    found = locations != np.uint64(0)
    thread_ids = np.arange(B, dtype=np.int64)

    if table is None:
        table = make_conflict_table(hash_slots, variant=hash_table)
    else:
        table.reset()
    table.log = log
    winners = np.zeros(B, dtype=bool)
    if found.any():
        winners[found] = table.resolve_winners(
            locations[found], thread_ids[found]
        )
    if metrics is not None:
        hashtable_stat_recorder(metrics)(table)

    win_rows = np.nonzero(winners)[0]
    wlocs = locations[win_rows]
    wcodes = link_types(wlocs)
    widx = link_indices(wlocs)

    # ---- clear leaf contents + push onto the free list ---------------
    # group the work by the node types actually present in this batch:
    # one np.unique pass replaces a per-type any() scan over every code,
    # so a batch whose winners all live in one leaf class touches exactly
    # one buffer (the delete-tail-latency fix)
    unlinked = 0
    cleared_only = 0
    present_wcodes = np.unique(wcodes) if win_rows.size else wcodes[:0]
    for code in present_wcodes:
        if code not in LEAF_TYPE_CODES:
            continue
        sel = wcodes == code
        buf = layout.leaves[code]
        rows = widx[sel]
        buf.values[rows] = np.uint64(NIL_VALUE)
        buf.keys[rows] = 0
        buf.key_lens[rows] = 0
        log.record(CUART_NODE_BYTES[code], int(sel.sum()))  # clearing store

    # ---- remove the reference from the last visited node -------------
    # whole-array scatters per parent node type: distinct winner leaves
    # under one parent necessarily hang off distinct branch bytes, so the
    # scatter targets never collide
    pcodes = link_types(res.parent_links[win_rows])
    pidx = link_indices(res.parent_links[win_rows])
    pbytes = res.parent_bytes[win_rows].astype(np.int64)
    have_parent = res.parent_links[win_rows] != np.uint64(0)
    present_pcodes = (
        np.unique(pcodes[have_parent]) if have_parent.any() else pcodes[:0]
    )
    for code in present_pcodes:
        sel = have_parent & (pcodes == code)
        if code == LINK_N4 or code == LINK_N16:
            buf = layout.nodes[code]
            rows = pidx[sel]
            cap = buf.keys.shape[1]
            valid = (
                np.arange(cap, dtype=np.int64)[None, :]
                < buf.counts[rows].astype(np.int64)[:, None]
            )
            eq = (buf.keys[rows] == pbytes[sel][:, None]) & valid
            hit = eq.any(axis=1)
            slot = eq.argmax(axis=1)
            buf.children[rows[hit], slot[hit]] = np.uint64(0)
        elif code == LINK_N48:
            buf = layout.nodes[LINK_N48]
            rows = pidx[sel]
            slot = buf.child_index[rows, pbytes[sel]].astype(np.int64)
            ok = slot != N48_EMPTY_SLOT
            buf.children[rows[ok], slot[ok]] = np.uint64(0)
        elif code == LINK_N256:
            buf = layout.nodes[LINK_N256]
            buf.children[pidx[sel], pbytes[sel]] = np.uint64(0)
    unlinked = int(have_parent.sum())
    log.record(16, unlinked)  # child-link stores
    cleared_only = int(win_rows.size - unlinked)

    # free-list push: only safely recyclable (unlinked) leaves
    pushed = 0
    if have_parent.any():
        for code in np.unique(wcodes[have_parent]):
            if code not in LEAF_TYPE_CODES:
                continue
            sel = have_parent & (wcodes == code)
            layout.free_leaves[code].extend(widx[sel].tolist())
            pushed += int(sel.sum())

    deleted = np.zeros(B, dtype=bool)
    # every thread whose key resolved to a now-cleared location succeeded,
    # including the dedup losers
    deleted[found] = True
    layout.device_mutations += int(win_rows.size)
    if metrics is not None:
        m_winners, m_losers = write_path_counters(metrics, "delete")
        m_winners.inc(int(win_rows.size))
        m_losers.inc(int(found.sum()) - int(win_rows.size))
        metrics.counter(
            "free_list_pushes_total",
            "leaf slots recycled onto the free list by deletes",
        ).inc(pushed)
        metrics.counter(
            "delete_unlinked_total", "leaves unlinked from their parent"
        ).inc(unlinked)
        metrics.counter(
            "delete_cleared_only_total",
            "leaves cleared without a known parent (root-table dispatch)",
        ).inc(cleared_only)
    return DeleteResult(
        deleted=deleted, unlinked=unlinked, cleared_only=cleared_only, log=log
    )
