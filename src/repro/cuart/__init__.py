"""CuART — the paper's contribution.

The populated host :class:`~repro.art.AdaptiveRadixTree` is *mapped* into
a struct-of-arrays device layout with one buffer per node type and one
per fixed leaf size (:class:`CuartLayout`), optionally with the compacted
upper-layer lookup table (:class:`RootTable`).  Batched device kernels
then run against the buffers:

* :func:`lookup_batch` — exact lookups (section 3.2.1),
* :func:`range_query` / :func:`prefix_query` — over the ordered leaf
  buffers (section 3.2.1),
* :class:`UpdateEngine` — two-stage atomic batched updates & deletions
  (sections 3.3 / 3.4).
"""

from repro.cuart.layout import CuartLayout, LongKeyStrategy
from repro.cuart.root_table import RootTable
from repro.cuart.lookup import lookup_batch, LookupResult
from repro.cuart.range_query import range_query, prefix_query, RangeResult
from repro.cuart.hashtable import (
    AtomicMaxHashTable,
    BucketedAtomicMaxHashTable,
    make_conflict_table,
)
from repro.cuart.update import UpdateEngine, UpdateResult
from repro.cuart.delete import delete_batch
from repro.cuart.insert import InsertEngine, InsertResult
from repro.cuart.lookup import MissReason
from repro.cuart.partition import PartitionedIndex
from repro.cuart.serialize import save_layout, load_layout
from repro.cuart.approx import approx_lookup, ApproxResult

__all__ = [
    "CuartLayout",
    "LongKeyStrategy",
    "RootTable",
    "lookup_batch",
    "LookupResult",
    "range_query",
    "prefix_query",
    "RangeResult",
    "AtomicMaxHashTable",
    "BucketedAtomicMaxHashTable",
    "make_conflict_table",
    "UpdateEngine",
    "UpdateResult",
    "delete_batch",
    "InsertEngine",
    "InsertResult",
    "MissReason",
    "PartitionedIndex",
    "save_layout",
    "load_layout",
    "approx_lookup",
    "ApproxResult",
]
