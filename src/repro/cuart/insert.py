"""Device-side structural inserts — the paper's §5.1 future work.

"Possible future improvements include a full device-based management of
the whole ART, implementing structural modifying insertions and
deletions.  To achieve this, a more sophisticated buffer management
needs to be implemented, as the need to allocate new nodes or free old
nodes arises."

This engine implements the tractable core of that program on top of the
spare-capacity buffer management in :class:`CuartLayout`:

* **value updates** for keys already present (winner-resolved exactly
  like the §3.4 update engine);
* **new-leaf inserts** where the traversal ends at an inner node with no
  child for the branch byte (``MissReason.NO_CHILD``): a leaf slot is
  claimed from the free list / spare cursor and linked in — growing the
  node to the next type (with root-table link patching) when it is full;
* **leaf splits** (``LEAF_MISMATCH``): the stored leaf carries its full
  key, so the divergence point is computable on-device; a fresh ``N4``
  with the common prefix takes the old leaf and the new one;
* **prefix splits** (``PREFIX_MISMATCH``) when the node's compressed
  prefix fits the stored window: the node's prefix is shortened in place
  and a fresh ``N4`` is spliced above it (attached root tables are
  repointed, since the new branch node takes over the old path position);
* **root installs** into an empty tree;
* the remainder — divergence hidden beyond the optimistic prefix window,
  exhausted keys (prefix-of-another violations), long keys, capacity
  exhaustion — is **deferred** to the host (reported per query), the same
  CPU/GPU division of labour the paper argues for in §3.1 ("a CPU is
  more suitable to actually perform the update operations" for
  control-flow-heavy restructuring).

Duplicate new keys inside one batch race for the same empty slot; the
highest thread index claims it (the §3.4 priority rule) and the losers
are deferred — a second ``apply`` turns them into plain value updates,
so repeated application converges.

Leaf buffers lose their lexicographic buffer order when inserts append
out of order; the engine invalidates the range-query snapshot, which
transparently switches to a sorted row-indirection view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    CUART_MAX_PREFIX,
    CUART_NODE_BYTES,
    DEFAULT_UPDATE_HASH_SLOTS,
    LEAF_TYPE_CODES,
    LINK_DYNLEAF,
    LINK_LEAF8,
    LINK_LEAF16,
    LINK_LEAF32,
    LINK_N4,
    LINK_N16,
    LINK_N48,
    LINK_N256,
    MAX_SHORT_KEY,
    N48_EMPTY_SLOT,
    NIL_VALUE,
    NODE_CAPACITY,
)
from repro.cuart.hashtable import make_conflict_table
from repro.cuart.layout import CuartLayout
from repro.cuart.lookup import MissReason, lookup_batch
from repro.cuart.update import hashtable_stat_recorder, write_path_counters
from repro.errors import SimulationError
from repro.gpusim.streams import launch_kernel
from repro.gpusim.transactions import TransactionLog
from repro.obs.metrics import MetricsRegistry
from repro.util.packing import (
    link_index,
    link_indices,
    link_type,
    link_types,
    pack_link,
    pack_links,
)

from repro.art.stats import leaf_type_for_key

#: growth chain for full nodes.
_GROW_NEXT = {LINK_N4: LINK_N16, LINK_N16: LINK_N48, LINK_N48: LINK_N256}


@dataclass
class InsertResult:
    """Outcome of one batched insert."""

    #: (B,) bool — a new leaf was created and linked for this thread.
    inserted: np.ndarray
    #: (B,) bool — the key existed; its value was replaced (winner only).
    updated: np.ndarray
    #: (B,) bool — needs host-side restructuring / re-map.
    deferred: np.ndarray
    #: nodes grown to the next type while linking new leaves.
    grown_nodes: int
    log: TransactionLog

    @property
    def n_inserted(self) -> int:
        return int(self.inserted.sum())

    @property
    def n_updated(self) -> int:
        return int(self.updated.sum())

    @property
    def n_deferred(self) -> int:
        return int(self.deferred.sum())


class InsertEngine:
    """Batched device-side inserts bound to one mapped layout.

    The layout should be built with ``spare > 0`` or have free-list
    capacity from prior deletions; otherwise every new key defers.
    """

    def __init__(
        self,
        layout: CuartLayout,
        *,
        root_table=None,
        hash_slots: int = DEFAULT_UPDATE_HASH_SLOTS,
        hash_table: str = "bucketed",
        metrics: MetricsRegistry | None = None,
        injector=None,
    ) -> None:
        self.layout = layout
        self.root_table = root_table
        self.hash_slots = hash_slots
        self.hash_table = hash_table
        self.injector = injector
        # one reusable conflict table; each claim domain below resets it
        # rather than paying a fresh multi-MiB allocation per domain
        self._table = None
        m = self.metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self._m_winners, self._m_losers = write_path_counters(m, "insert")
        self._m_leaf_allocs = m.counter(
            "leaf_allocs_total", "device leaf slots claimed by inserts"
        )
        self._m_fl_pops = m.counter(
            "free_list_pops_total", "free-list slots reused by inserts"
        )
        self._m_splits = m.counter(
            "node_splits_total", "structural splits performed on device",
            labels=("kind",),
        )
        self._m_growths = m.counter(
            "node_growths_total", "nodes grown to the next type"
        )
        self._m_deferred = m.counter(
            "insert_deferred_total", "inserts deferred to host restructuring"
        )
        self._record_table = hashtable_stat_recorder(m)

    def _conflict_table(self, log: TransactionLog):
        table = self._table
        if table is None:
            table = self._table = make_conflict_table(
                self.hash_slots, variant=self.hash_table
            )
        else:
            table.reset()
        table.log = log
        return table

    # ------------------------------------------------------------------
    def apply(
        self,
        keys_mat: np.ndarray,
        key_lens: np.ndarray,
        values: np.ndarray,
        *,
        log: TransactionLog | None = None,
    ) -> InsertResult:
        layout = self.layout
        layout.check_fresh()
        B = keys_mat.shape[0]
        # fault hooks fire before stage 1: nothing has been claimed or
        # written, so an aborted insert batch can be replayed verbatim
        launch_kernel("insert", B, injector=self.injector)
        if self.injector is not None:
            self.injector.on_hashtable("insert", B)
        if log is None:
            log = TransactionLog()
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != (B,):
            raise SimulationError("values must be one per query")
        if np.any(values == np.uint64(NIL_VALUE)):
            raise SimulationError("NIL_VALUE cannot be inserted")

        inserted = np.zeros(B, dtype=bool)
        updated = np.zeros(B, dtype=bool)
        deferred = np.zeros(B, dtype=bool)
        thread_ids = np.arange(B, dtype=np.int64)
        #: intra-batch relocation map: a growth relocates a node, so
        #: later winners holding its old link must chase the move (the
        #: "sophisticated buffer management" bookkeeping of §5.1)
        self._moves: dict[int, int] = {}
        #: rows freed by growth are reclaimed only *after* the batch —
        #: reusing a row mid-batch would let one logical node's stale
        #: link chase into another's (epoch-based reclamation)
        self._freed_this_batch: list[tuple[int, int]] = []

        # ---- stage 1: classify every key ------------------------------
        res = lookup_batch(
            layout, keys_mat, key_lens, root_table=self.root_table, log=log
        )
        reasons = res.reasons
        fl_before = sum(len(v) for v in layout.free_leaves.values())
        dedup_w = dedup_l = leaf_splits = prefix_splits = 0

        # ---- existing keys: winner-resolved value update ---------------
        hit = reasons == MissReason.HIT
        if hit.any():
            table = self._conflict_table(log)
            winners = np.zeros(B, dtype=bool)
            winners[hit] = table.resolve_winners(
                res.locations[hit], thread_ids[hit]
            )
            self._record_table(table)
            win_rows = np.nonzero(winners)[0]
            dedup_w += win_rows.size
            dedup_l += int(hit.sum()) - win_rows.size
            # whole-array value scatter per leaf type (winners are
            # distinct leaves, so targets never collide)
            wlocs = res.locations[win_rows]
            wcodes = link_types(wlocs)
            widx = link_indices(wlocs)
            for code in LEAF_TYPE_CODES:
                sel = wcodes == code
                if sel.any():
                    layout.leaves[code].values[widx[sel]] = values[win_rows[sel]]
            sel = wcodes == LINK_DYNLEAF
            if sel.any():  # dynamic leaves: patch the heap value field
                offs = widx[sel].astype(np.int64)
                vals = values[win_rows[sel]].astype("<u8")
                layout.dyn.heap[
                    offs[:, None] + np.arange(2, 10, dtype=np.int64)[None, :]
                ] = vals.view(np.uint8).reshape(-1, 8)
            log.record(16, win_rows.size)
            updated[hit] = winners[hit]
            layout.device_mutations += win_rows.size

        # ---- brand-new keys at claimable empty slots --------------------
        insertable = reasons == MissReason.NO_CHILD
        # keys longer than the fixed leaves always defer (§3.2.3 applies)
        too_long = key_lens > (layout.single_leaf_size or MAX_SHORT_KEY)
        deferred |= insertable & too_long
        insertable &= ~too_long
        grown = 0
        if insertable.any():
            claim_rows = np.nonzero(insertable)[0]
            claims = _claim_keys(res.stop_links[claim_rows],
                                 res.stop_bytes[claim_rows])
            table = self._conflict_table(log)
            win = table.resolve_winners(claims, thread_ids[claim_rows])
            self._record_table(table)
            dedup_w += int(win.sum())
            dedup_l += int((~win).sum())
            # losers raced a sibling insert to the same slot: retry later
            deferred[claim_rows[~win]] = True
            # vectorized scatter claims the easy wins in whole-array
            # passes; only growth / cleared-slot reuse / capacity misses
            # come back for the per-key structural path
            fallback, fb_slots = self._claim_scatter(
                layout, res, claim_rows[win], keys_mat, key_lens, values,
                inserted, log,
            )
            for row, slot in zip(fallback, fb_slots):
                ok, did_grow = self._link_new_leaf(
                    layout, res, int(row), keys_mat, key_lens, values, log,
                    leaf_slot=int(slot),
                )
                inserted[row] = ok
                deferred[row] = not ok
                grown += int(did_grow)

        # ---- leaf splits: divergence at a stored leaf -------------------
        split_rows = np.nonzero(
            (reasons == MissReason.LEAF_MISMATCH) & ~too_long
        )[0]
        if split_rows.size:
            # dedup by the leaf being split; leaf-link claims (types 5-7
            # in the top byte) are disjoint from NO_CHILD node claims
            table = self._conflict_table(log)
            win = table.resolve_winners(
                res.stop_links[split_rows], thread_ids[split_rows]
            )
            self._record_table(table)
            dedup_w += int(win.sum())
            dedup_l += int((~win).sum())
            deferred[split_rows[~win]] = True
            wrows = split_rows[win]
            # divergence points for the whole winner set in one byte
            # compare per leaf type; the splice itself stays per-key
            cpls = self._leaf_split_cpls(
                layout, res, wrows, keys_mat, key_lens
            )
            for row, cpl in zip(wrows, cpls):
                ok = self._split_leaf(
                    layout, res, int(row), keys_mat, key_lens, values, log,
                    cpl=int(cpl),
                )
                inserted[row] = ok
                deferred[row] = not ok
                leaf_splits += int(ok)

        # ---- prefix splits: divergence inside a stored window -----------
        pf_rows = np.nonzero(
            (reasons == MissReason.PREFIX_MISMATCH) & ~too_long
        )[0]
        if pf_rows.size:
            table = self._conflict_table(log)
            win = table.resolve_winners(
                res.stop_links[pf_rows], thread_ids[pf_rows]
            )
            self._record_table(table)
            dedup_w += int(win.sum())
            dedup_l += int((~win).sum())
            deferred[pf_rows[~win]] = True
            wrows = pf_rows[win]
            cpls = self._prefix_split_cpls(
                layout, res, wrows, keys_mat, key_lens
            )
            for row, cpl in zip(wrows, cpls):
                ok = self._split_prefix(
                    layout, res, int(row), keys_mat, key_lens, values, log,
                    cpl=(int(cpl) if cpl >= 0 else None),
                )
                inserted[row] = ok
                deferred[row] = not ok
                prefix_splits += int(ok)

        # ---- empty tree: install the root leaf --------------------------
        empty_rows = np.nonzero((reasons == MissReason.EMPTY) & ~too_long)[0]
        if empty_rows.size and layout.root_link == 0:
            row = int(empty_rows[-1])  # highest thread id wins
            leaf_link = self._write_leaf(layout, row, keys_mat, key_lens,
                                         values, log)
            if leaf_link is not None:
                layout.root_link = leaf_link
                inserted[row] = True
            else:
                deferred[row] = True
            deferred[empty_rows[:-1]] = True
        elif empty_rows.size:
            deferred[empty_rows] = True

        # ---- the remainder needs host restructuring ---------------------
        deferred |= np.isin(
            reasons, (MissReason.KEY_EXHAUSTED, MissReason.HOST_PENDING)
        ) & ~(inserted | updated)
        deferred |= too_long & (reasons != MissReason.HIT)
        # dedup losers among HIT rows are neither inserted nor deferred:
        # the winning thread already owns the key's final value

        # epoch boundary: now row reuse cannot alias in-flight links
        for code, idx in self._freed_this_batch:
            layout.free_nodes[code].append(idx)
        self._freed_this_batch = []

        if inserted.any():
            layout.invalidate_range_cache()
            layout.device_inserts += int(inserted.sum())
        self._m_winners.inc(dedup_w)
        self._m_losers.inc(dedup_l)
        self._m_leaf_allocs.inc(int(inserted.sum()))
        fl_after = sum(len(v) for v in layout.free_leaves.values())
        self._m_fl_pops.inc(max(fl_before - fl_after, 0))
        if leaf_splits:
            self._m_splits.labels(kind="leaf").inc(leaf_splits)
        if prefix_splits:
            self._m_splits.labels(kind="prefix").inc(prefix_splits)
        self._m_growths.inc(grown)
        self._m_deferred.inc(int(deferred.sum()))
        return InsertResult(
            inserted=inserted,
            updated=updated,
            deferred=deferred,
            grown_nodes=grown,
            log=log,
        )

    # ------------------------------------------------------------------
    def _claim_scatter(
        self, layout, res, win_rows, keys_mat, key_lens, values,
        inserted, log,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Whole-array fast path for ``NO_CHILD`` claim winners.

        Winners appending into a node with room are linked with one bulk
        leaf allocation per leaf type, whole-array leaf stores and one
        link scatter per node type.  Rows needing genuinely structural
        work — node growth, delete-cleared slot reuse, capacity misses —
        are returned together with their pre-claimed leaf slots (slots
        are claimed for *all* winners in ascending row order per leaf
        type, so the slot assignment is identical to per-key
        processing).
        """
        n = win_rows.size
        empty = np.zeros(0, dtype=np.int64)
        if n == 0:
            return empty, empty
        # nothing has grown yet in this batch: stop links are current
        node_links = res.stop_links[win_rows].astype(np.uint64)
        ncodes = link_types(node_links)
        nidx = link_indices(node_links)
        nbytes = res.stop_bytes[win_rows].astype(np.int64)

        # -- rank-independent append test per node type -----------------
        # (a delete-cleared slot for this byte means _add_child would
        # reuse it instead of appending: scalar path)
        append_ok = ncodes == LINK_N256
        for code in (LINK_N4, LINK_N16):
            sel = ncodes == code
            if sel.any():
                buf = layout.nodes[code]
                rows = nidx[sel]
                cnt = buf.counts[rows].astype(np.int64)
                cap = buf.keys.shape[1]
                live = (
                    np.arange(cap, dtype=np.int64)[None, :] < cnt[:, None]
                )
                reuse = (
                    (buf.keys[rows] == nbytes[sel][:, None])
                    & (buf.children[rows] == np.uint64(0))
                    & live
                ).any(axis=1)
                append_ok[sel] = ~reuse
        sel48 = ncodes == LINK_N48
        if sel48.any():
            buf = layout.nodes[LINK_N48]
            append_ok[sel48] = (
                buf.child_index[nidx[sel48], nbytes[sel48]] == N48_EMPTY_SLOT
            )

        # -- per-node rank among append candidates: ascending row order
        #    mirrors the slot order sequential processing would produce
        rank = np.zeros(n, dtype=np.int64)
        sub = np.nonzero(append_ok & (ncodes != LINK_N256))[0]
        if sub.size:
            inv = np.unique(node_links[sub], return_inverse=True)[1]
            order = np.argsort(inv, kind="stable")
            grp = np.bincount(inv)
            starts = np.concatenate(([0], np.cumsum(grp)[:-1]))
            rank[sub[order]] = (
                np.arange(sub.size, dtype=np.int64) - starts[inv[order]]
            )

        # -- capacity check (+ N48 free-slot choice) --------------------
        eligible = append_ok.copy()
        for code in (LINK_N4, LINK_N16):
            sel = eligible & (ncodes == code)
            if sel.any():
                buf = layout.nodes[code]
                cnt = buf.counts[nidx[sel]].astype(np.int64)
                eligible[sel] = cnt + rank[sel] < NODE_CAPACITY[code]
        n48_slot = np.full(n, -1, dtype=np.int64)
        sel = eligible & sel48
        if sel.any():
            buf = layout.nodes[LINK_N48]
            rows = nidx[sel]
            cnt = buf.counts[rows].astype(np.int64)
            ok = cnt + rank[sel] < 48
            # the rank-th appender takes the (rank+1)-th free slot of the
            # pre-scatter snapshot — exactly the slot sequential
            # first-free searches would hand out
            free = buf.children[rows] == np.uint64(0)
            csum = np.cumsum(free, axis=1)
            pick = free & (csum == (rank[sel] + 1)[:, None])
            ok &= pick.any(axis=1)
            slot = pick.argmax(axis=1)
            eligible[sel] = ok
            idxs = np.nonzero(sel)[0]
            n48_slot[idxs[ok]] = slot[ok]

        # -- leaf slots for ALL winners, per type in ascending row order
        if layout.single_leaf_size is None:
            klens = key_lens[win_rows].astype(np.int64)
            lcode = np.where(
                klens <= 8, LINK_LEAF8,
                np.where(klens <= 16, LINK_LEAF16, LINK_LEAF32),
            )
        else:
            lcode = np.full(
                n, leaf_type_for_key(layout.single_leaf_size),
                dtype=np.int64,
            )
        slots = np.full(n, -1, dtype=np.int64)
        for code in LEAF_TYPE_CODES:
            csel = np.nonzero(lcode == code)[0]
            if csel.size:
                got = layout.alloc_leaves(code, int(csel.size))
                slots[csel[: got.size]] = got

        good = eligible & (slots >= 0)

        # -- whole-array leaf stores ------------------------------------
        W = keys_mat.shape[1]
        for code in LEAF_TYPE_CODES:
            sel = good & (lcode == code)
            m = int(sel.sum())
            if not m:
                continue
            lbuf = layout.leaves[code]
            sl = slots[sel]
            rw = win_rows[sel]
            w = min(W, lbuf.keys.shape[1])
            lbuf.keys[sl] = 0
            lbuf.keys[sl, :w] = keys_mat[rw, :w]
            lbuf.key_lens[sl] = key_lens[rw]
            lbuf.values[sl] = values[rw]
            log.record(CUART_NODE_BYTES[code], m)

        leaf_links = np.zeros(n, dtype=np.uint64)
        g = np.nonzero(good)[0]
        if g.size:
            leaf_links[g] = pack_links(lcode[g].astype(np.uint8), slots[g])

        # -- link scatters per node type --------------------------------
        # claims are unique per (node, byte), so targets never collide
        for code in (LINK_N4, LINK_N16):
            sel = good & (ncodes == code)
            m = int(sel.sum())
            if not m:
                continue
            buf = layout.nodes[code]
            rows = nidx[sel]
            at = buf.counts[rows].astype(np.int64) + rank[sel]
            buf.keys[rows, at] = nbytes[sel].astype(np.uint8)
            buf.children[rows, at] = leaf_links[sel]
            np.add.at(buf.counts, rows, 1)
            log.record(16, m)
        sel = good & sel48
        m = int(sel.sum())
        if m:
            buf = layout.nodes[LINK_N48]
            rows = nidx[sel]
            buf.child_index[rows, nbytes[sel]] = n48_slot[sel].astype(np.uint8)
            buf.children[rows, n48_slot[sel]] = leaf_links[sel]
            np.add.at(buf.counts, rows, 1)
            log.record(16, 2 * m)  # index byte + link
        sel = good & (ncodes == LINK_N256)
        m = int(sel.sum())
        if m:
            buf = layout.nodes[LINK_N256]
            rows = nidx[sel]
            buf.children[rows, nbytes[sel]] = leaf_links[sel]
            np.add.at(buf.counts, rows, 1)
            buf.counts[rows] = np.minimum(buf.counts[rows], 256)
            log.record(16, m)

        inserted[win_rows[good]] = True
        fb = np.nonzero(~good)[0]
        return win_rows[fb], slots[fb]

    def _leaf_split_cpls(self, layout, res, rows, keys_mat, key_lens):
        """Common-prefix lengths for a batch of leaf splits: one
        whole-array byte compare per leaf type instead of a scalar loop
        per winner.  Non-fixed leaves (dynamic/host) keep ``-1`` — the
        per-key path rejects them before using the value."""
        cpls = np.full(rows.size, -1, dtype=np.int64)
        if rows.size == 0:
            return cpls
        links = res.stop_links[rows].astype(np.uint64)
        codes = link_types(links)
        idxs = link_indices(links)
        W = keys_mat.shape[1]
        for code in LEAF_TYPE_CODES:
            sel = codes == code
            if not sel.any():
                continue
            lbuf = layout.leaves[code]
            li = idxs[sel]
            w = min(W, lbuf.keys.shape[1])
            neq = lbuf.keys[li, :w] != keys_mat[rows[sel], :w]
            first = np.where(neq.any(axis=1), neq.argmax(axis=1), w)
            # zero padding makes both sides agree past their lengths, so
            # clamp at the shorter key (the scalar loop's limit)
            lim = np.minimum(
                lbuf.key_lens[li].astype(np.int64),
                key_lens[rows[sel]].astype(np.int64),
            )
            cpls[sel] = np.minimum(first, lim)
        return cpls

    def _prefix_split_cpls(self, layout, res, rows, keys_mat, key_lens):
        """In-window divergence points for a batch of prefix splits,
        one gather + compare per node type.  Growth relocations keep the
        retired record's prefix bytes intact, so the pre-move links the
        lookup returned still address valid prefix data.  ``-1`` marks
        rows the vectorized pass cannot judge (prefix beyond the stored
        window): the per-key path re-checks those."""
        cpls = np.full(rows.size, -1, dtype=np.int64)
        if rows.size == 0:
            return cpls
        links = res.stop_links[rows].astype(np.uint64)
        codes = link_types(links)
        idxs = link_indices(links)
        P = layout.prefix_window
        W = keys_mat.shape[1]
        d = res.stop_depths[rows].astype(np.int64)
        klens = key_lens[rows].astype(np.int64)
        for code in (LINK_N4, LINK_N16, LINK_N48, LINK_N256):
            sel = codes == code
            if not sel.any():
                continue
            buf = layout.nodes[code]
            ni = idxs[sel]
            plen = buf.prefix_len[ni].astype(np.int64)
            inwin = plen <= P
            if not inwin.any():
                continue
            srows = np.nonzero(sel)[0][inwin]
            ni = ni[inwin]
            plen = plen[inwin]
            lim = np.minimum(plen, np.maximum(klens[srows] - d[srows], 0))
            cols = d[srows, None] + np.arange(P, dtype=np.int64)[None, :]
            keyb = keys_mat[rows[srows][:, None], np.minimum(cols, W - 1)]
            valid = np.arange(P, dtype=np.int64)[None, :] < lim[:, None]
            neq = (buf.prefix[ni][:, :P] != keyb) & valid
            first = np.where(neq.any(axis=1), neq.argmax(axis=1), P)
            cpls[srows] = np.minimum(first, lim)
        return cpls

    def _link_new_leaf(
        self, layout, res, row, keys_mat, key_lens, values, log,
        leaf_slot=None,
    ) -> tuple[bool, bool]:
        """Allocate + write the leaf, link it under the stopping node
        (growing the node if full).  Returns (success, grew)."""
        node_link = self._chase(int(res.stop_links[row]))
        parent_link = self._chase(int(res.parent_links[row]))
        parent_byte = int(res.parent_bytes[row])
        byte = int(res.stop_bytes[row])
        if parent_link == 0 and node_link != layout.root_link:
            # the root table dispatched straight to this node, so its
            # parent was never visited; a growth would need to re-link
            # it — re-traverse without the table to recover the chain
            single = lookup_batch(
                layout, keys_mat[row : row + 1], key_lens[row : row + 1],
                log=log,
            )
            if int(single.reasons[0]) != int(MissReason.NO_CHILD):
                # a sibling insert changed the picture: return the
                # pre-claimed slot so later allocations still line up
                self._release_slot(layout, row, key_lens, leaf_slot)
                return False, False
            node_link = self._chase(int(single.stop_links[0]))
            parent_link = self._chase(int(single.parent_links[0]))
            parent_byte = int(single.parent_bytes[0])
            byte = int(single.stop_bytes[0])
        leaf_link = self._write_leaf(layout, row, keys_mat, key_lens,
                                     values, log, slot=leaf_slot)
        if leaf_link is None:
            return False, False  # out of device leaf capacity

        ok, grew = self._add_child(layout, node_link, byte, leaf_link,
                                   parent_link=parent_link,
                                   parent_byte=parent_byte,
                                   log=log)
        if not ok:
            self._rollback_leaf(layout, leaf_link)
            return False, False
        return True, grew

    @staticmethod
    def _write_leaf(layout, row, keys_mat, key_lens, values, log, slot=None):
        """Allocate and fill one leaf; returns its link or None.  A
        pre-claimed ``slot`` (from the claim scatter's bulk allocation)
        skips the allocator; ``slot=-1`` means that bulk allocation
        already found the buffers exhausted."""
        klen = int(key_lens[row])
        leaf_code = (
            leaf_type_for_key(klen)
            if layout.single_leaf_size is None
            else leaf_type_for_key(layout.single_leaf_size)
        )
        if slot is None:
            leaf_idx = layout.alloc_leaf(leaf_code)
        else:
            leaf_idx = slot if slot >= 0 else None
        if leaf_idx is None:
            return None
        lbuf = layout.leaves[leaf_code]
        lbuf.keys[leaf_idx] = 0
        lbuf.keys[leaf_idx, :klen] = keys_mat[row, :klen]
        lbuf.key_lens[leaf_idx] = klen
        lbuf.values[leaf_idx] = values[row]
        log.record(CUART_NODE_BYTES[leaf_code], 1)  # leaf store
        return pack_link(leaf_code, leaf_idx)

    @staticmethod
    def _release_slot(layout, row, key_lens, slot) -> None:
        """Return an unused pre-claimed leaf slot to its free list."""
        if slot is None or slot < 0:
            return
        code = (
            leaf_type_for_key(int(key_lens[row]))
            if layout.single_leaf_size is None
            else leaf_type_for_key(layout.single_leaf_size)
        )
        layout.free_leaves[code].append(int(slot))

    @staticmethod
    def _rollback_leaf(layout, leaf_link) -> None:
        code = link_type(leaf_link)
        idx = link_index(leaf_link)
        lbuf = layout.leaves[code]
        lbuf.values[idx] = np.uint64(NIL_VALUE)
        lbuf.key_lens[idx] = 0
        lbuf.keys[idx] = 0
        layout.free_leaves[code].append(idx)

    def _split_leaf(
        self, layout, res, row, keys_mat, key_lens, values, log, cpl=None
    ) -> bool:
        """Divergence at a stored leaf: splice an N4 above it holding the
        common tail prefix, with the old leaf and the new one as its two
        children (classic ART lazy-expansion split, on-device because the
        leaf stores its complete key)."""
        leaf_link = int(res.stop_links[row])
        code = link_type(leaf_link)
        if code not in LEAF_TYPE_CODES:
            return False  # dynamic/host leaves: host work
        idx = link_index(leaf_link)
        lbuf = layout.leaves[code]
        ex_len = int(lbuf.key_lens[idx])
        ex_key = lbuf.keys[idx, :ex_len].tobytes()
        log.record(CUART_NODE_BYTES[code], 1)  # re-read for the split
        klen = int(key_lens[row])
        new_key = keys_mat[row, :klen].tobytes()

        if cpl is None or cpl < 0:  # no batched precompute: scalar scan
            cpl = 0
            limit = min(ex_len, klen)
            while cpl < limit and ex_key[cpl] == new_key[cpl]:
                cpl += 1
        if cpl == ex_len or cpl == klen:
            return False  # one key is a prefix of the other: reject
        d = int(res.stop_depths[row])
        if cpl < d:
            # the real divergence sits above this leaf, inside bytes an
            # ancestor's optimistic window skipped: host restructuring
            return False

        new_leaf = self._write_leaf(layout, row, keys_mat, key_lens,
                                    values, log)
        if new_leaf is None:
            return False
        branch = self._alloc_branch(layout, new_key[d:cpl], log)
        if branch is None:
            self._rollback_leaf(layout, new_leaf)
            return False
        branch_link, n4 = branch
        buf = layout.nodes[LINK_N4]
        buf.keys[n4, 0] = ex_key[cpl]
        buf.children[n4, 0] = np.uint64(leaf_link)
        buf.keys[n4, 1] = new_key[cpl]
        buf.children[n4, 1] = np.uint64(new_leaf)
        if ex_key[cpl] > new_key[cpl]:  # keep the key array sorted
            buf.keys[n4, 0], buf.keys[n4, 1] = new_key[cpl], ex_key[cpl]
            buf.children[n4, 0] = np.uint64(new_leaf)
            buf.children[n4, 1] = np.uint64(leaf_link)
        buf.counts[n4] = 2
        return self._install_over(layout, res, row, keys_mat, key_lens,
                                  leaf_link, branch_link, new_leaf, log)

    def _split_prefix(
        self, layout, res, row, keys_mat, key_lens, values, log, cpl=None
    ) -> bool:
        """Divergence inside a node's compressed prefix: shorten the
        node's prefix in place and splice an N4 above it (only when the
        full prefix fits the stored window — otherwise the tail bytes
        are not available on-device and the host must restructure)."""
        node_link = self._chase(int(res.stop_links[row]))
        code = link_type(node_link)
        if code not in (LINK_N4, LINK_N16, LINK_N48, LINK_N256):
            return False
        idx = link_index(node_link)
        buf = layout.nodes[code]
        plen = int(buf.prefix_len[idx])
        if plen > layout.prefix_window:
            return False  # tail bytes beyond the stored window: host work
        prefix = buf.prefix[idx, :plen].tobytes()
        d = int(res.stop_depths[row])
        klen = int(key_lens[row])
        if cpl is None:  # no batched precompute: scalar scan
            key_rest = keys_mat[row, d : min(d + plen, klen)].tobytes()
            cpl = 0
            limit = min(len(prefix), len(key_rest))
            while cpl < limit and prefix[cpl] == key_rest[cpl]:
                cpl += 1
        if cpl >= plen or d + cpl >= klen:
            return False  # no in-window divergence / key exhausted

        new_leaf = self._write_leaf(layout, row, keys_mat, key_lens,
                                    values, log)
        if new_leaf is None:
            return False
        branch = self._alloc_branch(layout, prefix[:cpl], log)
        if branch is None:
            self._rollback_leaf(layout, new_leaf)
            return False
        branch_link, n4 = branch
        # shorten the split node's prefix in place: drop cpl matched
        # bytes plus the branch byte
        rest = prefix[cpl + 1 :]
        buf.prefix[idx] = 0
        if rest:
            buf.prefix[idx, : len(rest)] = np.frombuffer(rest, dtype=np.uint8)
        buf.prefix_len[idx] = plen - cpl - 1
        log.record(32, 1)  # header rewrite

        b4 = layout.nodes[LINK_N4]
        old_byte = prefix[cpl]
        new_byte = int(keys_mat[row, d + cpl])
        lo, hi = sorted(((old_byte, node_link), (new_byte, new_leaf)))
        b4.keys[n4, 0], b4.children[n4, 0] = lo[0], np.uint64(lo[1])
        b4.keys[n4, 1], b4.children[n4, 1] = hi[0], np.uint64(hi[1])
        b4.counts[n4] = 2
        return self._install_over(layout, res, row, keys_mat, key_lens,
                                  node_link, branch_link, new_leaf, log)

    def _alloc_branch(self, layout, branch_prefix: bytes, log):
        """Allocate an empty N4 carrying ``branch_prefix``."""
        n4 = layout.alloc_node(LINK_N4)
        if n4 is None:
            return None
        buf = layout.nodes[LINK_N4]
        buf.prefix[n4] = 0
        stored = branch_prefix[: layout.prefix_window]
        if stored:
            buf.prefix[n4, : len(stored)] = np.frombuffer(stored, dtype=np.uint8)
        buf.prefix_len[n4] = len(branch_prefix)
        buf.keys[n4] = 0
        buf.children[n4] = 0
        buf.counts[n4] = 0
        log.record(CUART_NODE_BYTES[LINK_N4], 1)  # branch store
        return pack_link(LINK_N4, n4), n4

    def _install_over(
        self, layout, res, row, keys_mat, key_lens, displaced_link,
        branch_link, new_leaf, log,
    ) -> bool:
        """Point the displaced node's parent (or the root) at the branch
        node that now occupies its path position, and patch attached
        root tables the same way."""
        parent_link = self._chase(int(res.parent_links[row]))
        parent_byte = int(res.parent_bytes[row])
        if parent_link == 0 and displaced_link != layout.root_link:
            # dispatched via the root table: recover the parent chain
            single = lookup_batch(
                layout, keys_mat[row : row + 1], key_lens[row : row + 1],
                log=log,
            )
            stop = self._chase(int(single.stop_links[0]))
            if stop != displaced_link and stop != branch_link:
                # the path changed under us: give the work back
                self._rollback_leaf(layout, new_leaf)
                self._rollback_branch(layout, branch_link)
                return False
            parent_link = self._chase(int(single.parent_links[0]))
            parent_byte = int(single.parent_bytes[0])
        if parent_link == 0:
            layout.root_link = branch_link
        else:
            self._repoint_parent(layout, parent_link, parent_byte,
                                 branch_link)
            log.record(16, 1)
        # table entries that pointed at the displaced node now belong to
        # the branch occupying its old path position
        layout.relocated(displaced_link, branch_link)
        return True

    def _rollback_branch(self, layout, branch_link) -> None:
        layout.free_nodes[LINK_N4].append(link_index(branch_link))

    def _add_child(
        self, layout, node_link, byte, child_link, *, parent_link,
        parent_byte, log,
    ) -> tuple[bool, bool]:
        """Set ``node.children[byte] = child_link``; grow if full."""
        code = link_type(node_link)
        idx = link_index(node_link)
        buf = layout.nodes[code]
        count = int(buf.counts[idx])
        if code in (LINK_N4, LINK_N16):
            cap = NODE_CAPACITY[code]
            # reuse a delete-cleared slot for this byte if present
            existing = np.nonzero(
                (buf.keys[idx, :count] == byte)
                & (buf.children[idx, :count] == np.uint64(0))
            )[0]
            if existing.size:
                buf.children[idx, existing[0]] = np.uint64(child_link)
                log.record(16, 1)
                return True, False
            if count < cap:
                buf.keys[idx, count] = byte
                buf.children[idx, count] = np.uint64(child_link)
                buf.counts[idx] = count + 1
                log.record(16, 1)
                return True, False
            return self._grow_and_add(
                layout, code, idx, byte, child_link, parent_link,
                parent_byte, log,
            )
        if code == LINK_N48:
            slot = int(buf.child_index[idx, byte])
            if slot != N48_EMPTY_SLOT:
                buf.children[idx, slot] = np.uint64(child_link)
                log.record(16, 1)
                return True, False
            if count < 48:
                free = np.nonzero(buf.children[idx] == np.uint64(0))[0]
                slot = int(free[0])
                buf.child_index[idx, byte] = slot
                buf.children[idx, slot] = np.uint64(child_link)
                buf.counts[idx] = count + 1
                log.record(16, 2)  # index byte + link
                return True, False
            return self._grow_and_add(
                layout, code, idx, byte, child_link, parent_link,
                parent_byte, log,
            )
        # N256 always has room
        was_empty = buf.children[idx, byte] == np.uint64(0)
        buf.children[idx, byte] = np.uint64(child_link)
        if was_empty:
            buf.counts[idx] = min(count + 1, 256)
        log.record(16, 1)
        return True, False

    def _grow_and_add(
        self, layout, code, idx, byte, child_link, parent_link,
        parent_byte, log,
    ) -> tuple[bool, bool]:
        """Copy the full node into the next larger type, add the child,
        re-link the parent and patch attached root tables."""
        new_code = _GROW_NEXT[code]
        new_idx = layout.alloc_node(new_code)
        if new_idx is None:
            return False, False  # no spare capacity for the bigger type
        src = layout.nodes[code]
        dst = layout.nodes[new_code]
        dst.prefix[new_idx] = src.prefix[idx]
        dst.prefix_len[new_idx] = src.prefix_len[idx]
        # copy children into the new organization
        if new_code == LINK_N16:
            dst.keys[new_idx] = 0
            dst.children[new_idx] = 0
            n = int(src.counts[idx])
            dst.keys[new_idx, :n] = src.keys[idx, :n]
            dst.children[new_idx, :n] = src.children[idx, :n]
            dst.counts[new_idx] = n
        elif new_code == LINK_N48:
            dst.child_index[new_idx] = N48_EMPTY_SLOT
            dst.children[new_idx] = 0
            slot = 0
            for j in range(int(src.counts[idx])):
                if src.children[idx, j] == 0:
                    continue  # delete-cleared slot: drop it
                dst.child_index[new_idx, int(src.keys[idx, j])] = slot
                dst.children[new_idx, slot] = src.children[idx, j]
                slot += 1
            dst.counts[new_idx] = slot
        else:  # N256
            dst.children[new_idx] = 0
            n = 0
            for b in range(256):
                s = int(src.child_index[idx, b])
                if s != N48_EMPTY_SLOT and src.children[idx, s] != 0:
                    dst.children[new_idx, b] = src.children[idx, s]
                    n += 1
            dst.counts[new_idx] = n
        # copy traffic: read old + write new record
        log.record(CUART_NODE_BYTES[code], 1)
        log.record(CUART_NODE_BYTES[new_code], 1)

        old_link = pack_link(code, idx)
        new_link = pack_link(new_code, new_idx)
        # record the move and retire the old record; the row returns to
        # the free list only at the end of the batch (see apply)
        self._moves[old_link] = new_link
        self._freed_this_batch.append((code, idx))
        src.counts[idx] = 0
        src.children[idx] = 0
        if parent_link:
            self._repoint_parent(layout, parent_link, parent_byte, new_link)
            log.record(16, 1)
        else:
            layout.root_link = new_link
        layout.relocated(old_link, new_link)

        ok, _ = self._add_child(
            layout, new_link, byte, child_link,
            parent_link=parent_link, parent_byte=parent_byte, log=log,
        )
        return ok, True

    def _chase(self, link: int) -> int:
        """Resolve a link through this batch's relocation chain."""
        while link in self._moves:
            link = self._moves[link]
        return link

    @staticmethod
    def _repoint_parent(layout, parent_link, byte, new_link) -> None:
        code = link_type(parent_link)
        idx = link_index(parent_link)
        buf = layout.nodes[code]
        if code in (LINK_N4, LINK_N16):
            slots = np.nonzero(
                buf.keys[idx, : int(buf.counts[idx])] == byte
            )[0]
            buf.children[idx, slots[0]] = np.uint64(new_link)
        elif code == LINK_N48:
            slot = int(buf.child_index[idx, byte])
            buf.children[idx, slot] = np.uint64(new_link)
        else:
            buf.children[idx, byte] = np.uint64(new_link)


def _claim_keys(stop_links: np.ndarray, stop_bytes: np.ndarray) -> np.ndarray:
    """64-bit claim id per (node, branch byte) pair.

    Layout: node type (8 bits) | node index (48 bits) | byte (8 bits).
    Node buffers beyond 2^48 records are beyond any simulated scale.
    """
    links = stop_links.astype(np.uint64)
    types = links >> np.uint64(56)
    idx = links & np.uint64((1 << 56) - 1)
    if idx.size and int(idx.max()) >= 1 << 48:  # pragma: no cover
        raise SimulationError("node index exceeds claim-key space")
    return (
        (types << np.uint64(56))
        | (idx << np.uint64(8))
        | stop_bytes.astype(np.uint64)
    )
