"""Layout persistence: save/load the mapped device buffers as ``.npz``.

The paper's pipeline re-maps the index from the host tree on every
process start (stage 2 of §4.1); for large indexes the mapping pass
dominates startup.  Persisting the flat buffers sidesteps it: the arrays
are already contiguous and typed, so a saved layout loads as a plain
``np.load`` plus bookkeeping — no tree walk.

A loaded layout carries no host tree (there is nothing to re-map from);
it serves lookups, range queries, updates, deletes and device-side
inserts, but structural re-mapping requires re-populating a tree.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.art.tree import AdaptiveRadixTree
from repro.constants import LEAF_TYPE_CODES, NODE_TYPE_CODES
from repro.cuart.layout import CuartLayout, LongKeyStrategy
from repro.errors import ReproError

#: bumped on any incompatible change to the on-disk format.
FORMAT_VERSION = 1


def save_layout(layout: CuartLayout, path: str | Path) -> None:
    """Write the layout's buffers and bookkeeping to ``path`` (.npz)."""
    layout.check_fresh()
    arrays: dict[str, np.ndarray] = {}
    for code in NODE_TYPE_CODES:
        buf = layout.nodes[code]
        arrays[f"n{code}_children"] = buf.children
        arrays[f"n{code}_counts"] = buf.counts
        arrays[f"n{code}_prefix"] = buf.prefix
        arrays[f"n{code}_prefix_len"] = buf.prefix_len
        if buf.keys is not None:
            arrays[f"n{code}_keys"] = buf.keys
        if buf.child_index is not None:
            arrays[f"n{code}_child_index"] = buf.child_index
    for code in LEAF_TYPE_CODES:
        buf = layout.leaves[code]
        arrays[f"l{code}_keys"] = buf.keys
        arrays[f"l{code}_key_lens"] = buf.key_lens
        arrays[f"l{code}_values"] = buf.values
    arrays["dyn_heap"] = layout.dyn.heap
    meta = {
        "format": FORMAT_VERSION,
        "root_link": int(layout.root_link),
        "long_keys": layout.long_keys.value,
        "single_leaf_size": layout.single_leaf_size,
        "prefix_window": layout.prefix_window,
        "max_levels": layout.max_levels,
        "next_node": {str(c): layout._next_node[c] for c in NODE_TYPE_CODES},
        "next_leaf": {str(c): layout._next_leaf[c] for c in LEAF_TYPE_CODES},
        "free_leaves": {str(c): layout.free_leaves[c] for c in LEAF_TYPE_CODES},
        "free_nodes": {str(c): layout.free_nodes[c] for c in NODE_TYPE_CODES},
        "dyn_offsets": layout.dyn.offsets,
        "host_leaves": [
            (k.hex(), v) for k, v in layout.host_leaves
        ],
    }
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez_compressed(Path(path), **arrays)


def load_layout(path: str | Path) -> CuartLayout:
    """Reconstruct a layout saved by :func:`save_layout`.

    The returned layout is bound to an empty placeholder tree; it is
    immediately queryable and device-mutable, but a host re-map needs
    fresh population.
    """
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta_json"]).decode("utf-8"))
        if meta.get("format") != FORMAT_VERSION:
            raise ReproError(
                f"unsupported layout format {meta.get('format')!r}; "
                f"this build reads version {FORMAT_VERSION}"
            )
        from repro.cuart.layout import _record_bytes

        layout = CuartLayout.__new__(CuartLayout)
        layout.long_keys = LongKeyStrategy(meta["long_keys"])
        layout.single_leaf_size = meta["single_leaf_size"]
        layout.prefix_window = int(meta.get("prefix_window", 15))
        layout.node_record_bytes = _record_bytes(layout.prefix_window)
        layout.spare = 0.0
        placeholder = AdaptiveRadixTree()
        layout._source = placeholder
        layout._source_version = placeholder.version
        layout.device_mutations = 0
        layout.device_inserts = 0
        layout.attached_tables = []
        layout.node_links = {}
        layout.max_levels = int(meta["max_levels"])
        layout.root_link = int(meta["root_link"])
        layout._next_node = {c: meta["next_node"][str(c)] for c in NODE_TYPE_CODES}
        layout._next_leaf = {c: meta["next_leaf"][str(c)] for c in LEAF_TYPE_CODES}
        layout.free_leaves = {
            c: list(meta["free_leaves"][str(c)]) for c in LEAF_TYPE_CODES
        }
        layout.free_nodes = {
            c: list(meta["free_nodes"][str(c)]) for c in NODE_TYPE_CODES
        }
        layout.host_leaves = [
            (bytes.fromhex(k), v) for k, v in meta["host_leaves"]
        ]

        from repro.cuart.layout import _DynLeafHeap, _LeafBuffers, _NodeBuffers

        layout.nodes = {}
        for code in NODE_TYPE_CODES:
            layout.nodes[code] = _NodeBuffers(
                keys=data[f"n{code}_keys"].copy()
                if f"n{code}_keys" in data
                else None,
                children=data[f"n{code}_children"].copy(),
                child_index=data[f"n{code}_child_index"].copy()
                if f"n{code}_child_index" in data
                else None,
                counts=data[f"n{code}_counts"].copy(),
                prefix=data[f"n{code}_prefix"].copy(),
                prefix_len=data[f"n{code}_prefix_len"].copy(),
            )
        layout.leaves = {}
        for code in LEAF_TYPE_CODES:
            layout.leaves[code] = _LeafBuffers(
                keys=data[f"l{code}_keys"].copy(),
                key_lens=data[f"l{code}_key_lens"].copy(),
                values=data[f"l{code}_values"].copy(),
            )
        layout.dyn = _DynLeafHeap(
            heap=data["dyn_heap"].copy(), offsets=list(meta["dyn_offsets"])
        )
    return layout


def iter_layout_items(layout: CuartLayout):
    """Yield every live ``(key, value)`` pair stored in a layout's
    buffers — fixed leaves, dynamic leaves and host-memory leaves.

    This is how an engine reconstructs its authoritative host tree from
    a loaded layout (the buffers carry complete keys, so no side channel
    is needed).
    """
    from repro.constants import NIL_VALUE

    for code in LEAF_TYPE_CODES:
        buf = layout.leaves[code]
        live = layout._next_leaf.get(code, buf.keys.shape[0])
        for i in range(live):
            klen = int(buf.key_lens[i])
            v = int(buf.values[i])
            if klen == 0 or v == NIL_VALUE:
                continue  # unallocated spare row or lazily deleted
            yield buf.keys[i, :klen].tobytes(), v
    heap = layout.dyn.heap
    for off in layout.dyn.offsets:
        klen = int(heap[off]) | (int(heap[off + 1]) << 8)
        v = int.from_bytes(bytes(heap[off + 2 : off + 10]), "little")
        if v != NIL_VALUE:
            yield bytes(heap[off + 10 : off + 10 + klen]), v
    yield from layout.host_leaves
