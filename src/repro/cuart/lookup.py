"""Batched exact-lookup kernel over the CuART buffers.

This is the SIMT traversal of figure 3 executed with NumPy: one *round*
of the loop advances every still-active query by one tree level, exactly
like the lockstep warp execution it stands in for.  Each round records
its global-memory transactions — one known-size, aligned read per visited
node (the whole point of the per-type buffer split, section 3.2.1) — into
a :class:`~repro.gpusim.transactions.TransactionLog` for the cost model.

Key-byte comparisons are *word-oriented* in CuART (section 4.4: "the
comparison loops, where GRT adapts to shorter keys byte-oriented compared
to CuART which does it word-oriented"); the compute accounting charges
``ceil(n/8)`` cycles per compared 8-byte word accordingly.

Beyond values, the kernel reports *where and why* each traversal ended
(:class:`MissReason`), which is what the update, delete and insert
engines build on: a ``NO_CHILD`` miss, for example, is exactly an
insertable empty slot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.constants import (
    CUART_MAX_PREFIX,
    CUART_NODE_BYTES,
    LEAF_CAPACITY,
    LEAF_TYPE_CODES,
    LINK_DYNLEAF,
    LINK_EMPTY,
    LINK_HOST,
    LINK_N4,
    LINK_N16,
    LINK_N48,
    LINK_N256,
    N48_EMPTY_SLOT,
    NIL_VALUE,
)
from repro.cuart.layout import CuartLayout
from repro.gpusim.streams import launch_kernel
from repro.gpusim.transactions import TransactionLog
from repro.util.packing import link_indices, link_types

#: per-node traversal compute, section 3.1: "in the case of ART it is at
#: around 20 clock cycles per node".
NODE_COMPUTE_CYCLES = 20


class MissReason(enum.IntEnum):
    """Why (or that) a traversal terminated."""

    HIT = 0
    #: the stopping node has no child for the branch byte — an insert
    #: could claim this slot (device-side insert engine).
    NO_CHILD = 1
    #: the key diverged inside a compressed prefix — an insert would have
    #: to split the path (host work).
    PREFIX_MISMATCH = 2
    #: the key ran out of bytes inside an inner node.
    KEY_EXHAUSTED = 3
    #: reached a leaf storing a different key — an insert would have to
    #: split the leaf (host work).
    LEAF_MISMATCH = 4
    #: the tree is empty / the link chain hit EMPTY.
    EMPTY = 5
    #: resolution deferred to the CPU (host-memory leaf link).
    HOST_PENDING = 6


@dataclass
class _TraversalState:
    """Per-thread registers of the traversal loop."""

    links: np.ndarray  # (B,) u64 current node link
    depth: np.ndarray  # (B,) i64 key bytes consumed
    values: np.ndarray  # (B,) u64 result, NIL until a hit
    host_refs: np.ndarray  # (B,) i64 host-leaf index or -1
    locations: np.ndarray  # (B,) u64 matched leaf link (0 = none)
    parent_links: np.ndarray  # (B,) u64 last visited inner node
    parent_bytes: np.ndarray  # (B,) u8 branch byte taken at the parent
    stop_links: np.ndarray  # (B,) u64 node where traversal terminated
    stop_bytes: np.ndarray  # (B,) u8 branch byte at the stopping node
    stop_depths: np.ndarray  # (B,) i64 key bytes consumed on arrival there
    reasons: np.ndarray  # (B,) u8 MissReason
    active: np.ndarray  # (B,) bool

    @classmethod
    def launch(cls, batch: int, root_link: int) -> "_TraversalState":
        return cls(
            links=np.full(batch, np.uint64(root_link), dtype=np.uint64),
            depth=np.zeros(batch, dtype=np.int64),
            values=np.full(batch, np.uint64(NIL_VALUE), dtype=np.uint64),
            host_refs=np.full(batch, -1, dtype=np.int64),
            locations=np.zeros(batch, dtype=np.uint64),
            parent_links=np.zeros(batch, dtype=np.uint64),
            parent_bytes=np.zeros(batch, dtype=np.uint8),
            stop_links=np.zeros(batch, dtype=np.uint64),
            stop_bytes=np.zeros(batch, dtype=np.uint8),
            stop_depths=np.zeros(batch, dtype=np.int64),
            reasons=np.full(batch, MissReason.EMPTY, dtype=np.uint8),
            active=np.ones(batch, dtype=bool),
        )

    def stop(self, rows: np.ndarray, reason: int, byte=None) -> None:
        """Terminate ``rows`` recording where and why."""
        self.active[rows] = False
        self.reasons[rows] = reason
        self.stop_links[rows] = self.links[rows]
        self.stop_depths[rows] = self.depth[rows]
        if byte is not None:
            self.stop_bytes[rows] = byte


@dataclass
class LookupResult:
    """Outcome of one batched lookup kernel."""

    #: (B,) uint64 — looked-up values; ``NIL_VALUE`` for misses, deleted
    #: keys and host-pending rows.
    values: np.ndarray
    #: (B,) int64 — ``-1`` or an index into ``layout.host_leaves`` that
    #: the CPU must resolve (section 3.2.3, strategy b).
    host_refs: np.ndarray
    #: (B,) uint64 — packed leaf link of the matched leaf (0 when the
    #: query missed); the update engine uses this as the memory location
    #: for conflict resolution (section 3.4, stage 1).
    locations: np.ndarray
    #: (B,) uint64/uint8 — packed link of the last visited inner node
    #: ("keeping the last visited offset in local memory", section 3.3)
    #: and the branch byte that led to the leaf; 0 when unknown (e.g. the
    #: root table dispatched straight to a leaf).
    parent_links: np.ndarray
    parent_bytes: np.ndarray
    #: (B,) uint8 — :class:`MissReason` per query.
    reasons: np.ndarray
    #: (B,) uint64/uint8/int64 — where the traversal terminated, the
    #: branch byte there (the insert engine's claimable slot for
    #: NO_CHILD) and the key depth consumed on arrival (what a leaf or
    #: prefix split needs to compute its divergence point).
    stop_links: np.ndarray
    stop_bytes: np.ndarray
    stop_depths: np.ndarray
    #: memory transactions of this kernel.
    log: TransactionLog

    @property
    def hits(self) -> np.ndarray:
        return self.values != np.uint64(NIL_VALUE)


def lookup_batch(
    layout: CuartLayout,
    keys_mat: np.ndarray,
    key_lens: np.ndarray,
    *,
    root_table=None,
    log: TransactionLog | None = None,
    injector=None,
) -> LookupResult:
    """Run one batch of exact lookups against the mapped layout.

    Parameters
    ----------
    layout:
        the mapped device buffers.
    keys_mat, key_lens:
        dense query batch from :func:`repro.util.keys.keys_to_matrix`.
    root_table:
        optional :class:`repro.cuart.root_table.RootTable` (compacted
        upper layers, section 3.2.2).
    log:
        transaction log to append to (a fresh one is created otherwise).
    injector:
        optional :class:`repro.gpusim.faults.FaultInjector`; a launch
        abort fires here, before any traversal work.
    """
    layout.check_fresh()
    B, W = keys_mat.shape
    launch_kernel("lookup", B, injector=injector)
    if log is None:
        log = TransactionLog()
    log.launched_threads = max(log.launched_threads, B)

    st = _TraversalState.launch(B, layout.root_link)

    if root_table is not None:
        start_links, start_depths, covered = root_table.start_links(
            keys_mat, key_lens, log
        )
        st.links[covered] = start_links[covered]
        st.depth[covered] = start_depths[covered]
        # a table hit on an EMPTY entry is an immediate miss
        dead = covered & (link_types(st.links) == LINK_EMPTY)
        st.active[dead] = False

    max_rounds = W + 2  # every round consumes ≥1 key byte or terminates
    for _ in range(max_rounds):
        rows = np.nonzero(st.active)[0]
        if rows.size == 0:
            break
        log.begin_round(rows.size)
        tcodes = link_types(st.links[rows])
        distinct = 0
        for code in np.unique(tcodes):
            grp = rows[tcodes == code]
            if code == LINK_EMPTY:
                st.stop(grp, MissReason.EMPTY)
            elif code in (LINK_N4, LINK_N16):
                distinct += _step_small_node(
                    layout, int(code), grp, keys_mat, key_lens, st, log
                )
            elif code == LINK_N48:
                distinct += _step_n48(layout, grp, keys_mat, key_lens, st, log)
            elif code == LINK_N256:
                distinct += _step_n256(layout, grp, keys_mat, key_lens, st, log)
            elif code in LEAF_TYPE_CODES:
                distinct += _step_leaf(
                    layout, int(code), grp, keys_mat, key_lens, st, log
                )
            elif code == LINK_HOST:
                # signal in the return value: resolve on the CPU
                st.host_refs[grp] = link_indices(st.links[grp])
                st.stop(grp, MissReason.HOST_PENDING)
            elif code == LINK_DYNLEAF:
                distinct += _step_dyn_leaf(
                    layout, grp, keys_mat, key_lens, st, log
                )
            else:  # pragma: no cover - defensive
                st.stop(grp, MissReason.EMPTY)
        log.rounds[-1].distinct_bytes = distinct
    return LookupResult(
        values=st.values,
        host_refs=st.host_refs,
        locations=st.locations,
        parent_links=st.parent_links,
        parent_bytes=st.parent_bytes,
        reasons=st.reasons,
        stop_links=st.stop_links,
        stop_bytes=st.stop_bytes,
        stop_depths=st.stop_depths,
        log=log,
    )


# ---------------------------------------------------------------------------
# per-node-type round steps
# ---------------------------------------------------------------------------


def _check_prefix(
    buf, idx: np.ndarray, rows: np.ndarray, keys_mat: np.ndarray,
    key_lens: np.ndarray, st: _TraversalState,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Optimistic path-compression check shared by all inner nodes.

    Returns ``(prefix_ok, has_branch_byte, new_depth)``.  Bytes beyond
    the stored window are not compared here — the final leaf comparison
    verifies them (classic optimistic ART, enabled by leaves storing
    complete keys).
    """
    W = keys_mat.shape[1]
    P = buf.prefix.shape[1]  # the layout's stored-prefix window
    plen = buf.prefix_len[idx].astype(np.int64)
    has_byte = st.depth[rows] + plen < key_lens[rows]
    prefix_ok = np.ones(rows.size, dtype=bool)
    stored = np.minimum(plen, P)
    if stored.max(initial=0) > 0:
        pos = st.depth[rows, None] + np.arange(P, dtype=np.int64)[None, :]
        gathered = keys_mat[rows[:, None], np.minimum(pos, W - 1)]
        valid = np.arange(P, dtype=np.int64)[None, :] < stored[:, None]
        # positions past the key's end compare against padding: only
        # in-key positions participate (shorter keys fail has_byte anyway)
        in_key = pos < key_lens[rows, None]
        mismatch = ((gathered != buf.prefix[idx]) & valid & in_key).any(axis=1)
        prefix_ok = ~mismatch
    return prefix_ok, has_byte, st.depth[rows] + plen


def _settle(
    rows: np.ndarray, prefix_ok: np.ndarray, has_byte: np.ndarray,
    found: np.ndarray, child: np.ndarray, new_depth: np.ndarray,
    byte: np.ndarray, st: _TraversalState,
) -> None:
    """Commit one round's outcome: survivors descend (remembering where
    they came from), the rest stop with their precise miss reason."""
    st.stop(rows[~prefix_ok], MissReason.PREFIX_MISMATCH)
    exhausted = prefix_ok & ~has_byte
    st.stop(rows[exhausted], MissReason.KEY_EXHAUSTED)
    viable = prefix_ok & has_byte
    no_child = viable & ~found
    st.stop(rows[no_child], MissReason.NO_CHILD, byte=byte[no_child])
    ok = viable & found
    go = rows[ok]
    st.parent_links[go] = st.links[go]
    st.parent_bytes[go] = byte[ok]
    st.links[go] = child[ok]
    st.depth[go] = new_depth[ok] + 1


def _distinct_rows(idx: np.ndarray, n_rows: int) -> int:
    """Number of distinct buffer rows in ``idx`` via a bitmask scatter —
    O(rows) instead of the sort an ``np.unique`` would pay per step."""
    seen = np.zeros(n_rows, dtype=bool)
    seen[idx] = True
    return int(np.count_nonzero(seen))


def _step_small_node(
    layout, code, rows, keys_mat, key_lens, st: _TraversalState, log
) -> int:
    buf = layout.nodes[code]
    idx = link_indices(st.links[rows])
    log.record(layout.node_record_bytes[code], rows.size)
    log.record_compute(NODE_COMPUTE_CYCLES * rows.size)
    prefix_ok, has_byte, ndepth = _check_prefix(
        buf, idx, rows, keys_mat, key_lens, st
    )
    W = keys_mat.shape[1]
    byte = keys_mat[rows, np.minimum(ndepth, W - 1)]
    node_keys = buf.keys[idx]  # (m, cap)
    cap = node_keys.shape[1]
    slot_valid = np.arange(cap, dtype=np.int64)[None, :] < buf.counts[idx][:, None]
    eq = (node_keys == byte[:, None]) & slot_valid
    found = eq.any(axis=1)
    slot = eq.argmax(axis=1)
    child = buf.children[idx, slot]
    # a slot whose child link was cleared by a device delete is absent
    found &= child != np.uint64(0)
    _settle(rows, prefix_ok, has_byte, found, child, ndepth, byte, st)
    return _distinct_rows(idx, buf.counts.size) * layout.node_record_bytes[code]


def _step_n48(layout, rows, keys_mat, key_lens, st: _TraversalState, log) -> int:
    buf = layout.n48
    idx = link_indices(st.links[rows])
    log.record(layout.node_record_bytes[LINK_N48], rows.size)
    log.record_compute(NODE_COMPUTE_CYCLES * rows.size)
    prefix_ok, has_byte, ndepth = _check_prefix(
        buf, idx, rows, keys_mat, key_lens, st
    )
    W = keys_mat.shape[1]
    byte = keys_mat[rows, np.minimum(ndepth, W - 1)]
    slot = buf.child_index[idx, byte].astype(np.int64)
    found = slot != N48_EMPTY_SLOT
    child = buf.children[idx, np.minimum(slot, 47)]
    found &= child != np.uint64(0)
    _settle(rows, prefix_ok, has_byte, found, child, ndepth, byte, st)
    return _distinct_rows(idx, buf.counts.size) * layout.node_record_bytes[LINK_N48]


def _step_n256(layout, rows, keys_mat, key_lens, st: _TraversalState, log) -> int:
    buf = layout.n256
    idx = link_indices(st.links[rows])
    # N256 needs no "bandwidth for latency" trade: unlike N4/16/48 there
    # is no key search, so the child slot's address is computable from
    # the key byte alone.  The kernel issues two *independent* aligned
    # reads in the same round — the 32-byte prefix header and the single
    # 8-byte child link — instead of streaming the 2 KiB record.
    log.record(32, rows.size)
    log.record(8, rows.size)
    log.record_compute(NODE_COMPUTE_CYCLES * rows.size)
    prefix_ok, has_byte, ndepth = _check_prefix(
        buf, idx, rows, keys_mat, key_lens, st
    )
    W = keys_mat.shape[1]
    byte = keys_mat[rows, np.minimum(ndepth, W - 1)]
    child = buf.children[idx, byte]
    found = child != np.uint64(0)
    _settle(rows, prefix_ok, has_byte, found, child, ndepth, byte, st)
    # distinct footprint: header + the hot child-link region per node
    return _distinct_rows(idx, buf.counts.size) * 40


def _step_leaf(
    layout, code, rows, keys_mat, key_lens, st: _TraversalState, log
) -> int:
    buf = layout.leaves[code]
    idx = link_indices(st.links[rows])
    log.record(CUART_NODE_BYTES[code], rows.size)
    cap = LEAF_CAPACITY[code]
    W = keys_mat.shape[1]
    w = min(cap, W)
    # matching requires equal length, and then both sides are zero-padded
    # within the compared window, so fixed-width equality is exact
    same_len = buf.key_lens[idx] == key_lens[rows]
    eq = (buf.keys[idx][:, :w] == keys_mat[rows, :w]).all(axis=1)
    match = same_len & eq
    log.record_compute(int(np.ceil(cap / 8)) * rows.size)
    st.values[rows[match]] = buf.values[idx[match]]
    st.locations[rows[match]] = st.links[rows[match]]
    st.stop(rows[~match], MissReason.LEAF_MISMATCH)
    st.stop(rows[match], MissReason.HIT)
    return _distinct_rows(idx, buf.values.size) * CUART_NODE_BYTES[code]


def _step_dyn_leaf(
    layout, rows, keys_mat, key_lens, st: _TraversalState, log
) -> int:
    """Strategy (c) of section 3.2.3: dynamically-sized device leaves.

    The whole warp serializes behind the longest key it compares — the
    paper's caveat that this "can severely hurt the overall lookup
    performance in case of exceptionally long keys".
    """
    heap = layout.dyn.heap
    off = link_indices(st.links[rows])
    m = rows.size
    H = layout.dyn.HEADER
    hdr = heap[off[:, None] + np.arange(H, dtype=np.int64)[None, :]]
    stored_len = hdr[:, 0].astype(np.int64) | (hdr[:, 1].astype(np.int64) << 8)
    val = np.zeros(m, dtype=np.uint64)
    for b in range(8):  # little-endian value reassembly
        val |= hdr[:, 2 + b].astype(np.uint64) << np.uint64(8 * b)
    W = keys_mat.shape[1]
    L = int(min(max(int(stored_len.max(initial=0)), 1), W))
    pos = off[:, None] + H + np.arange(L, dtype=np.int64)[None, :]
    stored = heap[np.minimum(pos, heap.size - 1)]
    jj = np.arange(L, dtype=np.int64)[None, :]
    valid = jj < stored_len[:, None]
    mismatch = ((stored != keys_mat[rows, :L]) & valid).any(axis=1)
    match = (stored_len == key_lens[rows]) & ~mismatch
    # transactions: 16-byte chunks covering header+key, byte-addressed
    # (unaligned), one dependent chunk chain per record
    chunks = np.ceil((H + stored_len) / 16.0).astype(np.int64)
    log.record(16, int(chunks.sum()), aligned=False)
    # byte-oriented compare loop: ~1 cycle per byte, warp-serialized
    log.record_compute(int(stored_len.sum()))
    st.values[rows[match]] = val[match]
    st.locations[rows[match]] = st.links[rows[match]]
    st.stop(rows[~match], MissReason.LEAF_MISMATCH)
    st.stop(rows[match], MissReason.HIT)
    return int((H + stored_len[np.unique(off, return_index=True)[1]]).sum())
