"""Approximate (fuzzy) lookups over the CuART buffers.

Section 2.1 notes that "there also have been approaches for running
approximate lookups on the GPU by Groth et al. [8], making ART also
suitable for approximate queries" — the same group's companion work
("Parallelizing approximate search on adaptive radix trees", SEBD 2020).
This module provides the radix-tree variant of that capability over the
CuART layout: find every stored key within a Hamming distance budget of
the query (same length, ≤ k differing bytes).

The search is a budgeted beam over the device buffers: a frontier of
``(link, depth, mismatches)`` states expands level-synchronously — the
SIMT shape of [8] — taking the exact child for free and every other
child at +1 mismatch.  Compressed prefixes charge their own mismatch
counts; fixed leaves verify the remainder.  Transactions are charged per
visited node exactly like the exact kernel, so the cost model prices
approximate queries too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    CUART_MAX_PREFIX,
    CUART_NODE_BYTES,
    LEAF_TYPE_CODES,
    LINK_N4,
    LINK_N16,
    LINK_N48,
    LINK_N256,
    N48_EMPTY_SLOT,
    NIL_VALUE,
)
from repro.cuart.layout import CuartLayout
from repro.errors import ReproError
from repro.gpusim.transactions import TransactionLog
from repro.util.packing import link_index, link_type


@dataclass
class ApproxMatch:
    key: bytes
    value: int
    distance: int


@dataclass
class ApproxResult:
    matches: list[ApproxMatch]
    #: states expanded (the beam's work measure).
    states_visited: int
    log: TransactionLog

    def __len__(self) -> int:
        return len(self.matches)

    def best(self) -> ApproxMatch | None:
        return min(self.matches, key=lambda m: m.distance, default=None)


def approx_lookup(
    layout: CuartLayout,
    key: bytes,
    max_mismatches: int = 1,
    *,
    log: TransactionLog | None = None,
) -> ApproxResult:
    """All stored keys of ``len(key)`` bytes within Hamming distance
    ``max_mismatches`` of ``key``, with their distances."""
    layout.check_fresh()
    if max_mismatches < 0:
        raise ReproError("max_mismatches must be non-negative")
    if not key:
        raise ReproError("empty keys cannot be searched")
    if log is None:
        log = TransactionLog()
    matches: list[ApproxMatch] = []
    visited = 0
    if layout.root_link == 0:
        return ApproxResult(matches, visited, log)

    # frontier of (link, depth, mismatches-used); expanded level-sync
    frontier: list[tuple[int, int, int]] = [(int(layout.root_link), 0, 0)]
    klen = len(key)
    while frontier:
        log.begin_round(len(frontier))
        next_frontier: list[tuple[int, int, int]] = []
        distinct = 0
        for link, depth, miss in frontier:
            visited += 1
            code = link_type(link)
            idx = link_index(link)
            if code in LEAF_TYPE_CODES:
                distinct += CUART_NODE_BYTES[code]
                log.record(CUART_NODE_BYTES[code], 1)
                _check_leaf(layout, code, idx, key, miss, max_mismatches,
                            matches)
                continue
            if code in (LINK_N4, LINK_N16, LINK_N48, LINK_N256):
                distinct += CUART_NODE_BYTES[code]
                log.record(CUART_NODE_BYTES[code], 1)
                buf = layout.nodes[code]
                plen = int(buf.prefix_len[idx])
                # bytes beyond the stored window descend optimistically;
                # the leaf re-verification computes the true distance
                stored = min(plen, CUART_MAX_PREFIX)
                if depth + plen + 1 > klen:
                    continue  # key too short to branch below this node
                # mismatches inside the (visible) compressed prefix
                pm = sum(
                    1
                    for j in range(stored)
                    if buf.prefix[idx, j] != key[depth + j]
                )
                miss2 = miss + pm
                if miss2 > max_mismatches:
                    continue
                ndepth = depth + plen
                byte = key[ndepth]
                for child_byte, child in _children(layout, code, idx):
                    add = 0 if child_byte == byte else 1
                    if miss2 + add <= max_mismatches:
                        next_frontier.append(
                            (int(child), ndepth + 1, miss2 + add)
                        )
            # HOST / DYNLEAF states: approximate search over host-resident
            # or variable-length leaves is host work; skip silently
        log.rounds[-1].distinct_bytes = distinct
        frontier = next_frontier
    matches.sort(key=lambda m: (m.distance, m.key))
    return ApproxResult(matches, visited, log)


def _children(layout, code, idx):
    buf = layout.nodes[code]
    if code in (LINK_N4, LINK_N16):
        n = int(buf.counts[idx])
        for slot in range(n):
            child = int(buf.children[idx, slot])
            if child:
                yield int(buf.keys[idx, slot]), child
    elif code == LINK_N48:
        for byte in range(256):
            slot = int(buf.child_index[idx, byte])
            if slot != N48_EMPTY_SLOT:
                child = int(buf.children[idx, slot])
                if child:
                    yield byte, child
    else:
        for byte in range(256):
            child = int(buf.children[idx, byte])
            if child:
                yield byte, child


def _check_leaf(layout, code, idx, key, miss, budget, matches) -> None:
    buf = layout.leaves[code]
    stored_len = int(buf.key_lens[idx])
    if stored_len != len(key):
        return
    stored = buf.keys[idx, :stored_len].tobytes()
    # full re-verification from byte 0: optimistic prefix skips above may
    # have hidden mismatches, so the authoritative distance is computed
    # here (and is always >= the path's lower bound)
    dist = sum(1 for a, b in zip(stored, key) if a != b)
    v = int(buf.values[idx])
    if dist <= budget and v != NIL_VALUE:
        matches.append(ApproxMatch(key=stored, value=v, distance=dist))
