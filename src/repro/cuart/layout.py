"""Mapping the host ART into the CuART struct-of-arrays device layout.

Section 3.2.1: "we map the index structure into several buffers instead
of just one ... one buffer per node type.  [It] allows the implementation
to determine the transaction read size before initiating the actual
memory request ... combined with a guaranteed alignment of at least 16
bytes".

Buffers (NumPy arrays standing in for device allocations):

===============  =========================================================
``N4``/``N16``   ``keys (n, cap) u8``, ``children (n, cap) u64`` packed
                 links, ``counts (n,) u8``
``N48``          ``child_index (n, 256) u8`` (0xFF = empty),
                 ``children (n, 48) u64``
``N256``         ``children (n, 256) u64`` (0 = empty)
all inner nodes  ``prefix (n, 15) u8`` stored window, ``prefix_len (n,)``
                 full skipped length (optimistic path compression)
``leaf8/16/32``  ``keys (n, cap) u8``, ``key_lens (n,) u8``,
                 ``values (n,) u64`` — *lexicographically ordered*
===============  =========================================================

Leaf ordering falls out of the in-order mapping traversal and is what
makes range queries "trivial because it is only required to transmit both
the start and the end index within the leaf arrays".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.art.nodes import InnerNode, Leaf, Node4, Node16, Node48, Node256
from repro.art.stats import leaf_type_for_key
from repro.art.tree import AdaptiveRadixTree
from repro.constants import (
    CUART_MAX_PREFIX,
    CUART_NODE_BYTES,
    LEAF_CAPACITY,
    LEAF_TYPE_CODES,
    LINK_DYNLEAF,
    LINK_EMPTY,
    LINK_HOST,
    LINK_LEAF8,
    LINK_LEAF16,
    LINK_LEAF32,
    LINK_N4,
    LINK_N16,
    LINK_N48,
    LINK_N256,
    MAX_SHORT_KEY,
    N48_EMPTY_SLOT,
    NIL_VALUE,
    NODE_TYPE_CODES,
)
from repro.errors import KeyTooLongError, StaleLayoutError
from repro.util.packing import pack_link, pack_links


class LongKeyStrategy(enum.Enum):
    """How the device layout copes with keys longer than the largest
    fixed leaf (section 3.2.3)."""

    #: raise :class:`KeyTooLongError` at mapping time — the caller must
    #: route long keys elsewhere (strategy (a), handled by
    #: :mod:`repro.host.hybrid`: long keys never reach the device).
    ERROR = "error"
    #: strategy (b): keep long leaves in host memory; the device stores a
    #: ``LINK_HOST`` link and lookups return a "resolve on CPU" signal.
    HOST_LINK = "host_link"
    #: strategy (c), what GRT does: a dynamically-sized device leaf heap,
    #: compared with a variable-length loop on-device.
    DYNAMIC = "dynamic"


class _LazyLeafLinks(dict):
    """``id(host node) -> packed link`` with deferred bulk-leaf entries.

    A bulk build knows every leaf's link as one vectorized array, but
    almost no session ever looks a *leaf* link up individually (the
    RootTable builder only touches nodes near the root).  Instead of
    eagerly exploding the array into ~n dict entries, the pair is parked
    and materialized on the first miss; entries written directly after
    the deferral win over the parked ones.
    """

    __slots__ = ("_pending",)

    def __init__(self) -> None:
        super().__init__()
        self._pending = None

    def defer(self, leaf_objs: np.ndarray, links: np.ndarray) -> None:
        self._pending = (leaf_objs, links)

    def _materialize(self) -> None:
        pending, self._pending = self._pending, None
        if pending is None:
            return
        leaf_objs, links = pending
        merged = dict(zip(map(id, leaf_objs.tolist()), links.tolist()))
        merged.update(self)  # individually recorded links take precedence
        self.update(merged)

    def __missing__(self, key: int) -> int:
        if self._pending is None:
            raise KeyError(key)
        self._materialize()
        return self[key]

    def __contains__(self, key) -> bool:
        if dict.__contains__(self, key):
            return True
        if self._pending is None:
            return False
        self._materialize()
        return dict.__contains__(self, key)

    def get(self, key, default=None):
        if self._pending is not None and not dict.__contains__(self, key):
            self._materialize()
        return dict.get(self, key, default)

    def __len__(self) -> int:
        self._materialize()
        return dict.__len__(self)

    def __iter__(self):
        self._materialize()
        return dict.__iter__(self)

    def keys(self):
        self._materialize()
        return dict.keys(self)

    def items(self):
        self._materialize()
        return dict.items(self)

    def values(self):
        self._materialize()
        return dict.values(self)


@dataclass
class _NodeBuffers:
    """Per-type SoA arrays for one inner-node type."""

    keys: np.ndarray | None  # (n, cap) u8, only N4/N16
    children: np.ndarray  # (n, cap|48|256) u64
    child_index: np.ndarray | None  # (n, 256) u8, only N48
    counts: np.ndarray  # (n,) int16
    prefix: np.ndarray  # (n, CUART_MAX_PREFIX) u8
    prefix_len: np.ndarray  # (n,) int32


@dataclass
class _LeafBuffers:
    """Per-size SoA arrays for one fixed leaf type."""

    keys: np.ndarray  # (n, cap) u8
    key_lens: np.ndarray  # (n,) int32
    values: np.ndarray  # (n,) u64


@dataclass
class _DynLeafHeap:
    """Device heap for strategy (c): records ``[len u16][value u64][key]``
    packed back to back, addressed by byte offset."""

    heap: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.uint8))
    offsets: list[int] = field(default_factory=list)

    HEADER = 10  # 2-byte length + 8-byte value

    def record_size(self, key_len: int) -> int:
        return self.HEADER + key_len


class CuartLayout:
    """The mapped, device-resident CuART index.

    Build once from a populated host tree (pipeline stage 2 of section
    4.1); afterwards the kernels in :mod:`repro.cuart.lookup`,
    :mod:`repro.cuart.update` and :mod:`repro.cuart.delete` operate on the
    buffers only.  Non-structural mutations (value updates, lazy
    deletions) happen in place; structural changes require re-mapping —
    :meth:`check_fresh` guards against using a stale layout.
    """

    def __init__(
        self,
        tree: AdaptiveRadixTree,
        *,
        long_keys: LongKeyStrategy = LongKeyStrategy.ERROR,
        single_leaf_size: int | None = None,
        spare: float = 0.0,
        prefix_window: int = CUART_MAX_PREFIX,
    ) -> None:
        """``single_leaf_size`` (8, 16 or 32) forces every leaf into one
        fixed buffer — the paper's *initial* design ("we replaced the
        dynamically sized leaf buffer by a fixed size leaf, which can
        store up to 32 byte keys") before it switched to the 8/16/32
        split; kept as an ablation knob (see benchmarks/ablations).

        ``spare`` over-allocates every buffer by that fraction (plus a
        small fixed floor) so the device-side insert engine
        (:mod:`repro.cuart.insert`, the paper's §5.1 "more sophisticated
        buffer management") has node and leaf slots to allocate from
        without a host re-map.

        ``prefix_window`` sets the per-node stored-prefix bytes (the
        paper frees GRT's type byte to reach 15).  Smaller windows
        shrink node records but push more verification onto optimistic
        leaf checks; the prefix-window ablation bench sweeps this.
        """
        if single_leaf_size is not None and single_leaf_size not in (8, 16, 32):
            raise KeyTooLongError(
                f"single_leaf_size must be 8, 16 or 32, got {single_leaf_size}"
            )
        if spare < 0:
            raise StaleLayoutError(f"spare must be non-negative, got {spare}")
        if not 1 <= prefix_window <= 255:
            raise KeyTooLongError(
                f"prefix_window must be 1..255, got {prefix_window}"
            )
        self.prefix_window = prefix_window
        #: per-record transaction sizes for this window (16-byte padded);
        #: equals :data:`repro.constants.CUART_NODE_BYTES` at the default
        self.node_record_bytes = _record_bytes(prefix_window)
        self.single_leaf_size = single_leaf_size
        self.long_keys = long_keys
        self.spare = spare
        self._source_version = tree.version
        self._source = tree
        #: device-side mutations (updates/deletes) since mapping.
        self.device_mutations = 0
        #: device-side structural inserts since mapping.
        self.device_inserts = 0
        #: root tables that must be patched when a node is relocated by
        #: growth (registered by RootTable).
        self.attached_tables: list = []

        # a fresh bulk-load plan lets the whole build run as batched
        # array writes; anything it cannot express (stale plan, long
        # keys) falls back to the generic per-node traversal
        plan = getattr(tree, "_bulk_plan", None)
        limit = single_leaf_size or MAX_SHORT_KEY
        if plan is None or plan.version != tree.version or plan.n == 0 or (
            plan.max_key_len > limit
        ):
            plan = None
        if plan is not None:
            counts = _plan_counts(plan, single_leaf_size)
        else:
            counts = _count_nodes(tree, long_keys, single_leaf_size)
        if spare > 0:
            floor = 8
            for c in NODE_TYPE_CODES + LEAF_TYPE_CODES:
                counts[c] = counts[c] + max(int(counts[c] * spare), floor)
        self._alloc(counts)
        #: host-node identity -> packed device link, recorded during the
        #: mapping pass; consumed by the RootTable builder (section 3.2.2)
        #: and by tests.
        self.node_links: dict[int, int] = _LazyLeafLinks()
        #: host-memory leaves for :attr:`LongKeyStrategy.HOST_LINK`.
        self.host_leaves: list[tuple[bytes, int]] = []
        #: free leaf slots per leaf type, filled by device-side deletes
        #: ("the leaf index is pushed into a list of free leaves which can
        #: be used for future inserts", section 3.3).
        self.free_leaves: dict[int, list[int]] = {c: [] for c in LEAF_TYPE_CODES}
        #: node rows recycled by growth (old, smaller node records).
        self.free_nodes: dict[int, list[int]] = {c: [] for c in NODE_TYPE_CODES}
        self._next_node = {c: 0 for c in NODE_TYPE_CODES}
        self._next_leaf = {c: 0 for c in LEAF_TYPE_CODES}
        self._dyn_cursor = 0
        #: deepest traversal level (node visits) seen while mapping; used
        #: by the range-query transaction accounting.
        self.max_levels = 0
        if plan is not None:
            self.root_link = self._build_from_plan(plan)
        else:
            self.root_link = self._map(tree)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _alloc(self, counts: dict) -> None:
        P = self.prefix_window
        self.nodes: dict[int, _NodeBuffers] = {}
        for code, cap in ((LINK_N4, 4), (LINK_N16, 16)):
            n = counts[code]
            self.nodes[code] = _NodeBuffers(
                keys=np.zeros((n, cap), dtype=np.uint8),
                children=np.zeros((n, cap), dtype=np.uint64),
                child_index=None,
                counts=np.zeros(n, dtype=np.int16),
                prefix=np.zeros((n, P), dtype=np.uint8),
                prefix_len=np.zeros(n, dtype=np.int32),
            )
        n = counts[LINK_N48]
        self.nodes[LINK_N48] = _NodeBuffers(
            keys=None,
            children=np.zeros((n, 48), dtype=np.uint64),
            child_index=np.full((n, 256), N48_EMPTY_SLOT, dtype=np.uint8),
            counts=np.zeros(n, dtype=np.int16),
            prefix=np.zeros((n, P), dtype=np.uint8),
            prefix_len=np.zeros(n, dtype=np.int32),
        )
        n = counts[LINK_N256]
        self.nodes[LINK_N256] = _NodeBuffers(
            keys=None,
            children=np.zeros((n, 256), dtype=np.uint64),
            child_index=None,
            counts=np.zeros(n, dtype=np.int16),
            prefix=np.zeros((n, P), dtype=np.uint8),
            prefix_len=np.zeros(n, dtype=np.int32),
        )
        self.leaves: dict[int, _LeafBuffers] = {}
        for code in LEAF_TYPE_CODES:
            n = counts[code]
            self.leaves[code] = _LeafBuffers(
                keys=np.zeros((n, LEAF_CAPACITY[code]), dtype=np.uint8),
                key_lens=np.zeros(n, dtype=np.int32),
                values=np.zeros(n, dtype=np.uint64),
            )
        self.dyn = _DynLeafHeap(
            heap=np.zeros(counts.get("dyn_bytes", 0), dtype=np.uint8)
        )

    def _map(self, tree: AdaptiveRadixTree) -> int:
        """In-order fill via an explicit-stack pre-order DFS; returns the
        packed root link.

        Children are pushed in reverse byte order so pops visit them
        ascending — leaves land in their buffers lexicographically
        sorted, exactly like the original recursive mapping, without the
        Python recursion depth/overhead.
        """
        if tree.root is None:
            return pack_link(LINK_EMPTY, 0)
        root_link = 0
        # stack entries carry the parent cell to patch once the child's
        # link exists: (node, level, parent_code, parent_row, parent_col)
        # where parent_col is the child slot (N4/16/48) or byte (N256)
        stack = [(tree.root, 0, -1, 0, 0)]
        node_links = self.node_links
        while stack:
            node, level, pcode, prow, pcol = stack.pop()
            if level >= self.max_levels:
                self.max_levels = level + 1
            if isinstance(node, Leaf):
                link = self._map_leaf(node)
            else:
                code = node.TYPE
                idx = self._next_node[code]
                self._next_node[code] += 1
                buf = self.nodes[code]
                p = node.prefix
                stored = p[: self.prefix_window]
                buf.prefix[idx, : len(stored)] = np.frombuffer(
                    stored, dtype=np.uint8
                )
                buf.prefix_len[idx] = len(p)
                buf.counts[idx] = node.num_children
                children = list(node.children_items())
                if code in (LINK_N4, LINK_N16):
                    for slot in range(len(children) - 1, -1, -1):
                        byte, child = children[slot]
                        buf.keys[idx, slot] = byte
                        stack.append((child, level + 1, code, idx, slot))
                elif code == LINK_N48:
                    for slot in range(len(children) - 1, -1, -1):
                        byte, child = children[slot]
                        buf.child_index[idx, byte] = slot
                        stack.append((child, level + 1, code, idx, slot))
                else:  # N256: the child array is byte-addressed
                    for byte, child in reversed(children):
                        stack.append((child, level + 1, code, idx, byte))
                link = pack_link(code, idx)
            node_links[id(node)] = link
            if pcode < 0:
                root_link = link
            else:
                self.nodes[pcode].children[prow, pcol] = link
        return root_link

    def _build_from_plan(self, plan) -> int:
        """Batched build from a fresh :class:`repro.art.bulk.BulkPlan`.

        Every buffer is filled with whole-array writes: leaves straight
        from the plan's sorted key matrix (per-type cumulative position =
        the in-order index, so the leaf buffers come out lexicographically
        sorted), inner nodes per level and type with fancy-index scatters.
        Node indices are assigned in pre-order — sorting the groups by
        ``(lo, depth)`` — so the result is byte-identical to :meth:`_map`
        on the same tree.
        """
        mat = plan.mat
        lens = plan.lens
        n = plan.n
        W = mat.shape[1]
        # -- leaves ----------------------------------------------------
        if self.single_leaf_size is None:
            lcode = np.where(
                lens <= 8,
                LINK_LEAF8,
                np.where(lens <= 16, LINK_LEAF16, LINK_LEAF32),
            ).astype(np.uint8)
        else:
            forced = {8: LINK_LEAF8, 16: LINK_LEAF16, 32: LINK_LEAF32}[
                self.single_leaf_size
            ]
            lcode = np.full(n, forced, dtype=np.uint8)
        leaf_idx = np.empty(n, dtype=np.int64)
        for code in LEAF_TYPE_CODES:
            sel = lcode == code
            cnt = int(sel.sum())
            leaf_idx[sel] = np.arange(cnt, dtype=np.int64)
            self._next_leaf[code] = cnt
            if cnt:
                buf = self.leaves[code]
                w = min(W, LEAF_CAPACITY[code])
                buf.keys[:cnt, :w] = mat[sel, :w]
                buf.key_lens[:cnt] = lens[sel]
                buf.values[:cnt] = plan.values[sel]
        leaf_links = pack_links(lcode, leaf_idx)
        node_links = self.node_links
        defer = getattr(node_links, "defer", None)
        if defer is not None:
            defer(plan.leaf_objs, leaf_links)
        else:  # plain dict (e.g. a deserialized layout): eager fill
            node_links.update(
                zip(map(id, plan.leaf_objs.tolist()), leaf_links.tolist())
            )
        levels = plan.levels
        if not levels:  # single-key tree: the root is that leaf
            self.max_levels = 1
            return int(leaf_links[0])
        # -- pre-order node index assignment ---------------------------
        all_lo = np.concatenate([lv.lo for lv in levels])
        all_dep = np.concatenate([lv.depth for lv in levels])
        all_tc = np.concatenate([lv.type_code for lv in levels])
        order = np.lexsort((all_dep, all_lo))
        pre_idx = np.empty(all_tc.size, dtype=np.int64)
        pre_tc = all_tc[order]
        for code in NODE_TYPE_CODES:
            sel = pre_tc == code
            cnt = int(sel.sum())
            pre_idx[sel] = np.arange(cnt, dtype=np.int64)
            self._next_node[code] = cnt
        gidx = np.empty(all_tc.size, dtype=np.int64)
        gidx[order] = pre_idx
        bounds = np.cumsum([lv.lo.size for lv in levels])[:-1]
        level_idx = np.split(gidx, bounds)
        level_links = [
            pack_links(lv.type_code, li)
            for lv, li in zip(levels, level_idx)
        ]
        # -- per-level, per-type batched fills --------------------------
        P = self.prefix_window
        colsP = np.arange(P, dtype=np.int64)
        for li, lv in enumerate(levels):
            idx = level_idx[li]
            clink = np.empty(lv.child_byte.size, dtype=np.uint64)
            lm = lv.child_is_leaf
            clink[lm] = leaf_links[lv.child_ref[lm]]
            im = ~lm
            if im.any():
                clink[im] = level_links[li + 1][lv.child_ref[im]]
            cols = lv.depth[:, None] + colsP[None, :]
            valid = cols < lv.split[:, None]
            pref = mat[lv.lo[:, None], np.minimum(cols, W - 1)]
            pref[~valid] = 0
            plen = lv.split - lv.depth
            pidx = idx[lv.child_parent]
            for code in NODE_TYPE_CODES:
                gsel = lv.type_code == code
                if not gsel.any():
                    continue
                buf = self.nodes[code]
                rows = idx[gsel]
                buf.prefix[rows] = pref[gsel]
                buf.prefix_len[rows] = plen[gsel]
                buf.counts[rows] = lv.fanout[gsel]
                csel = gsel[lv.child_parent]
                prow = pidx[csel]
                cbyte = lv.child_byte[csel]
                cslot = lv.child_slot[csel]
                if code in (LINK_N4, LINK_N16):
                    buf.keys[prow, cslot] = cbyte
                    buf.children[prow, cslot] = clink[csel]
                elif code == LINK_N48:
                    buf.child_index[prow, cbyte] = cslot
                    buf.children[prow, cslot] = clink[csel]
                else:  # N256
                    buf.children[prow, cbyte] = clink[csel]
            node_links.update(
                zip(map(id, lv.nodes.tolist()), level_links[li].tolist())
            )
        self.max_levels = len(levels) + 1
        return int(level_links[0][0])

    def _map_leaf(self, leaf: Leaf) -> int:
        klen = len(leaf.key)
        limit = self.single_leaf_size or MAX_SHORT_KEY
        if klen > limit:
            if self.long_keys is LongKeyStrategy.ERROR:
                raise KeyTooLongError(
                    f"key of {klen} bytes exceeds the {MAX_SHORT_KEY}-byte "
                    "fixed-leaf maximum and long_keys=ERROR "
                    "(see LongKeyStrategy / repro.host.hybrid)",
                    key_len=klen, max_len=MAX_SHORT_KEY,
                    strategy=self.long_keys.name,
                )
            if self.long_keys is LongKeyStrategy.HOST_LINK:
                self.host_leaves.append((leaf.key, leaf.value))
                return pack_link(LINK_HOST, len(self.host_leaves) - 1)
            return self._map_dyn_leaf(leaf)
        code = _classify_leaf(klen, self.single_leaf_size)
        idx = self._next_leaf[code]
        self._next_leaf[code] += 1
        buf = self.leaves[code]
        buf.keys[idx, :klen] = np.frombuffer(leaf.key, dtype=np.uint8)
        buf.key_lens[idx] = klen
        buf.values[idx] = leaf.value
        return pack_link(code, idx)

    def _map_dyn_leaf(self, leaf: Leaf) -> int:
        off = self._dyn_cursor
        rec = self.dyn.record_size(len(leaf.key))
        heap = self.dyn.heap
        heap[off : off + 2] = np.frombuffer(
            len(leaf.key).to_bytes(2, "little"), dtype=np.uint8
        )
        heap[off + 2 : off + 10] = np.frombuffer(
            int(leaf.value).to_bytes(8, "little"), dtype=np.uint8
        )
        heap[off + 10 : off + 10 + len(leaf.key)] = np.frombuffer(
            leaf.key, dtype=np.uint8
        )
        self.dyn.offsets.append(off)
        self._dyn_cursor += rec
        return pack_link(LINK_DYNLEAF, off)

    # ------------------------------------------------------------------
    # bookkeeping / accounting
    # ------------------------------------------------------------------
    def check_fresh(self) -> None:
        """Raise :class:`StaleLayoutError` if the host tree structurally
        changed after this layout was mapped."""
        if self._source.version != self._source_version:
            raise StaleLayoutError(
                "host tree changed since mapping; re-map the layout "
                "(structural inserts cannot be reflected in-place)",
                mapped_version=self._source_version,
                tree_version=self._source.version,
            )

    # ------------------------------------------------------------------
    # device-side allocation (insert engine, §5.1 buffer management)
    # ------------------------------------------------------------------
    def alloc_leaf(self, code: int) -> int | None:
        """Claim a leaf slot: recycled free-list entries first ("a list
        of free leaves which can be used for future inserts", §3.3),
        then the spare-capacity cursor.  ``None`` when exhausted."""
        if self.free_leaves[code]:
            return self.free_leaves[code].pop()
        nxt = self._next_leaf[code]
        if nxt < len(self.leaves[code].values):
            self._next_leaf[code] = nxt + 1
            return nxt
        return None

    def alloc_leaves(self, code: int, count: int) -> np.ndarray:
        """Claim up to ``count`` leaf slots in one call, in exactly the
        order ``count`` repeated :meth:`alloc_leaf` calls would return
        them (free-list entries popped from the tail first, then the
        spare cursor).  Returns the claimed indices; shorter than
        ``count`` when capacity runs out."""
        out: list[int] = []
        fl = self.free_leaves[code]
        take = min(len(fl), count)
        if take:
            out.extend(fl[-1 : -take - 1 : -1])
            del fl[-take:]
        need = count - take
        if need:
            nxt = self._next_leaf[code]
            avail = min(need, len(self.leaves[code].values) - nxt)
            if avail > 0:
                out.extend(range(nxt, nxt + avail))
                self._next_leaf[code] = nxt + avail
        return np.asarray(out, dtype=np.int64)

    def alloc_node(self, code: int) -> int | None:
        """Claim an inner-node slot (growth allocations)."""
        if self.free_nodes[code]:
            return self.free_nodes[code].pop()
        nxt = self._next_node[code]
        if nxt < len(self.nodes[code].counts):
            self._next_node[code] = nxt + 1
            return nxt
        return None

    def spare_leaf_slots(self, code: int) -> int:
        return (
            len(self.leaves[code].values) - self._next_leaf[code]
            + len(self.free_leaves[code])
        )

    def spare_node_slots(self, code: int) -> int:
        return (
            len(self.nodes[code].counts) - self._next_node[code]
            + len(self.free_nodes[code])
        )

    def grow_leaf_buffer(self, code: int, min_extra: int = 1) -> int:
        """Extend one per-type leaf buffer in place (capacity-pressure
        recovery, the §5.1 "sophisticated buffer management").

        Rows are appended to the SoA arrays, so existing rows keep their
        indices and every packed link into this buffer stays valid — a
        device ``cudaMalloc`` + copy, never a relocation, and therefore
        no re-map.  Grows by at least ``min_extra`` rows and at most a
        doubling.  Returns the number of rows added.
        """
        buf = self.leaves[code]
        n = len(buf.values)
        extra = max(min_extra, max(n, 8))
        buf.keys = np.vstack(
            [buf.keys, np.zeros((extra, buf.keys.shape[1]), dtype=np.uint8)]
        )
        buf.key_lens = np.concatenate(
            [buf.key_lens, np.zeros(extra, dtype=buf.key_lens.dtype)]
        )
        buf.values = np.concatenate(
            [buf.values, np.zeros(extra, dtype=np.uint64)]
        )
        return extra

    def grow_node_buffer(self, code: int, min_extra: int = 1) -> int:
        """Extend one per-type inner-node buffer in place; same
        index-stability contract as :meth:`grow_leaf_buffer`."""
        buf = self.nodes[code]
        n = len(buf.counts)
        extra = max(min_extra, max(n, 8))
        if buf.keys is not None:
            buf.keys = np.vstack(
                [buf.keys, np.zeros((extra, buf.keys.shape[1]), dtype=np.uint8)]
            )
        buf.children = np.vstack(
            [buf.children,
             np.zeros((extra, buf.children.shape[1]), dtype=np.uint64)]
        )
        if buf.child_index is not None:
            buf.child_index = np.vstack(
                [buf.child_index,
                 np.full((extra, 256), N48_EMPTY_SLOT, dtype=np.uint8)]
            )
        buf.counts = np.concatenate(
            [buf.counts, np.zeros(extra, dtype=buf.counts.dtype)]
        )
        buf.prefix = np.vstack(
            [buf.prefix,
             np.zeros((extra, buf.prefix.shape[1]), dtype=np.uint8)]
        )
        buf.prefix_len = np.concatenate(
            [buf.prefix_len, np.zeros(extra, dtype=buf.prefix_len.dtype)]
        )
        return extra

    def relocated(self, old_link: int, new_link: int) -> None:
        """Patch attached root tables after a node moved (growth)."""
        for table in self.attached_tables:
            table.links[table.links == np.uint64(old_link)] = np.uint64(new_link)

    def invalidate_range_cache(self) -> None:
        """Drop the sorted-leaf snapshot; device inserts append leaves
        out of lexicographic buffer order, so the next range query must
        rebuild (and from then on carries a row indirection)."""
        if hasattr(self, "_range_key_cache"):
            del self._range_key_cache

    def mark_synced(self) -> None:
        """Declare the host tree and this layout content-equivalent again.

        The end-to-end engine mirrors every device-side insert, update
        and delete into the host tree; the mirrored host mutations bump
        the tree version, which :meth:`check_fresh` would otherwise
        reject.  Only call when both sides index the same key set.
        """
        self._source_version = self._source.version

    def node_count(self, code: int) -> int:
        if code in NODE_TYPE_CODES:
            return len(self.nodes[code].counts)
        return len(self.leaves[code].values)

    def live_populations(self) -> dict:
        """Current device buffer occupancy, O(#types): per node/leaf type,
        the number of live records (allocated minus recycled) and the
        free-list depth.  The observability layer publishes these as
        gauges after every write batch."""
        return {
            "nodes": {
                c: self._next_node[c] - len(self.free_nodes[c])
                for c in NODE_TYPE_CODES
            },
            "leaves": {
                c: self._next_leaf[c] - len(self.free_leaves[c])
                for c in LEAF_TYPE_CODES
            },
            "free_nodes": {
                c: len(self.free_nodes[c]) for c in NODE_TYPE_CODES
            },
            "free_leaves": {
                c: len(self.free_leaves[c]) for c in LEAF_TYPE_CODES
            },
        }

    def device_bytes(self) -> int:
        """Total device memory of all buffers (16-byte-aligned records)."""
        total = 0
        for code in NODE_TYPE_CODES + LEAF_TYPE_CODES:
            total += self.node_count(code) * self.node_record_bytes[code]
        total += self.dyn.heap.nbytes
        return total

    def leaf_value_location(self, code: int, index: int) -> int:
        """Stable scalar id of one leaf's value slot (used by the update
        engine's hash table as the conflict-resolution key)."""
        return pack_link(code, index)

    # convenience accessors used by kernels -----------------------------
    @property
    def n4(self) -> _NodeBuffers:
        return self.nodes[LINK_N4]

    @property
    def n16(self) -> _NodeBuffers:
        return self.nodes[LINK_N16]

    @property
    def n48(self) -> _NodeBuffers:
        return self.nodes[LINK_N48]

    @property
    def n256(self) -> _NodeBuffers:
        return self.nodes[LINK_N256]


def _classify_leaf(key_len: int, single_leaf_size: int | None) -> int:
    """Leaf type for ``key_len``, honoring the single-leaf ablation."""
    if single_leaf_size is None:
        return leaf_type_for_key(key_len)
    if key_len > single_leaf_size:
        raise KeyTooLongError(
            f"key length {key_len} exceeds the forced single leaf size "
            f"{single_leaf_size}"
        )
    return {8: LINK_LEAF8, 16: LINK_LEAF16, 32: LINK_LEAF32}[single_leaf_size]


def _count_nodes(
    tree: AdaptiveRadixTree,
    long_keys: LongKeyStrategy,
    single_leaf_size: int | None = None,
) -> dict:
    """Pre-pass: how many records of each type the buffers need."""
    counts: dict = {c: 0 for c in NODE_TYPE_CODES + LEAF_TYPE_CODES}
    counts["dyn_bytes"] = 0
    limit = single_leaf_size or MAX_SHORT_KEY
    stack = [tree.root] if tree.root is not None else []
    while stack:
        node = stack.pop()
        if isinstance(node, Leaf):
            klen = len(node.key)
            if klen > limit:
                if long_keys is LongKeyStrategy.DYNAMIC:
                    counts["dyn_bytes"] += _DynLeafHeap.HEADER + klen
                # HOST_LINK needs no device space; ERROR raises at map time
                continue
            counts[_classify_leaf(klen, single_leaf_size)] += 1
        else:
            assert isinstance(node, InnerNode)
            counts[node.TYPE] += 1
            stack.extend(child for _, child in node.children_items())
    return counts


def _plan_counts(plan, single_leaf_size: int | None) -> dict:
    """Per-type record counts straight from a bulk plan's arrays (the
    vectorized equivalent of the :func:`_count_nodes` pre-pass; the plan
    never carries long keys, so the dyn heap stays empty)."""
    counts: dict = {c: 0 for c in NODE_TYPE_CODES + LEAF_TYPE_CODES}
    counts["dyn_bytes"] = 0
    for lv in plan.levels:
        bc = np.bincount(lv.type_code, minlength=8)
        for c in NODE_TYPE_CODES:
            counts[c] += int(bc[c])
    lens = plan.lens
    if single_leaf_size is None:
        counts[LINK_LEAF8] += int((lens <= 8).sum())
        counts[LINK_LEAF16] += int(((lens > 8) & (lens <= 16)).sum())
        counts[LINK_LEAF32] += int((lens > 16).sum())
    else:
        forced = {8: LINK_LEAF8, 16: LINK_LEAF16, 32: LINK_LEAF32}[
            single_leaf_size
        ]
        counts[forced] += plan.n
    return counts


def _record_bytes(prefix_window: int) -> dict:
    """Per-type transaction sizes for a given stored-prefix window,
    padded to 16-byte alignment like :data:`CUART_NODE_BYTES`."""

    def pad16(n: int) -> int:
        return (n + 15) & ~15

    header = 4 + prefix_window + 1
    return {
        LINK_N4: pad16(header + 4 + 4 * 8),
        LINK_N16: pad16(header + 16 + 16 * 8),
        LINK_N48: pad16(header + 256 + 48 * 8),
        LINK_N256: pad16(header + 256 * 8),
        LINK_LEAF8: CUART_NODE_BYTES[LINK_LEAF8],
        LINK_LEAF16: CUART_NODE_BYTES[LINK_LEAF16],
        LINK_LEAF32: CUART_NODE_BYTES[LINK_LEAF32],
    }
