"""GPU-style open-addressing hash tables with atomic-max semantics
(section 3.4, after Farrell's "A Simple GPU Hash Table" [4]).

The update engine uses a conflict table to resolve write conflicts inside
a batch: every thread inserts ``(leaf location → its thread index)`` and
the table keeps the *maximum* thread index per location ("storing the
maximum element index that performs an update to a certain leaf").

Two layouts are provided behind one interface:

* :class:`AtomicMaxHashTable` — the paper's plain per-slot linear
  probing ("handled by simple linear probing as described in ref. [4]").
  Every probe step is one 16-byte memory transaction plus one atomic;
  the probe statistics are what produce figure 15's throughput collapse:
  "for larger trees and large batches, hash table collisions become
  quite frequent and then the linear probing algorithm causes the update
  throughput to drop".

* :class:`BucketedAtomicMaxHashTable` — the cache-line-aware fix from
  the bucketed-cuckoo / WarpSpeed line of work: slots are grouped into
  128-byte buckets of 8 records, keys hash to a *bucket*, and a warp
  probes cooperatively — one coalesced 128-byte transaction inspects a
  whole bucket, one lane CAS-claims an empty record inside it, and the
  group only advances when the bucket is full.  Probe chains shrink by
  the bucket fan-out and duplicate threads in a warp share the
  transaction, which is where the ≥4× device-traffic drop comes from.

Both tables are simulated deterministically but charge realistic costs:
the record each distinct key claims is computed by the same probe race a
CUDA ``atomicCAS`` loop runs (ties broken toward the lowest contender
index, a deterministic stand-in for hardware arbitration), and memory
traffic/atomics are recorded against the :class:`TransactionLog` at the
granularity the layout actually issues — per slot for linear, per
``(round, warp, bucket)`` coalesced group for bucketed (see
:func:`repro.gpusim.simt.bucket_probe_groups`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import HashTableFullError, SimulationError
from repro.gpusim.simt import bucket_probe_groups
from repro.gpusim.transactions import TransactionLog

#: Murmur3 64-bit finalizer constants (ref [4] hashes with Murmur3; a
#: plain multiplicative hash is low-discrepancy on the near-sequential
#: leaf indices inside packed links, which understates the collision
#: regime the paper measures).
_MIX_1 = np.uint64(0xFF51AFD7ED558CCD)
_MIX_2 = np.uint64(0xC4CEB9FE1A85EC53)
_SHIFT_33 = np.uint64(33)


def _mix(keys: np.ndarray) -> np.ndarray:
    """Murmur3 ``fmix64`` avalanche over an array of uint64 keys."""
    k = keys.astype(np.uint64)
    k = k ^ (k >> _SHIFT_33)
    k = k * _MIX_1
    k = k ^ (k >> _SHIFT_33)
    k = k * _MIX_2
    return k ^ (k >> _SHIFT_33)


#: slot record: 8-byte key + 8-byte value, read/written atomically.
SLOT_BYTES = 16
#: records per cache-line bucket in the bucketed layout.
BUCKET_RECORDS = 8
#: one bucket is exactly one 128-byte cache line / max-size transaction.
BUCKET_BYTES = BUCKET_RECORDS * SLOT_BYTES
#: reserved empty-slot marker (a packed link of 0 is the EMPTY link and
#: never a leaf location, so 0 is safe).
EMPTY_KEY = np.uint64(0)

#: selectable conflict-table layouts (``EngineConfig.hash_table``).
HASH_TABLE_VARIANTS = ("linear", "bucketed")


def _dedup(keys: np.ndarray):
    """One stable sort shared by dedup and the per-key group reduce.

    ``np.unique(return_inverse=True)`` plus a later ``argsort(inverse)``
    would sort the batch twice; this returns everything both consumers
    need from a single pass: ``(uniq, inverse, order, bounds)`` where
    ``keys[order]`` is sorted and ``bounds`` are the group starts within
    it (``np.maximum.reduceat``-ready).
    """
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    first = np.empty(sk.size, dtype=bool)
    first[0] = True
    np.not_equal(sk[1:], sk[:-1], out=first[1:])
    uniq = sk[first]
    inverse = np.empty(sk.size, dtype=np.int64)
    inverse[order] = np.cumsum(first) - 1
    bounds = np.nonzero(first)[0]
    return uniq, inverse, order, bounds


def _bucket_ranks(cb: np.ndarray):
    """Rank each contender within its bucket, lowest contender first.

    Contender order is encoded into a composite sort key (bucket * m +
    index — collision-free, so the cheaper non-stable sort suffices) and
    ranks are positions within each bucket's contiguous run.
    """
    m = cb.size
    idx = np.arange(m, dtype=np.int64)
    order = np.argsort(cb * np.int64(m) + idx)
    scb = cb[order]
    first = np.empty(m, dtype=bool)
    first[0] = True
    np.not_equal(scb[1:], scb[:-1], out=first[1:])
    rank = idx - np.maximum.accumulate(np.where(first, idx, 0))
    return order, rank


class _ConflictTableBase:
    """State, stats and the atomic-max merge shared by both layouts."""

    #: layout name, matching :data:`HASH_TABLE_VARIANTS`.
    variant = "base"

    def __init__(self, slots: int, log: TransactionLog | None = None) -> None:
        if slots <= 0 or slots & (slots - 1):
            raise SimulationError(
                f"hash table size must be a power of two, got {slots}"
            )
        self.slots = slots
        self.keys = np.full(slots, EMPTY_KEY, dtype=np.uint64)
        self.values = np.full(slots, -1, dtype=np.int64)
        self.log = log
        self.total_probes = 0
        self.max_probe = 0
        self.occupied = 0
        # device-cost tallies since the last reset, tracked even when no
        # TransactionLog is attached so engines can export them as
        # metrics: memory transactions issued, coalesced probe groups
        # (== transactions for the bucketed layout; one per probe step
        # for linear), and atomic operations.
        self.transactions = 0
        self.probe_groups = 0
        self.atomics = 0
        #: slots claimed since the last reset — lets reset() clear only
        #: what was written instead of memsetting the whole table.
        self._dirty: list = []

    @property
    def load_factor(self) -> float:
        return self.occupied / self.slots

    def reset(self) -> None:
        """Clear between batches (the real kernel memsets the table).

        Probe statistics restart too, so a reused table reports the same
        per-batch numbers a freshly constructed one would.  When only a
        small fraction of the slots was claimed, just those are cleared —
        a large, lightly loaded table resets in O(occupied) instead of
        O(slots)."""
        if sum(a.size for a in self._dirty) < self.slots // 4:
            for claimed in self._dirty:
                self.keys[claimed] = EMPTY_KEY
                self.values[claimed] = -1
        else:
            self.keys.fill(EMPTY_KEY)
            self.values.fill(-1)
        self._dirty = []
        self.occupied = 0
        self.total_probes = 0
        self.max_probe = 0
        self.transactions = 0
        self.probe_groups = 0
        self.atomics = 0

    # ------------------------------------------------------------------
    def _check_keys(self, keys: np.ndarray) -> None:
        if np.any(keys == EMPTY_KEY):
            raise SimulationError("key 0 is reserved as the empty-slot marker")

    def _full_error(self, requested: int) -> HashTableFullError:
        return HashTableFullError(
            "distinct keys exceed the free slots; increase the table "
            "('simply increasing the hash table size promises better "
            "results', section 4.5)",
            buffer="hash-table", slots=self.slots,
            occupied=self.occupied, requested=int(requested),
        )

    def _merge_max(
        self, slot_of: np.ndarray, priorities: np.ndarray,
        order: np.ndarray, bounds: np.ndarray,
    ) -> None:
        """Atomic max per distinct key: reduce each key's contenders to
        one candidate, then one vectorized max-merge into the table
        (``slot_of`` is one distinct slot per key, so the fancy
        assignment never collides).  ``order``/``bounds`` come from the
        :func:`_dedup` pass — sorting by key groups the contenders."""
        grp_max = np.maximum.reduceat(priorities[order], bounds)
        self.values[slot_of] = np.maximum(self.values[slot_of], grp_max)


class AtomicMaxHashTable(_ConflictTableBase):
    """Fixed-capacity linear-probe table: ``uint64 key → int64 max``."""

    variant = "linear"

    def __init__(self, slots: int, log: TransactionLog | None = None) -> None:
        super().__init__(slots, log)
        self._mask = np.uint64(slots - 1)

    # ------------------------------------------------------------------
    def _hash(self, keys: np.ndarray) -> np.ndarray:
        return _mix(keys) & self._mask

    # ------------------------------------------------------------------
    def insert_max(self, keys: np.ndarray, priorities: np.ndarray) -> None:
        """All "threads" insert concurrently; per distinct key the table
        retains the maximum priority.

        Probe accounting: a thread probes from ``hash(key)`` until it
        finds its key or claims an empty slot; its probe count is the
        distance to the key's final slot.  All threads sharing a key pay
        the same distance (they re-walk the same probe chain), which is
        exactly the CUDA behaviour.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        priorities = np.asarray(priorities, dtype=np.int64)
        if keys.size == 0:
            return
        self._check_keys(keys)

        uniq, inverse, order, bounds = _dedup(keys)
        slot_of = self._place(uniq)  # may raise HashTableFullError

        probes_per_key = self._probe_distances(uniq, slot_of)
        self._charge_insert(keys, probes_per_key, inverse)
        self._merge_max(slot_of, priorities, order, bounds)

    def resolve_winners(
        self, keys: np.ndarray, priorities: np.ndarray
    ) -> np.ndarray:
        """Insert + grid sync + read-back fused into one vectorized pass.

        Semantically identical to ``insert_max(keys, priorities)`` followed
        by ``lookup(keys) == priorities``, and it charges exactly the same
        transactions for both phases — but the read-back reuses the slot
        positions the probing pass already computed instead of re-walking
        every probe chain on the host, so one batch costs a single
        linear-probe pass.  Returns the per-thread winner mask (at most
        one ``True`` per distinct key).
        """
        keys = np.asarray(keys, dtype=np.uint64)
        priorities = np.asarray(priorities, dtype=np.int64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        self._check_keys(keys)

        uniq, inverse, order, bounds = _dedup(keys)
        slot_of = self._place(uniq)  # may raise HashTableFullError

        probes_per_key = self._probe_distances(uniq, slot_of)
        self._charge_insert(keys, probes_per_key, inverse)

        # atomic max per distinct key (the __syncthreads() boundary)
        self._merge_max(slot_of, priorities, order, bounds)

        # read-back phase: same accounting as lookup — every distinct
        # key re-walks its probe chain once to read the stored max
        readback = int(probes_per_key.sum())
        self.transactions += readback
        self.probe_groups += readback
        if self.log is not None:
            self.log.begin_round(int(keys.size))
            self.log.record(SLOT_BYTES, readback)
            self.log.rounds[-1].distinct_bytes = self.slots * SLOT_BYTES
        maxima = self.values[slot_of][inverse]
        return maxima == priorities

    def _probe_distances(
        self, uniq: np.ndarray, slot_of: np.ndarray
    ) -> np.ndarray:
        """Per distinct key: probe-chain length to its final slot."""
        home = self._hash(uniq)
        dist = (slot_of.astype(np.uint64) - home) & self._mask
        return dist.astype(np.int64) + 1

    def _charge_insert(
        self, keys: np.ndarray, probes_per_key: np.ndarray,
        inverse: np.ndarray,
    ) -> None:
        """Per-thread probe distance = distance of its key's slot; every
        probe step is one 16-byte transaction plus an atomicCAS attempt,
        and every thread ends with one atomicMax on its key's slot."""
        thread_probes = probes_per_key[inverse]
        total_probes = int(thread_probes.sum())
        self.total_probes += total_probes
        self.max_probe = max(self.max_probe, int(probes_per_key.max()))
        atomics = total_probes + int(keys.size)
        self.transactions += total_probes
        self.probe_groups += total_probes
        self.atomics += atomics
        if self.log is not None:
            # the table is its own dependent phase with its own working
            # set: the full slot array competes for L2 (a 1Mi-entry table
            # is 16 MiB — never resident, which is why collisions hurt)
            self.log.begin_round(int(keys.size))
            self.log.record(SLOT_BYTES, total_probes)
            self.log.rounds[-1].distinct_bytes = self.slots * SLOT_BYTES
            self.log.record_atomics(atomics)

    def _place(self, uniq: np.ndarray) -> np.ndarray:
        """Claim one slot per distinct key via the linear-probe race."""
        n = uniq.size
        if n > self.slots - self.occupied:
            raise self._full_error(n)
        slot_of = np.full(n, -1, dtype=np.int64)
        pending = np.arange(n)
        probe = np.zeros(n, dtype=np.uint64)
        home = self._hash(uniq)
        for _ in range(self.slots):
            if pending.size == 0:
                break
            cand = ((home[pending] + probe[pending]) & self._mask).astype(np.int64)
            slot_keys = self.keys[cand]
            # already claimed by the same key (an earlier insert_max call)
            same = slot_keys == uniq[pending]
            # empty slots: the lowest-index contender wins the CAS race
            # (deterministic stand-in for the hardware arbitration)
            empty = slot_keys == EMPTY_KEY
            win = np.zeros(pending.size, dtype=bool)
            if empty.any():
                rows = np.nonzero(empty)[0]
                # composite key = slot * m + contender: collision-free,
                # so the cheaper non-stable sort still ranks contenders
                # per slot in deterministic lowest-index-first order
                comp = cand[rows] * np.int64(rows.size) \
                    + np.arange(rows.size, dtype=np.int64)
                order = np.argsort(comp)
                cand_empty = cand[rows][order]
                first = np.ones(cand_empty.size, dtype=bool)
                first[1:] = cand_empty[1:] != cand_empty[:-1]
                winners_local = rows[order][first]
                win[winners_local] = True
                claim_slots = cand[winners_local]
                self.keys[claim_slots] = uniq[pending[winners_local]]
                self.occupied += winners_local.size
                self._dirty.append(claim_slots)
            done = same | win
            slot_of[pending[done]] = cand[done]
            probe[pending[~done]] += np.uint64(1)
            pending = pending[~done]
        if (slot_of < 0).any():  # pragma: no cover - defensive
            raise HashTableFullError(
                "probe cycle exhausted without placement",
                buffer="hash-table", slots=self.slots,
                occupied=self.occupied, requested=int(n),
            )
        return slot_of

    # ------------------------------------------------------------------
    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Read back the stored maxima (stage-3 read of section 3.4).

        Probe accounting matches the write path: the chain steps walked
        here fold into ``total_probes``/``max_probe`` exactly like the
        transactions they are charged as, so per-batch probe stats cover
        the read-back too.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.full(keys.size, -1, dtype=np.int64)
        if keys.size == 0:
            return out
        uniq, inverse = np.unique(keys, return_inverse=True)
        home = self._hash(uniq)
        found_val = np.full(uniq.size, -1, dtype=np.int64)
        steps = np.zeros(uniq.size, dtype=np.int64)
        pending = np.arange(uniq.size)
        probe = np.zeros(uniq.size, dtype=np.uint64)
        for _ in range(self.slots):
            if pending.size == 0:
                break
            cand = ((home[pending] + probe[pending]) & self._mask).astype(np.int64)
            slot_keys = self.keys[cand]
            hit = slot_keys == uniq[pending]
            miss_end = slot_keys == EMPTY_KEY
            steps[pending] += 1
            found_val[pending[hit]] = self.values[cand[hit]]
            pending = pending[~(hit | miss_end)]
            probe += np.uint64(1)
        probes_done = int(steps.sum())
        self.total_probes += probes_done
        self.max_probe = max(self.max_probe, int(steps.max()))
        self.transactions += probes_done
        self.probe_groups += probes_done
        if self.log is not None:
            self.log.begin_round(int(keys.size))
            self.log.record(SLOT_BYTES, probes_done)
            self.log.rounds[-1].distinct_bytes = self.slots * SLOT_BYTES
        return found_val[inverse]


class BucketedAtomicMaxHashTable(_ConflictTableBase):
    """Cache-line-bucketed table probed warp-cooperatively.

    The ``slots`` records are grouped into ``slots // 8`` buckets of
    eight 16-byte records (one 128-byte cache line each).  Keys hash to
    a bucket; a warp inspects the whole bucket in one coalesced
    transaction, each contending lane CAS-claims a distinct empty record
    (contenders are served in priority order — lowest contender index
    first — filling the bucket's empty records in slot order), and a
    lane advances to the next bucket only when the bucket it probed was
    left full.  That advance rule preserves the linear-probing miss
    invariant at bucket granularity: a probed bucket containing an empty
    record proves the key is absent.

    Winner semantics are identical to the linear table — both keep the
    per-distinct-key maximum priority — so the two layouts are drop-in
    interchangeable and differ only in device cost.
    """

    variant = "bucketed"

    def __init__(self, slots: int, log: TransactionLog | None = None) -> None:
        if slots < BUCKET_RECORDS:
            raise SimulationError(
                f"bucketed table needs at least {BUCKET_RECORDS} slots "
                f"(one full bucket), got {slots}"
            )
        super().__init__(slots, log)
        self.n_buckets = slots // BUCKET_RECORDS
        self._bucket_mask = np.uint64(self.n_buckets - 1)
        self._rec_off = np.arange(BUCKET_RECORDS, dtype=np.int64)

    # ------------------------------------------------------------------
    def _hash(self, keys: np.ndarray) -> np.ndarray:
        """Bucket index (not record index) for each key."""
        return _mix(keys) & self._bucket_mask

    # ------------------------------------------------------------------
    def insert_max(self, keys: np.ndarray, priorities: np.ndarray) -> None:
        """All "threads" insert concurrently; per distinct key the table
        retains the maximum priority.  See :meth:`_charge` for the
        warp-cooperative cost accounting."""
        keys = np.asarray(keys, dtype=np.uint64)
        priorities = np.asarray(priorities, dtype=np.int64)
        if keys.size == 0:
            return
        self._check_keys(keys)

        uniq, inverse, order, bounds = _dedup(keys)
        slot_of, steps_per_key, cas = self._place(uniq)
        self._charge(keys, steps_per_key, inverse, cas=cas)
        self._merge_max(slot_of, priorities, order, bounds)

    def resolve_winners(
        self, keys: np.ndarray, priorities: np.ndarray
    ) -> np.ndarray:
        """Insert + grid sync + read-back fused into one pass (same
        contract as :meth:`AtomicMaxHashTable.resolve_winners`).

        The read-back matches the linear table's accounting contract:
        every *distinct* key re-walks its bucket chain once (duplicate
        threads read the same lines through L2 for free in this model —
        the linear table makes the identical per-distinct assumption),
        modeled as a compacted pass with one lane per distinct key.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        priorities = np.asarray(priorities, dtype=np.int64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        self._check_keys(keys)

        uniq, inverse, order, bounds = _dedup(keys)
        slot_of, steps_per_key, cas = self._place(uniq)
        self._charge(keys, steps_per_key, inverse, cas=cas)

        # atomic max per distinct key (the __syncthreads() boundary)
        self._merge_max(slot_of, priorities, order, bounds)

        counts = bucket_probe_groups(
            self._hash(uniq).astype(np.int64),
            steps_per_key, self.n_buckets,
        )
        n_groups = int(counts.size)
        self.transactions += n_groups
        self.probe_groups += n_groups
        if self.log is not None:
            self.log.begin_round(int(keys.size))
            self.log.record(BUCKET_BYTES, n_groups)
            self.log.rounds[-1].distinct_bytes = self.slots * SLOT_BYTES
        maxima = self.values[slot_of][inverse]
        return maxima == priorities

    def _charge(
        self, keys: np.ndarray, steps_per_key: np.ndarray,
        inverse: np.ndarray, *, cas: int,
    ) -> int:
        """Charge one probing pass; returns the coalesced group count.

        Per-thread probe *steps* are bucket visits (all threads sharing
        a key re-walk the same bucket chain), but the transactions
        charged are the distinct ``(round, warp, bucket)`` groups — a
        warp's lanes probing the same bucket in the same lockstep round
        share one 128-byte transaction.  Atomics are one CAS per
        contender round that saw an empty record, plus one atomicMax per
        thread; key matches are resolved by the cooperative read and
        need no atomic.
        """
        thread_steps = steps_per_key[inverse]
        self.total_probes += int(thread_steps.sum())
        self.max_probe = max(self.max_probe, int(steps_per_key.max()))
        home_threads = self._hash(keys).astype(np.int64)
        counts = bucket_probe_groups(home_threads, thread_steps, self.n_buckets)
        n_groups = int(counts.size)
        atomics = cas + int(keys.size)
        self.transactions += n_groups
        self.probe_groups += n_groups
        self.atomics += atomics
        if self.log is not None:
            self.log.begin_round(int(keys.size))
            self.log.record(BUCKET_BYTES, n_groups)
            self.log.rounds[-1].distinct_bytes = self.slots * SLOT_BYTES
            self.log.record_atomics(atomics)
        return n_groups

    def _place(
        self, uniq: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Claim one record per distinct key via the bucket-claim race.

        Returns ``(slot_of, steps_per_key, cas_attempts)`` where
        ``steps_per_key`` counts the buckets each key probed.
        """
        n = uniq.size
        if n > self.slots - self.occupied:
            raise self._full_error(n)
        slot_of = np.full(n, -1, dtype=np.int64)
        steps = np.zeros(n, dtype=np.int64)
        pending = np.arange(n)
        probe = np.zeros(n, dtype=np.int64)
        home = self._hash(uniq).astype(np.int64)
        bmask = self.n_buckets - 1
        cas = 0
        for _ in range(self.n_buckets):
            if pending.size == 0:
                break
            cb = (home[pending] + probe[pending]) & bmask
            base = cb * BUCKET_RECORDS
            steps[pending] += 1
            if self.occupied == 0:
                # post-reset fast path (the common first round): every
                # bucket is known all-empty, so the cooperative read is
                # free and the race reduces to ranking contenders per
                # bucket — the first eight claim records 0..7 in order
                order, rank = _bucket_ranks(cb)
                wins = rank < BUCKET_RECORDS
                w_rows = order[wins]
                roff = rank[wins]
                claim_slots = base[w_rows] + roff
                self.keys[claim_slots] = uniq[pending[w_rows]]
                self.occupied += w_rows.size
                self._dirty.append(claim_slots)
                cas += pending.size  # every contender saw an empty
                win = np.zeros(pending.size, dtype=bool)
                win[w_rows] = True
                slot_of[pending[w_rows]] = claim_slots
                probe[pending[~win]] += 1
                pending = pending[~win]
                continue
            rec = self.keys[base[:, None] + self._rec_off]  # (m, 8)
            # already claimed by the same key (an earlier insert_max call)
            match = rec == uniq[pending][:, None]
            same = match.any(axis=1)
            win = np.zeros(pending.size, dtype=bool)
            claim_off = np.zeros(pending.size, dtype=np.int64)
            cont = np.nonzero(~same)[0]
            if cont.size:
                empty = rec[cont] == EMPTY_KEY  # (c, 8)
                n_empty = empty.sum(axis=1)
                cas += int((n_empty > 0).sum())
                # contenders racing for one bucket are served lowest
                # contender index first (deterministic CAS arbitration),
                # filling the bucket's empty records in slot order;
                # contenders beyond the empties lose and advance — the
                # bucket they leave behind is full, preserving the
                # miss-termination invariant
                order, rank = _bucket_ranks(cb[cont])
                wins_sorted = rank < n_empty[order]
                if wins_sorted.any():
                    w_rows = cont[order[wins_sorted]]
                    w_rank = rank[wins_sorted]
                    emask = rec[w_rows] == EMPTY_KEY
                    csum = np.cumsum(emask, axis=1)
                    pick = emask & (csum == (w_rank + 1)[:, None])
                    roff = pick.argmax(axis=1)
                    claim_slots = base[w_rows] + roff
                    self.keys[claim_slots] = uniq[pending[w_rows]]
                    self.occupied += w_rows.size
                    self._dirty.append(claim_slots)
                    win[w_rows] = True
                    claim_off[w_rows] = roff
            done = same | win
            off = np.where(same, match.argmax(axis=1), claim_off)
            slot_of[pending[done]] = base[done] + off[done]
            probe[pending[~done]] += 1
            pending = pending[~done]
        if (slot_of < 0).any():  # pragma: no cover - defensive
            raise HashTableFullError(
                "probe cycle exhausted without placement",
                buffer="hash-table", slots=self.slots,
                occupied=self.occupied, requested=int(n),
            )
        return slot_of, steps, cas

    # ------------------------------------------------------------------
    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Read back the stored maxima (stage-3 read of section 3.4).

        A probed bucket containing an empty record and not the key
        proves the key absent (the bucket-granularity miss invariant);
        probe steps fold into ``total_probes``/``max_probe`` and each
        coalesced group is charged as one 128-byte transaction.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.full(keys.size, -1, dtype=np.int64)
        if keys.size == 0:
            return out
        uniq, inverse = np.unique(keys, return_inverse=True)
        home = self._hash(uniq).astype(np.int64)
        bmask = self.n_buckets - 1
        found_val = np.full(uniq.size, -1, dtype=np.int64)
        steps = np.zeros(uniq.size, dtype=np.int64)
        pending = np.arange(uniq.size)
        probe = np.zeros(uniq.size, dtype=np.int64)
        for _ in range(self.n_buckets):
            if pending.size == 0:
                break
            cb = (home[pending] + probe[pending]) & bmask
            base = cb * BUCKET_RECORDS
            rec = self.keys[base[:, None] + self._rec_off]
            steps[pending] += 1
            match = rec == uniq[pending][:, None]
            hit = match.any(axis=1)
            miss_end = (rec == EMPTY_KEY).any(axis=1) & ~hit
            hit_slots = base[hit] + match[hit].argmax(axis=1)
            found_val[pending[hit]] = self.values[hit_slots]
            probe[pending] += 1
            pending = pending[~(hit | miss_end)]
        self.total_probes += int(steps.sum())
        self.max_probe = max(self.max_probe, int(steps.max()))
        home_threads = self._hash(keys).astype(np.int64)
        counts = bucket_probe_groups(
            home_threads, steps[inverse], self.n_buckets
        )
        n_groups = int(counts.size)
        self.transactions += n_groups
        self.probe_groups += n_groups
        if self.log is not None:
            self.log.begin_round(int(keys.size))
            self.log.record(BUCKET_BYTES, n_groups)
            self.log.rounds[-1].distinct_bytes = self.slots * SLOT_BYTES
        return found_val[inverse]


def make_conflict_table(
    slots: int, *, variant: str = "bucketed",
    log: TransactionLog | None = None,
):
    """Build the configured conflict-table layout (§3.4 dedup table)."""
    if variant == "linear":
        return AtomicMaxHashTable(slots, log=log)
    if variant == "bucketed":
        return BucketedAtomicMaxHashTable(slots, log=log)
    raise SimulationError(
        f"unknown hash-table variant {variant!r}; "
        f"expected one of {HASH_TABLE_VARIANTS}"
    )
