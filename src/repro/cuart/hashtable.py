"""GPU-style open-addressing hash table with atomic-max semantics
(section 3.4, after Farrell's "A Simple GPU Hash Table" [4]).

The update engine uses it to resolve write conflicts inside a batch:
every thread inserts ``(leaf location → its thread index)`` and the table
keeps the *maximum* thread index per location ("storing the maximum
element index that performs an update to a certain leaf").  Collisions
are "handled by simple linear probing as described in ref. [4]".

The table is simulated deterministically but charges realistic costs: the
slot each distinct key claims is computed by the same linear-probe race a
CUDA ``atomicCAS`` loop runs, and every probe is recorded as one memory
transaction plus one atomic.  The probe statistics are what produce
figure 15's throughput collapse: "for larger trees and large batches,
hash table collisions become quite frequent and then the linear probing
algorithm causes the update throughput to drop".
"""

from __future__ import annotations

import numpy as np

from repro.errors import HashTableFullError, SimulationError
from repro.gpusim.transactions import TransactionLog

#: Fibonacci multiplicative hash constant (64-bit golden ratio).
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)
#: slot record: 8-byte key + 8-byte value, read/written atomically.
SLOT_BYTES = 16
#: reserved empty-slot marker (a packed link of 0 is the EMPTY link and
#: never a leaf location, so 0 is safe).
EMPTY_KEY = np.uint64(0)


class AtomicMaxHashTable:
    """Fixed-capacity open-addressing table: ``uint64 key → int64 max``."""

    def __init__(self, slots: int, log: TransactionLog | None = None) -> None:
        if slots <= 0 or slots & (slots - 1):
            raise SimulationError(
                f"hash table size must be a power of two, got {slots}"
            )
        self.slots = slots
        self._mask = np.uint64(slots - 1)
        self.keys = np.full(slots, EMPTY_KEY, dtype=np.uint64)
        self.values = np.full(slots, -1, dtype=np.int64)
        self.log = log
        self.total_probes = 0
        self.max_probe = 0
        self.occupied = 0
        #: slots claimed since the last reset — lets reset() clear only
        #: what was written instead of memsetting the whole table.
        self._dirty: list = []

    # ------------------------------------------------------------------
    def _hash(self, keys: np.ndarray) -> np.ndarray:
        return ((keys.astype(np.uint64) * _HASH_MULT) >> np.uint64(32)) & self._mask

    @property
    def load_factor(self) -> float:
        return self.occupied / self.slots

    def reset(self) -> None:
        """Clear between batches (the real kernel memsets the table).

        Probe statistics restart too, so a reused table reports the same
        per-batch numbers a freshly constructed one would.  When only a
        small fraction of the slots was claimed, just those are cleared —
        a large, lightly loaded table resets in O(occupied) instead of
        O(slots)."""
        if sum(a.size for a in self._dirty) < self.slots // 4:
            for claimed in self._dirty:
                self.keys[claimed] = EMPTY_KEY
                self.values[claimed] = -1
        else:
            self.keys.fill(EMPTY_KEY)
            self.values.fill(-1)
        self._dirty = []
        self.occupied = 0
        self.total_probes = 0
        self.max_probe = 0

    # ------------------------------------------------------------------
    def insert_max(self, keys: np.ndarray, priorities: np.ndarray) -> None:
        """All "threads" insert concurrently; per distinct key the table
        retains the maximum priority.

        Probe accounting: a thread probes from ``hash(key)`` until it
        finds its key or claims an empty slot; its probe count is the
        distance to the key's final slot.  All threads sharing a key pay
        the same distance (they re-walk the same probe chain), which is
        exactly the CUDA behaviour.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        priorities = np.asarray(priorities, dtype=np.int64)
        if keys.size == 0:
            return
        if np.any(keys == EMPTY_KEY):
            raise SimulationError("key 0 is reserved as the empty-slot marker")

        uniq, inverse = np.unique(keys, return_inverse=True)
        slot_of = self._place(uniq)  # may raise HashTableFullError

        # per-thread probe distance = distance of its key's slot
        home = self._hash(uniq)
        dist = (slot_of.astype(np.uint64) - home) & self._mask
        probes_per_key = dist.astype(np.int64) + 1
        thread_probes = probes_per_key[inverse]
        total_probes = int(thread_probes.sum())
        self.total_probes += total_probes
        self.max_probe = max(self.max_probe, int(probes_per_key.max()))
        if self.log is not None:
            # the table is its own dependent phase with its own working
            # set: the full slot array competes for L2 (a 1Mi-entry table
            # is 16 MiB — never resident, which is why collisions hurt)
            self.log.begin_round(int(keys.size))
            self.log.record(SLOT_BYTES, total_probes)
            self.log.rounds[-1].distinct_bytes = self.slots * SLOT_BYTES
            # every probe step is an atomicCAS attempt; every thread ends
            # with one atomicMax on its key's slot
            self.log.record_atomics(total_probes + int(keys.size))

        # atomic max per distinct key
        np.maximum.at(self.values, slot_of[inverse], priorities)

    def resolve_winners(
        self, keys: np.ndarray, priorities: np.ndarray
    ) -> np.ndarray:
        """Insert + grid sync + read-back fused into one vectorized pass.

        Semantically identical to ``insert_max(keys, priorities)`` followed
        by ``lookup(keys) == priorities``, and it charges exactly the same
        transactions for both phases — but the read-back reuses the slot
        positions the probing pass already computed instead of re-walking
        every probe chain on the host, so one batch costs a single
        linear-probe pass.  Returns the per-thread winner mask (at most
        one ``True`` per distinct key).
        """
        keys = np.asarray(keys, dtype=np.uint64)
        priorities = np.asarray(priorities, dtype=np.int64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        if np.any(keys == EMPTY_KEY):
            raise SimulationError("key 0 is reserved as the empty-slot marker")

        uniq, inverse = np.unique(keys, return_inverse=True)
        slot_of = self._place(uniq)  # may raise HashTableFullError

        home = self._hash(uniq)
        dist = (slot_of.astype(np.uint64) - home) & self._mask
        probes_per_key = dist.astype(np.int64) + 1
        thread_probes = probes_per_key[inverse]
        total_probes = int(thread_probes.sum())
        self.total_probes += total_probes
        self.max_probe = max(self.max_probe, int(probes_per_key.max()))
        if self.log is not None:
            # insert phase: same accounting as insert_max
            self.log.begin_round(int(keys.size))
            self.log.record(SLOT_BYTES, total_probes)
            self.log.rounds[-1].distinct_bytes = self.slots * SLOT_BYTES
            self.log.record_atomics(total_probes + int(keys.size))

        # atomic max per distinct key (the __syncthreads() boundary)
        np.maximum.at(self.values, slot_of[inverse], priorities)

        if self.log is not None:
            # read-back phase: same accounting as lookup — every distinct
            # key re-walks its probe chain once to read the stored max
            self.log.begin_round(int(keys.size))
            self.log.record(SLOT_BYTES, int(probes_per_key.sum()))
            self.log.rounds[-1].distinct_bytes = self.slots * SLOT_BYTES
        maxima = self.values[slot_of][inverse]
        return maxima == priorities

    def _place(self, uniq: np.ndarray) -> np.ndarray:
        """Claim one slot per distinct key via the linear-probe race."""
        n = uniq.size
        if n > self.slots - self.occupied:
            raise HashTableFullError(
                "distinct keys exceed the free slots; increase the table "
                "('simply increasing the hash table size promises better "
                "results', section 4.5)",
                buffer="hash-table", slots=self.slots,
                occupied=self.occupied, requested=int(n),
            )
        slot_of = np.full(n, -1, dtype=np.int64)
        pending = np.arange(n)
        probe = np.zeros(n, dtype=np.uint64)
        home = self._hash(uniq)
        for _ in range(self.slots):
            if pending.size == 0:
                break
            cand = ((home[pending] + probe[pending]) & self._mask).astype(np.int64)
            slot_keys = self.keys[cand]
            # already claimed by the same key (an earlier insert_max call)
            same = slot_keys == uniq[pending]
            # empty slots: the lowest-index contender wins the CAS race
            # (deterministic stand-in for the hardware arbitration)
            empty = slot_keys == EMPTY_KEY
            win = np.zeros(pending.size, dtype=bool)
            if empty.any():
                order = np.argsort(cand[empty], kind="stable")
                cand_empty = cand[empty][order]
                first = np.ones(cand_empty.size, dtype=bool)
                first[1:] = cand_empty[1:] != cand_empty[:-1]
                winners_local = np.nonzero(empty)[0][order][first]
                win[winners_local] = True
                claim_slots = cand[winners_local]
                self.keys[claim_slots] = uniq[pending[winners_local]]
                self.occupied += winners_local.size
                self._dirty.append(claim_slots)
            done = same | win
            slot_of[pending[done]] = cand[done]
            probe[pending[~done & ~same]] += np.uint64(1)
            pending = pending[~done]
        if (slot_of < 0).any():  # pragma: no cover - defensive
            raise HashTableFullError(
                "probe cycle exhausted without placement",
                buffer="hash-table", slots=self.slots,
                occupied=self.occupied, requested=int(n),
            )
        return slot_of

    # ------------------------------------------------------------------
    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Read back the stored maxima (stage-3 read of section 3.4)."""
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.full(keys.size, -1, dtype=np.int64)
        if keys.size == 0:
            return out
        uniq, inverse = np.unique(keys, return_inverse=True)
        home = self._hash(uniq)
        found_val = np.full(uniq.size, -1, dtype=np.int64)
        pending = np.arange(uniq.size)
        probe = np.zeros(uniq.size, dtype=np.uint64)
        probes_done = 0
        for _ in range(self.slots):
            if pending.size == 0:
                break
            cand = ((home[pending] + probe[pending]) & self._mask).astype(np.int64)
            slot_keys = self.keys[cand]
            hit = slot_keys == uniq[pending]
            miss_end = slot_keys == EMPTY_KEY
            probes_done += pending.size
            found_val[pending[hit]] = self.values[cand[hit]]
            pending = pending[~(hit | miss_end)]
            probe += np.uint64(1)
        if self.log is not None:
            self.log.begin_round(int(keys.size))
            self.log.record(SLOT_BYTES, probes_done)
            self.log.rounds[-1].distinct_bytes = self.slots * SLOT_BYTES
        return found_val[inverse]
