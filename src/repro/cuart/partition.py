"""Out-of-core operation: hot/cold key-space partitioning (§5.1).

"Furthermore, we plan to add a specialized handling for index structures
larger than the device memory, by migrating rarely used parts of the key
space into host memory and query them in a hybrid manner with both GPU
and CPU doing the work."

The key space is partitioned by the first key byte (256 partitions — the
natural radix-tree split axis: every partition is one subtree below the
root).  A device-memory budget selects the *hot* partition set; hot
subtrees are mapped into a CuART layout on the device, cold subtrees stay
in the host tree.  Lookups are routed per key; per-partition access
counters feed :meth:`PartitionedIndex.rebalance`, which re-picks the hot
set by observed heat density (accesses per device byte) and re-maps only
when the set actually changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.art.nodes import Leaf
from repro.art.stats import collect_stats
from repro.art.tree import AdaptiveRadixTree
from repro.constants import NIL_VALUE
from repro.cuart.layout import CuartLayout
from repro.cuart.lookup import lookup_batch
from repro.cuart.root_table import RootTable
from repro.errors import ReproError
from repro.gpusim.transactions import TransactionLog
from repro.util.keys import keys_to_matrix


@dataclass
class PartitionStats:
    """Observable state of the hot/cold split."""

    hot_partitions: int
    cold_partitions: int
    device_bytes: int
    budget_bytes: int
    #: fraction of all keys resident on the device.
    hot_key_fraction: float
    #: queries routed to the device / host since the last rebalance.
    device_queries: int
    host_queries: int
    rebalances: int


class PartitionedIndex:
    """An index larger than device memory, split across device and host.

    >>> idx = PartitionedIndex(device_budget_bytes=1 << 20)
    >>> idx.populate([(b'ab', 1), (b'zz', 2)])
    >>> idx.lookup([b'ab', b'zz', b'xx'])
    [1, 2, None]
    """

    def __init__(
        self,
        *,
        device_budget_bytes: int,
        root_table_depth: int | None = None,
        batch_width: int = 32,
    ) -> None:
        if device_budget_bytes <= 0:
            raise ReproError("device budget must be positive")
        self.budget = device_budget_bytes
        self.root_table_depth = root_table_depth
        self.tree = AdaptiveRadixTree()  # authoritative, holds everything
        self.hot_set: frozenset[int] = frozenset()
        self.layout: CuartLayout | None = None
        self.root_table: RootTable | None = None
        self._hot_tree: AdaptiveRadixTree | None = None
        #: per-first-byte access counters since the last rebalance.
        self.access_counts = np.zeros(256, dtype=np.int64)
        self.device_queries = 0
        self.host_queries = 0
        self.rebalances = 0
        self.last_log: TransactionLog | None = None

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def populate(self, items) -> None:
        """Insert items into the authoritative host tree and (re)build
        the device-resident hot set."""
        for k, v in items:
            self.tree.insert(k, v)
        self._choose_hot(self._partition_weights(uniform=True))
        self._map_hot()

    def _partition_sizes(self) -> np.ndarray:
        """Device bytes each first-byte partition would occupy."""
        sizes = np.zeros(256, dtype=np.int64)
        root = self.tree.root
        if root is None:
            return sizes
        if isinstance(root, Leaf):
            sizes[root.key[0]] = 64
            return sizes
        # account each subtree below the root; the root's compressed
        # prefix pins every key to one partition
        prefix = root.prefix
        if len(prefix) >= 1:
            stats = collect_stats(root)
            sizes[prefix[0]] = stats.cuart_device_bytes()
            return sizes
        for byte, child in root.children_items():
            stats = collect_stats(child)
            sizes[byte] = max(stats.cuart_device_bytes(), 64)
        return sizes

    def _partition_weights(self, uniform: bool = False) -> np.ndarray:
        if uniform or self.access_counts.sum() == 0:
            return np.ones(256, dtype=np.float64)
        return self.access_counts.astype(np.float64)

    def _choose_hot(self, weights: np.ndarray) -> None:
        """Greedy knapsack: hottest partitions per byte first.

        The per-subtree size estimates do not see the root structure the
        re-mapped hot tree adds, nor node-type shifts from re-insertion,
        so a root reserve plus a 5% safety factor keeps the mapped
        layout inside the budget.
        """
        sizes = self._partition_sizes()
        effective = (self.budget - 4096) / 1.05
        density = np.where(sizes > 0, weights / np.maximum(sizes, 1), 0.0)
        order = np.argsort(-density, kind="stable")
        chosen: set[int] = set()
        used = 0
        for b in order:
            if sizes[b] == 0:
                continue
            if used + sizes[b] > effective:
                continue
            chosen.add(int(b))
            used += int(sizes[b])
        self.hot_set = frozenset(chosen)

    def _map_hot(self) -> None:
        """Build the device layout holding only the hot partitions."""
        hot_tree = AdaptiveRadixTree()
        for k, v in self.tree.items():
            if k[0] in self.hot_set:
                hot_tree.insert(k, v)
        self._hot_tree = hot_tree
        self.layout = CuartLayout(hot_tree)
        self.root_table = (
            RootTable(self.layout, k=self.root_table_depth)
            if self.root_table_depth
            else None
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lookup(self, keys) -> list[int | None]:
        """Route each key to the device (hot) or the host tree (cold)."""
        if self.layout is None:
            raise ReproError("populate() first")
        out: list[int | None] = [None] * len(keys)
        hot_rows, hot_keys = [], []
        log = TransactionLog()
        for i, k in enumerate(keys):
            self.access_counts[k[0]] += 1
            if k[0] in self.hot_set:
                hot_rows.append(i)
                hot_keys.append(k)
            else:
                out[i] = self.tree.search(k)
                self.host_queries += 1
        if hot_keys:
            mat, lens = keys_to_matrix(hot_keys)
            res = lookup_batch(
                self.layout, mat, lens, root_table=self.root_table, log=log
            )
            for j, i in enumerate(hot_rows):
                v = int(res.values[j])
                out[i] = None if v == NIL_VALUE else v
            self.device_queries += len(hot_keys)
        self.last_log = log
        return out

    # ------------------------------------------------------------------
    # adaptation
    # ------------------------------------------------------------------
    def rebalance(self) -> bool:
        """Re-pick the hot set from the observed access counters
        ("migrating rarely used parts of the key space into host
        memory"); returns True when the device content changed."""
        old = self.hot_set
        self._choose_hot(self._partition_weights())
        self.rebalances += 1
        self.access_counts[:] = 0
        if self.hot_set != old:
            self._map_hot()
            return True
        return False

    # ------------------------------------------------------------------
    def stats(self) -> PartitionStats:
        sizes = self._partition_sizes()
        populated = int((sizes > 0).sum())
        hot_keys = len(self._hot_tree) if self._hot_tree else 0
        return PartitionStats(
            hot_partitions=len(self.hot_set),
            cold_partitions=populated - len(self.hot_set & set(np.nonzero(sizes)[0].tolist())),
            device_bytes=self.layout.device_bytes() if self.layout else 0,
            budget_bytes=self.budget,
            hot_key_fraction=hot_keys / max(len(self.tree), 1),
            device_queries=self.device_queries,
            host_queries=self.host_queries,
            rebalances=self.rebalances,
        )


    # ------------------------------------------------------------------
    # writes (routed like reads: hot -> device engines, cold -> host)
    # ------------------------------------------------------------------
    def update(self, items) -> list[bool]:
        """Value updates routed per key; the authoritative host tree
        mirrors every applied write (hot-set migrations re-map from it)."""
        if self.layout is None:
            raise ReproError("populate() first")
        from repro.cuart.update import UpdateEngine

        found = [False] * len(items)
        hot_rows, hot_items = [], []
        for i, (k, v) in enumerate(items):
            self.access_counts[k[0]] += 1
            if k[0] in self.hot_set:
                hot_rows.append(i)
                hot_items.append((k, v))
            elif self.tree.search(k) is not None:
                self.tree.insert(k, v)
                found[i] = True
                self.host_queries += 1
        if hot_items:
            mat, lens = keys_to_matrix([k for k, _ in hot_items])
            values = np.array([v for _, v in hot_items], dtype=np.uint64)
            engine = UpdateEngine(self.layout, root_table=self.root_table)
            res = engine.apply(mat, lens, values)
            for j, i in enumerate(hot_rows):
                found[i] = bool(res.found[j])
            # mirror applied hot writes into the authoritative tree
            for (k, v), hit in zip(hot_items, res.found):
                if hit:
                    self.tree.insert(k, v)
            self.layout.mark_synced()
            self.device_queries += len(hot_items)
        return found

    def delete(self, keys) -> list[bool]:
        """Deletions routed per key, mirrored into the host tree."""
        if self.layout is None:
            raise ReproError("populate() first")
        from repro.cuart.delete import delete_batch

        out = [False] * len(keys)
        hot_rows, hot_keys = [], []
        for i, k in enumerate(keys):
            self.access_counts[k[0]] += 1
            if k[0] in self.hot_set:
                hot_rows.append(i)
                hot_keys.append(k)
            else:
                out[i] = self.tree.delete(k)
                self.host_queries += 1
        if hot_keys:
            mat, lens = keys_to_matrix(hot_keys)
            res = delete_batch(self.layout, mat, lens,
                               root_table=self.root_table)
            for j, i in enumerate(hot_rows):
                out[i] = bool(res.deleted[j])
            for k, hit in zip(hot_keys, res.deleted):
                if hit:
                    self.tree.delete(k)
            self.layout.mark_synced()
            self.device_queries += len(hot_keys)
        return out
