"""Range and prefix queries over the ordered leaf buffers.

Section 3.2.1: "transferring range queries from the accelerator to the
host is trivial because it is only required to transmit both the start
and the end index within the leaf arrays, because the keys are already
strictly ordered within the leaf buffers assuming a lexicographical
order, thus speeding up range queries significantly."

With the three fixed leaf sizes, one logical range maps to one
``[start, end)`` slice *per leaf buffer*; the host merges the (already
sorted) slices.  Keys cleared by device-side deletions surface as
``NIL_VALUE`` payloads and are filtered during materialization.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.constants import (
    CUART_NODE_BYTES,
    LEAF_CAPACITY,
    LEAF_TYPE_CODES,
    NIL_VALUE,
)
from repro.cuart.layout import CuartLayout
from repro.gpusim.transactions import TransactionLog

#: representative inner-node transaction for the two boundary descents.
_DESCENT_NODE_BYTES = CUART_NODE_BYTES[2]  # N16 record


@dataclass
class RangeResult:
    """One range query's outcome."""

    #: per leaf-type code: the ``[start, end)`` slice of the leaf buffer —
    #: this pair of indices is all the device ships back per buffer.
    slices: dict
    #: materialized keys/values (sorted, deletions filtered).
    keys: list
    values: np.ndarray
    log: TransactionLog

    def __len__(self) -> int:
        return len(self.keys)


def _ordered_keys(
    layout: CuartLayout, code: int
) -> list[tuple[bytes, int, int]]:
    """Sorted ``(padded_bytes, true_length, row)`` leaf keys of one
    buffer, cached at first use.

    Tuple order equals exact lexicographic key order: padded bytes decide
    except for zero-extension ties, where the shorter key sorts first
    (``b"\x00" < b"\x00\x00"`` even though both pad to the same bytes).

    For a freshly mapped layout the buffer is already in order (in-order
    mapping) and the view is the identity; after device-side inserts the
    buffer order is broken, the engine invalidates this cache, and the
    rebuilt view carries the row indirection — range answers stay exact,
    only the paper's contiguous-slice property is weakened to "slice of
    the sorted view".  Deletions blank key bytes but the snapshot keeps
    the mapped bytes, so deleted rows are filtered by their NIL payloads.
    """
    cache = getattr(layout, "_range_key_cache", None)
    if cache is None:
        cache = {}
        layout._range_key_cache = cache
    if code not in cache:
        buf = layout.leaves[code]
        live = int(getattr(layout, "_next_leaf", {}).get(code, buf.keys.shape[0]))
        entries = [
            (buf.keys[i].tobytes(), int(buf.key_lens[i]), i)
            for i in range(live)
            if buf.key_lens[i] > 0 or buf.values[i] != 0
        ]
        entries.sort()
        cache[code] = entries
    return cache[code]


def _bound(key: bytes, width: int, fill: int) -> tuple[bytes, int]:
    """Search bound for ``key`` against a buffer of ``width``-byte
    records.  Truncation is safe: the true length carried in the tuple
    settles padded ties exactly (a stored key equal to the truncation is
    a proper prefix of the bound and sorts before it)."""
    padded = key[:width] + bytes([fill]) * max(width - len(key), 0)
    return (padded, len(key))


def range_query(
    layout: CuartLayout,
    lo: bytes,
    hi: bytes,
    *,
    log: TransactionLog | None = None,
) -> RangeResult:
    """All live ``(key, value)`` pairs with ``lo <= key <= hi``.

    Zero-padding both bounds to each buffer's width preserves the
    lexicographic semantics for prefix-free key sets: padding with 0x00
    makes a short bound compare exactly like its lexicographic position.
    """
    layout.check_fresh()
    if log is None:
        log = TransactionLog()
    slices: dict = {}
    out_keys: list[bytes] = []
    out_vals: list[int] = []
    # boundary descents: two traversals locate the start/end leaf indices
    log.begin_round(2)
    log.record(_DESCENT_NODE_BYTES, 2 * layout.max_levels)
    for code in LEAF_TYPE_CODES:
        buf = layout.leaves[code]
        n = buf.keys.shape[0]
        if n == 0:
            slices[code] = (0, 0)
            continue
        width = LEAF_CAPACITY[code]
        ordered = _ordered_keys(layout, code)
        start = bisect.bisect_left(ordered, _bound(lo, width, 0x00))
        hi_pad, hi_len = _bound(hi, width, 0x00)
        end = bisect.bisect_right(ordered, (hi_pad, hi_len, 1 << 62))
        slices[code] = (start, end)
        if end > start:
            # result transfer: the leaf records stream back to the host
            log.record(CUART_NODE_BYTES[code], end - start)
        for i in range(start, end):
            padded, klen, row = ordered[i]
            v = int(buf.values[row])
            if v == NIL_VALUE:
                continue  # lazily deleted
            out_keys.append(padded[:klen])
            out_vals.append(v)
    order = sorted(range(len(out_keys)), key=lambda i: out_keys[i])
    return RangeResult(
        slices=slices,
        keys=[out_keys[i] for i in order],
        values=np.array([out_vals[i] for i in order], dtype=np.uint64),
        log=log,
    )


def prefix_query(
    layout: CuartLayout,
    prefix: bytes,
    *,
    log: TransactionLog | None = None,
) -> RangeResult:
    """All live pairs whose key starts with ``prefix``.

    Equivalent to the range ``[prefix·00…, prefix·FF…]`` over each
    buffer's fixed width.
    """
    layout.check_fresh()
    if log is None:
        log = TransactionLog()
    slices: dict = {}
    out_keys: list[bytes] = []
    out_vals: list[int] = []
    log.begin_round(2)
    log.record(_DESCENT_NODE_BYTES, 2 * layout.max_levels)
    for code in LEAF_TYPE_CODES:
        buf = layout.leaves[code]
        n = buf.keys.shape[0]
        width = LEAF_CAPACITY[code]
        if n == 0 or len(prefix) > width:
            slices[code] = (0, 0)
            continue
        ordered = _ordered_keys(layout, code)
        start = bisect.bisect_left(ordered, _bound(prefix, width, 0x00))
        # upper bound: prefix extended with 0xFF fill; carry an
        # effectively-infinite length so padded ties all fall inside
        hi_pad, _ = _bound(prefix, width, 0xFF)
        end = bisect.bisect_right(ordered, (hi_pad, width + 1, 1 << 62))
        slices[code] = (start, end)
        if end > start:
            log.record(CUART_NODE_BYTES[code], end - start)
        for i in range(start, end):
            padded, klen, row = ordered[i]
            v = int(buf.values[row])
            if v == NIL_VALUE:
                continue
            key = padded[:klen]
            if key.startswith(prefix):
                out_keys.append(key)
                out_vals.append(v)
    order = sorted(range(len(out_keys)), key=lambda i: out_keys[i])
    return RangeResult(
        slices=slices,
        keys=[out_keys[i] for i in order],
        values=np.array([out_vals[i] for i in order], dtype=np.uint64),
        log=log,
    )


def count_range(
    layout: CuartLayout,
    lo: bytes,
    hi: bytes,
    *,
    log: TransactionLog | None = None,
) -> int:
    """COUNT(*) over ``lo <= key <= hi`` without materializing rows.

    The aggregation-pushdown case §3.2.1's ordered leaf buffers make
    cheap: the boundary positions alone give the count, so nothing but
    the two descents crosses the PCIe bus.  Lazily deleted rows inside
    the window are subtracted by checking payloads device-side.
    """
    layout.check_fresh()
    if log is None:
        log = TransactionLog()
    log.begin_round(2)
    log.record(_DESCENT_NODE_BYTES, 2 * layout.max_levels)
    total = 0
    for code in LEAF_TYPE_CODES:
        buf = layout.leaves[code]
        if buf.keys.shape[0] == 0:
            continue
        width = LEAF_CAPACITY[code]
        ordered = _ordered_keys(layout, code)
        start = bisect.bisect_left(ordered, _bound(lo, width, 0x00))
        hi_pad, hi_len = _bound(hi, width, 0x00)
        end = bisect.bisect_right(ordered, (hi_pad, hi_len, 1 << 62))
        if end <= start:
            continue
        rows = np.array([ordered[i][2] for i in range(start, end)])
        live = int((buf.values[rows] != np.uint64(NIL_VALUE)).sum())
        # one value-word check per candidate row (device-side filter)
        log.record(16, end - start)
        total += live
    return total
