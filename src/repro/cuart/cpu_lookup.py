"""CuART's flat layout as a *CPU* lookup engine (section 4.2, figure 7).

"This experiment reveals that our optimizations are generally applicable
to ART and not only tailored towards a specific GPU architecture. ...
CuART performs and scales significantly better than the original ART
because it employs continous pieces of memory."

Two entry points:

* :func:`cpu_lookup_flat` — run the batch kernel on the host buffers
  (this *is* a CPU execution of the flat layout; pytest-benchmark times
  it for the measured figure-7 series);
* :func:`modeled_cpu_throughput` — the structural cache model used for
  the paper-scale simulated series.
"""

from __future__ import annotations

import numpy as np

from repro.art.stats import TreeStats
from repro.constants import CUART_NODE_BYTES
from repro.cuart.layout import CuartLayout
from repro.cuart.lookup import LookupResult, lookup_batch
from repro.gpusim.cost_model import cpu_lookup_time
from repro.gpusim.devices import CpuSpec


def cpu_lookup_flat(
    layout: CuartLayout, keys_mat: np.ndarray, key_lens: np.ndarray
) -> LookupResult:
    """Exact lookups on the CPU against the CuART buffers.

    Identical algorithm to the device kernel — the layout is what
    changes the performance story, not the code.
    """
    return lookup_batch(layout, keys_mat, key_lens)


def _avg_node_bytes(stats: TreeStats) -> float:
    """Average CuART record size weighted by how often each node type is
    visited per lookup."""
    from repro.art.stats import visit_mix_per_lookup

    mix = visit_mix_per_lookup(stats)
    total_w = 0.0
    total_b = 0.0
    for code, w in mix.items():
        if code == "long":
            continue
        total_w += w
        total_b += w * CUART_NODE_BYTES[code]
    return total_b / total_w if total_w else 64.0


def modeled_cpu_throughput(
    stats: TreeStats,
    cpu: CpuSpec,
    *,
    contiguous: bool,
    threads: int | None = None,
) -> float:
    """Modeled CPU lookup throughput in MOps/s for one tree.

    ``contiguous=True`` is the CuART flat layout, ``False`` the classic
    malloc-spread pointer ART.
    """
    avg_levels = stats.avg_leaf_level + 1.0  # inner visits + the leaf read
    working_set = (
        stats.cuart_device_bytes() if contiguous else stats.art_host_bytes()
    )
    per_lookup = cpu_lookup_time(
        cpu,
        avg_levels=avg_levels,
        node_bytes=_avg_node_bytes(stats),
        working_set_bytes=working_set,
        contiguous=contiguous,
        threads=1,
    )
    threads = threads or cpu.threads
    return min(threads, cpu.threads) / per_lookup / 1e6
